"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdr.datasets import synthesize
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import Sample


def make_fp(uid, rows, count=1, members=None):
    """Build a fingerprint from (x, y, t[, dx, dy, dt]) tuples."""
    samples = []
    for row in rows:
        if len(row) == 3:
            x, y, t = row
            samples.append(Sample(x=x, y=y, t=t))
        else:
            x, y, t, dx, dy, dt = row
            samples.append(Sample(x=x, y=y, t=t, dx=dx, dy=dy, dt=dt))
    return Fingerprint(uid, samples, count=count, members=members)


@pytest.fixture
def toy_pair():
    """Two small fingerprints with known geometry."""
    a = make_fp("a", [(0.0, 0.0, 0.0), (1000.0, 500.0, 60.0), (2000.0, 0.0, 600.0)])
    b = make_fp("b", [(100.0, 0.0, 10.0), (2200.0, 100.0, 620.0)])
    return a, b

@pytest.fixture
def toy_dataset():
    """Six-user toy dataset with two identical twins and outliers."""
    fps = [
        make_fp("u0", [(0.0, 0.0, 0.0), (500.0, 0.0, 100.0)]),
        make_fp("u1", [(0.0, 0.0, 0.0), (500.0, 0.0, 100.0)]),  # twin of u0
        make_fp("u2", [(100.0, 100.0, 5.0), (600.0, 100.0, 110.0)]),
        make_fp("u3", [(50_000.0, 50_000.0, 3_000.0)]),
        make_fp("u4", [(0.0, 100.0, 20.0), (400.0, 0.0, 130.0)]),
        make_fp("u5", [(90_000.0, 10_000.0, 9_000.0), (90_500.0, 10_000.0, 9_100.0)]),
    ]
    return FingerprintDataset(fps, name="toy")


@pytest.fixture(scope="session")
def small_civ():
    """A small but realistic synthetic CDR dataset (session-cached)."""
    return synthesize("synth-civ", n_users=40, days=2, seed=11)


@pytest.fixture(scope="session")
def small_sen():
    """Senegal-preset counterpart of ``small_civ``."""
    return synthesize("synth-sen", n_users=40, days=2, seed=11)


@pytest.fixture
def rng():
    """Deterministic NumPy generator for tests."""
    return np.random.default_rng(1234)
