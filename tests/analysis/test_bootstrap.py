"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import bootstrap_ci, bootstrap_fraction_ci


class TestBootstrapCI:
    def test_contains_estimate(self, rng):
        values = rng.normal(10.0, 2.0, 300)
        ci = bootstrap_ci(values, rng=rng)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate in ci

    def test_median_estimate(self, rng):
        values = rng.exponential(size=500)
        ci = bootstrap_ci(values, statistic=np.median, rng=rng)
        assert ci.estimate == pytest.approx(np.median(values))

    def test_coverage_of_true_median(self):
        # Repeated experiments: the nominal 95% interval should contain
        # the true median most of the time.
        true_median = 0.0
        hits = 0
        trials = 40
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            values = rng.normal(true_median, 1.0, 120)
            ci = bootstrap_ci(values, n_resamples=300, rng=rng)
            hits += true_median in ci
        assert hits / trials > 0.8

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(size=50), rng=np.random.default_rng(1))
        large = bootstrap_ci(rng.normal(size=5_000), rng=np.random.default_rng(1))
        assert large.width < small.width

    def test_higher_confidence_wider(self, rng):
        values = rng.normal(size=200)
        narrow = bootstrap_ci(values, confidence=0.8, rng=np.random.default_rng(2))
        wide = bootstrap_ci(values, confidence=0.99, rng=np.random.default_rng(2))
        assert wide.width >= narrow.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), n_resamples=2)

    def test_str_rendering(self, rng):
        ci = bootstrap_ci(rng.normal(size=50), rng=rng)
        text = str(ci)
        assert "[" in text and "]" in text


class TestFractionCI:
    def test_fraction_estimate(self, rng):
        indicators = np.array([1, 1, 0, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        ci = bootstrap_fraction_ci(indicators, rng=rng)
        assert ci.estimate == pytest.approx(0.2)
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_rejects_non_indicator(self, rng):
        with pytest.raises(ValueError):
            bootstrap_fraction_ci(np.array([0.5, 1.0]), rng=rng)
