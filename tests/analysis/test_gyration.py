"""Tests for radius of gyration."""

import numpy as np
import pytest

from repro.analysis.gyration import gyration_summary, radius_of_gyration
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from tests.conftest import make_fp


class TestRadius:
    def test_single_sample_zero(self):
        assert radius_of_gyration(make_fp("a", [(0.0, 0.0, 0.0)])) == 0.0

    def test_stationary_user_zero(self):
        fp = make_fp("a", [(100.0, 200.0, t) for t in (0.0, 10.0, 20.0)])
        assert radius_of_gyration(fp) == 0.0

    def test_two_point_value(self):
        # Centers at (50, 50) and (1050, 50): rg = 500.
        fp = make_fp("a", [(0.0, 0.0, 0.0), (1000.0, 0.0, 10.0)])
        assert radius_of_gyration(fp) == pytest.approx(500.0)

    def test_uses_sample_centers(self):
        # A generalized sample contributes its rectangle center.
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 0.0, 1000.0, 1000.0, 1.0),
                (0.0, 0.0, 10.0, 1000.0, 1000.0, 1.0),
            ],
        )
        assert radius_of_gyration(fp) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            radius_of_gyration(Fingerprint("e", np.empty((0, 6))))


class TestSummary:
    def test_summary_fields(self, small_civ):
        summary = gyration_summary(small_civ)
        assert 0 < summary.median_m <= summary.p90_m
        assert summary.mean_m > 0

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            gyration_summary(FingerprintDataset())

    def test_str_rendering(self, small_civ):
        text = str(gyration_summary(small_civ))
        assert "median" in text and "km" in text
