"""Tests for the Tail Weight Index.

The paper's footnote 5 calibrates the index: Exp(1) has TWI ~1.6 and
Pareto(shape=1) has TWI ~14; these anchors pin down the definition.
"""

import numpy as np
import pytest

from repro.analysis.twi import gaussian_twi_norm, tail_weight_index


class TestCalibrationAnchors:
    def test_exponential_anchor(self):
        # Analytic quantiles of Exp(1), immune to sampling noise.
        q = lambda p: -np.log1p(-p)
        twi = ((q(0.99) - q(0.5)) / (q(0.75) - q(0.5))) / gaussian_twi_norm()
        assert twi == pytest.approx(1.6, abs=0.1)

    def test_pareto_anchor(self):
        q = lambda p: 1.0 / (1.0 - p)
        twi = ((q(0.99) - q(0.5)) / (q(0.75) - q(0.5))) / gaussian_twi_norm()
        assert twi == pytest.approx(14.0, abs=0.5)

    def test_gaussian_is_one(self, rng):
        twi = tail_weight_index(rng.normal(size=200_000))
        assert twi == pytest.approx(1.0, abs=0.05)

    def test_sampled_exponential(self, rng):
        twi = tail_weight_index(rng.exponential(size=200_000))
        assert twi == pytest.approx(1.64, abs=0.1)

    def test_sampled_pareto(self, rng):
        twi = tail_weight_index(rng.pareto(1.0, size=500_000))
        assert twi == pytest.approx(14.2, rel=0.15)


class TestOrdering:
    def test_heavier_tail_higher_twi(self, rng):
        light = tail_weight_index(rng.normal(size=50_000))
        medium = tail_weight_index(rng.exponential(size=50_000))
        heavy = tail_weight_index(rng.pareto(1.0, size=50_000))
        assert light < medium < heavy

    def test_uniform_lighter_than_gaussian(self, rng):
        uniform = tail_weight_index(rng.uniform(size=50_000))
        gaussian = tail_weight_index(rng.normal(size=50_000))
        assert uniform < gaussian

    def test_scale_invariant(self, rng):
        x = rng.exponential(size=20_000)
        assert tail_weight_index(x) == pytest.approx(tail_weight_index(100.0 * x))

    def test_shift_invariant(self, rng):
        x = rng.exponential(size=20_000)
        assert tail_weight_index(x) == pytest.approx(tail_weight_index(x + 5.0))


class TestDegenerate:
    def test_too_few_points(self):
        assert tail_weight_index(np.array([1.0, 2.0, 3.0])) == 0.0

    def test_constant_distribution(self):
        assert tail_weight_index(np.full(100, 7.0)) == 0.0

    def test_mass_at_median(self):
        # More than 75% of mass on one value: body spread is zero.
        values = np.concatenate([np.zeros(80), np.ones(20)])
        assert tail_weight_index(values) == 0.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            tail_weight_index(np.zeros((4, 4)))
