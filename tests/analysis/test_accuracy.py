"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.analysis.accuracy import extent_accuracy, matched_errors, utility_report
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.glove import glove
from tests.conftest import make_fp


class TestExtentAccuracy:
    def test_original_data_extents(self, small_civ):
        spatial, temporal = extent_accuracy(small_civ)
        assert spatial.median == 100.0
        assert temporal.median == 1.0

    def test_weighting_by_count(self):
        ds = FingerprintDataset(
            [
                make_fp(
                    "g",
                    [(0.0, 0.0, 0.0, 5_000.0, 5_000.0, 60.0)],
                    count=9,
                    members=tuple(f"m{i}" for i in range(9)),
                ),
                make_fp("u", [(0.0, 0.0, 0.0)]),
            ]
        )
        weighted, _ = extent_accuracy(ds, weighted=True)
        unweighted, _ = extent_accuracy(ds, weighted=False)
        assert weighted.median == 5_000.0  # 9 of 10 users see 5 km
        assert unweighted.median in (100.0, 5_000.0)  # 2 samples, either mid

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            extent_accuracy(FingerprintDataset())


class TestMatchedErrors:
    def test_identity_has_zero_error(self, small_civ):
        errors = matched_errors(small_civ, small_civ, mode="cover")
        assert errors.n_deleted == 0
        assert errors.mean_position_m == 0.0
        assert errors.mean_time_min == 0.0

    def test_cover_mode_counts_suppressed_as_deleted(self):
        original = FingerprintDataset(
            [make_fp("a", [(0.0, 0.0, 0.0), (50_000.0, 0.0, 500.0)])]
        )
        # Published group kept only the first sample.
        published = FingerprintDataset(
            [make_fp("g", [(0.0, 0.0, 0.0)], count=1, members=("a",))]
        )
        errors = matched_errors(original, published, mode="cover")
        assert errors.n_deleted == 1
        assert errors.n_total == 2

    def test_missing_user_fully_deleted(self):
        original = FingerprintDataset([make_fp("a", [(0.0, 0.0, 0.0)])])
        published = FingerprintDataset(
            [make_fp("g", [(0.0, 0.0, 0.0)], count=1, members=("zz",))]
        )
        errors = matched_errors(original, published, mode="cover")
        assert errors.n_deleted == 1
        assert errors.deleted_fraction == 1.0

    def test_cover_error_is_center_offset(self):
        original = FingerprintDataset([make_fp("a", [(400.0, 0.0, 10.0)])])
        # One covering published sample: x in [0,1000] center 500; the
        # original's center is 450 -> error 50 m on x.
        published = FingerprintDataset(
            [
                make_fp(
                    "g",
                    [(0.0, 0.0, 0.0, 1_000.0, 100.0, 60.0)],
                    count=1,
                    members=("a",),
                )
            ]
        )
        errors = matched_errors(original, published, mode="cover")
        assert errors.mean_position_m == pytest.approx(50.0)
        # Time: original mid 10.5, published mid 30 -> 19.5 min.
        assert errors.mean_time_min == pytest.approx(19.5)

    def test_nearest_mode_matches_by_time(self):
        original = FingerprintDataset([make_fp("a", [(0.0, 0.0, 0.0)])])
        published = FingerprintDataset(
            [
                make_fp(
                    "a2",
                    [(300.0, 400.0, 2.0), (9_000.0, 9_000.0, 500.0)],
                    count=1,
                    members=("a",),
                )
            ]
        )
        errors = matched_errors(original, published, mode="nearest")
        assert errors.n_deleted == 0
        assert errors.mean_position_m == pytest.approx(500.0)  # 3-4-5 triangle

    def test_rejects_unknown_mode(self, small_civ):
        with pytest.raises(ValueError):
            matched_errors(small_civ, small_civ, mode="fuzzy")

    def test_duplicate_member_rejected(self):
        original = FingerprintDataset([make_fp("a", [(0.0, 0.0, 0.0)])])
        published = FingerprintDataset(
            [
                make_fp("g1", [(0.0, 0.0, 0.0)], count=1, members=("a",)),
                make_fp("g2", [(0.0, 0.0, 0.0)], count=1, members=("a",)),
            ]
        )
        with pytest.raises(ValueError, match="multiple groups"):
            matched_errors(original, published)


class TestUtilityReport:
    def test_glove_report_fields(self, small_civ):
        result = glove(
            small_civ,
            GloveConfig(
                k=2,
                suppression=SuppressionConfig(
                    spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
                ),
            ),
        )
        report = utility_report(small_civ, result.dataset, "GLOVE", mode="cover")
        assert report.method == "GLOVE"
        assert report.created_samples == 0
        assert report.discarded_fingerprints == 0  # keep_at_least_one
        assert report.total_original_samples == small_civ.n_samples
        assert report.mean_position_error_m >= 0.0

    def test_deleted_fraction(self):
        original = FingerprintDataset(
            [make_fp("a", [(0.0, 0.0, 0.0), (50_000.0, 0.0, 500.0)])]
        )
        published = FingerprintDataset(
            [make_fp("g", [(0.0, 0.0, 0.0)], count=1, members=("a",))]
        )
        report = utility_report(original, published, "X")
        assert report.deleted_fraction == pytest.approx(0.5)
