"""Tests for the group-diversity audits."""

import numpy as np
import pytest

from repro.analysis.diversity import (
    group_span_diversity,
    location_diversity,
    meeting_disclosure,
)
from repro.core.config import GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.glove import glove
from tests.conftest import make_fp


class TestLocationDiversity:
    def test_precise_samples_show_low_uncertainty(self):
        ds = FingerprintDataset(
            [make_fp("g", [(0.0, 0.0, 0.0)], count=2, members=("a", "b"))]
        )
        cdf = location_diversity(ds)
        assert cdf.median == 100.0  # original granularity persists

    def test_weighted_by_group_count(self):
        ds = FingerprintDataset(
            [
                make_fp(
                    "big",
                    [(0.0, 0.0, 0.0, 5_000.0, 5_000.0, 60.0)],
                    count=9,
                    members=tuple(f"m{i}" for i in range(9)),
                ),
                make_fp("solo", [(0.0, 0.0, 0.0)]),
            ]
        )
        cdf = location_diversity(ds)
        assert cdf.median == 5_000.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            location_diversity(FingerprintDataset())


class TestMeetingDisclosure:
    def test_counts_tight_group_samples(self):
        ds = FingerprintDataset(
            [
                # Tight: 100 m x 1 min for 2 users.
                make_fp("g1", [(0.0, 0.0, 0.0)], count=2, members=("a", "b")),
                # Loose: 10 km x 8 h.
                make_fp(
                    "g2",
                    [(0.0, 0.0, 0.0, 10_000.0, 10_000.0, 480.0)],
                    count=2,
                    members=("c", "d"),
                ),
                # Single user: not a meeting at all.
                make_fp("solo", [(0.0, 0.0, 0.0)]),
            ]
        )
        report = meeting_disclosure(ds, spatial_bound_m=1_000.0, temporal_bound_min=60.0)
        assert report.n_group_samples == 2
        assert report.n_tight_meetings == 1
        assert report.tight_fraction == 0.5

    def test_no_groups_no_meetings(self, small_civ):
        report = meeting_disclosure(small_civ)
        assert report.n_group_samples == 0
        assert report.tight_fraction == 0.0

    def test_glove_output_discloses_some_meetings(self, small_civ):
        published = glove(small_civ, GloveConfig(k=2)).dataset
        report = meeting_disclosure(published)
        assert report.n_group_samples > 0
        # The audit exists because this is typically non-zero: that is
        # the k-anonymity limitation the paper acknowledges.
        assert 0.0 <= report.tight_fraction <= 1.0


class TestGroupSpanDiversity:
    def test_colocated_members_yield_zero_span(self):
        original = FingerprintDataset(
            [
                make_fp("a", [(0.0, 0.0, 0.0)]),
                make_fp("b", [(0.0, 0.0, 5.0)]),
            ]
        )
        published = FingerprintDataset(
            [
                make_fp(
                    "g",
                    [(0.0, 0.0, 0.0, 100.0, 100.0, 10.0)],
                    count=2,
                    members=("a", "b"),
                )
            ]
        )
        cdf = group_span_diversity(original, published)
        assert cdf.median == pytest.approx(0.0, abs=1e-9)

    def test_dispersed_members_yield_positive_span(self):
        original = FingerprintDataset(
            [
                make_fp("a", [(0.0, 0.0, 0.0)]),
                make_fp("b", [(4_000.0, 0.0, 5.0)]),
            ]
        )
        published = FingerprintDataset(
            [
                make_fp(
                    "g",
                    [(0.0, 0.0, 0.0, 4_100.0, 100.0, 10.0)],
                    count=2,
                    members=("a", "b"),
                )
            ]
        )
        cdf = group_span_diversity(original, published)
        assert cdf.median == pytest.approx(2_000.0, rel=0.01)

    def test_on_real_glove_output(self, small_civ):
        published = glove(small_civ, GloveConfig(k=2)).dataset
        cdf = group_span_diversity(small_civ, published)
        assert cdf.n > 0
        assert cdf.values.min() >= 0.0
