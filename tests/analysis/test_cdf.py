"""Tests for empirical CDFs."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCDF


class TestEvaluation:
    def test_step_function(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(99.0) == 1.0

    def test_array_evaluation(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        np.testing.assert_allclose(cdf(np.array([0.0, 1.0, 2.0])), [0.0, 0.5, 1.0])

    def test_ties(self):
        cdf = EmpiricalCDF([1.0, 1.0, 1.0, 2.0])
        assert cdf(1.0) == 0.75

    def test_monotone(self, rng):
        cdf = EmpiricalCDF(rng.normal(size=200))
        xs = np.linspace(-3, 3, 50)
        assert (np.diff(cdf(xs)) >= 0).all()


class TestQuantiles:
    def test_median(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.median == 2.0

    def test_quantile_inverse_consistency(self, rng):
        values = rng.uniform(0, 1, 101)
        cdf = EmpiricalCDF(values)
        for q in (0.1, 0.5, 0.9):
            x = cdf.quantile(q)
            assert cdf(x) >= q

    def test_extremes(self):
        cdf = EmpiricalCDF([5.0, 1.0, 3.0])
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 5.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).quantile(1.5)


class TestWeights:
    def test_weighted_median(self):
        cdf = EmpiricalCDF([1.0, 10.0], weights=[9.0, 1.0])
        assert cdf.median == 1.0
        assert cdf(1.0) == pytest.approx(0.9)

    def test_weighted_mean(self):
        cdf = EmpiricalCDF([1.0, 3.0], weights=[1.0, 3.0])
        assert cdf.mean == pytest.approx(2.5)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0, 2.0], weights=[1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0], weights=[-1.0])


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(np.zeros((2, 2)))

    def test_series(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        grid, values = cdf.series([0.0, 1.5, 3.0])
        np.testing.assert_allclose(values, [0.0, 0.5, 1.0])
