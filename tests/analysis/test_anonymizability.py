"""Tests for the Section 5 anonymizability analyses."""

import numpy as np
import pytest

from repro.analysis.anonymizability import (
    generalization_sweep,
    kgap_cdf,
    kgap_curves,
    tail_weight_analysis,
    temporal_ratio_cdf,
)
from repro.baselines.generalization import GeneralizationLevel


class TestKGapCDF:
    def test_cdf_and_result_consistent(self, small_civ):
        cdf, result = kgap_cdf(small_civ, k=2)
        assert cdf.n == len(small_civ)
        # The CDF median is the generalized inverse at 0.5 (an order
        # statistic), not numpy's midpoint-averaging median.
        expected = float(np.quantile(result.gaps, 0.5, method="inverted_cdf"))
        assert cdf.median == pytest.approx(expected)

    def test_no_anonymous_users_at_origin(self, small_civ):
        cdf, _ = kgap_cdf(small_civ, k=2)
        assert cdf(0.0) == 0.0  # the paper's Fig. 3a headline


class TestKGapCurves:
    def test_curves_shift_right_with_k(self, small_civ):
        curves = kgap_curves(small_civ, ks=(2, 5, 10))
        assert curves[2].median <= curves[5].median <= curves[10].median

    def test_sublinear_growth(self, small_civ):
        # Fig. 3b: gap grows far slower than k itself.
        curves = kgap_curves(small_civ, ks=(2, 10))
        growth = curves[10].median / curves[2].median
        assert growth < 5.0  # k grew 5x

    def test_rejects_empty_ks(self, small_civ):
        with pytest.raises(ValueError):
            kgap_curves(small_civ, ks=())


class TestGeneralizationSweep:
    def test_coarser_levels_do_not_hurt(self, small_civ):
        levels = (
            GeneralizationLevel(100.0, 1.0),
            GeneralizationLevel(20_000.0, 480.0),
        )
        sweep = generalization_sweep(small_civ, levels, k=2)
        fine = sweep[levels[0]]
        coarse = sweep[levels[1]]
        # Coarse generalization anonymizes at least as many users.
        assert coarse(0.0) >= fine(0.0)

    def test_original_level_matches_raw_kgap(self, small_civ):
        level = GeneralizationLevel(100.0, 1.0)
        sweep = generalization_sweep(small_civ, (level,), k=2)
        raw, _ = kgap_cdf(small_civ, k=2)
        # At the original granularity the sweep is the plain k-gap CDF.
        assert sweep[level].median == pytest.approx(raw.median, rel=1e-6)

    def test_even_coarsest_leaves_most_users_unique(self, small_civ):
        # The paper's Fig. 4 finding, scale-adjusted: a majority stays
        # non-anonymous even at 20 km / 8 h.
        level = GeneralizationLevel(20_000.0, 480.0)
        sweep = generalization_sweep(small_civ, (level,), k=2)
        assert sweep[level](0.0) < 0.6


class TestTailWeight:
    def test_keys_and_shapes(self, small_civ):
        twi = tail_weight_analysis(small_civ, k=2)
        assert set(twi) == {"delta", "spatial", "temporal"}
        for values in twi.values():
            assert values.shape == (len(small_civ),)

    def test_temporal_heavier_than_spatial(self, small_civ):
        # The paper's Fig. 5a finding.
        twi = tail_weight_analysis(small_civ, k=2)
        assert np.median(twi["temporal"]) > np.median(twi["spatial"])


class TestTemporalRatio:
    def test_ratio_in_unit_interval(self, small_civ):
        cdf = temporal_ratio_cdf(small_civ, k=2)
        assert cdf.values.min() >= 0.0
        assert cdf.values.max() <= 1.0

    def test_temporal_dominates_for_most_users(self, small_civ):
        # The paper's Fig. 5b finding: the temporal stretch exceeds the
        # spatial one for the large majority of fingerprints (~95% at
        # 82k users).  At this 40-user fixture the spatial stretches
        # are inflated by the thin crowd (the Fig. 11 size effect), so
        # only a majority is asserted; the fig5 benchmark checks >60%
        # at benchmark scale.
        cdf = temporal_ratio_cdf(small_civ, k=2)
        assert 1.0 - cdf(0.5) >= 0.5

    def test_result_reuse(self, small_civ):
        from repro.core.kgap import kgap

        result = kgap(small_civ, k=2)
        fresh = temporal_ratio_cdf(small_civ, k=2)
        reused = temporal_ratio_cdf(small_civ, k=2, result=result)
        np.testing.assert_allclose(fresh.values, reused.values)
