"""Tests for (eps, delta)-sparsity."""

import numpy as np
import pytest

from repro.analysis.sparsity import eps_delta_sparsity
from repro.core.pairwise import pairwise_matrix


class TestSparsity:
    def test_fraction_within_radius(self):
        mat = np.array(
            [
                [np.inf, 0.1, 0.9],
                [0.1, np.inf, 0.8],
                [0.9, 0.8, np.inf],
            ]
        )
        assert eps_delta_sparsity(mat, 0.2) == pytest.approx(2 / 3)
        assert eps_delta_sparsity(mat, 0.05) == 0.0
        assert eps_delta_sparsity(mat, 1.0) == 1.0

    def test_monotone_in_eps(self, small_civ):
        mat = pairwise_matrix(list(small_civ))
        deltas = [eps_delta_sparsity(mat, eps) for eps in (0.01, 0.1, 0.3, 1.0)]
        assert all(a <= b for a, b in zip(deltas, deltas[1:]))

    def test_rejects_negative_eps(self):
        with pytest.raises(ValueError):
            eps_delta_sparsity(np.full((2, 2), np.inf), -0.1)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            eps_delta_sparsity(np.zeros((2, 3)), 0.1)

    def test_cdr_data_is_sparse_at_small_radius(self, small_civ):
        # Ties back to the paper's uniqueness premise: at small eps no
        # user has a neighbour.
        mat = pairwise_matrix(list(small_civ))
        assert eps_delta_sparsity(mat, 1e-6) == 0.0
