"""Property-based tests for dataset operations and suppression."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import NCOLS, DT, DX, DY, T, X, Y
from repro.core.suppression import suppress_dataset, suppression_mask


@st.composite
def datasets(draw, min_users=1, max_users=8):
    n = draw(st.integers(min_value=min_users, max_value=max_users))
    fps = []
    for i in range(n):
        m = draw(st.integers(min_value=1, max_value=6))
        rows = np.empty((m, NCOLS))
        rows[:, X] = draw(
            st.lists(st.floats(0, 1e5, allow_nan=False), min_size=m, max_size=m)
        )
        rows[:, DX] = draw(
            st.lists(st.floats(1, 5e4, allow_nan=False), min_size=m, max_size=m)
        )
        rows[:, Y] = rows[:, X][::-1].copy()
        rows[:, DY] = rows[:, DX][::-1].copy()
        rows[:, T] = draw(
            st.lists(st.floats(0, 1e4, allow_nan=False), min_size=m, max_size=m)
        )
        rows[:, DT] = draw(
            st.lists(st.floats(1, 600, allow_nan=False), min_size=m, max_size=m)
        )
        fps.append(Fingerprint(f"u{i}", rows))
    return FingerprintDataset(fps, name="hyp")


class TestSuppressionProperties:
    @given(
        datasets(),
        st.floats(min_value=100, max_value=1e5),
        st.floats(min_value=1, max_value=600),
    )
    @settings(max_examples=60, deadline=None)
    def test_survivors_respect_thresholds(self, ds, thr_s, thr_t):
        cfg = SuppressionConfig(
            spatial_threshold_m=thr_s,
            temporal_threshold_min=thr_t,
            keep_at_least_one=False,
        )
        out, stats = suppress_dataset(ds, cfg)
        for fp in out:
            assert (np.maximum(fp.data[:, DX], fp.data[:, DY]) <= thr_s).all()
            assert (fp.data[:, DT] <= thr_t).all()
        assert stats.discarded_samples + out.n_samples == ds.n_samples

    @given(datasets(), st.floats(min_value=100, max_value=1e5))
    @settings(max_examples=60, deadline=None)
    def test_keep_at_least_one_never_drops_fingerprints(self, ds, thr_s):
        cfg = SuppressionConfig(spatial_threshold_m=thr_s, keep_at_least_one=True)
        out, stats = suppress_dataset(ds, cfg)
        assert len(out) == len(ds)
        assert stats.discarded_fingerprints == 0

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_looser_threshold_keeps_more(self, ds):
        tight, _ = suppress_dataset(
            ds, SuppressionConfig(spatial_threshold_m=1_000.0, keep_at_least_one=False)
        )
        loose, _ = suppress_dataset(
            ds, SuppressionConfig(spatial_threshold_m=50_000.0, keep_at_least_one=False)
        )
        assert loose.n_samples >= tight.n_samples

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_mask_matches_dataset_filter(self, ds):
        cfg = SuppressionConfig(spatial_threshold_m=5_000.0, keep_at_least_one=False)
        out, _ = suppress_dataset(ds, cfg)
        expected = sum(int(suppression_mask(fp.data, cfg).sum()) for fp in ds)
        assert out.n_samples == expected


class TestSubsettingProperties:
    @given(datasets(min_users=2), st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_sample_users_subset(self, ds, fraction):
        sub = ds.sample_users(fraction, np.random.default_rng(0))
        assert set(sub.uids) <= set(ds.uids)
        assert 1 <= len(sub) <= len(ds)

    @given(datasets(), st.floats(min_value=0.01, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_restrict_timespan_bounds(self, ds, days):
        t0 = ds.time_extent()[0]
        sub = ds.restrict_timespan(days)
        horizon = t0 + days * 24 * 60
        for fp in sub:
            assert (fp.data[:, T] >= t0).all()
            assert (fp.data[:, T] < horizon).all()

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_anonymity_histogram_accounts_everyone(self, ds):
        hist = ds.anonymity_histogram()
        assert sum(hist.values()) == ds.n_users
