"""Property-based tests for the end-to-end GLOVE guarantee."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.glove import glove
from repro.core.merge import covers
from repro.core.sample import NCOLS, DT, DX, DY, T, X, Y


@st.composite
def small_datasets(draw):
    """Random datasets of 2..10 users with 1..5 samples each."""
    n = draw(st.integers(min_value=2, max_value=10))
    fps = []
    for i in range(n):
        m = draw(st.integers(min_value=1, max_value=5))
        rows = np.empty((m, NCOLS))
        for r in range(m):
            rows[r, X] = draw(st.floats(min_value=0, max_value=5e4, allow_nan=False))
            rows[r, DX] = 100.0
            rows[r, Y] = draw(st.floats(min_value=0, max_value=5e4, allow_nan=False))
            rows[r, DY] = 100.0
            rows[r, T] = draw(st.floats(min_value=0, max_value=3e3, allow_nan=False))
            rows[r, DT] = 1.0
        fps.append(Fingerprint(f"u{i}", rows))
    return FingerprintDataset(fps, name="hyp")


class TestGloveInvariants:
    @given(small_datasets(), st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_k_anonymity_holds(self, dataset, k):
        if dataset.n_users < k:
            return
        result = glove(dataset, GloveConfig(k=k))
        assert result.dataset.is_k_anonymous(k)

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_all_users_survive(self, dataset):
        result = glove(dataset, GloveConfig(k=2))
        members = sorted(m for fp in result.dataset for m in fp.members)
        assert members == sorted(dataset.uids)

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_truthfulness(self, dataset):
        result = glove(dataset, GloveConfig(k=2))
        index = {m: fp for fp in result.dataset for m in fp.members}
        for fp in dataset:
            assert covers(index[fp.uid].data, fp.data)

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_group_sizes_bounded(self, dataset):
        # Greedy merging stops growing a group once it reaches k, so no
        # group can exceed 2k-1 members before the leftover fold-in;
        # with the leftover it is at most 3k-2.
        k = 2
        result = glove(dataset, GloveConfig(k=k))
        assert all(fp.count <= 3 * k - 2 for fp in result.dataset)
