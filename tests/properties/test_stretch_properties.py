"""Property-based tests for the stretch-effort metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StretchConfig
from repro.core.sample import Sample
from repro.core.stretch import (
    fingerprint_stretch,
    phi_star_sigma,
    phi_star_tau,
    sample_stretch,
    stretch_matrix,
)

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
extents = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
counts = st.integers(min_value=1, max_value=50)


@st.composite
def samples(draw):
    return Sample(
        x=draw(coords),
        y=draw(coords),
        t=draw(times),
        dx=draw(extents),
        dy=draw(extents),
        dt=draw(durations),
    )


@st.composite
def sample_arrays(draw, max_m=6):
    m = draw(st.integers(min_value=1, max_value=max_m))
    rows = [draw(samples()).to_row() for _ in range(m)]
    return np.vstack(rows)


class TestSampleStretchProperties:
    @given(samples(), samples(), counts, counts)
    @settings(max_examples=200, deadline=None)
    def test_bounded_unit_interval(self, a, b, na, nb):
        d = sample_stretch(a, b, na, nb)
        assert 0.0 <= d <= 1.0 + 1e-12

    @given(samples())
    @settings(max_examples=50, deadline=None)
    def test_identity_of_indiscernibles(self, a):
        assert sample_stretch(a, a) == pytest.approx(0.0, abs=1e-9)

    @given(samples(), samples())
    @settings(max_examples=200, deadline=None)
    def test_symmetry_with_equal_counts(self, a, b):
        assert sample_stretch(a, b) == pytest.approx(sample_stretch(b, a), abs=1e-9)

    @given(samples(), samples(), counts, counts)
    @settings(max_examples=200, deadline=None)
    def test_symmetric_in_paired_counts(self, a, b, na, nb):
        # delta_ab with (na, nb) equals delta_ba with (nb, na).
        assert sample_stretch(a, b, na, nb) == pytest.approx(
            sample_stretch(b, a, nb, na), abs=1e-12
        )

    @given(samples(), samples())
    @settings(max_examples=200, deadline=None)
    def test_raw_stretch_non_negative(self, a, b):
        # The scalar reference may dip to -1e-15 via cancellation; the
        # saturating functions clamp it away.
        assert phi_star_sigma(a, b) >= -1e-9
        assert phi_star_tau(a, b) >= -1e-9

    @given(samples(), samples())
    @settings(max_examples=100, deadline=None)
    def test_covering_sample_costs_nothing_for_covered(self, a, b):
        # If a's box and interval contain b's, then the merge of the two
        # equals a itself; the b-side stretch (weighted fully toward b)
        # is zero only when weighting ignores a.  Check the directional
        # terms instead: left/right stretches of a covering sample are 0.
        if a.covers(b):
            # b needs stretching, a does not: with n_a -> inf the
            # weighted stretch approaches a's own (zero) stretch.
            tiny = sample_stretch(a, b, n_a=10**9, n_b=1)
            assert tiny == pytest.approx(0.0, abs=1e-6)


class TestMatrixConsistency:
    @given(sample_arrays(), sample_arrays(), counts, counts)
    @settings(max_examples=50, deadline=None)
    def test_matrix_matches_scalar(self, a, b, na, nb):
        mat = stretch_matrix(a, b, na, nb)
        i = len(a) // 2
        j = len(b) // 2
        expected = sample_stretch(
            Sample.from_row(a[i]), Sample.from_row(b[j]), na, nb
        )
        assert mat[i, j] == pytest.approx(expected, abs=1e-12)


class TestFingerprintStretchProperties:
    @given(sample_arrays(), sample_arrays(), counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, a, b, na, nb):
        d = fingerprint_stretch(a, b, na, nb)
        assert 0.0 <= d <= 1.0 + 1e-12

    @given(sample_arrays())
    @settings(max_examples=50, deadline=None)
    def test_self_stretch_zero(self, a):
        assert fingerprint_stretch(a, a) == pytest.approx(0.0, abs=1e-12)

    @given(sample_arrays(), sample_arrays())
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert fingerprint_stretch(a, b) == pytest.approx(
            fingerprint_stretch(b, a), abs=1e-9
        )
