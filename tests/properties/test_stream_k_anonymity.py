"""Property tests: streaming GLOVE under the k-anonymity harness.

Every window the streaming tier emits is a separate publication and
must satisfy the same k-anonymity-by-design invariants as a batch run
(:func:`tests.properties.test_k_anonymity.assert_k_anonymous`):
group sizes of at least ``k``, member lists consistent with counts,
and no subscriber claimed twice *within a window* — including windows
holding carried-over groups, absorbed members, and the end-of-stream
residual repair.  Event arrival order is hypothesis-controlled: any
permutation of the feed must preserve the invariants (windows may
differ — late events are redirected — but every publication stays
k-anonymous and the whole population stays covered).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GloveConfig
from repro.core.sample import T
from repro.stream.driver import stream_glove
from repro.stream.feed import ReplayFeed, replay_dataset
from repro.stream.windows import StreamConfig

from tests.properties.test_k_anonymity import assert_k_anonymous, populations


@st.composite
def distinct_time_populations(draw, max_users=10):
    """Populations whose sample times are unique per user.

    Byte-level order-independence claims need this: with duplicated
    start times the stable time-sort preserves *arrival* order inside a
    fingerprint, so two arrival orders could legitimately publish
    differently shaped (equally valid) generalizations.
    """
    from repro.core.dataset import FingerprintDataset
    from repro.core.fingerprint import Fingerprint
    from repro.core.sample import DT, DX, DY, NCOLS, X, Y

    n = draw(st.integers(min_value=2, max_value=max_users))
    fps = []
    for i in range(n):
        times = draw(
            st.lists(
                st.integers(min_value=0, max_value=4000),
                min_size=1,
                max_size=5,
                unique=True,
            )
        )
        rows = np.empty((len(times), NCOLS))
        for r, t in enumerate(times):
            rows[r, X] = draw(st.floats(min_value=0, max_value=6e4, allow_nan=False))
            rows[r, DX] = 100.0
            rows[r, Y] = draw(st.floats(min_value=0, max_value=6e4, allow_nan=False))
            rows[r, DY] = 100.0
            rows[r, T] = float(t)
            rows[r, DT] = 1.0
        fps.append(Fingerprint(f"u{i}", rows))
    return FingerprintDataset(fps, name="hyp-distinct")


def _published(result):
    return {m for w in result.emitted for fp in w.dataset for m in fp.members}


def _permuted_feed(dataset, order_seed):
    """The dataset's feed under a hypothesis-chosen arrival permutation."""
    feed = replay_dataset(dataset)
    rng = np.random.default_rng(order_seed)
    order = rng.permutation(len(feed))
    return ReplayFeed([feed.uids[int(i)] for i in order], feed.rows[order], name="perm")


@st.composite
def stream_configs(draw):
    """Random windowing configurations (always carry-over: the general case)."""
    window = draw(st.floats(min_value=50.0, max_value=5000.0, allow_nan=False))
    tumbling = draw(st.booleans())
    slide = None if tumbling else window / draw(st.integers(min_value=2, max_value=4))
    lag = draw(st.sampled_from([0.0, 100.0, 1e6]))
    return StreamConfig(window_min=window, slide_min=slide, max_lag_min=lag)


class TestStreamInvariants:
    """Per-window k-anonymity over randomized populations and windows."""

    @given(populations(), st.integers(min_value=2, max_value=3), stream_configs())
    @settings(max_examples=30, deadline=None)
    def test_every_window_k_anonymous_in_order(self, dataset, k, stream_cfg):
        if dataset.n_users < k:
            return
        result = stream_glove(dataset, GloveConfig(k=k), stream_cfg)
        for window in result.emitted:
            assert_k_anonymous(window.dataset, k)
        assert _published(result) == set(dataset.uids)

    @given(
        populations(),
        st.integers(min_value=2, max_value=3),
        stream_configs(),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_window_k_anonymous_under_arbitrary_orderings(
        self, dataset, k, stream_cfg, order_seed
    ):
        if dataset.n_users < k:
            return
        feed = _permuted_feed(dataset, order_seed)
        result = stream_glove(dataset, GloveConfig(k=k), stream_cfg, feed=feed)
        for window in result.emitted:
            assert_k_anonymous(window.dataset, k)
        assert _published(result) == set(dataset.uids)
        assert result.stats.n_events == len(feed)

    @given(populations(max_users=8), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_carried_windows_under_high_k(self, dataset, order_seed):
        """Tiny windows + high k force deferral/carry/residual paths."""
        k = max(2, dataset.n_users - 1)
        feed = _permuted_feed(dataset, order_seed)
        result = stream_glove(
            dataset,
            GloveConfig(k=k),
            StreamConfig(window_min=60.0, max_lag_min=0.0),
            feed=feed,
        )
        for window in result.emitted:
            assert_k_anonymous(window.dataset, k)
        assert _published(result) == set(dataset.uids)

    @given(distinct_time_populations())
    @settings(max_examples=20, deadline=None)
    def test_total_order_independence_of_window_contents(self, dataset):
        """With an unbounded watermark, arrival order cannot change the
        per-window populations: the same events land in the same
        windows regardless of interleaving."""
        if dataset.n_users < 2:
            return
        stream_cfg = StreamConfig(window_min=500.0, max_lag_min=1e9)
        in_order = stream_glove(dataset, GloveConfig(k=2), stream_cfg)
        feed = replay_dataset(dataset)
        # Reverse arrival entirely — the adversarial ordering — but
        # pin the first-arrived event so the window origin (defined by
        # arrival) is unchanged.
        t_min = feed.rows[:, T].min()
        first = int(np.flatnonzero(feed.rows[:, T] == t_min)[0])
        order = [first] + [i for i in range(len(feed) - 1, -1, -1) if i != first]
        reversed_feed = ReplayFeed(
            [feed.uids[i] for i in order], feed.rows[order], name="rev"
        )
        swapped = stream_glove(
            dataset, GloveConfig(k=2), stream_cfg, feed=reversed_feed
        )
        assert len(in_order.windows) == len(swapped.windows)
        for a, b in zip(in_order.emitted, swapped.emitted):
            assert a.index == b.index
            assert {fp.uid for fp in a.dataset} == {fp.uid for fp in b.dataset}
