"""Property-based tests for the W4M substrate."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines.w4m_cluster import chunk_indices, greedy_k_clusters
from repro.baselines.w4m_distance import PointTrajectory, lst_distance


@st.composite
def trajectories(draw, uid="t"):
    m = draw(st.integers(min_value=2, max_value=12))
    t = np.sort(
        np.array(
            draw(
                st.lists(
                    st.floats(0, 1e4, allow_nan=False),
                    min_size=m,
                    max_size=m,
                    unique=True,
                )
            )
        )
    )
    x = np.array(draw(st.lists(st.floats(0, 1e5, allow_nan=False), min_size=m, max_size=m)))
    y = np.array(draw(st.lists(st.floats(0, 1e5, allow_nan=False), min_size=m, max_size=m)))
    return PointTrajectory(uid, t, x, y)


class TestLSTProperties:
    @given(trajectories("a"), trajectories("b"))
    @settings(max_examples=100, deadline=None)
    def test_non_negative(self, a, b):
        assert lst_distance(a, b) >= 0.0

    @given(trajectories("a"), trajectories("b"))
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        d1 = lst_distance(a, b)
        d2 = lst_distance(b, a)
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-6)

    @given(trajectories("a"))
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        assert lst_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    @given(trajectories("a"), st.floats(min_value=-1e4, max_value=1e4))
    @settings(max_examples=75, deadline=None)
    def test_translation_distance(self, a, offset):
        # Shifting a trajectory spatially by a constant vector yields
        # exactly that displacement as LST distance.
        b = PointTrajectory("b", a.t, a.x + offset, a.y)
        assert lst_distance(a, b) == pytest.approx(abs(offset), rel=1e-9, abs=1e-6)

    @given(trajectories("a"))
    @settings(max_examples=50, deadline=None)
    def test_interpolation_stays_in_bbox(self, a):
        times = np.linspace(a.t_start - 10, a.t_end + 10, 30)
        pos = a.positions_at(times)
        assert (pos[:, 0] >= a.x.min() - 1e-9).all()
        assert (pos[:, 0] <= a.x.max() + 1e-9).all()
        assert (pos[:, 1] >= a.y.min() - 1e-9).all()
        assert (pos[:, 1] <= a.y.max() + 1e-9).all()


class TestClusteringProperties:
    @given(
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=2, max_value=4),
        st.floats(min_value=0.0, max_value=0.3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=75, deadline=None)
    def test_partition_invariants(self, n, k, trash, seed):
        rng = np.random.default_rng(seed)
        mat = rng.uniform(1, 100, (n, n))
        mat = (mat + mat.T) / 2
        np.fill_diagonal(mat, np.inf)
        outcome = greedy_k_clusters(mat, k=k, trash_fraction=trash)
        assigned = (
            np.concatenate(outcome.clusters) if outcome.clusters else np.empty(0, int)
        )
        all_ids = np.concatenate([assigned, outcome.trashed])
        assert sorted(all_ids.tolist()) == list(range(n))
        for cluster in outcome.clusters:
            assert cluster.size >= k

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=2, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_chunks_cover_range(self, n, size):
        chunks = chunk_indices(n, size)
        np.testing.assert_array_equal(np.concatenate(chunks), np.arange(n))
