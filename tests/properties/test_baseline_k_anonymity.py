"""Baseline anonymizers under the shared k-anonymity harness.

W4M-LC and NWA promise ``(k, delta)``-anonymity: after trashing, every
published trajectory travels inside a delta-cylinder shared with at
least ``k - 1`` others.  The group-size half of that promise is exactly
the invariant :func:`tests.properties.test_k_anonymity.assert_k_anonymous`
checks for GLOVE and the streaming tier, so the same harness audits the
baselines' cluster bookkeeping (``stats.group_members``, surfaced as
``AnonymizationResult.groups``): post-trashing clusters of size >= k,
no subscriber claimed twice, and the clusters plus the trash partition
the input population.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.nwa import NWAConfig, nwa
from repro.baselines.w4m import W4MConfig, w4m_lc
from repro.core.fingerprint import Fingerprint
from tests.properties.test_k_anonymity import assert_k_anonymous, populations

#: Cheap W4M settings for hypothesis examples: a coarse LST
#: discretization and a small time-shift search keep each example fast
#: without touching the clustering/trashing logic under test.
_FAST_W4M = dict(sync_points=8, max_time_shift_min=120.0, time_shift_step_min=60.0)


def _group_fingerprints(groups):
    """Present uid-tuple groups to the harness as group fingerprints."""
    row = np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 1.0]])
    return [
        Fingerprint(f"cluster{i}", row, count=len(members), members=tuple(members))
        for i, members in enumerate(groups)
    ]


def _assert_partition(dataset, result, k):
    """The shared audit: group sizes, double-claims, trash accounting."""
    covered = assert_k_anonymous(_group_fingerprints(result.stats.group_members), k)
    assert covered <= set(dataset.uids)
    assert len(covered) == dataset.n_users - result.stats.discarded_fingerprints
    # The published dataset holds exactly the clustered subscribers.
    assert set(result.dataset.uids) == covered


class TestW4MInvariants:
    @given(populations(max_users=10), st.integers(min_value=2, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_post_trashing_groups_at_least_k(self, dataset, k):
        result = w4m_lc(dataset, W4MConfig(k=k, **_FAST_W4M))
        _assert_partition(dataset, result, k)

    @given(populations(max_users=10))
    @settings(max_examples=15, deadline=None)
    def test_chunking_preserves_the_invariant(self, dataset):
        result = w4m_lc(dataset, W4MConfig(k=2, chunk_size=4, **_FAST_W4M))
        _assert_partition(dataset, result, 2)


class TestNWAInvariants:
    @given(populations(max_users=10), st.integers(min_value=2, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_post_trashing_groups_at_least_k(self, dataset, k):
        result = nwa(dataset, NWAConfig(k=k, period_min=240.0))
        _assert_partition(dataset, result, k)

    @given(populations(max_users=8))
    @settings(max_examples=15, deadline=None)
    def test_trashing_never_invents_subscribers(self, dataset):
        result = nwa(dataset, NWAConfig(k=2, trash_fraction=0.4, period_min=240.0))
        claimed = [uid for g in result.stats.group_members for uid in g]
        assert len(claimed) == len(set(claimed))
        assert set(claimed) <= set(dataset.uids)
