"""The k-anonymity invariant harness (paper Alg. 1, DESIGN.md D2/D5).

The one guarantee that must survive every scaling tier — unsharded
GLOVE, the sharded backend at any shard count, any compute substrate —
is *k-anonymity by design*: every published group hides at least ``k``
subscribers, every non-suppressed input subscriber lands in exactly one
group, and generalization only ever coarsens (a merged fingerprint
never has more samples than its shorter parent, the SlotStore ``m_max``
invariant).

:func:`assert_k_anonymous` is the reusable checker enforcing the first
invariant; the benchmark suite loads it by file path to audit the
large-n sharded scenario (``benchmarks/conftest.py``), so it must stay
importable without pytest fixtures.  The rest of the module
property-tests all three invariants over randomized populations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ComputeConfig, GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.glove import glove
from repro.core.sample import DT, DX, DY, NCOLS, T, X, Y
from repro.core.shard import sharded_glove


def assert_k_anonymous(groups, k):
    """Assert the k-anonymity-by-design invariants of a GLOVE output.

    ``groups`` is any iterable of :class:`Fingerprint` (a
    :class:`FingerprintDataset` works).  Checks that every group hides
    at least ``k`` subscribers, that its member list is consistent with
    its count, and that no subscriber is claimed by two groups.
    Returns the set of covered member uids so callers can additionally
    check coverage against the input population.
    """
    seen = {}
    for fp in groups:
        assert fp.count >= k, f"group {fp.uid!r} hides {fp.count} < k={k} subscribers"
        assert len(fp.members) == fp.count, (
            f"group {fp.uid!r}: count={fp.count} but {len(fp.members)} members"
        )
        for member in fp.members:
            assert member not in seen, (
                f"subscriber {member!r} claimed by groups {seen[member]!r} and {fp.uid!r}"
            )
            seen[member] = fp.uid
    return set(seen)


@st.composite
def populations(draw, max_users=12):
    """Random single-subscriber populations of 2..``max_users`` fingerprints."""
    n = draw(st.integers(min_value=2, max_value=max_users))
    fps = []
    for i in range(n):
        m = draw(st.integers(min_value=1, max_value=5))
        rows = np.empty((m, NCOLS))
        for r in range(m):
            rows[r, X] = draw(st.floats(min_value=0, max_value=6e4, allow_nan=False))
            rows[r, DX] = 100.0
            rows[r, Y] = draw(st.floats(min_value=0, max_value=6e4, allow_nan=False))
            rows[r, DY] = 100.0
            rows[r, T] = draw(st.floats(min_value=0, max_value=4e3, allow_nan=False))
            rows[r, DT] = 1.0
        fps.append(Fingerprint(f"u{i}", rows))
    return FingerprintDataset(fps, name="hyp")


def _input_lengths(dataset):
    return {fp.uid: fp.m for fp in dataset}


def _sharded_compute(shards, strategy="time"):
    # workers=1 keeps hypothesis examples off the process pool.
    return ComputeConfig(backend="sharded", shards=shards, workers=1, shard_strategy=strategy)


class TestChecker:
    def test_accepts_valid_groups(self):
        groups = [
            Fingerprint("g0", np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 1.0]]),
                        count=2, members=("a", "b")),
            Fingerprint("g1", np.array([[5.0, 100.0, 5.0, 100.0, 5.0, 1.0]]),
                        count=3, members=("c", "d", "e")),
        ]
        assert assert_k_anonymous(groups, 2) == {"a", "b", "c", "d", "e"}

    def test_rejects_undersized_group(self):
        groups = [Fingerprint("solo", np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 1.0]]))]
        try:
            assert_k_anonymous(groups, 2)
        except AssertionError as exc:
            assert "hides 1 < k=2" in str(exc)
        else:
            raise AssertionError("undersized group was not rejected")

    def test_rejects_double_counted_subscriber(self):
        groups = [
            Fingerprint("g0", np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 1.0]]),
                        count=2, members=("a", "b")),
            Fingerprint("g1", np.array([[5.0, 100.0, 5.0, 100.0, 5.0, 1.0]]),
                        count=2, members=("b", "c")),
        ]
        try:
            assert_k_anonymous(groups, 2)
        except AssertionError as exc:
            assert "claimed by" in str(exc)
        else:
            raise AssertionError("double-counted subscriber was not rejected")


class TestGloveInvariants:
    """Unsharded GLOVE output under the harness."""

    @given(populations(), st.integers(min_value=2, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_k_anonymous_and_covers_exactly_once(self, dataset, k):
        if dataset.n_users < k:
            return
        result = glove(dataset, GloveConfig(k=k), ComputeConfig(backend="numpy"))
        covered = assert_k_anonymous(result.dataset, k)
        assert covered == set(dataset.uids)

    @given(populations())
    @settings(max_examples=30, deadline=None)
    def test_merged_never_longer_than_shorter_parent(self, dataset):
        lengths = _input_lengths(dataset)
        result = glove(dataset, GloveConfig(k=2), ComputeConfig(backend="numpy"))
        for fp in result.dataset:
            # Inductively: every merge is capped by its shorter parent,
            # so a group never exceeds its shortest member's input length.
            assert fp.m <= min(lengths[m] for m in fp.members)


class TestShardedInvariants:
    """The same guarantees at every shard count and strategy."""

    @given(
        populations(),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=4),
        st.sampled_from(["time", "hash"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_k_anonymous_and_covers_exactly_once(self, dataset, k, shards, strategy):
        if dataset.n_users < k:
            return
        result = sharded_glove(
            dataset, GloveConfig(k=k), _sharded_compute(shards, strategy)
        )
        covered = assert_k_anonymous(result.dataset, k)
        assert covered == set(dataset.uids)
        assert result.stats.shards_used >= 1
        assert result.dataset.is_k_anonymous(k)

    @given(populations(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_merged_never_longer_than_shorter_parent(self, dataset, shards):
        lengths = _input_lengths(dataset)
        result = sharded_glove(dataset, GloveConfig(k=2), _sharded_compute(shards))
        for fp in result.dataset:
            assert fp.m <= min(lengths[m] for m in fp.members)

    def test_suppressed_output_still_k_anonymous(self, small_civ):
        from repro.core.config import SuppressionConfig

        config = GloveConfig(
            k=2,
            suppression=SuppressionConfig(
                spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
            ),
        )
        result = sharded_glove(small_civ, config, _sharded_compute(3))
        covered = assert_k_anonymous(result.dataset, 2)
        # Suppression can discard whole fingerprints but never invents
        # subscribers: the covered set stays within the input population.
        assert covered <= set(small_civ.uids)
