"""Property-based tests for merging and reshaping invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import Fingerprint
from repro.core.merge import covers, generalize_rows, merge_fingerprints
from repro.core.reshape import has_temporal_overlap, reshape_sample_array
from repro.core.sample import DT, DX, DY, NCOLS, T, X, Y


@st.composite
def sample_rows(draw, m_min=1, m_max=8):
    m = draw(st.integers(min_value=m_min, max_value=m_max))
    rows = np.empty((m, NCOLS))
    for i in range(m):
        rows[i, X] = draw(st.floats(min_value=0, max_value=1e5, allow_nan=False))
        rows[i, DX] = draw(st.floats(min_value=1, max_value=1e4, allow_nan=False))
        rows[i, Y] = draw(st.floats(min_value=0, max_value=1e5, allow_nan=False))
        rows[i, DY] = draw(st.floats(min_value=1, max_value=1e4, allow_nan=False))
        rows[i, T] = draw(st.floats(min_value=0, max_value=1e4, allow_nan=False))
        rows[i, DT] = draw(st.floats(min_value=1, max_value=500, allow_nan=False))
    return rows


@st.composite
def fingerprints(draw, uid="a"):
    return Fingerprint(uid, draw(sample_rows()))


class TestGeneralizeRowsProperties:
    @given(sample_rows())
    @settings(max_examples=100, deadline=None)
    def test_generalization_covers_all_inputs(self, rows):
        out = generalize_rows(rows)[None, :]
        assert covers(out, rows)

    @given(sample_rows())
    @settings(max_examples=100, deadline=None)
    def test_generalization_is_tight(self, rows):
        # The union box is minimal: its edges touch some input sample.
        out = generalize_rows(rows)
        for low, ext in ((X, DX), (Y, DY), (T, DT)):
            assert out[low] == rows[:, low].min()
            assert out[low] + out[ext] == pytest.approx(
                (rows[:, low] + rows[:, ext]).max()
            )


class TestMergeProperties:
    @given(fingerprints("a"), fingerprints("b"))
    @settings(max_examples=75, deadline=None)
    def test_merge_covers_both_parents(self, a, b):
        merged = merge_fingerprints(a, b)
        assert covers(merged.data, a.data)
        assert covers(merged.data, b.data)

    @given(fingerprints("a"), fingerprints("b"))
    @settings(max_examples=75, deadline=None)
    def test_merge_length_bounded(self, a, b):
        merged = merge_fingerprints(a, b)
        assert 1 <= merged.m <= min(a.m, b.m)

    @given(fingerprints("a"), fingerprints("b"))
    @settings(max_examples=75, deadline=None)
    def test_merge_count_additive(self, a, b):
        assert merge_fingerprints(a, b).count == a.count + b.count

    @given(fingerprints("a"))
    @settings(max_examples=50, deadline=None)
    def test_self_merge_adds_no_information_loss_beyond_ties(self, a):
        # Merging a fingerprint with an identical copy never stretches
        # beyond the original's own union (ties may still coalesce
        # equidistant samples, so the trace can shrink but must cover).
        b = Fingerprint("b", a.data.copy())
        merged = merge_fingerprints(a, b)
        assert merged.m <= a.m
        assert covers(merged.data, a.data)


class TestReshapeProperties:
    @given(sample_rows(m_max=12))
    @settings(max_examples=100, deadline=None)
    def test_no_overlap_after_reshape(self, rows):
        out = reshape_sample_array(rows)
        assert not has_temporal_overlap(out)

    @given(sample_rows(m_max=12))
    @settings(max_examples=100, deadline=None)
    def test_reshape_covers_input(self, rows):
        out = reshape_sample_array(rows)
        assert covers(out, rows)

    @given(sample_rows(m_max=12))
    @settings(max_examples=100, deadline=None)
    def test_reshape_idempotent(self, rows):
        once = reshape_sample_array(rows)
        np.testing.assert_allclose(reshape_sample_array(once), once)

    @given(sample_rows(m_max=12))
    @settings(max_examples=100, deadline=None)
    def test_reshape_never_grows(self, rows):
        assert reshape_sample_array(rows).shape[0] <= rows.shape[0]
