"""Property-based tests for empirical CDFs and the TWI."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.twi import tail_weight_index

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
value_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=finite_floats,
)


class TestCDFProperties:
    @given(value_arrays)
    @settings(max_examples=100, deadline=None)
    def test_range_and_monotonicity(self, values):
        cdf = EmpiricalCDF(values)
        xs = np.linspace(values.min() - 1, values.max() + 1, 37)
        ys = cdf(xs)
        assert (ys >= 0).all() and (ys <= 1).all()
        assert (np.diff(ys) >= -1e-12).all()

    @given(value_arrays)
    @settings(max_examples=100, deadline=None)
    def test_limits(self, values):
        cdf = EmpiricalCDF(values)
        assert cdf(values.max()) == 1.0
        assert cdf(values.min() - 1.0) == 0.0

    @given(value_arrays, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_galois_connection(self, values, q):
        cdf = EmpiricalCDF(values)
        assert cdf(cdf.quantile(q)) >= q - 1e-12

    @given(value_arrays)
    @settings(max_examples=100, deadline=None)
    def test_mean_within_range(self, values):
        cdf = EmpiricalCDF(values)
        assert values.min() - 1e-6 <= cdf.mean <= values.max() + 1e-6


class TestTWIProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=4, max_value=300),
            elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_non_negative(self, values):
        assert tail_weight_index(values) >= 0.0

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=4, max_value=100),
            elements=st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
        ),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, values, scale):
        # Quantile interpolation loses scale-exactness when the body
        # spread Q75-Q50 is vanishingly small relative to the data
        # magnitude (catastrophic cancellation); the index is unstable
        # there by construction, so those draws are vacuously passed
        # (an early return rather than assume() — hypothesis array
        # fills make degenerate bodies common enough to trip the
        # filter-too-much health check otherwise).
        q50, q75 = np.quantile(values, [0.5, 0.75])
        if q75 - q50 <= 1e-6 * max(1.0, float(np.abs(values).max())):
            return
        t1 = tail_weight_index(values)
        t2 = tail_weight_index(values * scale)
        assert t1 == t2 or abs(t1 - t2) < 1e-6 * max(1.0, t1)
