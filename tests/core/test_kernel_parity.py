"""Parity and fallback tests for the compiled stretch-kernel tier.

The byte-identity policy (DESIGN.md D9) requires every kernel tier —
numba JIT, the system-cc binding, and the pure-Python twins — to return
bit-for-bit the NumPy reference's results.  The property tests below
drive both the *active* accelerated binding (whatever tier this
environment resolved) and the always-importable pure twins against
``repro.core.pairwise`` on arbitrary padded tensors: ragged lengths
(masked tails), count weights, and coordinate spreads that push the
saturating terms to their 0/1 edges.

The fallback tests run subprocesses with numba import-blocked and the
cc tier disabled (``REPRO_CC_KERNEL=0``) to prove the ``auto`` and
``compiled`` backends degrade exactly as documented when no accelerated
binding exists.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.config import StretchConfig
from repro.core.fingerprint import Fingerprint
from repro.core.pairwise import PaddedFingerprints, ProbeBatch, one_vs_all, pairwise_matrix
from repro.core.sample import Sample

# Wide value ranges on purpose: spatial spreads far beyond phi_sigma
# (20 km) and temporal gaps beyond phi_tau (480 min) exercise the
# saturated branch, tight clusters the near-zero clamp.
coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
extents = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def fingerprints(draw, uid, max_m=7):
    m = draw(st.integers(min_value=1, max_value=max_m))
    samples = [
        Sample(
            x=draw(coords),
            y=draw(coords),
            t=draw(times),
            dx=draw(extents),
            dy=draw(extents),
            dt=draw(durations),
        )
        for _ in range(m)
    ]
    count = draw(st.integers(min_value=1, max_value=50))
    members = [f"{uid}-{i}" for i in range(count)]
    return Fingerprint(uid, samples, count=count, members=members)


@st.composite
def collections(draw, min_n=2, max_n=6):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    return [draw(fingerprints(f"u{i}")) for i in range(n)]


def _config_args(config):
    return (
        config.w_sigma,
        config.w_tau,
        config.phi_max_sigma_m,
        config.phi_max_tau_min,
    )


BINDINGS = [("pure", kernels.one_vs_all_pure, kernels.pairwise_matrix_pure)]
if kernels.COMPILED_AVAILABLE:
    BINDINGS.append(
        (kernels.COMPILED_TIER, kernels.one_vs_all_arrays, kernels.pairwise_matrix_arrays)
    )


@pytest.mark.parametrize("tier,ova,pm", BINDINGS, ids=[b[0] for b in BINDINGS])
class TestKernelParity:
    @given(probe=fingerprints("probe"), fps=collections(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_one_vs_all_bitwise(self, tier, ova, pm, probe, fps, data):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(fps) - 1),
                min_size=1,
                max_size=len(fps),
                unique=True,
            )
        )
        targets = np.array(subset, dtype=np.int64)
        reference = one_vs_all(probe.data, probe.count, packed, config, indices=targets)
        got = ova(
            np.ascontiguousarray(probe.data),
            float(probe.count),
            packed.data,
            packed.lengths,
            packed.counts,
            targets,
            *_config_args(config),
        )
        # Bitwise, not approx: the compiled tiers replicate the NumPy
        # reference's operation order including pairwise summation.
        np.testing.assert_array_equal(got, reference)

    @given(fps=collections())
    @settings(max_examples=40, deadline=None)
    def test_pairwise_matrix_bitwise(self, tier, ova, pm, fps):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        reference = pairwise_matrix(fps, config)
        got = pm(packed.data, packed.lengths, packed.counts, *_config_args(config))
        np.testing.assert_array_equal(got, reference)

    def test_saturation_edges(self, tier, ova, pm):
        # One pair far beyond both saturation thresholds (delta == 1)
        # and one identical pair (delta == 0): the clamp edges must be
        # exact, not approximately so.
        near = Fingerprint(
            "a", [Sample(x=0.0, y=0.0, t=0.0)], count=3, members=["a0", "a1", "a2"]
        )
        far = Fingerprint("b", [Sample(x=1e8, y=1e8, t=1e7)], count=1)
        twin = Fingerprint(
            "c", [Sample(x=0.0, y=0.0, t=0.0)], count=2, members=["c0", "c1"]
        )
        packed = PaddedFingerprints([near, far, twin])
        config = StretchConfig()
        got = ova(
            np.ascontiguousarray(near.data),
            float(near.count),
            packed.data,
            packed.lengths,
            packed.counts,
            np.array([1, 2], dtype=np.int64),
            *_config_args(config),
        )
        assert got[0] == 1.0
        assert got[1] == 0.0


BATCHED_BINDINGS = [("pure", kernels.many_vs_all_pure, kernels.many_vs_some_pure)]
if kernels.COMPILED_AVAILABLE:
    BATCHED_BINDINGS.append(
        (kernels.COMPILED_TIER, kernels.many_vs_all_arrays, kernels.many_vs_some_arrays)
    )


def _pack_probes(probes):
    return ProbeBatch([fp.data for fp in probes], [fp.count for fp in probes])


@pytest.mark.parametrize(
    "tier,mva,mvs", BATCHED_BINDINGS, ids=[b[0] for b in BATCHED_BINDINGS]
)
class TestBatchedParity:
    """The batched multi-probe entries against the per-probe loop.

    Row ``p`` of ``many_vs_all``/slice ``p`` of ``many_vs_some`` must be
    bitwise equal to a standalone ``one_vs_all`` dispatch of probe ``p``
    — the property that makes the engine's thread splitter byte-identical
    by construction (DESIGN.md D11).  The NumPy reference is the anchor;
    the inline per-probe loop of the same tier guards against batch
    scratch reuse leaking state between probes.
    """

    @given(probes=collections(min_n=1, max_n=5), fps=collections(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_many_vs_all_bitwise(self, tier, mva, mvs, probes, fps, data):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(fps) - 1),
                min_size=1,
                max_size=len(fps),
                unique=True,
            )
        )
        targets = np.array(subset, dtype=np.int64)
        batch = _pack_probes(probes)
        got = mva(
            batch.data, batch.lengths, batch.counts,
            packed.data, packed.lengths, packed.counts,
            targets, *_config_args(config),
        )
        assert got.shape == (len(probes), targets.size)
        for p, probe in enumerate(probes):
            reference = one_vs_all(
                probe.data, probe.count, packed, config, indices=targets
            )
            np.testing.assert_array_equal(got[p], reference)

    @given(probes=collections(min_n=1, max_n=5), fps=collections(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_many_vs_some_bitwise_ragged(self, tier, mva, mvs, probes, fps, data):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        # Per-probe target lists, empties allowed: the merge frontier
        # batches probes whose candidate lists may have emptied.
        t_lists = [
            np.array(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=len(fps) - 1),
                        min_size=0,
                        max_size=len(fps),
                        unique=True,
                    )
                ),
                dtype=np.int64,
            )
            for _ in probes
        ]
        offsets = np.zeros(len(probes) + 1, dtype=np.int64)
        np.cumsum([t.size for t in t_lists], out=offsets[1:])
        flat = (
            np.concatenate(t_lists)
            if offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
        batch = _pack_probes(probes)
        got = mvs(
            batch.data, batch.lengths, batch.counts,
            packed.data, packed.lengths, packed.counts,
            flat, offsets, *_config_args(config),
        )
        assert got.shape == (int(offsets[-1]),)
        for p, probe in enumerate(probes):
            sl = got[offsets[p] : offsets[p + 1]]
            if t_lists[p].size == 0:
                assert sl.size == 0
                continue
            reference = one_vs_all(
                probe.data, probe.count, packed, config, indices=t_lists[p]
            )
            np.testing.assert_array_equal(sl, reference)

    def test_empty_batch(self, tier, mva, mvs):
        fp = Fingerprint("a", [Sample(x=0.0, y=0.0, t=0.0)], count=1)
        packed = PaddedFingerprints([fp])
        config = StretchConfig()
        empty_probes = np.zeros((0, 1, 6), dtype=np.float64)
        empty_i64 = np.zeros(0, dtype=np.int64)
        out = mva(
            empty_probes, empty_i64, empty_i64,
            packed.data, packed.lengths, packed.counts,
            np.array([0], dtype=np.int64), *_config_args(config),
        )
        assert out.shape == (0, 1)
        flat_out = mvs(
            empty_probes, empty_i64, empty_i64,
            packed.data, packed.lengths, packed.counts,
            empty_i64, np.zeros(1, dtype=np.int64), *_config_args(config),
        )
        assert flat_out.shape == (0,)

    def test_single_probe_matches_one_vs_all(self, tier, mva, mvs):
        probe = Fingerprint(
            "p", [Sample(x=10.0, y=20.0, t=5.0), Sample(x=1500.0, y=0.0, t=90.0)],
            count=3, members=["p0", "p1", "p2"],
        )
        fps = [
            Fingerprint("a", [Sample(x=0.0, y=0.0, t=0.0)], count=1),
            Fingerprint("b", [Sample(x=50_000.0, y=0.0, t=900.0)], count=2,
                        members=["b0", "b1"]),
        ]
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        targets = np.array([0, 1], dtype=np.int64)
        batch = _pack_probes([probe])
        got = mva(
            batch.data, batch.lengths, batch.counts,
            packed.data, packed.lengths, packed.counts,
            targets, *_config_args(config),
        )
        reference = one_vs_all(probe.data, probe.count, packed, config, indices=targets)
        np.testing.assert_array_equal(got[0], reference)


BOUNDED_BINDINGS = [
    ("pure", kernels.bounded_many_vs_all_pure, kernels.bounded_many_vs_some_pure)
]
if kernels.COMPILED_AVAILABLE:
    BOUNDED_BINDINGS.append(
        (
            kernels.COMPILED_TIER,
            kernels.bounded_many_vs_all_arrays,
            kernels.bounded_many_vs_some_arrays,
        )
    )

#: Admissible per-probe thresholds including both infinities — a
#: threshold only decides *which* pairs evaluate, never their values.
threshold_values = st.one_of(
    st.sampled_from([np.inf, -np.inf, 0.0, 0.25, 0.5, 1.0]),
    st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
)


def _bounded_engine(fps):
    from repro.core.config import ComputeConfig
    from repro.core.engine import StretchEngine

    return StretchEngine(fps, compute=ComputeConfig(backend="numpy"))


def _bounded_args(engine, config):
    store = engine.store
    return (
        store.data, store.lengths, store.counts,
        engine._hull, engine._bucket_hull, engine._bucket_occ,
    ), _config_args(config)


@pytest.mark.parametrize(
    "tier,bmva,bmvs", BOUNDED_BINDINGS, ids=[b[0] for b in BOUNDED_BINDINGS]
)
class TestBoundedParity:
    """The fused bound-and-prune entries (DESIGN.md D13).

    Three invariants: (1) the pure twins and the active accelerated
    tier agree bitwise — including the ``+inf`` sentinels and the
    per-probe pruned counts; (2) every *evaluated* position is bitwise
    the unbounded row's value — pruning decides which pairs run, never
    what they return; (3) the argmin mode returns exactly the
    exhaustive lowest-id argmin whenever the true minimum is strictly
    below the probe's threshold, and ``(threshold, -1)`` otherwise,
    for arbitrary admissible thresholds including both infinities.
    """

    @given(
        fps=collections(min_n=3, max_n=6),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_row_mode_tiers_agree_and_match_unbounded(self, tier, bmva, bmvs, fps, data):
        engine = _bounded_engine(fps)
        config = engine.stretch
        n = len(fps)
        probes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1, max_size=3, unique=True,
            )
        )
        probe_slots = np.array(probes, dtype=np.int64)
        t_lists = [
            np.array(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=n - 1),
                        min_size=0, max_size=n, unique=True,
                    ).filter(lambda t, p=p: p not in t)
                ),
                dtype=np.int64,
            )
            for p in probes
        ]
        thresholds = np.array(
            [data.draw(threshold_values) for _ in probes], dtype=np.float64
        )
        offsets = np.zeros(len(probes) + 1, dtype=np.int64)
        np.cumsum([t.size for t in t_lists], out=offsets[1:])
        flat = (
            np.concatenate(t_lists) if offsets[-1] else np.empty(0, dtype=np.int64)
        )
        reverse = np.array(
            [data.draw(st.booleans()) for _ in range(int(offsets[-1]))], dtype=bool
        )
        best_vals = np.full(engine.store.capacity, np.inf)
        for t in range(n):
            if data.draw(st.booleans()):
                best_vals[t] = data.draw(
                    st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
                )
        arrays, cfg_args = _bounded_args(engine, config)
        out, pruned = bmvs(
            probe_slots, *arrays, flat, offsets, thresholds, reverse, best_vals,
            *cfg_args,
        )
        ref_out, ref_pruned = kernels.bounded_many_vs_some_pure(
            probe_slots, *arrays, flat, offsets, thresholds, reverse, best_vals,
            *cfg_args,
        )
        # (1) cross-tier bitwise agreement, sentinels and counts included.
        np.testing.assert_array_equal(out, ref_out)
        np.testing.assert_array_equal(pruned, ref_pruned)
        for p, probe_slot in enumerate(probes):
            row = out[offsets[p] : offsets[p + 1]]
            tgts = t_lists[p]
            assert int(pruned[p]) + int((row < np.inf).sum()) == tgts.size
            if tgts.size == 0:
                continue
            exact = engine.row(probe_slot, tgts)
            ev = row < np.inf
            # (2) evaluated positions are the unbounded row, bitwise.
            np.testing.assert_array_equal(row[ev], exact[ev])
            # Reverse value-transparency: a pair whose exact value would
            # update the target's cached best is never pruned.
            rev_p = reverse[offsets[p] : offsets[p + 1]]
            must_eval = rev_p & (exact < best_vals[tgts])
            assert bool(ev[must_eval].all())

    @given(fps=collections(min_n=3, max_n=6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_argmin_mode_matches_exhaustive(self, tier, bmva, bmvs, fps, data):
        engine = _bounded_engine(fps)
        config = engine.stretch
        n = len(fps)
        probes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1, max_size=3, unique=True,
            )
        )
        probe_slots = np.array(probes, dtype=np.int64)
        targets = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1, max_size=n, unique=True,
                )
            ),
            dtype=np.int64,
        )
        thresholds = np.array(
            [data.draw(threshold_values) for _ in probes], dtype=np.float64
        )
        arrays, cfg_args = _bounded_args(engine, config)
        best, best_idx, pruned = bmva(
            probe_slots, *arrays, targets, thresholds, *cfg_args
        )
        ref = kernels.bounded_many_vs_all_pure(
            probe_slots, *arrays, targets, thresholds, *cfg_args
        )
        np.testing.assert_array_equal(best, ref[0])
        np.testing.assert_array_equal(best_idx, ref[1])
        np.testing.assert_array_equal(pruned, ref[2])
        for p, probe_slot in enumerate(probes):
            others = targets[targets != probe_slot]
            tau = thresholds[p]
            if others.size == 0:
                assert best[p] == tau and best_idx[p] == -1
                continue
            exact = engine.row(probe_slot, others)
            vmin = float(exact.min())
            if vmin < tau:
                assert best[p] == vmin
                assert best_idx[p] == int(others[exact == vmin].min())
            else:
                # Strictly-below-threshold semantics: a candidate whose
                # value merely *ties* the threshold never wins.
                assert best[p] == tau
                assert best_idx[p] == -1
            assert 0 <= int(pruned[p]) <= others.size

    def test_threshold_edges(self, tier, bmva, bmvs):
        twin_a = Fingerprint("a", [Sample(x=0.0, y=0.0, t=0.0)], count=1)
        twin_b = Fingerprint("b", [Sample(x=0.0, y=0.0, t=0.0)], count=1)
        far = Fingerprint("c", [Sample(x=1e8, y=1e8, t=1e7)], count=1)
        engine = _bounded_engine([twin_a, twin_b, far])
        arrays, cfg_args = _bounded_args(engine, engine.stretch)
        probe_slots = np.array([0], dtype=np.int64)
        targets = np.array([1, 2], dtype=np.int64)

        def run(tau):
            return bmva(
                probe_slots, *arrays, targets,
                np.array([tau], dtype=np.float64), *cfg_args,
            )

        # tau = +inf: the exhaustive argmin (twin pair, effort 0.0).
        best, idx, _ = run(np.inf)
        assert best[0] == 0.0 and idx[0] == 1
        # tau == exact minimum: strict inequality leaves no winner.
        best, idx, _ = run(0.0)
        assert best[0] == 0.0 and idx[0] == -1
        # tau = -inf: every pair pruned, sentinel result.
        best, idx, pruned = run(-np.inf)
        assert best[0] == -np.inf and idx[0] == -1
        assert pruned[0] == targets.size


_FALLBACK_PROLOGUE = """
import sys

class _BlockNumba:
    def find_module(self, name, path=None):
        if name == "numba" or name.startswith("numba."):
            return self
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for fallback test")
    def load_module(self, name):
        raise ImportError("numba blocked for fallback test")

sys.meta_path.insert(0, _BlockNumba())
"""


def _run_fallback_probe(body, env_updates):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    env.update(env_updates)
    return subprocess.run(
        [sys.executable, "-c", _FALLBACK_PROLOGUE + textwrap.dedent(body)],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )


class TestFallback:
    def test_no_accelerated_tier_falls_back_to_pure(self):
        # numba import-blocked and the cc tier disabled: the module must
        # still import, report no compiled tier, and alias the pure twins.
        proc = _run_fallback_probe(
            """
            from repro.core import kernels
            assert not kernels.NUMBA_AVAILABLE
            assert kernels.COMPILED_TIER is None
            assert not kernels.COMPILED_AVAILABLE
            assert kernels.one_vs_all_arrays is kernels.one_vs_all_pure
            assert kernels.pairwise_matrix_arrays is kernels.pairwise_matrix_pure
            print("fallback-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout

    def test_auto_backend_uses_numpy_without_compiled(self):
        proc = _run_fallback_probe(
            """
            from repro.core.config import ComputeConfig, StretchConfig
            from repro.core.engine import AutoBackend, NumpyBackend

            backend = AutoBackend(ComputeConfig(backend="auto"), StretchConfig())
            assert isinstance(backend._inline, NumpyBackend)
            assert not backend.fast_exact
            print("auto-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "auto-ok" in proc.stdout

    def test_compiled_backend_raises_without_binding(self):
        proc = _run_fallback_probe(
            """
            from repro.core.config import ComputeConfig, StretchConfig
            from repro.core.engine import create_backend

            try:
                create_backend(ComputeConfig(backend="compiled"), StretchConfig())
            except RuntimeError as exc:
                assert "[compiled] extra" in str(exc), exc
                print("raise-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "raise-ok" in proc.stdout

    def test_glove_runs_without_accelerated_tier(self):
        # End-to-end: the default path stays fully functional (and on the
        # NumPy reference) with every accelerated tier unavailable.
        proc = _run_fallback_probe(
            """
            from repro.core.config import ComputeConfig, GloveConfig
            from repro.core.glove import glove
            from repro.core.scenarios import get_scenario
            from repro.core.pipeline import Pipeline
            from repro.core.artifacts import ArtifactStore

            sc = get_scenario("bench").scaled(n_users=24, days=1, seed=0)
            dataset = sc.synthesize(Pipeline(ArtifactStore(root=None)))
            result = glove(dataset, GloveConfig(k=2), ComputeConfig(backend="auto"))
            assert result.dataset.is_k_anonymous(2)
            print("glove-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "glove-ok" in proc.stdout

    def test_bounded_entries_fall_back_to_pure_twins(self):
        # The fused bound-and-prune entries degrade exactly like the
        # unbounded family: with no accelerated tier the array names
        # alias the pure twins, and the twins still honor thresholds —
        # pruned pairs get +inf sentinels, a -inf threshold prunes
        # everything, and a +inf threshold yields the exact argmin.
        proc = _run_fallback_probe(
            """
            import numpy as np

            from repro.core import kernels
            from repro.core.config import ComputeConfig
            from repro.core.engine import StretchEngine
            from repro.core.fingerprint import Fingerprint
            from repro.core.sample import Sample

            assert not kernels.COMPILED_AVAILABLE
            assert kernels.bounded_many_vs_all_arrays is kernels.bounded_many_vs_all_pure
            assert kernels.bounded_many_vs_some_arrays is kernels.bounded_many_vs_some_pure

            fps = [
                Fingerprint("a", [Sample(x=0.0, y=0.0, t=0.0)], count=1),
                Fingerprint("b", [Sample(x=10.0, y=0.0, t=5.0)], count=1),
                Fingerprint("c", [Sample(x=1e8, y=1e8, t=1e7)], count=1),
            ]
            engine = StretchEngine(fps, compute=ComputeConfig(backend="numpy"))
            # NumpyBackend has no bounded dispatch: fused pruning stays off
            # and glove takes the seed path untouched.
            assert not engine.fused_pruning
            store = engine.store
            arrays = (
                store.data, store.lengths, store.counts,
                engine._hull, engine._bucket_hull, engine._bucket_occ,
            )
            cfg = engine.stretch
            cfg_args = (cfg.w_sigma, cfg.w_tau, cfg.phi_max_sigma_m, cfg.phi_max_tau_min)
            probe = np.array([0], dtype=np.int64)
            targets = np.array([1, 2], dtype=np.int64)

            # +inf threshold: exact lowest-id argmin, far pair lb1-pruned.
            best, idx, pruned = kernels.bounded_many_vs_all_pure(
                probe, *arrays, targets, np.array([np.inf]), *cfg_args
            )
            exact = engine.row(0, targets)
            assert best[0] == exact.min() and idx[0] == 1
            assert pruned[0] > 0

            # -inf threshold: everything pruned, sentinel result.
            best, idx, pruned = kernels.bounded_many_vs_all_pure(
                probe, *arrays, targets, np.array([-np.inf]), *cfg_args
            )
            assert best[0] == -np.inf and idx[0] == -1 and pruned[0] == 2

            # Row mode: pruned positions carry the +inf sentinel, the
            # evaluated ones are bitwise the unbounded row.
            offsets = np.array([0, 2], dtype=np.int64)
            out, pruned = kernels.bounded_many_vs_some_pure(
                probe, *arrays, targets, offsets, np.array([np.inf]),
                np.zeros(2, dtype=bool), np.full(store.capacity, np.inf),
                *cfg_args,
            )
            ev = out < np.inf
            assert pruned[0] == int((~ev).sum())
            assert np.array_equal(out[ev], exact[ev])
            print("bounded-fallback-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "bounded-fallback-ok" in proc.stdout
