"""Parity and fallback tests for the compiled stretch-kernel tier.

The byte-identity policy (DESIGN.md D9) requires every kernel tier —
numba JIT, the system-cc binding, and the pure-Python twins — to return
bit-for-bit the NumPy reference's results.  The property tests below
drive both the *active* accelerated binding (whatever tier this
environment resolved) and the always-importable pure twins against
``repro.core.pairwise`` on arbitrary padded tensors: ragged lengths
(masked tails), count weights, and coordinate spreads that push the
saturating terms to their 0/1 edges.

The fallback tests run subprocesses with numba import-blocked and the
cc tier disabled (``REPRO_CC_KERNEL=0``) to prove the ``auto`` and
``compiled`` backends degrade exactly as documented when no accelerated
binding exists.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.config import StretchConfig
from repro.core.fingerprint import Fingerprint
from repro.core.pairwise import PaddedFingerprints, ProbeBatch, one_vs_all, pairwise_matrix
from repro.core.sample import Sample

# Wide value ranges on purpose: spatial spreads far beyond phi_sigma
# (20 km) and temporal gaps beyond phi_tau (480 min) exercise the
# saturated branch, tight clusters the near-zero clamp.
coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
extents = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def fingerprints(draw, uid, max_m=7):
    m = draw(st.integers(min_value=1, max_value=max_m))
    samples = [
        Sample(
            x=draw(coords),
            y=draw(coords),
            t=draw(times),
            dx=draw(extents),
            dy=draw(extents),
            dt=draw(durations),
        )
        for _ in range(m)
    ]
    count = draw(st.integers(min_value=1, max_value=50))
    members = [f"{uid}-{i}" for i in range(count)]
    return Fingerprint(uid, samples, count=count, members=members)


@st.composite
def collections(draw, min_n=2, max_n=6):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    return [draw(fingerprints(f"u{i}")) for i in range(n)]


def _config_args(config):
    return (
        config.w_sigma,
        config.w_tau,
        config.phi_max_sigma_m,
        config.phi_max_tau_min,
    )


BINDINGS = [("pure", kernels.one_vs_all_pure, kernels.pairwise_matrix_pure)]
if kernels.COMPILED_AVAILABLE:
    BINDINGS.append(
        (kernels.COMPILED_TIER, kernels.one_vs_all_arrays, kernels.pairwise_matrix_arrays)
    )


@pytest.mark.parametrize("tier,ova,pm", BINDINGS, ids=[b[0] for b in BINDINGS])
class TestKernelParity:
    @given(probe=fingerprints("probe"), fps=collections(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_one_vs_all_bitwise(self, tier, ova, pm, probe, fps, data):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(fps) - 1),
                min_size=1,
                max_size=len(fps),
                unique=True,
            )
        )
        targets = np.array(subset, dtype=np.int64)
        reference = one_vs_all(probe.data, probe.count, packed, config, indices=targets)
        got = ova(
            np.ascontiguousarray(probe.data),
            float(probe.count),
            packed.data,
            packed.lengths,
            packed.counts,
            targets,
            *_config_args(config),
        )
        # Bitwise, not approx: the compiled tiers replicate the NumPy
        # reference's operation order including pairwise summation.
        np.testing.assert_array_equal(got, reference)

    @given(fps=collections())
    @settings(max_examples=40, deadline=None)
    def test_pairwise_matrix_bitwise(self, tier, ova, pm, fps):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        reference = pairwise_matrix(fps, config)
        got = pm(packed.data, packed.lengths, packed.counts, *_config_args(config))
        np.testing.assert_array_equal(got, reference)

    def test_saturation_edges(self, tier, ova, pm):
        # One pair far beyond both saturation thresholds (delta == 1)
        # and one identical pair (delta == 0): the clamp edges must be
        # exact, not approximately so.
        near = Fingerprint(
            "a", [Sample(x=0.0, y=0.0, t=0.0)], count=3, members=["a0", "a1", "a2"]
        )
        far = Fingerprint("b", [Sample(x=1e8, y=1e8, t=1e7)], count=1)
        twin = Fingerprint(
            "c", [Sample(x=0.0, y=0.0, t=0.0)], count=2, members=["c0", "c1"]
        )
        packed = PaddedFingerprints([near, far, twin])
        config = StretchConfig()
        got = ova(
            np.ascontiguousarray(near.data),
            float(near.count),
            packed.data,
            packed.lengths,
            packed.counts,
            np.array([1, 2], dtype=np.int64),
            *_config_args(config),
        )
        assert got[0] == 1.0
        assert got[1] == 0.0


BATCHED_BINDINGS = [("pure", kernels.many_vs_all_pure, kernels.many_vs_some_pure)]
if kernels.COMPILED_AVAILABLE:
    BATCHED_BINDINGS.append(
        (kernels.COMPILED_TIER, kernels.many_vs_all_arrays, kernels.many_vs_some_arrays)
    )


def _pack_probes(probes):
    return ProbeBatch([fp.data for fp in probes], [fp.count for fp in probes])


@pytest.mark.parametrize(
    "tier,mva,mvs", BATCHED_BINDINGS, ids=[b[0] for b in BATCHED_BINDINGS]
)
class TestBatchedParity:
    """The batched multi-probe entries against the per-probe loop.

    Row ``p`` of ``many_vs_all``/slice ``p`` of ``many_vs_some`` must be
    bitwise equal to a standalone ``one_vs_all`` dispatch of probe ``p``
    — the property that makes the engine's thread splitter byte-identical
    by construction (DESIGN.md D11).  The NumPy reference is the anchor;
    the inline per-probe loop of the same tier guards against batch
    scratch reuse leaking state between probes.
    """

    @given(probes=collections(min_n=1, max_n=5), fps=collections(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_many_vs_all_bitwise(self, tier, mva, mvs, probes, fps, data):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(fps) - 1),
                min_size=1,
                max_size=len(fps),
                unique=True,
            )
        )
        targets = np.array(subset, dtype=np.int64)
        batch = _pack_probes(probes)
        got = mva(
            batch.data, batch.lengths, batch.counts,
            packed.data, packed.lengths, packed.counts,
            targets, *_config_args(config),
        )
        assert got.shape == (len(probes), targets.size)
        for p, probe in enumerate(probes):
            reference = one_vs_all(
                probe.data, probe.count, packed, config, indices=targets
            )
            np.testing.assert_array_equal(got[p], reference)

    @given(probes=collections(min_n=1, max_n=5), fps=collections(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_many_vs_some_bitwise_ragged(self, tier, mva, mvs, probes, fps, data):
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        # Per-probe target lists, empties allowed: the merge frontier
        # batches probes whose candidate lists may have emptied.
        t_lists = [
            np.array(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=len(fps) - 1),
                        min_size=0,
                        max_size=len(fps),
                        unique=True,
                    )
                ),
                dtype=np.int64,
            )
            for _ in probes
        ]
        offsets = np.zeros(len(probes) + 1, dtype=np.int64)
        np.cumsum([t.size for t in t_lists], out=offsets[1:])
        flat = (
            np.concatenate(t_lists)
            if offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
        batch = _pack_probes(probes)
        got = mvs(
            batch.data, batch.lengths, batch.counts,
            packed.data, packed.lengths, packed.counts,
            flat, offsets, *_config_args(config),
        )
        assert got.shape == (int(offsets[-1]),)
        for p, probe in enumerate(probes):
            sl = got[offsets[p] : offsets[p + 1]]
            if t_lists[p].size == 0:
                assert sl.size == 0
                continue
            reference = one_vs_all(
                probe.data, probe.count, packed, config, indices=t_lists[p]
            )
            np.testing.assert_array_equal(sl, reference)

    def test_empty_batch(self, tier, mva, mvs):
        fp = Fingerprint("a", [Sample(x=0.0, y=0.0, t=0.0)], count=1)
        packed = PaddedFingerprints([fp])
        config = StretchConfig()
        empty_probes = np.zeros((0, 1, 6), dtype=np.float64)
        empty_i64 = np.zeros(0, dtype=np.int64)
        out = mva(
            empty_probes, empty_i64, empty_i64,
            packed.data, packed.lengths, packed.counts,
            np.array([0], dtype=np.int64), *_config_args(config),
        )
        assert out.shape == (0, 1)
        flat_out = mvs(
            empty_probes, empty_i64, empty_i64,
            packed.data, packed.lengths, packed.counts,
            empty_i64, np.zeros(1, dtype=np.int64), *_config_args(config),
        )
        assert flat_out.shape == (0,)

    def test_single_probe_matches_one_vs_all(self, tier, mva, mvs):
        probe = Fingerprint(
            "p", [Sample(x=10.0, y=20.0, t=5.0), Sample(x=1500.0, y=0.0, t=90.0)],
            count=3, members=["p0", "p1", "p2"],
        )
        fps = [
            Fingerprint("a", [Sample(x=0.0, y=0.0, t=0.0)], count=1),
            Fingerprint("b", [Sample(x=50_000.0, y=0.0, t=900.0)], count=2,
                        members=["b0", "b1"]),
        ]
        packed = PaddedFingerprints(fps)
        config = StretchConfig()
        targets = np.array([0, 1], dtype=np.int64)
        batch = _pack_probes([probe])
        got = mva(
            batch.data, batch.lengths, batch.counts,
            packed.data, packed.lengths, packed.counts,
            targets, *_config_args(config),
        )
        reference = one_vs_all(probe.data, probe.count, packed, config, indices=targets)
        np.testing.assert_array_equal(got[0], reference)


_FALLBACK_PROLOGUE = """
import sys

class _BlockNumba:
    def find_module(self, name, path=None):
        if name == "numba" or name.startswith("numba."):
            return self
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for fallback test")
    def load_module(self, name):
        raise ImportError("numba blocked for fallback test")

sys.meta_path.insert(0, _BlockNumba())
"""


def _run_fallback_probe(body, env_updates):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    env.update(env_updates)
    return subprocess.run(
        [sys.executable, "-c", _FALLBACK_PROLOGUE + textwrap.dedent(body)],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )


class TestFallback:
    def test_no_accelerated_tier_falls_back_to_pure(self):
        # numba import-blocked and the cc tier disabled: the module must
        # still import, report no compiled tier, and alias the pure twins.
        proc = _run_fallback_probe(
            """
            from repro.core import kernels
            assert not kernels.NUMBA_AVAILABLE
            assert kernels.COMPILED_TIER is None
            assert not kernels.COMPILED_AVAILABLE
            assert kernels.one_vs_all_arrays is kernels.one_vs_all_pure
            assert kernels.pairwise_matrix_arrays is kernels.pairwise_matrix_pure
            print("fallback-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout

    def test_auto_backend_uses_numpy_without_compiled(self):
        proc = _run_fallback_probe(
            """
            from repro.core.config import ComputeConfig, StretchConfig
            from repro.core.engine import AutoBackend, NumpyBackend

            backend = AutoBackend(ComputeConfig(backend="auto"), StretchConfig())
            assert isinstance(backend._inline, NumpyBackend)
            assert not backend.fast_exact
            print("auto-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "auto-ok" in proc.stdout

    def test_compiled_backend_raises_without_binding(self):
        proc = _run_fallback_probe(
            """
            from repro.core.config import ComputeConfig, StretchConfig
            from repro.core.engine import create_backend

            try:
                create_backend(ComputeConfig(backend="compiled"), StretchConfig())
            except RuntimeError as exc:
                assert "[compiled] extra" in str(exc), exc
                print("raise-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "raise-ok" in proc.stdout

    def test_glove_runs_without_accelerated_tier(self):
        # End-to-end: the default path stays fully functional (and on the
        # NumPy reference) with every accelerated tier unavailable.
        proc = _run_fallback_probe(
            """
            from repro.core.config import ComputeConfig, GloveConfig
            from repro.core.glove import glove
            from repro.core.scenarios import get_scenario
            from repro.core.pipeline import Pipeline
            from repro.core.artifacts import ArtifactStore

            sc = get_scenario("bench").scaled(n_users=24, days=1, seed=0)
            dataset = sc.synthesize(Pipeline(ArtifactStore(root=None)))
            result = glove(dataset, GloveConfig(k=2), ComputeConfig(backend="auto"))
            assert result.dataset.is_k_anonymous(2)
            print("glove-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "glove-ok" in proc.stdout
