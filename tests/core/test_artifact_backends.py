"""Tests of the pluggable artifact backends (DESIGN.md D10).

Backend-level behavior — registry, SQLite round-trips and eviction,
thread-level single flight — lives here; the multi-*process* contracts
(the N=8 single-flight acceptance test, the put/get/evict stress test,
crashed-owner recovery) are in
:mod:`tests.core.test_artifact_concurrency`.
"""

import threading
import time

import pytest

from repro.core.artifact_backends import (
    STORE_VERSION,
    BackendStats,
    SQLiteArtifactBackend,
    available_artifact_backends,
    create_artifact_backend,
    runtime_tag,
)
from repro.core.artifacts import MISS, ArtifactStore


class TestRegistry:
    def test_all_backends_registered(self):
        assert available_artifact_backends() == ["disk", "redis", "sqlite"]

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown artifact backend"):
            create_artifact_backend("etcd", root=tmp_path, max_bytes=1024)

    def test_disk_and_sqlite_constructible(self, tmp_path):
        for name in ("disk", "sqlite"):
            backend = create_artifact_backend(name, root=tmp_path, max_bytes=1024)
            assert backend.name == name

    def test_redis_requires_the_extra(self, tmp_path):
        try:
            import redis  # noqa: F401

            pytest.skip("redis client installed; the stub gate cannot fire")
        except ImportError:
            pass
        with pytest.raises(RuntimeError, match="redis"):
            create_artifact_backend("redis", root=tmp_path, max_bytes=1024)


class TestSQLiteBackend:
    def test_round_trip_and_stats(self, tmp_path):
        backend = SQLiteArtifactBackend(root=tmp_path, max_bytes=1 << 20)
        assert backend.get("s", "k") is None
        backend.put("s", "k", b"payload-bytes")
        assert backend.get("s", "k") == b"payload-bytes"
        stats = backend.stats()
        assert stats.artifacts == 1
        assert stats.total_bytes == 13
        assert (stats.hits, stats.misses, stats.puts, stats.evictions) == (1, 1, 1, 0)

    def test_persists_across_instances(self, tmp_path):
        SQLiteArtifactBackend(root=tmp_path, max_bytes=1 << 20).put("s", "k", b"v")
        again = SQLiteArtifactBackend(root=tmp_path, max_bytes=1 << 20)
        assert again.get("s", "k") == b"v"
        assert (tmp_path / f"artifacts-{STORE_VERSION}.sqlite").exists()

    def test_single_file_not_file_per_artifact(self, tmp_path):
        backend = SQLiteArtifactBackend(root=tmp_path, max_bytes=1 << 20)
        for i in range(20):
            backend.put("s", f"k{i}", b"x" * 100)
        assert list(tmp_path.rglob("*.pkl")) == []

    def test_namespaced_by_runtime(self, tmp_path):
        backend = SQLiteArtifactBackend(root=tmp_path, max_bytes=1 << 20)
        backend.put("s", "k", b"v")
        other = SQLiteArtifactBackend(root=tmp_path, max_bytes=1 << 20)
        other._runtime = "cpython-0.0-numpy-0"  # a different stack
        assert other.get("s", "k") is None

    def test_lru_eviction_by_atime(self, tmp_path):
        backend = SQLiteArtifactBackend(root=tmp_path, max_bytes=10_000)
        payload = b"x" * 4000
        backend.put("s", "a", payload)
        backend.put("s", "b", payload)
        # Age 'b' so it is the least recently used...
        with backend._tx() as conn:
            conn.execute(
                "UPDATE artifacts SET atime=1 WHERE key='b'",
            )
        backend.get("s", "a")
        # ...then push past the bound.
        backend.put("s", "c", payload)
        assert backend.get("s", "a") is not None
        assert backend.get("s", "c") is not None
        assert backend.get("s", "b") is None
        assert backend.stats().total_bytes <= 10_000

    def test_store_round_trip_through_sqlite(self, tmp_path):
        import numpy as np

        store = ArtifactStore(root=tmp_path, backend="sqlite")
        value = {"arr": np.arange(5.0)}
        store.put("stage", "k1", value)
        store.clear_memo()
        loaded = store.get("stage", "k1")
        assert np.array_equal(loaded["arr"], value["arr"])

    def test_store_path_only_meaningful_on_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path, backend="sqlite")
        with pytest.raises(TypeError):
            store._path("s", "k")

    def test_corrupt_database_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(root=tmp_path, backend="sqlite")
        store.put("s", "k", [1, 2, 3])
        store.clear_memo()
        store.backend.db_path.write_bytes(b"this is not a sqlite file")
        assert store.get("s", "k") is MISS
        assert store.fetch("s", "k", lambda: "recomputed")[1] == "computed"


@pytest.mark.parametrize("backend", ["disk", "sqlite"])
class TestThreadSingleFlight:
    def test_concurrent_cold_fetch_computes_once(self, tmp_path, backend):
        n = 6
        computes = []
        barrier = threading.Barrier(n)
        results = [None] * n

        def worker(i):
            # Each thread builds its own store over the shared root so
            # the in-process memo cannot mask the backend-level lock.
            store = ArtifactStore(root=tmp_path, backend=backend)
            barrier.wait()

            def compute():
                computes.append(i)
                time.sleep(0.05)  # widen the race window
                return {"value": 42}

            results[i] = store.fetch("stage", "cold-key", compute)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(computes) == 1
        assert all(value == {"value": 42} for value, _ in results)
        origins = sorted(origin for _, origin in results)
        assert origins == ["computed"] + ["disk"] * (n - 1)

    def test_timeout_caps_the_wait(self, tmp_path, backend):
        # A wedged owner (lock held, never releasing) must not block a
        # waiter beyond the stale timeout.
        store = ArtifactStore(
            root=tmp_path, backend=backend, stale_lock_timeout=0.4
        )
        blocker = ArtifactStore(
            root=tmp_path, backend=backend, stale_lock_timeout=30.0
        )
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with blocker.backend.single_flight("stage", "key"):
                entered.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert entered.wait(timeout=5)
            t0 = time.monotonic()
            value, origin = store.fetch("stage", "key", lambda: "computed anyway")
            waited = time.monotonic() - t0
            assert value == "computed anyway"
            assert origin == "computed"
            assert 0.3 <= waited < 5.0  # bounded: timeout, not a wedge
        finally:
            release.set()
            holder.join(timeout=10)


class TestUniformBackendStats:
    """All backends report the same hit/miss/eviction key set (D12)."""

    KEYS = {
        "artifacts",
        "total_bytes",
        "hits",
        "misses",
        "puts",
        "evictions",
        "flights",
        "flight_waits",
    }

    @pytest.mark.parametrize("backend", ["disk", "sqlite"])
    def test_key_set_is_uniform(self, tmp_path, backend):
        b = create_artifact_backend(backend, root=tmp_path, max_bytes=1 << 20)
        assert set(b.stats().as_dict()) == self.KEYS

    def test_redis_key_set_is_uniform(self, tmp_path):
        pytest.importorskip("redis")
        b = create_artifact_backend("redis", root=tmp_path, max_bytes=1 << 20)
        assert set(b.stats().as_dict()) == self.KEYS

    @pytest.mark.parametrize("backend", ["disk", "sqlite"])
    def test_counters_track_operations(self, tmp_path, backend):
        b = create_artifact_backend(backend, root=tmp_path, max_bytes=1 << 20)
        assert b.get("s", "missing") is None
        b.put("s", "k", b"v")
        assert b.get("s", "k") == b"v"
        with b.single_flight("s", "k"):
            pass
        stats = b.stats().as_dict()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["puts"] == 1
        assert stats["flights"] == 1
        assert stats["flight_waits"] == 0

    @pytest.mark.parametrize("backend", ["disk", "sqlite"])
    def test_evictions_counted(self, tmp_path, backend):
        b = create_artifact_backend(backend, root=tmp_path, max_bytes=5_000)
        payload = b"x" * 4000
        b.put("s", "a", payload)
        b.put("s", "b", payload)  # pushes past the bound -> evicts LRU
        assert b.stats().evictions >= 1

    def test_default_counter_values_are_zero(self, tmp_path):
        stats = BackendStats(artifacts=0, total_bytes=0)
        assert stats.as_dict() == {key: 0 for key in self.KEYS}


def test_runtime_tag_shape():
    tag = runtime_tag()
    assert tag.startswith("cpython-")
    assert "-numpy-" in tag
