"""Tests for fingerprint datasets."""

import numpy as np
import pytest

from repro.core.dataset import FingerprintDataset
from tests.conftest import make_fp


class TestContainer:
    def test_add_and_lookup(self, toy_dataset):
        assert len(toy_dataset) == 6
        assert toy_dataset["u0"].uid == "u0"
        assert toy_dataset[0].uid == "u0"
        assert "u3" in toy_dataset
        assert "zz" not in toy_dataset

    def test_duplicate_uid_rejected(self):
        ds = FingerprintDataset([make_fp("a", [(0.0, 0.0, 0.0)])])
        with pytest.raises(ValueError, match="duplicate"):
            ds.add(make_fp("a", [(1.0, 1.0, 1.0)]))

    def test_aggregates(self, toy_dataset):
        assert toy_dataset.n_users == 6
        assert toy_dataset.n_samples == 11
        assert toy_dataset.mean_fingerprint_length == pytest.approx(11 / 6)

    def test_n_users_counts_group_members(self):
        ds = FingerprintDataset(
            [make_fp("g", [(0.0, 0.0, 0.0)], count=3, members=("a", "b", "c"))]
        )
        assert ds.n_users == 3
        assert len(ds) == 1

    def test_time_extent(self, toy_dataset):
        t_min, t_max = toy_dataset.time_extent()
        assert t_min == 0.0
        assert t_max == 9_101.0  # u5's last sample start + dt


class TestSubsetting:
    def test_restrict_timespan(self, toy_dataset):
        one_hour = toy_dataset.restrict_timespan(1 / 24.0)
        assert all(fp.data[:, 4].max() < 60.0 for fp in one_hour)
        # u3 and u5 have no samples in the first hour and are dropped.
        assert "u3" not in one_hour
        assert "u5" not in one_hour

    def test_restrict_timespan_rejects_nonpositive(self, toy_dataset):
        with pytest.raises(ValueError):
            toy_dataset.restrict_timespan(0)

    def test_sample_users_size(self, toy_dataset, rng):
        half = toy_dataset.sample_users(0.5, rng)
        assert len(half) == 3

    def test_sample_users_keeps_at_least_one(self, toy_dataset, rng):
        tiny = toy_dataset.sample_users(0.01, rng)
        assert len(tiny) == 1

    def test_sample_users_rejects_bad_fraction(self, toy_dataset, rng):
        with pytest.raises(ValueError):
            toy_dataset.sample_users(0.0, rng)
        with pytest.raises(ValueError):
            toy_dataset.sample_users(1.5, rng)

    def test_sample_users_no_duplicates(self, toy_dataset, rng):
        sub = toy_dataset.sample_users(1.0, rng)
        assert sorted(sub.uids) == sorted(toy_dataset.uids)


class TestAnonymityAudit:
    def test_twins_are_2_anonymous(self, toy_dataset):
        hist = toy_dataset.anonymity_histogram()
        assert hist[2] == 2  # u0 and u1 share a trace
        assert hist[1] == 4  # the rest are unique

    def test_min_anonymity(self, toy_dataset):
        assert toy_dataset.min_anonymity() == 1
        assert not toy_dataset.is_k_anonymous(2)

    def test_grouped_dataset_is_k_anonymous(self):
        ds = FingerprintDataset(
            [
                make_fp("g1", [(0.0, 0.0, 0.0)], count=2, members=("a", "b")),
                make_fp("g2", [(9.0, 9.0, 9.0)], count=3, members=("c", "d", "e")),
            ]
        )
        assert ds.is_k_anonymous(2)
        assert not ds.is_k_anonymous(3)

    def test_identical_groups_pool_their_counts(self):
        # Two groups with the same trace form one anonymity set of 4.
        ds = FingerprintDataset(
            [
                make_fp("g1", [(0.0, 0.0, 0.0)], count=2, members=("a", "b")),
                make_fp("g2", [(0.0, 0.0, 0.0)], count=2, members=("c", "d")),
            ]
        )
        assert ds.min_anonymity() == 4

    def test_empty_dataset(self):
        ds = FingerprintDataset()
        assert ds.min_anonymity() == 0
        assert ds.is_k_anonymous(5)
