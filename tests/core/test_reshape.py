"""Tests for the reshaping pass (paper Fig. 6b)."""

import numpy as np
import pytest

from repro.core.reshape import (
    has_temporal_overlap,
    reshape_fingerprint,
    reshape_sample_array,
)
from repro.core.sample import DT, T
from tests.conftest import make_fp


def rows(*tuples):
    """Rows as (x, dx, y, dy, t, dt)."""
    return np.array(tuples, dtype=np.float64)


class TestOverlapDetection:
    def test_no_overlap(self):
        data = rows((0, 100, 0, 100, 0, 10), (0, 100, 0, 100, 20, 10))
        assert not has_temporal_overlap(data)

    def test_touching_is_not_overlap(self):
        data = rows((0, 100, 0, 100, 0, 10), (0, 100, 0, 100, 10, 10))
        assert not has_temporal_overlap(data)

    def test_partial_overlap(self):
        data = rows((0, 100, 0, 100, 0, 10), (0, 100, 0, 100, 5, 10))
        assert has_temporal_overlap(data)

    def test_containment_overlap(self):
        data = rows((0, 100, 0, 100, 0, 100), (0, 100, 0, 100, 10, 5))
        assert has_temporal_overlap(data)

    def test_unsorted_input(self):
        data = rows((0, 100, 0, 100, 50, 10), (0, 100, 0, 100, 0, 100))
        assert has_temporal_overlap(data)

    def test_single_sample(self):
        assert not has_temporal_overlap(rows((0, 100, 0, 100, 0, 10)))


class TestReshape:
    def test_merges_overlapping_run(self):
        data = rows(
            (0, 100, 0, 100, 0, 10),
            (1000, 100, 0, 100, 5, 10),
            (0, 100, 2000, 100, 12, 10),
        )
        out = reshape_sample_array(data)
        assert out.shape[0] == 1
        assert out[0, T] == 0.0
        assert out[0, T] + out[0, DT] == 22.0

    def test_keeps_disjoint_runs_separate(self):
        data = rows(
            (0, 100, 0, 100, 0, 10),
            (1000, 100, 0, 100, 5, 10),  # overlaps the first
            (0, 100, 0, 100, 100, 10),  # separate run
        )
        out = reshape_sample_array(data)
        assert out.shape[0] == 2

    def test_output_has_no_overlaps(self, rng):
        t = rng.uniform(0, 500, 30)
        dt = rng.uniform(1, 120, 30)
        data = np.column_stack(
            [
                rng.uniform(0, 1e4, 30),
                np.full(30, 100.0),
                rng.uniform(0, 1e4, 30),
                np.full(30, 100.0),
                t,
                dt,
            ]
        )
        out = reshape_sample_array(data)
        assert not has_temporal_overlap(out)

    def test_idempotent(self, rng):
        data = np.column_stack(
            [
                rng.uniform(0, 1e4, 20),
                np.full(20, 100.0),
                rng.uniform(0, 1e4, 20),
                np.full(20, 100.0),
                rng.uniform(0, 200, 20),
                rng.uniform(1, 60, 20),
            ]
        )
        once = reshape_sample_array(data)
        twice = reshape_sample_array(once)
        np.testing.assert_allclose(once, twice)

    def test_preserves_non_overlapping(self):
        data = rows((0, 100, 0, 100, 0, 10), (500, 100, 0, 100, 50, 10))
        np.testing.assert_allclose(reshape_sample_array(data), data)


class TestReshapeFingerprint:
    def test_noop_returns_same_object(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0), (0.0, 0.0, 100.0)])
        assert reshape_fingerprint(fp) is fp

    def test_reshapes_overlapping(self):
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 0.0, 100.0, 100.0, 50.0),
                (5000.0, 0.0, 25.0, 100.0, 100.0, 50.0),
            ],
        )
        out = reshape_fingerprint(fp)
        assert out.m == 1
        assert out.count == fp.count
