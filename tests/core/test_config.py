"""Tests for configuration dataclasses."""

import pytest

from repro.core.config import GloveConfig, StretchConfig, SuppressionConfig


class TestStretchConfig:
    def test_paper_defaults(self):
        cfg = StretchConfig()
        assert cfg.phi_max_sigma_m == 20_000.0
        assert cfg.phi_max_tau_min == 480.0
        assert cfg.w_sigma == 0.5
        assert cfg.w_tau == 0.5

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="equal 1"):
            StretchConfig(w_sigma=0.7, w_tau=0.7)

    def test_asymmetric_weights_allowed(self):
        cfg = StretchConfig(w_sigma=0.3, w_tau=0.7)
        assert cfg.w_sigma == 0.3

    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ValueError):
            StretchConfig(phi_max_sigma_m=0.0)
        with pytest.raises(ValueError):
            StretchConfig(phi_max_tau_min=-1.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            StretchConfig(w_sigma=-0.5, w_tau=1.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StretchConfig().w_sigma = 0.9


class TestGloveConfig:
    def test_defaults(self):
        cfg = GloveConfig()
        assert cfg.k == 2
        assert cfg.reshape is True
        assert not cfg.suppression.enabled

    def test_rejects_k_1(self):
        with pytest.raises(ValueError):
            GloveConfig(k=1)

    def test_nested_configs(self):
        cfg = GloveConfig(
            k=5,
            stretch=StretchConfig(phi_max_sigma_m=10_000.0),
            suppression=SuppressionConfig(spatial_threshold_m=5_000.0),
        )
        assert cfg.stretch.phi_max_sigma_m == 10_000.0
        assert cfg.suppression.enabled
