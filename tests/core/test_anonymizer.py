"""Tests for the anonymizer protocol/registry and result normalization."""

import pickle

import numpy as np
import pytest

from repro.core.anonymizer import (
    anonymize_dataset,
    available_anonymizers,
    get_anonymizer,
    normalize_glove,
    register_anonymizer,
)
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.glove import glove


class TestRegistry:
    def test_builtins_registered(self):
        assert available_anonymizers() == ["generalization", "glove", "nwa", "w4m-lc"]

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="w4m-lc"):
            get_anonymizer("gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_anonymizer(get_anonymizer("glove"))

    def test_make_config_builds_native_types(self):
        from repro.baselines.generalization import GeneralizationLevel
        from repro.baselines.nwa import NWAConfig
        from repro.baselines.w4m import W4MConfig

        assert isinstance(get_anonymizer("glove").make_config(k=3), GloveConfig)
        w4m = get_anonymizer("w4m-lc").make_config(k=3, delta_m=1_000.0)
        assert isinstance(w4m, W4MConfig) and w4m.delta_m == 1_000.0
        assert isinstance(get_anonymizer("nwa").make_config(), NWAConfig)
        gen = get_anonymizer("generalization").make_config(k=5, spatial_m=5_000.0)
        assert isinstance(gen, GeneralizationLevel) and gen.spatial_m == 5_000.0

    def test_only_glove_guarantees_k_anonymity(self):
        flags = {
            name: get_anonymizer(name).guarantees_k_anonymity
            for name in available_anonymizers()
        }
        assert flags == {
            "glove": True,
            "w4m-lc": False,
            "nwa": False,
            "generalization": False,
        }


class TestGloveNormalization:
    def test_dataset_identical_to_direct_run(self, small_civ):
        result = anonymize_dataset(small_civ, "glove", GloveConfig(k=2))
        direct = glove(small_civ, GloveConfig(k=2))
        assert len(result.dataset) == len(direct.dataset)
        assert all(
            a.uid == b.uid and a.members == b.members and np.array_equal(a.data, b.data)
            for a, b in zip(result.dataset, direct.dataset)
        )

    def test_truthfulness_schema(self, small_civ):
        stats = anonymize_dataset(small_civ, "glove", GloveConfig(k=2)).stats
        assert stats.created_samples == 0
        assert stats.discarded_fingerprints == 0
        assert stats.deleted_samples == 0
        assert stats.total_original_samples == small_civ.n_samples

    def test_groups_cover_population_at_k(self, small_civ):
        result = anonymize_dataset(small_civ, "glove", GloveConfig(k=2))
        assert all(len(g) >= 2 for g in result.groups)
        covered = {uid for g in result.groups for uid in g}
        assert covered == set(small_civ.uids)

    def test_suppression_split_matches_inline_run(self, small_civ):
        config = GloveConfig(
            k=2,
            suppression=SuppressionConfig(
                spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
            ),
        )
        split = anonymize_dataset(small_civ, "glove", config)
        inline = glove(small_civ, config)
        assert all(
            np.array_equal(a.data, b.data)
            for a, b in zip(split.dataset, inline.dataset)
        )
        assert split.raw.stats.suppression == inline.stats.suppression
        # The paper's accounting: the release keeps everyone, errors
        # and deletions are measured strictly.
        assert split.stats.discarded_fingerprints == 0
        assert split.stats.deleted_samples >= inline.stats.suppression.discarded_samples

    def test_normalize_glove_defers_error_matching(self, small_civ):
        result = normalize_glove(small_civ, glove(small_civ, GloveConfig(k=2)))
        assert result._stats is None  # deferred until first read
        assert result.stats.mean_position_error_m > 0
        assert result._stats is not None


class TestBaselineNormalization:
    def test_w4m_maps_native_stats(self, small_civ):
        from repro.baselines.w4m import W4MConfig, w4m_lc

        config = W4MConfig(k=2)
        result = anonymize_dataset(small_civ, "w4m-lc", config)
        native = w4m_lc(small_civ, config).stats
        assert result.stats.discarded_fingerprints == native.discarded_fingerprints
        assert result.stats.created_samples == native.created_samples
        assert result.stats.deleted_samples == native.deleted_samples
        assert result.stats.mean_position_error_m == native.mean_position_error_m
        assert result.groups == tuple(native.group_members)
        assert result.stats.n_groups == native.n_clusters

    def test_nwa_groups_partition_survivors(self, small_civ):
        result = anonymize_dataset(small_civ, "nwa")
        claimed = [uid for g in result.groups for uid in g]
        assert len(claimed) == len(set(claimed))
        assert set(claimed) == set(result.dataset.uids)
        assert len(claimed) == small_civ.n_users - result.stats.discarded_fingerprints

    def test_generalization_is_groupless_and_truthful(self, small_civ):
        result = anonymize_dataset(small_civ, "generalization")
        assert all(len(g) == 1 for g in result.groups)
        assert result.stats.created_samples == 0
        assert result.stats.discarded_fingerprints == 0
        assert len(result.dataset) == len(small_civ)

    def test_baseline_results_pickle_with_eager_stats(self, small_civ):
        # Artifact-store round trips require baseline results (and their
        # normalized stats) to survive pickling; glove results defer
        # normalization through a closure and are stored natively instead.
        result = anonymize_dataset(small_civ, "w4m-lc")
        clone = pickle.loads(pickle.dumps(result))
        assert clone.stats == result.stats
        assert clone.groups == result.groups
