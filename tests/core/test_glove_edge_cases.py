"""Edge-case tests for GLOVE beyond the happy path."""

import numpy as np
import pytest

from repro.core.config import ComputeConfig, GloveConfig, StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.glove import glove
from tests.conftest import make_fp


class TestPreGroupedInputs:
    def test_existing_groups_are_respected(self):
        """Fingerprints that already hide >= k users pass through."""
        ds = FingerprintDataset(
            [
                make_fp("g", [(0.0, 0.0, 0.0)], count=2, members=("a", "b")),
                make_fp("c", [(10.0, 0.0, 1.0)]),
                make_fp("d", [(20.0, 0.0, 2.0)]),
            ]
        )
        result = glove(ds, GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)
        index = {m: fp for fp in result.dataset for m in fp.members}
        # a and b were already safe; c and d must pair up.
        assert index["c"] is index["d"]
        assert index["a"].count >= 2

    def test_mixed_group_sizes_reach_k5(self):
        ds = FingerprintDataset(
            [
                make_fp("g3", [(0.0, 0.0, 0.0)], count=3, members=("a", "b", "c")),
                make_fp("u1", [(100.0, 0.0, 1.0)]),
                make_fp("u2", [(200.0, 0.0, 2.0)]),
                make_fp("u3", [(300.0, 0.0, 3.0)]),
                make_fp("u4", [(400.0, 0.0, 4.0)]),
            ]
        )
        result = glove(ds, GloveConfig(k=5))
        assert result.dataset.is_k_anonymous(5)
        assert result.dataset.n_users == 7


class TestDegenerateGeometry:
    def test_all_identical_fingerprints(self):
        fps = [make_fp(f"u{i}", [(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)]) for i in range(6)]
        result = glove(FingerprintDataset(fps), GloveConfig(k=3))
        assert result.dataset.is_k_anonymous(3)
        # Identical inputs merge at zero cost: traces stay intact.
        for fp in result.dataset:
            assert fp.m == 2

    def test_single_sample_users(self):
        fps = [make_fp(f"u{i}", [(i * 100.0, 0.0, float(i))]) for i in range(5)]
        result = glove(FingerprintDataset(fps), GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)

    def test_wildly_unequal_lengths(self):
        long = make_fp("long", [(float(i), 0.0, float(i)) for i in range(40)])
        short = make_fp("short", [(0.0, 0.0, 0.0)])
        result = glove(FingerprintDataset([long, short]), GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)
        assert result.dataset[0].m == 1  # bounded by the shorter parent

    def test_k_equals_population(self, small_civ):
        subset = FingerprintDataset(list(small_civ)[:5], name="five")
        result = glove(subset, GloveConfig(k=5))
        assert len(result.dataset) == 1
        assert result.dataset[0].count == 5


class TestLeftoverMerge:
    """The fold-in of a final non-anonymous leftover (see DESIGN.md)."""

    @staticmethod
    def _two_clusters_and_a_straggler():
        """Two tight pairs far apart plus a straggler near the second."""
        return FingerprintDataset(
            [
                make_fp("L1", [(0.0, 0.0, 0.0)]),
                make_fp("L2", [(10.0, 0.0, 1.0)]),
                make_fp("R1", [(80_000.0, 0.0, 0.0)]),
                make_fp("R2", [(80_010.0, 0.0, 1.0)]),
                make_fp("straggler", [(80_500.0, 0.0, 2.0)]),
            ]
        )

    def test_leftover_folds_into_nearest_finished_group(self):
        result = glove(self._two_clusters_and_a_straggler(), GloveConfig(k=2))
        assert result.stats.leftover_merged
        index = {m: fp for fp in result.dataset for m in fp.members}
        # The straggler must land in the right-hand group, not cross the
        # 80 km gap to the left-hand one.
        assert index["straggler"] is index["R1"]
        assert index["straggler"] is index["R2"]
        assert index["L1"] is index["L2"]

    def test_leftover_merge_counts_as_a_merge(self):
        result = glove(self._two_clusters_and_a_straggler(), GloveConfig(k=2))
        # Two pair merges plus the leftover fold.
        assert result.stats.n_merges == 3
        assert result.stats.n_output_fingerprints == 2
        assert result.dataset.is_k_anonymous(2)

    def test_leftover_group_exceeds_k(self):
        result = glove(self._two_clusters_and_a_straggler(), GloveConfig(k=2))
        counts = sorted(fp.count for fp in result.dataset)
        assert counts == [2, 3]

    @pytest.mark.parametrize("pruning", [True, False])
    def test_leftover_path_identical_with_pruning(self, pruning):
        baseline = glove(
            self._two_clusters_and_a_straggler(),
            GloveConfig(k=2),
            ComputeConfig(backend="numpy", pruning=False),
        )
        result = glove(
            self._two_clusters_and_a_straggler(),
            GloveConfig(k=2),
            ComputeConfig(backend="numpy", pruning=pruning),
        )
        assert result.stats.leftover_merged == baseline.stats.leftover_merged
        for a, b in zip(result.dataset, baseline.dataset):
            assert a.members == b.members
            np.testing.assert_array_equal(a.data, b.data)

    def test_no_leftover_on_even_arithmetic(self, small_civ):
        # 40 single users at k=2: every merge of two singles reaches
        # count == 2 and finishes immediately, so the population pairs
        # up evenly and no fold-in is required.
        result = glove(small_civ, GloveConfig(k=2))
        assert result.stats.n_input_fingerprints == 40
        assert all(fp.count == 2 for fp in result.dataset)
        assert not result.stats.leftover_merged

    def test_leftover_with_pregrouped_absorber(self):
        # The only finished group available is a pre-grouped input.
        ds = FingerprintDataset(
            [
                make_fp("g", [(0.0, 0.0, 0.0)], count=3, members=("a", "b", "c")),
                make_fp("solo", [(50.0, 0.0, 1.0)]),
            ]
        )
        result = glove(ds, GloveConfig(k=3))
        assert result.stats.leftover_merged
        assert len(result.dataset) == 1
        assert result.dataset[0].count == 4


class TestCustomMetric:
    def test_custom_stretch_config_flows_through(self, small_civ):
        subset = FingerprintDataset(list(small_civ)[:10], name="ten")
        config = GloveConfig(
            k=2, stretch=StretchConfig(phi_max_sigma_m=5_000.0, phi_max_tau_min=120.0)
        )
        result = glove(subset, config)
        assert result.dataset.is_k_anonymous(2)
        assert result.config.stretch.phi_max_sigma_m == 5_000.0

    def test_results_differ_under_skewed_metric(self, small_civ):
        subset = FingerprintDataset(list(small_civ)[:14], name="fourteen")
        default = glove(subset, GloveConfig(k=2))
        skewed = glove(
            subset,
            GloveConfig(k=2, stretch=StretchConfig(w_sigma=0.95, w_tau=0.05)),
        )
        # A radically different metric generally changes the pairing.
        default_groups = {frozenset(fp.members) for fp in default.dataset}
        skewed_groups = {frozenset(fp.members) for fp in skewed.dataset}
        # Not asserted strictly equal/different — just that both are
        # valid partitions of the same user set.
        assert {m for g in default_groups for m in g} == {
            m for g in skewed_groups for m in g
        }
