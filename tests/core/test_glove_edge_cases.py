"""Edge-case tests for GLOVE beyond the happy path."""

import numpy as np
import pytest

from repro.core.config import GloveConfig, StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.glove import glove
from tests.conftest import make_fp


class TestPreGroupedInputs:
    def test_existing_groups_are_respected(self):
        """Fingerprints that already hide >= k users pass through."""
        ds = FingerprintDataset(
            [
                make_fp("g", [(0.0, 0.0, 0.0)], count=2, members=("a", "b")),
                make_fp("c", [(10.0, 0.0, 1.0)]),
                make_fp("d", [(20.0, 0.0, 2.0)]),
            ]
        )
        result = glove(ds, GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)
        index = {m: fp for fp in result.dataset for m in fp.members}
        # a and b were already safe; c and d must pair up.
        assert index["c"] is index["d"]
        assert index["a"].count >= 2

    def test_mixed_group_sizes_reach_k5(self):
        ds = FingerprintDataset(
            [
                make_fp("g3", [(0.0, 0.0, 0.0)], count=3, members=("a", "b", "c")),
                make_fp("u1", [(100.0, 0.0, 1.0)]),
                make_fp("u2", [(200.0, 0.0, 2.0)]),
                make_fp("u3", [(300.0, 0.0, 3.0)]),
                make_fp("u4", [(400.0, 0.0, 4.0)]),
            ]
        )
        result = glove(ds, GloveConfig(k=5))
        assert result.dataset.is_k_anonymous(5)
        assert result.dataset.n_users == 7


class TestDegenerateGeometry:
    def test_all_identical_fingerprints(self):
        fps = [make_fp(f"u{i}", [(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)]) for i in range(6)]
        result = glove(FingerprintDataset(fps), GloveConfig(k=3))
        assert result.dataset.is_k_anonymous(3)
        # Identical inputs merge at zero cost: traces stay intact.
        for fp in result.dataset:
            assert fp.m == 2

    def test_single_sample_users(self):
        fps = [make_fp(f"u{i}", [(i * 100.0, 0.0, float(i))]) for i in range(5)]
        result = glove(FingerprintDataset(fps), GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)

    def test_wildly_unequal_lengths(self):
        long = make_fp("long", [(float(i), 0.0, float(i)) for i in range(40)])
        short = make_fp("short", [(0.0, 0.0, 0.0)])
        result = glove(FingerprintDataset([long, short]), GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)
        assert result.dataset[0].m == 1  # bounded by the shorter parent

    def test_k_equals_population(self, small_civ):
        subset = FingerprintDataset(list(small_civ)[:5], name="five")
        result = glove(subset, GloveConfig(k=5))
        assert len(result.dataset) == 1
        assert result.dataset[0].count == 5


class TestCustomMetric:
    def test_custom_stretch_config_flows_through(self, small_civ):
        subset = FingerprintDataset(list(small_civ)[:10], name="ten")
        config = GloveConfig(
            k=2, stretch=StretchConfig(phi_max_sigma_m=5_000.0, phi_max_tau_min=120.0)
        )
        result = glove(subset, config)
        assert result.dataset.is_k_anonymous(2)
        assert result.config.stretch.phi_max_sigma_m == 5_000.0

    def test_results_differ_under_skewed_metric(self, small_civ):
        subset = FingerprintDataset(list(small_civ)[:14], name="fourteen")
        default = glove(subset, GloveConfig(k=2))
        skewed = glove(
            subset,
            GloveConfig(k=2, stretch=StretchConfig(w_sigma=0.95, w_tau=0.05)),
        )
        # A radically different metric generally changes the pairing.
        default_groups = {frozenset(fp.members) for fp in default.dataset}
        skewed_groups = {frozenset(fp.members) for fp in skewed.dataset}
        # Not asserted strictly equal/different — just that both are
        # valid partitions of the same user set.
        assert {m for g in default_groups for m in g} == {
            m for g in skewed_groups for m in g
        }
