"""Tests for the k-gap anonymizability measure (paper Eq. 11)."""

import numpy as np
import pytest

from repro.core.kgap import (
    StretchComponentCache,
    kgap,
    kgap_sweep,
    stretch_decomposition,
)
from repro.core.pairwise import pairwise_matrix
from repro.core.dataset import FingerprintDataset
from tests.conftest import make_fp


class TestKGap:
    def test_twins_have_zero_gap(self, toy_dataset):
        result = kgap(toy_dataset, k=2)
        gaps = dict(zip(result.uids, result.gaps))
        assert gaps["u0"] == pytest.approx(0.0, abs=1e-12)
        assert gaps["u1"] == pytest.approx(0.0, abs=1e-12)

    def test_outlier_has_large_gap(self, toy_dataset):
        result = kgap(toy_dataset, k=2)
        gaps = dict(zip(result.uids, result.gaps))
        assert gaps["u5"] > gaps["u2"]
        assert gaps["u5"] > 0.4  # far away in both space and time

    def test_gap_in_unit_interval(self, small_civ):
        result = kgap(small_civ, k=2)
        assert (result.gaps >= 0).all() and (result.gaps <= 1).all()

    def test_gap_monotone_in_k(self, small_civ):
        matrix = pairwise_matrix(list(small_civ))
        g2 = kgap(small_civ, k=2, matrix=matrix).gaps
        g5 = kgap(small_civ, k=5, matrix=matrix).gaps
        g10 = kgap(small_civ, k=10, matrix=matrix).gaps
        assert (g5 >= g2 - 1e-12).all()
        assert (g10 >= g5 - 1e-12).all()

    def test_neighbors_sorted(self, toy_dataset):
        result = kgap(toy_dataset, k=4)
        assert (np.diff(result.neighbor_efforts, axis=1) >= 0).all()

    def test_gap_is_mean_of_neighbor_efforts(self, toy_dataset):
        result = kgap(toy_dataset, k=3)
        np.testing.assert_allclose(result.gaps, result.neighbor_efforts.mean(axis=1))

    def test_matrix_reuse_matches_fresh(self, toy_dataset):
        matrix = pairwise_matrix(list(toy_dataset))
        fresh = kgap(toy_dataset, k=2)
        reused = kgap(toy_dataset, k=2, matrix=matrix)
        np.testing.assert_allclose(fresh.gaps, reused.gaps)

    def test_k_too_large_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            kgap(toy_dataset, k=7)

    def test_k_below_two_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            kgap(toy_dataset, k=1)

    def test_fraction_anonymous(self, toy_dataset):
        result = kgap(toy_dataset, k=2)
        assert result.fraction_anonymous() == pytest.approx(2 / 6)

    def test_no_user_anonymous_in_cdr_data(self, small_civ):
        # The paper's Fig. 3a headline: CDF is zero at the origin.
        result = kgap(small_civ, k=2)
        assert result.fraction_anonymous() == 0.0


class TestKGapSweep:
    def test_sweep_gaps_match_per_level_calls(self, small_civ):
        matrix = pairwise_matrix(list(small_civ))
        sweep = kgap_sweep(small_civ, [2, 5, 10], matrix=matrix)
        for k in (2, 5, 10):
            single = kgap(small_civ, k=k, matrix=matrix)
            # Byte-identity: the prefix of the sorted k_max-1 efforts is
            # exactly the sorted k-1 efforts, so gaps match bitwise.
            np.testing.assert_array_equal(sweep[k].gaps, single.gaps)
            np.testing.assert_array_equal(
                sweep[k].neighbor_efforts, single.neighbor_efforts
            )
            assert sweep[k].uids == single.uids
            assert sweep[k].k == k

    def test_sweep_builds_matrix_once(self, toy_dataset):
        sweep = kgap_sweep(toy_dataset, [3, 2, 2])
        assert sorted(sweep) == [2, 3]
        single = kgap(toy_dataset, k=3)
        np.testing.assert_array_equal(sweep[3].gaps, single.gaps)

    def test_sweep_validation(self, toy_dataset):
        with pytest.raises(ValueError):
            kgap_sweep(toy_dataset, [])
        with pytest.raises(ValueError):
            kgap_sweep(toy_dataset, [1, 3])
        with pytest.raises(ValueError):
            kgap_sweep(toy_dataset, [2, 7])

    def test_sweep_results_do_not_alias(self, toy_dataset):
        sweep = kgap_sweep(toy_dataset, [2, 3])
        sweep[2].neighbor_efforts[:] = -1.0
        assert (sweep[3].neighbor_efforts >= 0.0).all()


class TestComponentCache:
    def test_cached_decomposition_matches_uncached(self, small_civ):
        result = kgap(small_civ, k=3)
        cache = StretchComponentCache(list(small_civ))
        plain = stretch_decomposition(small_civ, result)
        cached = stretch_decomposition(small_civ, result, cache=cache)
        for p, c in zip(plain, cached):
            assert p.uid == c.uid
            np.testing.assert_array_equal(p.delta, c.delta)
            np.testing.assert_array_equal(p.spatial, c.spatial)
            np.testing.assert_array_equal(p.temporal, c.temporal)

    def test_cache_reused_across_k_levels(self, small_civ):
        matrix = pairwise_matrix(list(small_civ))
        sweep = kgap_sweep(small_civ, [2, 4], matrix=matrix)
        cache = StretchComponentCache(list(small_civ))
        stretch_decomposition(small_civ, sweep[4], cache=cache)
        built = cache.n_pairs
        assert built > 0 and cache.hits == 0
        # The k=2 neighbour sets are prefixes of the k=4 ones: the
        # second decomposition must be answered entirely from the memo.
        stretch_decomposition(small_civ, sweep[2], cache=cache)
        assert cache.n_pairs == built
        assert cache.hits == len(list(small_civ))

    def test_repeat_decomposition_all_hits(self, toy_dataset):
        result = kgap(toy_dataset, k=2)
        cache = StretchComponentCache(list(toy_dataset))
        stretch_decomposition(toy_dataset, result, cache=cache)
        built, hits = cache.n_pairs, cache.hits
        stretch_decomposition(toy_dataset, result, cache=cache)
        assert cache.n_pairs == built
        assert cache.hits == hits + built


class TestDecomposition:
    def test_components_sum(self, toy_dataset):
        result = kgap(toy_dataset, k=2)
        for d in stretch_decomposition(toy_dataset, result):
            np.testing.assert_allclose(d.delta, d.spatial + d.temporal, atol=1e-12)

    def test_sizes_match_neighbors(self, toy_dataset):
        result = kgap(toy_dataset, k=3)
        fps = {fp.uid: fp for fp in toy_dataset}
        for d in stretch_decomposition(toy_dataset, result):
            # One matched component per sample of the longer fingerprint,
            # per neighbour; sizes are bounded below by k-1 samples.
            assert d.delta.size >= 2
            assert d.uid in fps

    def test_ratio_bounds(self, small_civ):
        result = kgap(small_civ, k=2)
        for d in stretch_decomposition(small_civ, result):
            assert 0.0 <= d.temporal_to_spatial_ratio <= 1.0

    def test_ratio_of_pure_temporal_difference(self):
        # Same place, different times: cost is fully temporal.
        ds = FingerprintDataset(
            [
                make_fp("a", [(0.0, 0.0, 0.0)]),
                make_fp("b", [(0.0, 0.0, 200.0)]),
            ]
        )
        result = kgap(ds, k=2)
        decomp = stretch_decomposition(ds, result)
        assert decomp[0].temporal_to_spatial_ratio == pytest.approx(1.0)
