"""Tests for the fingerprint merge operation (paper Eq. 12-13, Fig. 6a)."""

import numpy as np
import pytest

from repro.core.merge import covers, generalize_rows, merge_fingerprints, merge_sample_arrays
from repro.core.sample import DT, DX, DY, T, X, Y
from tests.conftest import make_fp


class TestGeneralizeRows:
    def test_single_row_unchanged(self):
        row = np.array([[10.0, 100.0, 20.0, 100.0, 5.0, 1.0]])
        np.testing.assert_array_equal(generalize_rows(row), row[0])

    def test_union_of_two(self):
        rows = np.array(
            [
                [0.0, 100.0, 0.0, 100.0, 0.0, 1.0],
                [300.0, 100.0, -50.0, 100.0, 10.0, 5.0],
            ]
        )
        out = generalize_rows(rows)
        assert out[X] == 0.0 and out[X] + out[DX] == 400.0
        assert out[Y] == -50.0 and out[Y] + out[DY] == 100.0
        assert out[T] == 0.0 and out[T] + out[DT] == 15.0

    def test_union_is_associative(self, rng):
        rows = np.column_stack(
            [
                rng.uniform(0, 1e4, 5),
                rng.uniform(1, 500, 5),
                rng.uniform(0, 1e4, 5),
                rng.uniform(1, 500, 5),
                rng.uniform(0, 1e3, 5),
                rng.uniform(1, 60, 5),
            ]
        )
        bulk = generalize_rows(rows)
        seq = rows[0]
        for i in range(1, 5):
            seq = generalize_rows(np.vstack([seq[None, :], rows[i][None, :]]))
        np.testing.assert_allclose(bulk, seq)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generalize_rows(np.empty((0, 6)))


class TestMergeSampleArrays:
    def test_requires_longer_first(self, toy_pair):
        a, b = toy_pair
        with pytest.raises(ValueError):
            merge_sample_arrays(b.data, a.data, 1, 1)

    def test_output_length_bounded_by_shorter(self, toy_pair):
        a, b = toy_pair
        merged = merge_sample_arrays(a.data, b.data, 1, 1)
        assert 1 <= merged.shape[0] <= b.m

    def test_covers_both_inputs(self, toy_pair):
        a, b = toy_pair
        merged = merge_sample_arrays(a.data, b.data, 1, 1)
        assert covers(merged, a.data)
        assert covers(merged, b.data)

    def test_identical_inputs_unchanged(self, toy_pair):
        a, _ = toy_pair
        merged = merge_sample_arrays(a.data, a.data, 1, 1)
        np.testing.assert_allclose(merged, a.data)

    def test_time_sorted_output(self, toy_pair):
        a, b = toy_pair
        merged = merge_sample_arrays(a.data, b.data, 1, 1)
        assert (np.diff(merged[:, T]) >= 0).all()

    def test_stage2_folds_unmatched_short_samples(self):
        # Long fingerprint clusters around one of short's samples; the
        # short's other sample is unmatched in stage 1 and must still be
        # covered after stage 2.
        long = make_fp(
            "a", [(0.0, 0.0, 0.0), (50.0, 0.0, 2.0), (100.0, 0.0, 4.0)]
        )
        short = make_fp("b", [(0.0, 0.0, 0.0), (50_000.0, 0.0, 5_000.0)])
        merged = merge_sample_arrays(long.data, short.data, 1, 1)
        assert covers(merged, short.data)
        assert covers(merged, long.data)


class TestMergeFingerprints:
    def test_counts_and_members_combine(self, toy_pair):
        a, b = toy_pair
        m = merge_fingerprints(a, b)
        assert m.count == 2
        assert set(m.members) == {"a", "b"}

    def test_order_invariant_by_length(self, toy_pair):
        a, b = toy_pair
        m1 = merge_fingerprints(a, b)
        m2 = merge_fingerprints(b, a)
        np.testing.assert_allclose(m1.data, m2.data)

    def test_merge_of_groups_accumulates_counts(self, toy_pair):
        a, b = toy_pair
        ab = merge_fingerprints(a, b)
        c = make_fp("c", [(500.0, 500.0, 50.0)])
        abc = merge_fingerprints(ab, c)
        assert abc.count == 3
        assert set(abc.members) == {"a", "b", "c"}

    def test_custom_uid(self, toy_pair):
        a, b = toy_pair
        assert merge_fingerprints(a, b, uid="g0").uid == "g0"

    def test_empty_rejected(self, toy_pair):
        import numpy as np

        from repro.core.fingerprint import Fingerprint

        a, _ = toy_pair
        empty = Fingerprint("e", np.empty((0, 6)))
        with pytest.raises(ValueError):
            merge_fingerprints(a, empty)


class TestCovers:
    def test_detects_uncovered(self):
        merged = np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 10.0]])
        outside = np.array([[500.0, 100.0, 0.0, 100.0, 0.0, 1.0]])
        assert not covers(merged, outside)

    def test_accepts_exact_match(self):
        data = np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 10.0]])
        assert covers(data, data)
