"""Tests for the stretch-effort metric (paper Eq. 1-10)."""

import numpy as np
import pytest

from repro.core.config import StretchConfig
from repro.core.sample import Sample
from repro.core.stretch import (
    fingerprint_stretch,
    left_right_stretch_1d,
    matched_stretch_components,
    phi_star_sigma,
    phi_star_tau,
    sample_stretch,
    sample_stretch_components,
    stretch_matrix,
)
from tests.conftest import make_fp


class TestLeftRightStretch:
    def test_disjoint(self):
        # a = [0, 100], b = [300, 400]: a must stretch right by 300.
        left, right = left_right_stretch_1d(0.0, 100.0, 300.0, 100.0)
        assert (left, right) == (0.0, 300.0)

    def test_partial_overlap(self):
        left, right = left_right_stretch_1d(100.0, 100.0, 50.0, 100.0)
        assert (left, right) == (50.0, 0.0)

    def test_total_overlap_contained(self):
        # b inside a: no stretch needed.
        left, right = left_right_stretch_1d(0.0, 300.0, 100.0, 100.0)
        assert (left, right) == (0.0, 0.0)

    def test_container_needs_both_sides(self):
        # a inside b: a stretches on both sides.
        left, right = left_right_stretch_1d(100.0, 100.0, 0.0, 300.0)
        assert (left, right) == (100.0, 100.0)


class TestPhiStar:
    def test_identical_samples_zero(self):
        s = Sample(x=0.0, y=0.0, t=0.0)
        assert phi_star_sigma(s, s) == 0.0
        assert phi_star_tau(s, s) == 0.0

    def test_spatial_is_symmetric_for_equal_counts(self):
        a = Sample(x=0.0, y=0.0, t=0.0)
        b = Sample(x=500.0, y=300.0, t=0.0)
        assert phi_star_sigma(a, b) == phi_star_sigma(b, a)

    def test_spatial_value_disjoint(self):
        # a at [0,100], b at [900,1000] on x; same y.  Each must stretch
        # 900 on x; weighted mean with n_a = n_b = 1 is 900.
        a = Sample(x=0.0, y=0.0, t=0.0)
        b = Sample(x=900.0, y=0.0, t=0.0)
        assert phi_star_sigma(a, b) == pytest.approx(900.0)

    def test_temporal_value(self):
        a = Sample(x=0.0, y=0.0, t=0.0)  # [0, 1]
        b = Sample(x=0.0, y=0.0, t=60.0)  # [60, 61]
        assert phi_star_tau(a, b) == pytest.approx(60.0)

    def test_count_weighting(self):
        # With n_a = 3, n_b = 1, the stretch of a's sample dominates.
        a = Sample(x=0.0, y=0.0, t=0.0, dx=100.0)
        b = Sample(x=0.0, y=0.0, t=0.0, dx=500.0)  # covers a's x range
        # a->b stretch: (500-100) = 400 on x; b->a stretch: 0.
        assert phi_star_sigma(a, b, n_a=3, n_b=1) == pytest.approx(400.0 * 0.75)
        assert phi_star_sigma(a, b, n_a=1, n_b=3) == pytest.approx(400.0 * 0.25)


class TestSampleStretch:
    def test_range(self):
        a = Sample(x=0.0, y=0.0, t=0.0)
        far = Sample(x=1e6, y=1e6, t=1e5)
        assert sample_stretch(a, a) == 0.0
        assert sample_stretch(a, far) == 1.0  # saturated in both axes

    def test_saturation_thresholds(self):
        cfg = StretchConfig()
        a = Sample(x=0.0, y=0.0, t=0.0)
        # Exactly the spatial threshold away (union extent minus own
        # extents saturates phi_sigma at 1): contributes w_sigma = 0.5.
        b = Sample(x=cfg.phi_max_sigma_m + 100.0, y=0.0, t=0.0)
        assert sample_stretch(a, b) == pytest.approx(0.5)

    def test_equivalence_points(self):
        # The paper's footnote 3: the phi_max ratio makes a ~0.5 km
        # spatial stretch weigh the same as a ~15 min temporal one.
        # Exact exchange rate: 20 km / 480 min, so 625 m <-> 15 min.
        a = Sample(x=0.0, y=0.0, t=0.0)
        spatial = Sample(x=625.0, y=0.0, t=0.0)  # raw x-stretch of 625 m
        temporal = Sample(x=0.0, y=0.0, t=15.0)  # raw t-stretch of 15 min
        ds = sample_stretch(a, spatial)
        dt = sample_stretch(a, temporal)
        assert ds == pytest.approx(dt, abs=1e-12)

    def test_components_sum_to_total(self):
        a = Sample(x=0.0, y=0.0, t=0.0)
        b = Sample(x=3000.0, y=500.0, t=100.0)
        s, t = sample_stretch_components(a, b)
        assert s + t == pytest.approx(sample_stretch(a, b))
        assert s > 0 and t > 0


class TestStretchMatrix:
    def test_matches_scalar_reference(self, toy_pair, rng):
        a, b = toy_pair
        mat = stretch_matrix(a.data, b.data)
        for i in range(a.m):
            for j in range(b.m):
                expected = sample_stretch(a[i], b[j])
                assert mat[i, j] == pytest.approx(expected, abs=1e-12)

    def test_matches_scalar_with_counts(self, toy_pair):
        a, b = toy_pair
        mat = stretch_matrix(a.data, b.data, n_a=4, n_b=2)
        for i in range(a.m):
            for j in range(b.m):
                expected = sample_stretch(a[i], b[j], n_a=4, n_b=2)
                assert mat[i, j] == pytest.approx(expected, abs=1e-12)

    def test_components_decompose(self, toy_pair):
        a, b = toy_pair
        delta, spatial, temporal = stretch_matrix(a.data, b.data, components=True)
        np.testing.assert_allclose(delta, spatial + temporal)

    def test_random_samples_in_unit_range(self, rng):
        a = np.column_stack(
            [
                rng.uniform(0, 1e5, 20),
                np.full(20, 100.0),
                rng.uniform(0, 1e5, 20),
                np.full(20, 100.0),
                rng.uniform(0, 1e4, 20),
                np.full(20, 1.0),
            ]
        )
        b = a[rng.permutation(20)][:10]
        mat = stretch_matrix(a, b)
        assert (mat >= 0).all() and (mat <= 1).all()


class TestFingerprintStretch:
    def test_identical_fingerprints_zero(self, toy_pair):
        a, _ = toy_pair
        assert fingerprint_stretch(a.data, a.data) == 0.0

    def test_symmetry(self, toy_pair):
        a, b = toy_pair
        assert fingerprint_stretch(a.data, b.data) == pytest.approx(
            fingerprint_stretch(b.data, a.data)
        )

    def test_averages_over_longer(self, toy_pair):
        a, b = toy_pair  # a has 3 samples, b has 2
        mat = stretch_matrix(a.data, b.data)
        expected = mat.min(axis=1).mean()
        assert fingerprint_stretch(a.data, b.data) == pytest.approx(expected)

    def test_empty_rejected(self, toy_pair):
        a, _ = toy_pair
        with pytest.raises(ValueError):
            fingerprint_stretch(a.data, np.empty((0, 6)))

    def test_subset_fingerprint_has_zero_stretch(self):
        # Every sample of the shorter fingerprint also appears in the
        # longer one: min-matching finds the identical sample.
        long = make_fp("a", [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0), (20.0, 0.0, 20.0)])
        short = make_fp("b", [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)])
        assert fingerprint_stretch(long.data, short.data) == pytest.approx(
            stretch_matrix(long.data, short.data).min(axis=1).mean()
        )


class TestMatchedComponents:
    def test_lengths_follow_longer(self, toy_pair):
        a, b = toy_pair
        d, s, t = matched_stretch_components(a.data, b.data)
        assert d.shape == (max(a.m, b.m),)
        np.testing.assert_allclose(d, s + t)

    def test_mean_equals_fingerprint_stretch(self, toy_pair):
        a, b = toy_pair
        d, _, _ = matched_stretch_components(a.data, b.data)
        assert d.mean() == pytest.approx(fingerprint_stretch(a.data, b.data))
