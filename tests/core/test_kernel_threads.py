"""Thread-splitter determinism and degradation of the compiled tier.

The compiled backend may split a batched multi-probe dispatch across
``kernel_threads`` GIL-released native calls.  Probes are independent in
the batched kernels (per-pair scratch re-zeroing, DESIGN.md D11), so any
split reproduces the unsplit call bit for bit — these tests pin that
guarantee end-to-end (whole ``glove()`` runs) and at the backend level,
plus the config/CLI validation surface and the no-binding degradation
path (batched pure twins, no crash).
"""

import hashlib

import numpy as np
import pytest

from repro.core import kernels
from repro.core.config import ComputeConfig, GloveConfig, StretchConfig
from repro.core.engine import (
    CompiledBackend,
    NumpyBackend,
    _effective_kernel_threads,
)
from repro.core.glove import glove
from repro.core.pairwise import PaddedFingerprints

from tests.core.test_kernel_parity import _run_fallback_probe


def _digest(result) -> str:
    h = hashlib.sha256()
    for fp in sorted(result.dataset, key=lambda f: f.uid):
        h.update(fp.uid.encode())
        h.update(np.ascontiguousarray(fp.data).tobytes())
        h.update(str(fp.count).encode())
    return h.hexdigest()


@pytest.fixture(scope="module")
def bench_dataset():
    from repro.core.artifacts import ArtifactStore
    from repro.core.pipeline import Pipeline
    from repro.core.scenarios import get_scenario

    sc = get_scenario("bench").scaled(n_users=48, days=2, seed=3)
    return sc.synthesize(Pipeline(ArtifactStore(root=None)))


@pytest.mark.skipif(
    not kernels.COMPILED_AVAILABLE, reason="no accelerated kernel binding"
)
class TestThreadDeterminism:
    def test_glove_identical_across_thread_counts(self, bench_dataset):
        digests = {}
        for nt in (1, 2, 8):
            result = glove(
                bench_dataset,
                GloveConfig(k=2),
                ComputeConfig(backend="compiled", kernel_threads=nt),
            )
            digests[nt] = _digest(result)
        assert digests[1] == digests[2] == digests[8]

    def test_glove_matches_numpy_reference(self, bench_dataset):
        reference = glove(
            bench_dataset, GloveConfig(k=2), ComputeConfig(backend="numpy")
        )
        threaded = glove(
            bench_dataset,
            GloveConfig(k=2),
            ComputeConfig(backend="compiled", kernel_threads=2),
        )
        assert _digest(threaded) == _digest(reference)

    def test_backend_rows_identical_across_splits(self, small_civ):
        fps = list(small_civ)[:12]
        packed = PaddedFingerprints(fps)
        probes = [fp.data for fp in fps[:5]]
        counts = [fp.count for fp in fps[:5]]
        targets = np.arange(len(fps), dtype=np.int64)
        t_lists = [targets[: 2 * p + 1] for p in range(5)]
        baseline = None
        baseline_some = None
        for nt in (1, 2, 3, 8):
            backend = CompiledBackend(
                ComputeConfig(backend="compiled", kernel_threads=nt), StretchConfig()
            )
            with backend:
                rows = backend.many_vs_all(probes, counts, packed, targets)
                rows_some = backend.many_vs_some(probes, counts, packed, t_lists)
            if baseline is None:
                baseline, baseline_some = rows, rows_some
            else:
                np.testing.assert_array_equal(rows, baseline)
                for got, ref in zip(rows_some, baseline_some):
                    np.testing.assert_array_equal(got, ref)
        numpy_backend = NumpyBackend(ComputeConfig(backend="numpy"), StretchConfig())
        np.testing.assert_array_equal(
            numpy_backend.many_vs_all(probes, counts, packed, targets), baseline
        )

    def test_thread_splitter_counts_crossings_per_slice(self, small_civ):
        fps = list(small_civ)[:8]
        packed = PaddedFingerprints(fps)
        probes = [fp.data for fp in fps[:6]]
        counts = [fp.count for fp in fps[:6]]
        targets = np.arange(len(fps), dtype=np.int64)
        backend = CompiledBackend(
            ComputeConfig(backend="compiled", kernel_threads=3), StretchConfig()
        )
        with backend:
            backend.many_vs_all(probes, counts, packed, targets)
        assert backend.n_boundary_crossings == 3
        assert backend.n_probe_dispatches == 6
        assert backend.n_batched_probes == 6


class TestKernelThreadsConfig:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="kernel_threads"):
            ComputeConfig(kernel_threads=0)
        with pytest.raises(ValueError, match="kernel_threads"):
            ComputeConfig(kernel_threads=-2)

    def test_explicit_field_wins(self):
        assert _effective_kernel_threads(ComputeConfig(kernel_threads=4)) == 4

    def test_env_knob_default_and_degradation(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        assert _effective_kernel_threads(ComputeConfig()) == 1
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        assert _effective_kernel_threads(ComputeConfig()) == 3
        # Knobs degrade, never error (DESIGN.md D6): malformed and
        # out-of-range env values fall back to one thread.
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "banana")
        assert _effective_kernel_threads(ComputeConfig()) == 1
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "-4")
        assert _effective_kernel_threads(ComputeConfig()) == 1


class TestKernelThreadsAuto:
    """The ``auto`` spelling resolves to the host CPU count.

    On a single-CPU host ``auto`` therefore never splits — the measured
    sweep on this class of workload (sharded large-n) is 18.5 s at one
    thread vs 23.9 s at eight, so over-splitting is a pessimization the
    resolver must not introduce on its own.
    """

    def test_config_auto_resolves_to_cpu_count(self):
        import os

        expected = max(1, os.cpu_count() or 1)
        assert _effective_kernel_threads(ComputeConfig(kernel_threads="auto")) == expected

    def test_env_auto_resolves_to_cpu_count(self, monkeypatch):
        import os

        expected = max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "auto")
        assert _effective_kernel_threads(ComputeConfig()) == expected
        # Case-insensitive, whitespace-tolerant — env knobs degrade,
        # they never error (DESIGN.md D6).
        monkeypatch.setenv("REPRO_KERNEL_THREADS", " AUTO ")
        assert _effective_kernel_threads(ComputeConfig()) == expected

    def test_config_validation_accepts_auto_rejects_other_strings(self):
        assert ComputeConfig(kernel_threads="auto").kernel_threads == "auto"
        with pytest.raises(ValueError, match="kernel_threads"):
            ComputeConfig(kernel_threads="banana")

    def test_cli_type_accepts_auto_and_ints(self):
        from repro.core.config import kernel_threads_arg

        assert kernel_threads_arg("auto") == "auto"
        assert kernel_threads_arg(" AUTO ") == "auto"
        assert kernel_threads_arg("4") == 4

    def test_cli_rejects_non_int_non_auto_with_exit_2(self):
        import argparse

        from repro.cli import build_parser
        from repro.core.config import kernel_threads_arg

        with pytest.raises(argparse.ArgumentTypeError):
            kernel_threads_arg("banana")
        parser = build_parser()
        # argparse converts the ArgumentTypeError into a usage error,
        # which exits with status 2 — the strict CLI policy.
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["measure", "ds.json", "--kernel-threads", "banana"])
        assert exc.value.code == 2
        args = parser.parse_args(["measure", "ds.json", "--kernel-threads", "auto"])
        assert args.kernel_threads == "auto"


class TestThreadedFallback:
    def test_batched_pure_twins_without_binding(self):
        # No accelerated tier: the batched entries must alias the pure
        # twins and a threaded glove run must still work (the splitter
        # lives in CompiledBackend, which cannot be constructed — the
        # auto backend degrades to the NumPy per-probe path).
        proc = _run_fallback_probe(
            """
            from repro.core import kernels
            assert kernels.COMPILED_TIER is None
            assert kernels.many_vs_all_arrays is kernels.many_vs_all_pure
            assert kernels.many_vs_some_arrays is kernels.many_vs_some_pure

            from repro.core.config import ComputeConfig, GloveConfig
            from repro.core.glove import glove
            from repro.core.scenarios import get_scenario
            from repro.core.pipeline import Pipeline
            from repro.core.artifacts import ArtifactStore

            sc = get_scenario("bench").scaled(n_users=24, days=1, seed=0)
            dataset = sc.synthesize(Pipeline(ArtifactStore(root=None)))
            result = glove(
                dataset, GloveConfig(k=2),
                ComputeConfig(backend="auto", kernel_threads=2),
            )
            assert result.dataset.is_k_anonymous(2)
            assert result.stats.n_batched_probes == 0
            assert result.stats.n_boundary_crossings > 0
            print("threaded-fallback-ok")
            """,
            {"REPRO_CC_KERNEL": "0"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "threaded-fallback-ok" in proc.stdout
