"""Tests for the content-addressed artifact store."""

import os
import pickle

import numpy as np
import pytest

from repro.core.artifacts import (
    MISS,
    ArtifactStore,
    canonical_key,
    dataset_digest,
    default_artifact_dir,
    source_digest,
)
from repro.core.config import GloveConfig, StretchConfig
from repro.core.dataset import FingerprintDataset

from tests.conftest import make_fp


class TestCanonicalKey:
    def test_key_order_independent(self):
        a = canonical_key("stage", {"x": 1, "y": "two"})
        b = canonical_key("stage", {"y": "two", "x": 1})
        assert a == b

    def test_distinguishes_values_and_stages(self):
        base = canonical_key("stage", {"x": 1})
        assert canonical_key("stage", {"x": 2}) != base
        assert canonical_key("other", {"x": 1}) != base

    def test_dataclass_fields_enter_the_key(self):
        a = canonical_key("s", {"config": GloveConfig(k=2)})
        b = canonical_key("s", {"config": GloveConfig(k=3)})
        assert a != b
        # Nested dataclass fields too.
        c = canonical_key("s", {"config": StretchConfig(phi_max_sigma_m=10_000.0)})
        d = canonical_key("s", {"config": StretchConfig(phi_max_sigma_m=20_000.0)})
        assert c != d

    def test_distinguishes_dataclass_types_with_equal_fields(self):
        # Two different config types must never collide just because
        # their field dicts happen to match.
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class First:
            x: int = 1

        @dataclass(frozen=True)
        class Second:
            x: int = 1

        assert canonical_key("s", {"c": First()}) != canonical_key("s", {"c": Second()})

    def test_rejects_unhashable_parameter_types(self):
        with pytest.raises(TypeError):
            canonical_key("s", {"x": object()})

    def test_float_params_keep_precision(self):
        a = canonical_key("s", {"x": 0.1 + 0.2})
        b = canonical_key("s", {"x": 0.3})
        assert a != b


class TestDatasetDigest:
    def test_identical_content_same_digest(self, small_civ):
        clone = FingerprintDataset(list(small_civ), name="other-name")
        assert dataset_digest(small_civ) == dataset_digest(clone)

    def test_name_excluded_data_included(self):
        a = FingerprintDataset([make_fp("u", [(0.0, 0.0, 0.0)])], name="a")
        b = FingerprintDataset([make_fp("u", [(0.0, 0.0, 1.0)])], name="a")
        assert dataset_digest(a) != dataset_digest(b)

    def test_count_and_members_included(self):
        rows = [(0.0, 0.0, 0.0)]
        a = FingerprintDataset([make_fp("u", rows)])
        b = FingerprintDataset([make_fp("u", rows, count=2, members=("u", "v"))])
        assert dataset_digest(a) != dataset_digest(b)


class TestSourceDigest:
    def test_stable_within_process(self):
        assert source_digest("repro.core") == source_digest("repro.core")

    def test_different_scopes_differ(self):
        assert source_digest("repro.core") != source_digest("repro.cdr")

    def test_accepts_plain_files(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("x = 1\n")
        assert source_digest(str(f))

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError):
            source_digest("no.such.module")


class TestArtifactStore:
    def test_round_trip_through_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        value = {"arr": np.arange(5.0)}
        store.put("stage", "k1", value)
        store.clear_memo()
        loaded = store.get("stage", "k1")
        assert np.array_equal(loaded["arr"], value["arr"])

    def test_miss_sentinel(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        assert store.get("stage", "missing") is MISS
        assert not store.contains("stage", "missing")

    def test_memo_only_without_root(self):
        store = ArtifactStore(root=None)
        store.put("stage", "k", 42)
        assert store.get("stage", "k") == 42
        assert not store.disk_enabled

    def test_fetch_reports_origin(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert store.fetch("s", "k", compute) == ("value", "computed")
        assert store.fetch("s", "k", compute) == ("value", "memo")
        store.clear_memo()
        assert store.fetch("s", "k", compute) == ("value", "disk")
        assert len(calls) == 1

    def test_corrupted_artifact_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put("s", "k", [1, 2, 3])
        store.clear_memo()
        (path,) = list(tmp_path.rglob("k.pkl"))
        path.write_bytes(b"not a pickle")
        assert store.get("s", "k") is MISS
        assert store.fetch("s", "k", lambda: "recomputed") == ("recomputed", "computed")

    def test_oversized_artifacts_stay_memo_only(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_artifact_bytes=64)
        store.put("s", "big", np.zeros(1000))
        assert list(tmp_path.rglob("*.pkl")) == []
        assert store.get("s", "big") is not MISS  # memo still serves it
        store.clear_memo()
        assert store.get("s", "big") is MISS

    def test_lru_eviction_keeps_recently_used(self, tmp_path):
        payload = os.urandom(4000)
        store = ArtifactStore(root=tmp_path, max_bytes=10_000)
        store.put("s", "a", payload)
        store.put("s", "b", payload)
        # Refresh 'a' so 'b' is the least recently used...
        os.utime(store._path("s", "b"), (1, 1))
        store.clear_memo()
        store.get("s", "a")
        # ...then push past the bound.
        store.put("s", "c", payload)
        store.clear_memo()
        assert store.get("s", "a") is not MISS
        assert store.get("s", "c") is not MISS
        assert store.get("s", "b") is MISS

    def test_from_env_cache_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        store = ArtifactStore.from_env()
        assert not store.disk_enabled

    def test_from_env_artifact_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "store"))
        assert default_artifact_dir() == tmp_path / "store"
        store = ArtifactStore.from_env()
        store.put("s", "k", 1)
        assert list((tmp_path / "store").rglob("k.pkl"))

    def test_unpicklable_values_stay_memo_only(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        value = lambda: None  # noqa: E731 - deliberately unpicklable
        store.put("s", "k", value)
        assert store.get("s", "k") is value
        assert list(tmp_path.rglob("*.pkl")) == []
