"""Tests for the content-addressed artifact store."""

import os
import pickle

import numpy as np
import pytest

from repro.core.artifacts import (
    MISS,
    ArtifactStore,
    canonical_key,
    dataset_digest,
    default_artifact_dir,
    source_digest,
)
from repro.core.config import GloveConfig, StretchConfig
from repro.core.dataset import FingerprintDataset

from tests.conftest import make_fp


class TestCanonicalKey:
    def test_key_order_independent(self):
        a = canonical_key("stage", {"x": 1, "y": "two"})
        b = canonical_key("stage", {"y": "two", "x": 1})
        assert a == b

    def test_distinguishes_values_and_stages(self):
        base = canonical_key("stage", {"x": 1})
        assert canonical_key("stage", {"x": 2}) != base
        assert canonical_key("other", {"x": 1}) != base

    def test_dataclass_fields_enter_the_key(self):
        a = canonical_key("s", {"config": GloveConfig(k=2)})
        b = canonical_key("s", {"config": GloveConfig(k=3)})
        assert a != b
        # Nested dataclass fields too.
        c = canonical_key("s", {"config": StretchConfig(phi_max_sigma_m=10_000.0)})
        d = canonical_key("s", {"config": StretchConfig(phi_max_sigma_m=20_000.0)})
        assert c != d

    def test_distinguishes_dataclass_types_with_equal_fields(self):
        # Two different config types must never collide just because
        # their field dicts happen to match.
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class First:
            x: int = 1

        @dataclass(frozen=True)
        class Second:
            x: int = 1

        assert canonical_key("s", {"c": First()}) != canonical_key("s", {"c": Second()})

    def test_rejects_unhashable_parameter_types(self):
        with pytest.raises(TypeError):
            canonical_key("s", {"x": object()})

    def test_float_params_keep_precision(self):
        a = canonical_key("s", {"x": 0.1 + 0.2})
        b = canonical_key("s", {"x": 0.3})
        assert a != b


class TestDatasetDigest:
    def test_identical_content_same_digest(self, small_civ):
        clone = FingerprintDataset(list(small_civ), name="other-name")
        assert dataset_digest(small_civ) == dataset_digest(clone)

    def test_name_excluded_data_included(self):
        a = FingerprintDataset([make_fp("u", [(0.0, 0.0, 0.0)])], name="a")
        b = FingerprintDataset([make_fp("u", [(0.0, 0.0, 1.0)])], name="a")
        assert dataset_digest(a) != dataset_digest(b)

    def test_count_and_members_included(self):
        rows = [(0.0, 0.0, 0.0)]
        a = FingerprintDataset([make_fp("u", rows)])
        b = FingerprintDataset([make_fp("u", rows, count=2, members=("u", "v"))])
        assert dataset_digest(a) != dataset_digest(b)


class TestSourceDigest:
    def test_stable_within_process(self):
        assert source_digest("repro.core") == source_digest("repro.core")

    def test_different_scopes_differ(self):
        assert source_digest("repro.core") != source_digest("repro.cdr")

    def test_accepts_plain_files(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("x = 1\n")
        assert source_digest(str(f))

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError):
            source_digest("no.such.module")


class TestArtifactStore:
    def test_round_trip_through_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        value = {"arr": np.arange(5.0)}
        store.put("stage", "k1", value)
        store.clear_memo()
        loaded = store.get("stage", "k1")
        assert np.array_equal(loaded["arr"], value["arr"])

    def test_miss_sentinel(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        assert store.get("stage", "missing") is MISS
        assert not store.contains("stage", "missing")

    def test_memo_only_without_root(self):
        store = ArtifactStore(root=None)
        store.put("stage", "k", 42)
        assert store.get("stage", "k") == 42
        assert not store.disk_enabled

    def test_fetch_reports_origin(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert store.fetch("s", "k", compute) == ("value", "computed")
        assert store.fetch("s", "k", compute) == ("value", "memo")
        store.clear_memo()
        assert store.fetch("s", "k", compute) == ("value", "disk")
        assert len(calls) == 1

    def test_corrupted_artifact_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put("s", "k", [1, 2, 3])
        store.clear_memo()
        (path,) = list(tmp_path.rglob("k.pkl"))
        path.write_bytes(b"not a pickle")
        assert store.get("s", "k") is MISS
        assert store.fetch("s", "k", lambda: "recomputed") == ("recomputed", "computed")

    def test_oversized_artifacts_stay_memo_only(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_artifact_bytes=64)
        store.put("s", "big", np.zeros(1000))
        assert list(tmp_path.rglob("*.pkl")) == []
        assert store.get("s", "big") is not MISS  # memo still serves it
        store.clear_memo()
        assert store.get("s", "big") is MISS

    def test_lru_eviction_keeps_recently_used(self, tmp_path):
        payload = os.urandom(4000)
        store = ArtifactStore(root=tmp_path, max_bytes=10_000)
        store.put("s", "a", payload)
        store.put("s", "b", payload)
        # Refresh 'a' so 'b' is the least recently used...
        os.utime(store._path("s", "b"), (1, 1))
        store.clear_memo()
        store.get("s", "a")
        # ...then push past the bound.
        store.put("s", "c", payload)
        store.clear_memo()
        assert store.get("s", "a") is not MISS
        assert store.get("s", "c") is not MISS
        assert store.get("s", "b") is MISS

    def test_from_env_cache_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        store = ArtifactStore.from_env()
        assert not store.disk_enabled

    def test_from_env_artifact_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "store"))
        assert default_artifact_dir() == tmp_path / "store"
        store = ArtifactStore.from_env()
        store.put("s", "k", 1)
        assert list((tmp_path / "store").rglob("k.pkl"))

    def test_unpicklable_values_stay_memo_only(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        value = lambda: None  # noqa: E731 - deliberately unpicklable
        store.put("s", "k", value)
        assert store.get("s", "k") is value
        assert list(tmp_path.rglob("*.pkl")) == []

    def test_reput_does_not_inflate_size_accounting(self, tmp_path):
        # Regression: put() used to add len(payload) on every write
        # without subtracting the replaced artifact, so re-putting one
        # key drifted the estimate upward until it crossed max_bytes
        # and evicted a store that was nowhere near full.
        payload = os.urandom(2000)
        store = ArtifactStore(root=tmp_path, max_bytes=100_000)
        for _ in range(100):
            store.put("s", "same-key", payload)
        actual = store.disk_bytes()
        assert store.backend._approx_bytes == actual
        # 100 re-puts of a ~2 KB pickle must not approach the bound...
        assert actual < 10_000
        # ...and nothing may have been evicted.
        store.clear_memo()
        assert store.get("s", "same-key") is not MISS

    def test_stale_tmp_files_swept_on_eviction(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put("s", "k", b"payload")
        stage_dir = store._path("s", "k").parent
        stale = stage_dir / "orphanAAAA.tmp"
        stale.write_bytes(b"half-written by a killed worker")
        os.utime(stale, (1, 1))  # ancient: well past the sweep age
        fresh = stage_dir / "orphanBBBB.tmp"
        fresh.write_bytes(b"another writer, mid-flight right now")
        store.evict()
        assert not stale.exists()  # orphan swept
        assert fresh.exists()  # in-flight writer untouched
        store.clear_memo()
        assert store.get("s", "k") is not MISS


class TestFromEnvDegradation:
    def test_malformed_size_knobs_fall_back_with_warning(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
        monkeypatch.setenv("REPRO_CACHE_MAX_ARTIFACT_MB", "64MB")
        store = ArtifactStore.from_env(root=tmp_path)  # must not raise
        assert store.max_bytes == 512 * 1024 * 1024
        assert store.max_artifact_bytes == 64 * 1024 * 1024
        err = capsys.readouterr().err
        assert "REPRO_CACHE_MAX_MB" in err
        assert "REPRO_CACHE_MAX_ARTIFACT_MB" in err

    def test_malformed_stale_lock_knob_falls_back(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_STALE_LOCK_S", "five minutes")
        store = ArtifactStore.from_env(root=tmp_path)
        assert store.stale_lock_timeout == 300.0
        assert "REPRO_CACHE_STALE_LOCK_S" in capsys.readouterr().err

    def test_unknown_backend_falls_back_to_disk(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_BACKEND", "etcd")
        store = ArtifactStore.from_env(root=tmp_path)
        assert store.backend.name == "disk"
        assert "REPRO_ARTIFACT_BACKEND" in capsys.readouterr().err

    def test_env_backend_honoured(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_BACKEND", "sqlite")
        store = ArtifactStore.from_env(root=tmp_path)
        assert store.backend.name == "sqlite"

    def test_explicit_backend_overrides_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_BACKEND", "sqlite")
        store = ArtifactStore.from_env(root=tmp_path, backend="disk")
        assert store.backend.name == "disk"


class TestSourceDigestRelativePaths:
    def _make_package(self, root, body_a, body_b):
        """A tiny package with two same-basename modules in different
        subpackages — the shape the basename-only digest conflated."""
        pkg = root / "digestpkg"
        for sub in ("alpha", "beta"):
            (pkg / sub).mkdir(parents=True)
            (pkg / sub / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "alpha" / "mod.py").write_text(body_a)
        (pkg / "beta" / "mod.py").write_text(body_b)
        return pkg

    def test_moving_a_module_changes_the_digest(self, tmp_path, monkeypatch):
        # Regression: only path.name entered the hash, so moving a
        # module between subpackages (same basename, same bytes) kept
        # the digest stable and could serve stale artifacts.
        import importlib
        import sys

        monkeypatch.syspath_prepend(str(tmp_path))
        self._make_package(tmp_path, "A = 1\n", "B = 2\n")
        importlib.invalidate_caches()
        from repro.core import artifacts

        monkeypatch.setattr(artifacts, "_SOURCE_DIGESTS", {})
        before = source_digest("digestpkg")
        # Swap the two files: identical byte *set*, different layout.
        a = (tmp_path / "digestpkg" / "alpha" / "mod.py").read_text()
        b = (tmp_path / "digestpkg" / "beta" / "mod.py").read_text()
        (tmp_path / "digestpkg" / "alpha" / "mod.py").write_text(b)
        (tmp_path / "digestpkg" / "beta" / "mod.py").write_text(a)
        monkeypatch.setattr(artifacts, "_SOURCE_DIGESTS", {})
        after = source_digest("digestpkg")
        sys.modules.pop("digestpkg", None)
        assert before != after
