"""Tests for the vectorized bulk stretch kernels."""

import numpy as np
import pytest

from repro.core.pairwise import PaddedFingerprints, k_nearest, one_vs_all, pairwise_matrix
from repro.core.stretch import fingerprint_stretch
from tests.conftest import make_fp


@pytest.fixture
def ragged_fps(rng):
    """Fingerprints of varied lengths to exercise padding."""
    fps = []
    for i, m in enumerate([3, 7, 1, 5, 2]):
        rows = [
            (float(rng.uniform(0, 5e4)), float(rng.uniform(0, 5e4)), float(rng.uniform(0, 2e3)))
            for _ in range(m)
        ]
        fps.append(make_fp(f"u{i}", rows))
    return fps


class TestPacking:
    def test_shapes(self, ragged_fps):
        packed = PaddedFingerprints(ragged_fps)
        assert packed.data.shape == (5, 7, 6)
        assert packed.mask.sum() == 3 + 7 + 1 + 5 + 2
        np.testing.assert_array_equal(packed.lengths, [3, 7, 1, 5, 2])

    def test_rejects_empty_collection(self):
        with pytest.raises(ValueError):
            PaddedFingerprints([])

    def test_rejects_empty_fingerprint(self):
        import numpy as np

        from repro.core.fingerprint import Fingerprint

        with pytest.raises(ValueError):
            PaddedFingerprints([Fingerprint("e", np.empty((0, 6)))])


class TestOneVsAll:
    def test_matches_pairwise_reference(self, ragged_fps):
        packed = PaddedFingerprints(ragged_fps)
        for i, fp in enumerate(ragged_fps):
            vals = one_vs_all(fp.data, fp.count, packed)
            for j, other in enumerate(ragged_fps):
                if i == j:
                    continue
                expected = fingerprint_stretch(fp.data, other.data)
                assert vals[j] == pytest.approx(expected, abs=1e-12), (i, j)

    def test_self_distance_zero(self, ragged_fps):
        packed = PaddedFingerprints(ragged_fps)
        vals = one_vs_all(ragged_fps[1].data, 1, packed)
        assert vals[1] == pytest.approx(0.0, abs=1e-12)

    def test_subset_indices(self, ragged_fps):
        packed = PaddedFingerprints(ragged_fps)
        all_vals = one_vs_all(ragged_fps[0].data, 1, packed)
        sub = one_vs_all(ragged_fps[0].data, 1, packed, indices=np.array([2, 4]))
        np.testing.assert_allclose(sub, all_vals[[2, 4]])

    def test_chunking_invariant(self, ragged_fps):
        packed = PaddedFingerprints(ragged_fps)
        v1 = one_vs_all(ragged_fps[0].data, 1, packed, chunk=1)
        v2 = one_vs_all(ragged_fps[0].data, 1, packed, chunk=256)
        np.testing.assert_allclose(v1, v2)

    def test_count_weights_respected(self, ragged_fps):
        from repro.core.fingerprint import Fingerprint

        heavy = Fingerprint(
            "h", ragged_fps[0].data, count=5, members=tuple(f"m{i}" for i in range(5))
        )
        packed = PaddedFingerprints(ragged_fps)
        vals_heavy = one_vs_all(heavy.data, 5, packed)
        expected = [
            fingerprint_stretch(heavy.data, fp.data, n_a=5, n_b=1) for fp in ragged_fps
        ]
        np.testing.assert_allclose(vals_heavy, expected, atol=1e-12)


class TestPairwiseMatrix:
    def test_symmetric_with_inf_diagonal(self, ragged_fps):
        mat = pairwise_matrix(ragged_fps)
        assert np.isinf(np.diag(mat)).all()
        off = ~np.eye(len(ragged_fps), dtype=bool)
        np.testing.assert_allclose(mat[off], mat.T[off])

    def test_values_in_unit_interval(self, ragged_fps):
        mat = pairwise_matrix(ragged_fps)
        off = ~np.eye(len(ragged_fps), dtype=bool)
        assert (mat[off] >= 0).all() and (mat[off] <= 1).all()


class TestKNearest:
    def test_nearest_neighbour(self):
        mat = np.array(
            [
                [np.inf, 0.1, 0.5],
                [0.1, np.inf, 0.2],
                [0.5, 0.2, np.inf],
            ]
        )
        idx, eff = k_nearest(mat, 1)
        np.testing.assert_array_equal(idx[:, 0], [1, 0, 1])
        np.testing.assert_allclose(eff[:, 0], [0.1, 0.1, 0.2])

    def test_sorted_by_effort(self):
        mat = np.array(
            [
                [np.inf, 0.3, 0.1, 0.2],
                [0.3, np.inf, 0.4, 0.5],
                [0.1, 0.4, np.inf, 0.6],
                [0.2, 0.5, 0.6, np.inf],
            ]
        )
        idx, eff = k_nearest(mat, 3)
        assert (np.diff(eff, axis=1) >= 0).all()
        np.testing.assert_array_equal(idx[0], [2, 3, 1])

    def test_rejects_too_large_k(self):
        mat = np.full((3, 3), np.inf)
        with pytest.raises(ValueError):
            k_nearest(mat, 3)

    def test_rejects_zero_k(self):
        mat = np.full((3, 3), np.inf)
        with pytest.raises(ValueError):
            k_nearest(mat, 0)
