"""Tests for the pluggable stretch-compute engine."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.config import DEFAULT_CHUNK, ComputeConfig, GloveConfig, StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.engine import (
    NumpyBackend,
    SlotStore,
    StretchEngine,
    _BACKENDS,
    available_backends,
    compute_pairwise_matrix,
    create_backend,
    get_default_compute,
    register_backend,
    set_default_compute,
)
from repro.core.glove import glove
from repro.core.merge import merge_fingerprints
from repro.core.pairwise import PaddedFingerprints, one_vs_all, pairwise_matrix
from repro.core.parallel import parallel_pairwise_matrix
from tests.conftest import make_fp
from tests.properties.test_k_anonymity import populations


class TestSlotStore:
    def test_packs_and_appends(self, small_civ):
        fps = list(small_civ)[:6]
        store = SlotStore(fps)
        assert len(store) == 6
        assert store.capacity == 12
        assert store.alive[:6].all()
        np.testing.assert_array_equal(store.lengths[:6], [fp.m for fp in fps])

    def test_retire_marks_dead(self, small_civ):
        store = SlotStore(list(small_civ)[:4])
        store.retire(2)
        assert not store.alive[2]
        with pytest.raises(ValueError):
            store.retire(2)

    def test_grows_past_initial_capacity(self):
        fps = [make_fp(f"u{i}", [(float(i), 0.0, float(i))]) for i in range(3)]
        store = SlotStore(fps)
        for i in range(10):
            store.append(make_fp(f"extra{i}", [(0.0, 0.0, 0.0)]))
        assert len(store) == 13
        assert store.capacity >= 13
        assert store.fps[12].uid == "extra9"

    def test_rejects_oversized_fingerprint(self):
        store = SlotStore([make_fp("a", [(0.0, 0.0, 0.0)])])
        tall = make_fp("b", [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
        with pytest.raises(ValueError, match="exceeding"):
            store.append(tall)

    def test_view_matches_packed(self, small_civ):
        fps = list(small_civ)[:5]
        store = SlotStore(fps)
        packed = PaddedFingerprints(fps)
        view = store.view()
        np.testing.assert_array_equal(view.data, packed.data)
        np.testing.assert_array_equal(view.mask, packed.mask)


class TestBackendEquivalence:
    """Backends must be value-transparent: byte-identical results."""

    def test_matrix_process_equals_numpy(self, small_civ):
        fps = list(small_civ)[:20]
        stretch = StretchConfig()
        seq = compute_pairwise_matrix(fps, stretch, ComputeConfig(backend="numpy"))
        par = compute_pairwise_matrix(
            fps, stretch, ComputeConfig(backend="process", workers=2)
        )
        np.testing.assert_array_equal(seq, par)

    def test_matrix_matches_legacy_kernels(self, small_civ):
        fps = list(small_civ)[:15]
        engine_mat = compute_pairwise_matrix(fps, compute=ComputeConfig(backend="numpy"))
        np.testing.assert_array_equal(engine_mat, pairwise_matrix(fps))
        np.testing.assert_array_equal(
            engine_mat, parallel_pairwise_matrix(fps, n_workers=2, block=4)
        )

    def test_sharded_one_vs_all_equals_inline(self, small_civ):
        fps = list(small_civ)[:16]
        stretch = StretchConfig()
        packed = PaddedFingerprints(fps)
        targets = np.arange(1, len(fps))
        inline = create_backend(ComputeConfig(backend="numpy"), stretch)
        sharded = create_backend(
            ComputeConfig(backend="process", workers=2, parallel_targets_threshold=1),
            stretch,
        )
        with inline, sharded:
            a = inline.one_vs_all(fps[0].data, fps[0].count, packed, targets)
            b = sharded.one_vs_all(fps[0].data, fps[0].count, packed, targets)
        np.testing.assert_array_equal(a, b)

    def test_glove_identical_across_backends(self, small_civ):
        config = GloveConfig(k=3)
        results = {
            name: glove(small_civ, config, ComputeConfig(backend=name))
            for name in ("numpy", "process", "auto")
        }
        reference = results["numpy"]
        for name, result in results.items():
            assert result.stats.n_merges == reference.stats.n_merges, name
            for a, b in zip(result.dataset, reference.dataset):
                assert a.members == b.members, name
                np.testing.assert_array_equal(a.data, b.data)

    def test_glove_identical_with_and_without_pruning(self, small_civ):
        config = GloveConfig(k=2)
        pruned = glove(small_civ, config, ComputeConfig(backend="numpy", pruning=True))
        full = glove(small_civ, config, ComputeConfig(backend="numpy", pruning=False))
        assert pruned.stats.n_merges == full.stats.n_merges
        for a, b in zip(pruned.dataset, full.dataset):
            assert a.members == b.members
            np.testing.assert_array_equal(a.data, b.data)
        assert pruned.stats.n_pruned_evaluations > 0
        assert full.stats.n_pruned_evaluations == 0
        assert pruned.stats.n_exact_evaluations < full.stats.n_exact_evaluations


class TestLowerBounds:
    """The pruning bounds must never exceed the exact Eq. 10 effort."""

    @pytest.fixture
    def engine(self, small_civ):
        return StretchEngine(list(small_civ), compute=ComputeConfig(backend="numpy"))

    def test_hull_bound_is_a_lower_bound(self, engine):
        n = len(engine.store)
        for slot in range(0, n, 5):
            targets = np.array([t for t in range(n) if t != slot], dtype=np.int64)
            exact = engine.row(slot, targets)
            lb = engine.hull_lower_bounds(slot, targets)
            assert (lb <= exact + 1e-12).all()

    def test_bucket_bound_is_a_lower_bound_and_tighter(self, engine):
        n = len(engine.store)
        total_lb0 = total_lb1 = 0.0
        for slot in range(0, n, 5):
            targets = np.array([t for t in range(n) if t != slot], dtype=np.int64)
            exact = engine.row(slot, targets)
            lb0 = engine.hull_lower_bounds(slot, targets)
            lb1 = engine.bucket_lower_bounds(slot, targets)
            assert (lb1 <= exact + 1e-12).all()
            assert (lb0 <= lb1 + 1e-12).all()
            total_lb0 += lb0.sum()
            total_lb1 += lb1.sum()
        assert total_lb1 >= total_lb0

    def test_bounds_stay_valid_for_merge_products(self, engine, small_civ):
        fps = list(small_civ)
        merged = merge_fingerprints(fps[0], fps[1], StretchConfig())
        slot = engine.append(merged)
        targets = np.arange(2, 10, dtype=np.int64)
        exact = engine.row(slot, targets)
        assert (engine.hull_lower_bounds(slot, targets) <= exact + 1e-12).all()
        assert (engine.bucket_lower_bounds(slot, targets) <= exact + 1e-12).all()


class TestKernelProperties:
    """Property-based guarantees over randomized fingerprint populations.

    The greedy loop evaluates pairs from whichever side is cheaper, so
    the kernel must be *bitwise* direction-symmetric (DESIGN.md D4);
    and pruning is only exact if every lower bound is admissible
    (bound <= exact stretch, level 0 <= level 1).
    """

    @given(populations(max_users=6))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_direction_symmetry(self, dataset):
        fps = list(dataset)
        packed = PaddedFingerprints(fps)
        stretch = StretchConfig()
        for i in range(len(fps)):
            for j in range(i + 1, len(fps)):
                ij = one_vs_all(
                    fps[i].data, fps[i].count, packed, stretch,
                    indices=np.array([j], dtype=np.int64),
                )[0]
                ji = one_vs_all(
                    fps[j].data, fps[j].count, packed, stretch,
                    indices=np.array([i], dtype=np.int64),
                )[0]
                assert ij == ji  # bitwise, not approximate

    @given(populations(max_users=8))
    @settings(max_examples=40, deadline=None)
    def test_lower_bounds_admissible(self, dataset):
        fps = list(dataset)
        engine = StretchEngine(fps, compute=ComputeConfig(backend="numpy"))
        n = len(fps)
        for slot in range(n):
            targets = np.array([t for t in range(n) if t != slot], dtype=np.int64)
            exact = engine.row(slot, targets)
            lb0 = engine.hull_lower_bounds(slot, targets)
            lb1 = engine.bucket_lower_bounds(slot, targets)
            assert (lb0 <= lb1 + 1e-12).all()
            assert (lb1 <= exact + 1e-12).all()


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert {"numpy", "process", "auto"} <= set(names)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            create_backend(ComputeConfig(backend="quantum"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_custom_backend_drives_glove(self, small_civ):
        calls = []

        class TracingBackend(NumpyBackend):
            name = "tracing"

            def one_vs_all(self, probe_data, probe_count, packed, targets):
                calls.append(len(targets))
                return super().one_vs_all(probe_data, probe_count, packed, targets)

            # The batched merge frontier coalesces refresh scans into
            # ragged multi-probe dispatches, so a backend is exercised
            # through this entry point as well (Issue 6).
            def many_vs_some(self, probes, probe_counts, packed, targets_list):
                calls.extend(len(t) for t in targets_list)
                return super().many_vs_some(probes, probe_counts, packed, targets_list)

        register_backend("tracing", TracingBackend)
        try:
            result = glove(small_civ, GloveConfig(k=2), ComputeConfig(backend="tracing"))
            reference = glove(small_civ, GloveConfig(k=2), ComputeConfig(backend="numpy"))
            assert calls, "custom backend was never invoked"
            for a, b in zip(result.dataset, reference.dataset):
                assert a.members == b.members
        finally:
            _BACKENDS.pop("tracing", None)


class TestAutoSelection:
    def test_small_workload_stays_in_process(self, small_civ):
        fps = list(small_civ)[:10]
        backend = create_backend(ComputeConfig(backend="auto"), StretchConfig())
        with backend:
            backend.pairwise_matrix(PaddedFingerprints(fps))
            assert backend._process is None  # the pool was never spun up

    def test_large_matrix_routing_prefers_inline_compiled(self, small_civ):
        """Pool engages on big matrices only without a compiled inline tier.

        At the measured per-pair costs (~0.97 µs inline compiled vs
        ~26 µs through the fork-and-pickle pool) the pool can never win
        against the compiled kernels, so workload size alone must not
        send work there (Issue 10 satellite).
        """
        from repro.core import kernels

        fps = list(small_civ)[:10]
        compute = ComputeConfig(backend="auto", workers=2, parallel_matrix_threshold=4)
        backend = create_backend(compute, StretchConfig())
        with backend:
            mat = backend.pairwise_matrix(PaddedFingerprints(fps))
            if kernels.COMPILED_AVAILABLE:
                assert backend._process is None  # inline compiled wins
            else:
                assert backend._process is not None
        np.testing.assert_array_equal(mat, pairwise_matrix(fps))


class TestDefaultCompute:
    def test_round_trip(self):
        original = get_default_compute()
        replacement = ComputeConfig(backend="numpy", chunk=64)
        try:
            previous = set_default_compute(replacement)
            assert previous is original
            assert get_default_compute() is replacement
        finally:
            set_default_compute(original)

    def test_glove_uses_installed_default(self, small_civ):
        original = get_default_compute()
        try:
            set_default_compute(ComputeConfig(backend="numpy", pruning=False))
            result = glove(small_civ, GloveConfig(k=2))
            assert result.stats.n_pruned_evaluations == 0
        finally:
            set_default_compute(original)


class TestComputeConfig:
    def test_chunk_single_source_of_truth(self):
        from repro.core import pairwise

        assert ComputeConfig().chunk == DEFAULT_CHUNK == pairwise.DEFAULT_CHUNK

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk": 0},
            {"workers": 0},
            {"shards": 0},
            {"shards": -4},
            {"shard_strategy": "geo"},
            {"lb_bucket_minutes": -1.0},
            {"lb_max_buckets": 0},
            {"parallel_matrix_threshold": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ComputeConfig(**kwargs)

    def test_chunking_never_changes_values(self, small_civ):
        fps = list(small_civ)[:12]
        a = compute_pairwise_matrix(fps, compute=ComputeConfig(backend="numpy", chunk=1))
        b = compute_pairwise_matrix(fps, compute=ComputeConfig(backend="numpy", chunk=256))
        np.testing.assert_array_equal(a, b)


class TestEngineLifecycle:
    def test_context_manager_closes_backend(self, small_civ):
        closed = []

        class ClosingBackend(NumpyBackend):
            name = "closing"

            def close(self):
                closed.append(True)

        register_backend("closing", ClosingBackend)
        try:
            with StretchEngine(list(small_civ)[:4], compute=ComputeConfig(backend="closing")):
                pass
            assert closed == [True]
        finally:
            _BACKENDS.pop("closing", None)

    def test_row_matches_matrix(self, small_civ):
        engine = StretchEngine(
            list(small_civ)[:8], compute=ComputeConfig(backend="numpy")
        )
        mat = engine.pairwise_matrix()
        row = engine.row(3, np.array([0, 1, 2, 4, 5, 6, 7]))
        np.testing.assert_array_equal(row, mat[3, [0, 1, 2, 4, 5, 6, 7]])


class TestDispatchCounters:
    """Per-run native-vs-inline dispatch accounting (DESIGN.md D11).

    The counters make a silent per-probe fallback observable: a batched
    frontier that degrades to P crossings per pass shows up in the
    backend's ``dispatch_counters()`` and in ``GloveStats`` instead of
    only in wall time.
    """

    def _probes(self, small_civ, n=4):
        fps = list(small_civ)[:8]
        packed = PaddedFingerprints(fps)
        probes = [fp.data for fp in fps[:n]]
        counts = [fp.count for fp in fps[:n]]
        targets = np.arange(len(fps), dtype=np.int64)
        return packed, probes, counts, targets

    def test_numpy_many_vs_all_counts_per_probe(self, small_civ):
        packed, probes, counts, targets = self._probes(small_civ)
        backend = NumpyBackend(ComputeConfig(backend="numpy"), StretchConfig())
        backend.many_vs_all(probes, counts, packed, targets)
        assert backend.dispatch_counters() == (4, 4, 0, 0)
        backend.one_vs_all(probes[0], counts[0], packed, targets)
        assert backend.dispatch_counters() == (5, 5, 0, 0)

    def test_compiled_many_vs_all_counts_one_crossing(self, small_civ):
        from repro.core import kernels

        if not kernels.COMPILED_AVAILABLE:
            pytest.skip("no accelerated kernel binding")
        from repro.core.engine import CompiledBackend

        packed, probes, counts, targets = self._probes(small_civ)
        backend = CompiledBackend(ComputeConfig(backend="compiled"), StretchConfig())
        with backend:
            backend.many_vs_all(probes, counts, packed, targets)
            assert backend.dispatch_counters() == (1, 4, 4, 0)
            backend.many_vs_some(probes, counts, packed, [targets] * 4)
            assert backend.dispatch_counters() == (2, 8, 8, 0)

    def test_auto_backend_aggregates_children(self, small_civ):
        from repro.core.engine import AutoBackend

        packed, probes, counts, targets = self._probes(small_civ)
        backend = AutoBackend(ComputeConfig(backend="auto", workers=1), StretchConfig())
        with backend:
            backend.many_vs_all(probes, counts, packed, targets)
            crossings, dispatches, batched, _ = backend.dispatch_counters()
        assert dispatches == 4
        # Aggregation covers whichever inline tier the environment has:
        # batched native (1 crossing) or the per-probe NumPy fallback.
        assert crossings in (1, 4)

    def test_glove_stats_harvest_counters(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2), ComputeConfig(backend="numpy"))
        stats = result.stats
        assert stats.n_boundary_crossings > 0
        assert stats.n_probe_dispatches >= stats.n_batched_probes
        # The numpy tier has no batched native entries.
        assert stats.n_batched_probes == 0

    def test_sharded_stats_harvest_counters(self, small_civ):
        result = glove(
            small_civ,
            GloveConfig(k=2),
            ComputeConfig(backend="sharded", shards=2, workers=1),
        )
        assert result.stats.n_boundary_crossings > 0
        assert result.stats.n_probe_dispatches > 0
