"""Tests for partial-fingerprint anonymization (paper Section 7 extension)."""

import numpy as np
import pytest

from repro.core.config import GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.partial import (
    partial_glove,
    time_window_model,
    top_locations_model,
)
from tests.conftest import make_fp


class TestKnowledgeModels:
    def test_top_locations_mask(self):
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 0.0),
                (0.0, 0.0, 10.0),
                (500.0, 0.0, 20.0),
                (900.0, 0.0, 30.0),
            ],
        )
        mask = top_locations_model(1)(fp)
        np.testing.assert_array_equal(mask, [True, True, False, False])

    def test_top_locations_validation(self):
        with pytest.raises(ValueError):
            top_locations_model(0)

    def test_time_window_mask(self):
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 8 * 60.0),     # 08:00 -> inside 8-18
                (0.0, 0.0, 20 * 60.0),    # 20:00 -> outside
                (0.0, 0.0, 24 * 60 + 9 * 60.0),  # next day 09:00 -> inside
            ],
        )
        mask = time_window_model(8, 18)(fp)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_time_window_validation(self):
        with pytest.raises(ValueError):
            time_window_model(18, 8)
        with pytest.raises(ValueError):
            time_window_model(-1, 8)


class TestPartialGlove:
    def test_exposed_part_is_k_anonymous(self, small_civ):
        result = partial_glove(small_civ, time_window_model(8, 18), GloveConfig(k=2))
        assert result.exposed_result.dataset.is_k_anonymous(2)

    def test_all_users_published(self, small_civ):
        result = partial_glove(small_civ, time_window_model(8, 18), GloveConfig(k=2))
        members = []
        for fp in result.dataset:
            members.extend(fp.members)
        assert sorted(members) == sorted(small_civ.uids)

    def test_hidden_samples_keep_original_granularity(self, small_civ):
        model = time_window_model(8, 18)
        result = partial_glove(small_civ, model, GloveConfig(k=2))
        # Count original-granularity samples in the output: at least the
        # unexposed ones survive untouched.
        original_rows = 0
        for fp in result.dataset:
            original_rows += int(
                ((fp.data[:, 1] == 100.0) & (fp.data[:, 5] == 1.0)).sum()
            )
        hidden_total = sum(
            int((~model(fp)).sum()) for fp in small_civ
        )
        assert original_rows >= hidden_total * 0.9  # ties may generalize a few

    def test_utility_beats_full_glove(self, small_civ):
        """The whole point of the relaxation: more samples keep accuracy."""
        from repro.analysis.accuracy import extent_accuracy
        from repro.core.glove import glove

        full = glove(small_civ, GloveConfig(k=2))
        part = partial_glove(small_civ, time_window_model(9, 17), GloveConfig(k=2))
        s_full, _ = extent_accuracy(full.dataset)
        s_part, _ = extent_accuracy(part.dataset)
        assert float(s_part(200.0)) >= float(s_full(200.0))

    def test_exposed_fraction_reported(self, small_civ):
        result = partial_glove(small_civ, time_window_model(0, 24), GloveConfig(k=2))
        assert result.exposed_fraction == pytest.approx(1.0)

    def test_rejects_grouped_input(self):
        ds = FingerprintDataset(
            [
                make_fp("g", [(0.0, 0.0, 0.0)], count=2, members=("a", "b")),
                make_fp("c", [(0.0, 0.0, 5.0)]),
            ]
        )
        with pytest.raises(ValueError, match="per-subscriber"):
            partial_glove(ds, time_window_model(0, 24))

    def test_rejects_when_too_few_exposed(self):
        ds = FingerprintDataset(
            [
                make_fp("a", [(0.0, 0.0, 30.0)]),       # 00:30, outside window
                make_fp("b", [(0.0, 0.0, 10 * 60.0)]),  # inside
                make_fp("c", [(0.0, 0.0, 45.0)]),       # outside
            ]
        )
        with pytest.raises(ValueError, match="exposed"):
            partial_glove(ds, time_window_model(8, 18), GloveConfig(k=2))

    def test_users_without_exposure_pass_through(self):
        ds = FingerprintDataset(
            [
                make_fp("a", [(0.0, 0.0, 10 * 60.0)]),
                make_fp("b", [(10.0, 0.0, 11 * 60.0)]),
                make_fp("night", [(0.0, 0.0, 2 * 60.0)]),
            ]
        )
        result = partial_glove(ds, time_window_model(8, 18), GloveConfig(k=2))
        assert result.n_users_without_exposure == 1
        assert "night" in result.dataset
        np.testing.assert_array_equal(
            result.dataset["night"].data, ds["night"].data
        )
