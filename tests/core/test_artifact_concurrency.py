"""Multi-process contracts of the artifact store (DESIGN.md D10).

Three guarantees, each parametrized over the disk and SQLite backends:

* **single flight** — N concurrent cold ``fetch()`` calls for one key,
  from separate processes, compute exactly once; everyone receives
  byte-identical values (the PR's acceptance criterion);
* **stress** — workers hammering overlapping put/get/evict on a tiny
  size bound never raise, never serve a torn pickle, and end within
  the byte bound;
* **liveness** — a killed flight owner never wedges a waiter beyond
  the stale-lock timeout.

Workers are module-level functions (fork *and* spawn picklable); the
fork start method is preferred for speed and skipped cleanly where the
platform lacks it.
"""

import hashlib
import multiprocessing as mp
import os
import pickle
import random
import signal
import time

import pytest

from repro.core.artifacts import MISS, ArtifactStore

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="needs the fork start method",
)

_CTX = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else None


def _single_flight_worker(backend, root, counter_path, barrier, out_q):
    """One of N contenders for the same cold key."""
    store = ArtifactStore(root=root, backend=backend)

    def compute():
        # O_APPEND writes are atomic at this size: one line per compute,
        # visible across processes without any coordination of our own.
        fd = os.open(counter_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT)
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        os.close(fd)
        time.sleep(0.3)  # a visibly expensive computation
        return {"table": list(range(256)), "who": "first"}

    barrier.wait()  # line everyone up on the cold key
    value, origin = store.fetch("stage", "contended-key", compute)
    digest = hashlib.sha256(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()
    out_q.put((origin, digest))


@pytest.mark.parametrize("backend", ["disk", "sqlite"])
def test_eight_process_cold_fetch_computes_exactly_once(tmp_path, backend):
    """The acceptance criterion: N=8 processes, 1 compute, identical bytes."""
    n = 8
    counter = tmp_path / "computes.log"
    barrier = _CTX.Barrier(n)
    out_q = _CTX.Queue()
    procs = [
        _CTX.Process(
            target=_single_flight_worker,
            args=(backend, str(tmp_path / "store"), str(counter), barrier, out_q),
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    outs = [out_q.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0
    compute_lines = counter.read_text().splitlines()
    assert len(compute_lines) == 1  # exactly one process paid for it
    origins = sorted(origin for origin, _ in outs)
    assert origins == ["computed"] + ["disk"] * (n - 1)
    assert len({digest for _, digest in outs}) == 1  # byte-identical


def _stress_worker(backend, root, max_bytes, seed, barrier, out_q):
    """Random overlapping put/get/evict traffic against a shared store."""
    store = ArtifactStore(root=root, backend=backend, max_bytes=max_bytes)
    rng = random.Random(seed)
    keys = [f"key{i}" for i in range(8)]
    torn = errors = 0
    barrier.wait()
    try:
        for _ in range(60):
            key = rng.choice(keys)
            op = rng.random()
            if op < 0.5:
                # Deterministic per-key payload: any reader can verify
                # integrity without coordinating with the writer.
                store.put("s", key, key * 500)
            elif op < 0.9:
                store.clear_memo()  # force a real backend read
                value = store.get("s", key)
                if value is not MISS and value != key * 500:
                    torn += 1
            else:
                store.evict()
    except Exception:
        errors += 1
    out_q.put((errors, torn))


@pytest.mark.parametrize("backend", ["disk", "sqlite"])
def test_multiprocess_stress_never_tears_and_stays_bounded(tmp_path, backend):
    workers, max_bytes = 4, 32_000
    barrier = _CTX.Barrier(workers)
    out_q = _CTX.Queue()
    procs = [
        _CTX.Process(
            target=_stress_worker,
            args=(backend, str(tmp_path / "store"), max_bytes, seed, barrier, out_q),
        )
        for seed in range(workers)
    ]
    for p in procs:
        p.start()
    outs = [out_q.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0
    assert sum(errors for errors, _ in outs) == 0
    assert sum(torn for _, torn in outs) == 0
    # The bound is enforced on the *final* state (concurrent writers can
    # transiently overshoot between a put and its eviction pass).
    store = ArtifactStore(root=tmp_path / "store", backend=backend, max_bytes=max_bytes)
    store.evict()
    assert store.disk_bytes() <= max_bytes


def _crashing_owner(backend, root, barrier):
    """Acquire the flight for a key, signal readiness, then die hard."""
    store = ArtifactStore(root=root, backend=backend, stale_lock_timeout=60.0)
    with store.backend.single_flight("stage", "key"):
        barrier.wait()
        time.sleep(60)  # never reached: killed while holding the lock


@pytest.mark.parametrize("backend", ["disk", "sqlite"])
def test_killed_owner_never_wedges_waiters(tmp_path, backend):
    barrier = _CTX.Barrier(2)
    owner = _CTX.Process(
        target=_crashing_owner, args=(backend, str(tmp_path / "store"), barrier)
    )
    owner.start()
    barrier.wait(timeout=30)  # the owner holds the flight now
    os.kill(owner.pid, signal.SIGKILL)
    owner.join(timeout=30)
    # Disk: the kernel releases a dead owner's flock immediately.
    # SQLite: the claim row goes stale and is broken after the timeout.
    store = ArtifactStore(
        root=tmp_path / "store", backend=backend, stale_lock_timeout=1.0
    )
    t0 = time.monotonic()
    value, origin = store.fetch("stage", "key", lambda: "recovered")
    waited = time.monotonic() - t0
    assert (value, origin) == ("recovered", "computed")
    assert waited < 10.0  # bounded recovery, not a 60 s wedge
