"""Tests for the GLOVE algorithm (paper Alg. 1)."""

import numpy as np
import pytest

from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.glove import glove
from repro.core.merge import covers
from tests.conftest import make_fp


class TestKAnonymityGuarantee:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_output_is_k_anonymous(self, small_civ, k):
        result = glove(small_civ, GloveConfig(k=k))
        assert result.dataset.is_k_anonymous(k)

    def test_every_group_reaches_k(self, small_civ):
        result = glove(small_civ, GloveConfig(k=3))
        assert all(fp.count >= 3 for fp in result.dataset)

    def test_all_users_preserved(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2))
        out_members = sorted(m for fp in result.dataset for m in fp.members)
        assert out_members == sorted(small_civ.uids)

    def test_no_fingerprints_discarded(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2))
        assert result.dataset.n_users == small_civ.n_users


class TestTruthfulness:
    def test_published_samples_cover_originals(self, small_civ):
        # PPDP principle P2: every published sample is a generalization
        # of real samples; every original sample is covered by its
        # group's published fingerprint.
        result = glove(small_civ, GloveConfig(k=2))
        index = {m: fp for fp in result.dataset for m in fp.members}
        for fp in small_civ:
            group = index[fp.uid]
            assert covers(group.data, fp.data), fp.uid

    def test_no_samples_created(self, small_civ):
        # Merged group length never exceeds the shorter parent, so the
        # output sample count is bounded by the input's.
        result = glove(small_civ, GloveConfig(k=2))
        assert result.dataset.n_samples <= small_civ.n_samples


class TestToyBehavior:
    def test_twins_merge_first(self, toy_dataset):
        result = glove(toy_dataset, GloveConfig(k=2))
        index = {m: fp for fp in result.dataset for m in fp.members}
        assert index["u0"] is index["u1"]

    def test_twin_merge_costs_nothing(self, toy_dataset):
        result = glove(toy_dataset, GloveConfig(k=2))
        index = {m: fp for fp in result.dataset for m in fp.members}
        group = index["u0"]
        if group.count == 2:
            # Their shared group keeps the exact original trace.
            np.testing.assert_allclose(group.data, toy_dataset["u0"].data)

    def test_odd_population_leftover_merged(self):
        fps = [
            make_fp("a", [(0.0, 0.0, 0.0)]),
            make_fp("b", [(10.0, 0.0, 1.0)]),
            make_fp("c", [(20.0, 0.0, 2.0)]),
        ]
        result = glove(FingerprintDataset(fps), GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)
        assert result.dataset.n_users == 3
        assert result.stats.leftover_merged

    def test_two_users_one_group(self):
        fps = [make_fp("a", [(0.0, 0.0, 0.0)]), make_fp("b", [(10.0, 0.0, 1.0)])]
        result = glove(FingerprintDataset(fps), GloveConfig(k=2))
        assert len(result.dataset) == 1
        assert result.dataset[0].count == 2


class TestStats:
    def test_merge_count(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2))
        # Every merge reduces the fingerprint count by one.
        assert result.stats.n_merges == len(small_civ) - len(result.dataset)
        assert result.stats.n_input_fingerprints == len(small_civ)
        assert result.stats.n_output_fingerprints == len(result.dataset)

    def test_suppression_stats_present_when_disabled(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2))
        assert result.stats.suppression.discarded_samples == 0


class TestSuppressionIntegration:
    def test_suppression_reduces_samples(self, small_civ):
        plain = glove(small_civ, GloveConfig(k=2))
        suppressed = glove(
            small_civ,
            GloveConfig(
                k=2,
                suppression=SuppressionConfig(
                    spatial_threshold_m=10_000.0, temporal_threshold_min=240.0
                ),
            ),
        )
        assert suppressed.dataset.n_samples <= plain.dataset.n_samples
        assert suppressed.stats.suppression.discarded_samples >= 0

    def test_suppressed_output_still_k_anonymous_per_groups(self, small_civ):
        # Suppression filters samples uniformly within a group record,
        # so group counts (and hence k-anonymity) are preserved.
        result = glove(
            small_civ,
            GloveConfig(
                k=2,
                suppression=SuppressionConfig(spatial_threshold_m=10_000.0),
            ),
        )
        assert all(fp.count >= 2 for fp in result.dataset)


class TestValidation:
    def test_rejects_k_above_population(self):
        fps = [make_fp("a", [(0.0, 0.0, 0.0)])]
        with pytest.raises(ValueError):
            glove(FingerprintDataset(fps), GloveConfig(k=2))

    def test_rejects_empty_fingerprints(self):
        from repro.core.fingerprint import Fingerprint

        ds = FingerprintDataset(
            [
                make_fp("a", [(0.0, 0.0, 0.0)]),
                Fingerprint("e", np.empty((0, 6))),
            ]
        )
        with pytest.raises(ValueError, match="empty"):
            glove(ds, GloveConfig(k=2))

    def test_config_rejects_k_below_2(self):
        with pytest.raises(ValueError):
            GloveConfig(k=1)


class TestReshapeOption:
    def test_no_reshape_may_leave_overlaps(self, small_civ):
        from repro.core.reshape import has_temporal_overlap

        result = glove(small_civ, GloveConfig(k=2, reshape=False))
        # With reshape on, no published fingerprint has overlaps.
        reshaped = glove(small_civ, GloveConfig(k=2, reshape=True))
        assert not any(has_temporal_overlap(fp.data) for fp in reshaped.dataset)
        # Without it, the merge may produce them (not guaranteed, but
        # the output must still be k-anonymous either way).
        assert result.dataset.is_k_anonymous(2)

    def test_determinism(self, small_civ):
        r1 = glove(small_civ, GloveConfig(k=2))
        r2 = glove(small_civ, GloveConfig(k=2))
        assert len(r1.dataset) == len(r2.dataset)
        for fp1, fp2 in zip(r1.dataset, r2.dataset):
            np.testing.assert_allclose(fp1.data, fp2.data)
