"""Tests for the staged compute-once pipeline."""

import numpy as np
import pytest

from repro.core.artifacts import ArtifactStore
from repro.core.config import ComputeConfig, GloveConfig, StretchConfig
from repro.core.glove import glove
from repro.core.kgap import kgap
from repro.core.pipeline import (
    Pipeline,
    compute_result_signature,
    get_default_pipeline,
    set_default_pipeline,
)


@pytest.fixture
def memo_pipeline():
    """A fresh memo-only pipeline (no disk side effects)."""
    return Pipeline(ArtifactStore(root=None))


@pytest.fixture
def disk_pipeline(tmp_path):
    """A pipeline backed by a private on-disk store."""
    return Pipeline(ArtifactStore(root=tmp_path / "store"))


def _datasets_equal(a, b):
    return len(a) == len(b) and all(
        x.uid == y.uid
        and x.count == y.count
        and x.members == y.members
        and np.array_equal(x.data, y.data)
        for x, y in zip(a, b)
    )


class TestDatasetStage:
    def test_computes_each_key_exactly_once(self, memo_pipeline):
        p = memo_pipeline
        a = p.dataset("synth-civ", n_users=20, days=1, seed=3)
        b = p.dataset("synth-civ", n_users=20, days=1, seed=3)
        c = p.dataset("synth-civ", n_users=20, days=1, seed=4)
        assert a is b and a is not c
        stats = p.stats["dataset"]
        assert stats.computed == 2
        assert stats.memo_hits == 1
        assert all(count == 1 for count in stats.computed_labels.values())

    def test_matches_direct_synthesis(self, memo_pipeline):
        from repro.cdr.datasets import synthesize

        cached = memo_pipeline.dataset("synth-civ", n_users=20, days=1, seed=3)
        direct = synthesize("synth-civ", n_users=20, days=1, seed=3)
        assert _datasets_equal(cached, direct)

    def test_disk_hit_across_pipeline_instances(self, tmp_path):
        root = tmp_path / "store"
        first = Pipeline(ArtifactStore(root=root))
        a = first.dataset("synth-civ", n_users=20, days=1, seed=3)
        second = Pipeline(ArtifactStore(root=root))
        b = second.dataset("synth-civ", n_users=20, days=1, seed=3)
        assert second.stats["dataset"].disk_hits == 1
        assert second.stats["dataset"].computed == 0
        assert _datasets_equal(a, b)


class TestGloveStage:
    def test_cache_on_equals_cache_off(self, memo_pipeline, small_civ):
        off = Pipeline(ArtifactStore(root=None), enabled=False)
        cached = memo_pipeline.anonymize(small_civ, GloveConfig(k=2))
        fresh = off.anonymize(small_civ, GloveConfig(k=2))
        assert off.stats["glove"].computed == 1
        assert _datasets_equal(cached.dataset, fresh.dataset)
        assert cached.raw.stats.n_merges == fresh.raw.stats.n_merges

    def test_disk_round_trip_byte_identical(self, disk_pipeline, small_civ):
        p = disk_pipeline
        first = p.anonymize(small_civ, GloveConfig(k=2))
        p.store.clear_memo()
        again = p.anonymize(small_civ, GloveConfig(k=2))
        assert p.stats["glove"].disk_hits == 1
        assert first is not again
        assert _datasets_equal(first.dataset, again.dataset)

    def test_content_addressing_shares_across_sources(self, memo_pipeline, small_civ, tmp_path):
        # A CSV round trip of the same records hits the same artifact.
        from repro.cdr.io import read_events_csv, write_events_csv

        path = tmp_path / "events.csv"
        write_events_csv(small_civ, path)
        reloaded = read_events_csv(path)
        memo_pipeline.anonymize(small_civ, GloveConfig(k=2))
        memo_pipeline.anonymize(reloaded, GloveConfig(k=2))
        assert memo_pipeline.stats["glove"].computed == 1
        assert memo_pipeline.stats["glove"].memo_hits == 1

    def test_config_enters_the_key(self, memo_pipeline, small_civ):
        memo_pipeline.anonymize(small_civ, GloveConfig(k=2))
        memo_pipeline.anonymize(small_civ, GloveConfig(k=3))
        assert memo_pipeline.stats["glove"].computed == 2


class TestComputeResultSignature:
    def test_kernel_backends_share_artifacts(self):
        # numpy/process/auto are byte-identical (DESIGN.md D4): one key.
        assert compute_result_signature(ComputeConfig(backend="numpy")) == {}
        assert compute_result_signature(ComputeConfig(backend="process", workers=4)) == {}
        assert compute_result_signature(ComputeConfig(backend="auto", chunk=32)) == {}
        assert compute_result_signature(None) == {}

    def test_pruning_and_chunking_excluded(self):
        a = compute_result_signature(ComputeConfig(backend="numpy", pruning=False))
        b = compute_result_signature(ComputeConfig(backend="numpy", chunk=8))
        assert a == b == {}

    def test_sharded_driver_keyed_separately(self):
        sig = compute_result_signature(ComputeConfig(backend="sharded", shards=4))
        assert sig == {"backend": "sharded", "shards": 4, "shard_strategy": "time"}

    def test_single_shard_normalizes_to_unsharded(self):
        # shards=1 is byte-identical to the unsharded path (DESIGN.md D5).
        assert compute_result_signature(ComputeConfig(backend="sharded", shards=1)) == {}

    def test_effective_shards_resolved_from_population(self):
        # Auto shard picking is deterministic in n: a population small
        # enough for one shard shares the unsharded artifact, and an
        # explicit count is clamped before keying.
        assert compute_result_signature(ComputeConfig(backend="sharded"), 100) == {}
        clamped = compute_result_signature(ComputeConfig(backend="sharded", shards=4), 3)
        assert clamped["shards"] == 3

    def test_sharded_auto_on_small_population_hits_unsharded_artifact(
        self, memo_pipeline, small_civ
    ):
        memo_pipeline.anonymize(small_civ, GloveConfig(k=2))
        memo_pipeline.anonymize(
            small_civ, GloveConfig(k=2), ComputeConfig(backend="sharded")
        )
        assert memo_pipeline.stats["glove"].computed == 1
        assert memo_pipeline.stats["glove"].memo_hits == 1

    def test_sharded_results_cached_per_shard_count(self, memo_pipeline, small_civ):
        p = memo_pipeline
        p.anonymize(small_civ, GloveConfig(k=2), ComputeConfig(backend="sharded", shards=2))
        p.anonymize(small_civ, GloveConfig(k=2), ComputeConfig(backend="sharded", shards=3))
        p.anonymize(small_civ, GloveConfig(k=2), ComputeConfig(backend="sharded", shards=2))
        assert p.stats["glove"].computed == 2
        assert p.stats["glove"].memo_hits == 1


class TestMethodAxis:
    """The generic anonymize stage over the anonymizer registry."""

    def test_glove_method_hits_cached_glove_artifact(self, memo_pipeline, small_civ):
        # The acceptance invariant: method="glove" through the generic
        # stage is the same artifact, same key, as the cached_glove
        # path — the second request must be a memo hit.
        memo_pipeline.glove(small_civ, GloveConfig(k=2))
        result = memo_pipeline.anonymize(small_civ, GloveConfig(k=2), method="glove")
        assert memo_pipeline.stats["glove"].computed == 1
        assert memo_pipeline.stats["glove"].memo_hits == 1
        direct = glove(small_civ, GloveConfig(k=2))
        assert _datasets_equal(result.dataset, direct.dataset)

    def test_glove_suppression_shares_the_unsuppressed_artifact(
        self, memo_pipeline, small_civ
    ):
        from repro.core.config import SuppressionConfig

        suppressed_cfg = GloveConfig(
            k=2,
            suppression=SuppressionConfig(
                spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
            ),
        )
        memo_pipeline.anonymize(small_civ, GloveConfig(k=2), method="glove")
        via_stage = memo_pipeline.anonymize(small_civ, suppressed_cfg, method="glove")
        # Suppression is a post-filter: one greedy-loop artifact serves
        # both configs...
        assert memo_pipeline.stats["glove"].computed == 1
        assert memo_pipeline.stats["glove"].memo_hits == 1
        # ...and the release is byte-identical to running glove() with
        # the suppression config inline.
        inline = glove(small_civ, suppressed_cfg)
        assert _datasets_equal(via_stage.dataset, inline.dataset)
        assert via_stage.raw.stats.suppression == inline.stats.suppression

    def test_baseline_method_computed_once(self, memo_pipeline, small_civ):
        from repro.baselines.w4m import W4MConfig

        a = memo_pipeline.anonymize(small_civ, W4MConfig(k=2), method="w4m-lc")
        b = memo_pipeline.anonymize(small_civ, W4MConfig(k=2), method="w4m-lc")
        assert a is b
        stats = memo_pipeline.stats["anonymize"]
        assert stats.computed == 1
        assert stats.memo_hits == 1

    def test_method_config_enters_the_key(self, memo_pipeline, small_civ):
        from repro.baselines.w4m import W4MConfig

        memo_pipeline.anonymize(small_civ, W4MConfig(k=2, delta_m=2_000.0), method="w4m-lc")
        memo_pipeline.anonymize(small_civ, W4MConfig(k=2, delta_m=3_000.0), method="w4m-lc")
        assert memo_pipeline.stats["anonymize"].computed == 2

    def test_baseline_round_trips_through_disk(self, disk_pipeline, tmp_path, small_civ):
        from repro.baselines.nwa import NWAConfig

        config = NWAConfig(k=2, period_min=120.0)
        first = disk_pipeline.anonymize(small_civ, config, method="nwa")
        again = Pipeline(ArtifactStore(root=tmp_path / "store")).anonymize(
            small_civ, config, method="nwa"
        )
        assert _datasets_equal(first.dataset, again.dataset)
        assert first.stats == again.stats
        assert first.groups == again.groups

    def test_unknown_method_rejected(self, memo_pipeline, small_civ):
        with pytest.raises(ValueError, match="unknown anonymizer"):
            memo_pipeline.anonymize(small_civ, method="gpu")

    def test_cached_anonymize_routes_through_default(self, memo_pipeline, small_civ):
        from repro.core.pipeline import cached_anonymize

        old = set_default_pipeline(memo_pipeline)
        try:
            result = cached_anonymize(small_civ, method="generalization")
        finally:
            set_default_pipeline(old)
        assert memo_pipeline.stats["anonymize"].computed == 1
        assert result.method == "generalization"
        assert len(result.dataset) == len(small_civ)


class TestMatrixAndKgapStages:
    def test_all_ks_share_one_matrix(self, memo_pipeline, small_civ):
        p = memo_pipeline
        for k in (2, 3, 5):
            p.kgap(small_civ, k=k)
        assert p.stats["matrix"].computed == 1
        assert p.stats["matrix"].memo_hits == 2

    def test_kgap_matches_direct_computation(self, memo_pipeline, small_civ):
        cached = memo_pipeline.kgap(small_civ, k=2)
        direct = kgap(small_civ, k=2)
        assert np.array_equal(cached.gaps, direct.gaps)
        assert np.array_equal(cached.neighbor_indices, direct.neighbor_indices)

    def test_stretch_config_enters_the_key(self, memo_pipeline, small_civ):
        memo_pipeline.matrix(small_civ)
        memo_pipeline.matrix(small_civ, StretchConfig(phi_max_sigma_m=10_000.0))
        assert memo_pipeline.stats["matrix"].computed == 2


class TestDefaultPipeline:
    def test_install_and_restore(self, memo_pipeline):
        old = set_default_pipeline(memo_pipeline)
        try:
            assert get_default_pipeline() is memo_pipeline
        finally:
            set_default_pipeline(old)
        assert get_default_pipeline() is not memo_pipeline

    def test_cached_helpers_route_through_default(self, memo_pipeline):
        from repro.core.pipeline import cached_dataset, cached_glove

        old = set_default_pipeline(memo_pipeline)
        try:
            ds = cached_dataset("synth-civ", n_users=20, days=1, seed=3)
            cached_glove(ds, GloveConfig(k=2))
        finally:
            set_default_pipeline(old)
        assert memo_pipeline.stats["dataset"].computed == 1
        assert memo_pipeline.stats["glove"].computed == 1


class TestPipelineFromArgs:
    def test_artifact_dir_flag_beats_cache_env(self, monkeypatch, tmp_path):
        from types import SimpleNamespace

        from repro.core.pipeline import pipeline_from_args

        monkeypatch.setenv("REPRO_CACHE", "0")
        explicit = pipeline_from_args(
            SimpleNamespace(no_cache=False, artifact_dir=str(tmp_path / "s"))
        )
        assert explicit.store.disk_enabled  # flag wins over the env gate
        from_env = pipeline_from_args(
            SimpleNamespace(no_cache=False, artifact_dir=None)
        )
        assert not from_env.store.disk_enabled

    def test_no_cache_flag_disables_everything(self):
        from types import SimpleNamespace

        from repro.core.pipeline import pipeline_from_args

        pipeline = pipeline_from_args(
            SimpleNamespace(no_cache=True, artifact_dir="ignored")
        )
        assert not pipeline.enabled
        assert not pipeline.store.disk_enabled

    def test_artifact_backend_flag_selects_backend(self, tmp_path):
        from types import SimpleNamespace

        from repro.core.pipeline import pipeline_from_args

        pipeline = pipeline_from_args(
            SimpleNamespace(
                no_cache=False,
                artifact_dir=str(tmp_path / "s"),
                artifact_backend="sqlite",
            )
        )
        assert pipeline.store.backend.name == "sqlite"

    def test_env_backend_reaches_the_store(self, monkeypatch, tmp_path):
        from types import SimpleNamespace

        from repro.core.pipeline import pipeline_from_args

        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACT_BACKEND", "sqlite")
        pipeline = pipeline_from_args(
            SimpleNamespace(no_cache=False, artifact_dir=str(tmp_path / "s"))
        )
        assert pipeline.store.backend.name == "sqlite"

    def test_parser_offers_the_backend_choices(self):
        import argparse

        from repro.core.artifacts import available_artifact_backends
        from repro.core.pipeline import add_pipeline_arguments

        parser = argparse.ArgumentParser()
        add_pipeline_arguments(parser)
        args = parser.parse_args(["--artifact-backend", "sqlite"])
        assert args.artifact_backend == "sqlite"
        assert parser.parse_args([]).artifact_backend is None
        for name in available_artifact_backends():
            assert parser.parse_args(["--artifact-backend", name])


class TestPipelineDisabled:
    def test_disabled_pipeline_always_computes(self, small_civ):
        p = Pipeline(ArtifactStore(root=None), enabled=False)
        a = p.dataset("synth-civ", n_users=20, days=1, seed=3)
        b = p.dataset("synth-civ", n_users=20, days=1, seed=3)
        assert a is not b
        assert p.stats["dataset"].computed == 2
        reference = glove(small_civ, GloveConfig(k=2))
        fresh = p.anonymize(small_civ, GloveConfig(k=2))
        assert _datasets_equal(reference.dataset, fresh.dataset)


class TestFeedAndStreamStages:
    def test_feed_memoized_and_deterministic(self, memo_pipeline, small_civ):
        a = memo_pipeline.feed(small_civ)
        b = memo_pipeline.feed(small_civ)
        assert a is b
        assert memo_pipeline.stats["feed"].computed == 1
        assert len(a) == small_civ.n_samples

    def test_feed_keyed_by_jitter_and_seed(self, memo_pipeline, small_civ):
        plain = memo_pipeline.feed(small_civ)
        jittered = memo_pipeline.feed(small_civ, max_jitter_min=30.0, seed=1)
        other_seed = memo_pipeline.feed(small_civ, max_jitter_min=30.0, seed=2)
        assert memo_pipeline.stats["feed"].computed == 3
        assert plain is not jittered and jittered is not other_seed

    def test_stream_round_trips_through_disk(self, disk_pipeline, tmp_path, small_civ):
        from repro.stream.windows import StreamConfig

        cfg = StreamConfig(window_min=12 * 60.0)
        first = disk_pipeline.stream(small_civ, GloveConfig(k=2), cfg)
        again = Pipeline(ArtifactStore(root=tmp_path / "store")).stream(
            small_civ, GloveConfig(k=2), cfg
        )
        assert len(again.windows) == len(first.windows)
        for a, b in zip(first.emitted, again.emitted):
            assert a.index == b.index
            assert _datasets_equal(a.dataset, b.dataset)
        assert again.stats.n_events == first.stats.n_events

    def test_stream_keyed_by_window_and_config(self, memo_pipeline, small_civ):
        from repro.stream.windows import StreamConfig

        memo_pipeline.stream(small_civ, GloveConfig(k=2), StreamConfig(window_min=720.0))
        memo_pipeline.stream(small_civ, GloveConfig(k=2), StreamConfig(window_min=360.0))
        memo_pipeline.stream(small_civ, GloveConfig(k=3), StreamConfig(window_min=720.0))
        memo_pipeline.stream(
            small_civ, GloveConfig(k=2), StreamConfig(window_min=720.0, carry_over=False)
        )
        assert memo_pipeline.stats["stream"].computed == 4
        # The feed is shared by every run of the same replay parameters.
        assert memo_pipeline.stats["feed"].computed == 1
        memo_pipeline.stream(small_civ, GloveConfig(k=2), StreamConfig(window_min=720.0))
        assert memo_pipeline.stats["stream"].memo_hits == 1
