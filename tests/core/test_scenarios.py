"""Tests for the workload scenario registry."""

import pytest

from repro.cdr.datasets import PRESETS
from repro.core.artifacts import ArtifactStore
from repro.core.pipeline import Pipeline
from repro.core.scenarios import (
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)


class TestRegistry:
    def test_builtin_scenarios_present(self):
        names = available_scenarios()
        for expected in ("smoke", "default", "bench", "glove-500", "large-n", "suite"):
            assert expected in names

    def test_builtin_presets_are_valid(self):
        for name in available_scenarios():
            assert get_scenario(name).preset in PRESETS

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("warp-speed")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario("smoke", "synth-civ", 10, 1))

    def test_overwrite_flag(self):
        original = get_scenario("smoke")
        try:
            register_scenario(original.scaled(n_users=99), overwrite=True)
            assert get_scenario("smoke").n_users == 99
        finally:
            register_scenario(original, overwrite=True)


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("bad", "synth-civ", n_users=0, days=1)
        with pytest.raises(ValueError):
            Scenario("bad", "synth-civ", n_users=10, days=0)
        with pytest.raises(ValueError):
            Scenario("bad", "synth-civ", n_users=10, days=1, k=1)

    def test_scaled_overrides(self):
        sc = get_scenario("bench").scaled(n_users=7, days=1)
        assert (sc.n_users, sc.days) == (7, 1)
        assert sc.preset == get_scenario("bench").preset

    def test_key_params_cover_the_scale(self):
        params = get_scenario("suite").key_params()
        assert params["preset"] == "synth-civ"
        assert params["experiments"] == ["fig3", "fig8", "table2"]
        assert {"n_users", "days", "seed", "k"} <= set(params)

    def test_suite_experiments_are_registered(self):
        from repro.experiments.runner import EXPERIMENTS

        for name in get_scenario("suite").experiments:
            assert name in EXPERIMENTS

    def test_synthesize_through_pipeline(self):
        pipeline = Pipeline(ArtifactStore(root=None))
        sc = get_scenario("smoke").scaled(n_users=12, days=1)
        ds = sc.synthesize(pipeline)
        assert len(ds) > 0
        assert pipeline.stats["dataset"].computed == 1
        again = sc.synthesize(pipeline)
        assert again is ds


class TestStreamScenarios:
    def test_stream_scenarios_registered(self):
        for name in ("stream-smoke", "stream-500"):
            sc = get_scenario(name)
            assert sc.stream is not None
            assert sc.key_params()["stream"] == dict(sc.stream)

    def test_stream_config_built_from_mapping(self):
        cfg = get_scenario("stream-smoke").stream_config()
        assert cfg.window_min == 720.0
        assert cfg.max_lag_min == 60.0
        assert cfg.carry_over

    def test_batch_scenario_has_no_stream_config(self):
        assert get_scenario("smoke").key_params()["stream"] is None
        with pytest.raises(ValueError, match="no streaming parameters"):
            get_scenario("smoke").stream_config()

    def test_stream_block_survives_scaling(self):
        sc = get_scenario("stream-500").scaled(n_users=40)
        assert sc.n_users == 40
        assert sc.stream_config().window_min == 720.0

    def test_stream_block_is_immutable(self):
        sc = get_scenario("stream-500")
        assert isinstance(sc.stream, tuple)  # no shared mutable dict
        assert hash(sc) == hash(sc)  # frozen dataclass stays hashable
        # key_params hands out a fresh dict: mutating it cannot touch
        # the registry entry or any scaled copy.
        params = sc.key_params()
        params["stream"]["window_min"] = 1.0
        assert get_scenario("stream-500").key_params()["stream"]["window_min"] == 720.0


class TestMethodAxis:
    def test_default_method_is_glove(self):
        sc = get_scenario("smoke")
        assert sc.method == "glove"
        assert sc.key_params()["method"] == "glove"
        assert sc.key_params()["method_options"] is None

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown anonymizer"):
            Scenario(name="bad", preset="synth-civ", n_users=10, days=1, method="gpu")

    def test_method_options_stored_immutably(self):
        sc = get_scenario("w4m-attack")
        assert sc.method == "w4m-lc"
        assert isinstance(sc.method_options, tuple)
        assert hash(sc) == hash(sc)
        assert sc.key_params()["method_options"] == {
            "delta_m": 2_000.0, "trash_fraction": 0.10,
        }

    def test_anonymizer_config_built_through_registry(self):
        from repro.baselines.w4m import W4MConfig

        config = get_scenario("w4m-attack").anonymizer_config()
        assert isinstance(config, W4MConfig)
        assert config.k == get_scenario("w4m-attack").k
        assert config.delta_m == 2_000.0

    def test_glove_scenario_config(self):
        from repro.core.config import GloveConfig

        config = get_scenario("smoke").anonymizer_config()
        assert isinstance(config, GloveConfig)
        assert config.k == 2

    def test_baselines_smoke_scenario_registered(self):
        sc = get_scenario("baselines-smoke")
        assert sc.experiments == ("table2",)
