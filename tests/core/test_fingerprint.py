"""Tests for mobile fingerprints."""

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.sample import Sample
from tests.conftest import make_fp


class TestConstruction:
    def test_samples_sorted_by_time(self):
        fp = make_fp("a", [(0.0, 0.0, 100.0), (0.0, 0.0, 10.0), (0.0, 0.0, 50.0)])
        times = fp.data[:, 4]
        assert list(times) == sorted(times)

    def test_default_members(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0)])
        assert fp.members == ("a",)
        assert fp.count == 1

    def test_count_must_match_members(self):
        with pytest.raises(ValueError, match="members"):
            Fingerprint("g", [Sample(x=0.0, y=0.0, t=0.0)], count=2, members=("a",))

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            Fingerprint("g", [Sample(x=0.0, y=0.0, t=0.0)], count=0, members=())

    def test_empty_fingerprint_allowed(self):
        fp = Fingerprint("e", np.empty((0, 6)))
        assert fp.m == 0
        assert fp.timespan_min == 0.0


class TestContainerProtocol:
    def test_len_iter_getitem(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
        assert len(fp) == 2
        assert isinstance(fp[0], Sample)
        assert len(list(fp)) == 2

    def test_timespan(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0), (0.0, 0.0, 100.0)])
        assert fp.timespan_min == 101.0  # includes the last sample's dt=1


class TestSameTrace:
    def test_identical_traces(self):
        a = make_fp("a", [(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)])
        b = make_fp("b", [(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)])
        assert a.same_trace(b)
        assert a.trace_key() == b.trace_key()

    def test_different_traces(self):
        a = make_fp("a", [(0.0, 0.0, 0.0)])
        b = make_fp("b", [(1.0, 0.0, 0.0)])
        assert not a.same_trace(b)
        assert a.trace_key() != b.trace_key()

    def test_different_lengths(self):
        a = make_fp("a", [(0.0, 0.0, 0.0)])
        b = make_fp("b", [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
        assert not a.same_trace(b)


class TestDerived:
    def test_restrict_time(self):
        fp = make_fp("a", [(0.0, 0.0, 10.0), (0.0, 0.0, 200.0), (0.0, 0.0, 500.0)])
        sub = fp.restrict_time(0.0, 250.0)
        assert sub.m == 2
        assert sub.uid == "a"

    def test_restrict_time_keeps_count(self):
        fp = make_fp("g", [(0.0, 0.0, 10.0)], count=2, members=("a", "b"))
        sub = fp.restrict_time(0.0, 100.0)
        assert sub.count == 2
        assert sub.members == ("a", "b")

    def test_with_samples(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0)])
        new = fp.with_samples(np.array([[1.0, 100.0, 1.0, 100.0, 1.0, 1.0]]))
        assert new.uid == "a"
        assert new.m == 1
        assert new.data[0, 0] == 1.0
