"""Tests for spatiotemporal samples."""

import numpy as np
import pytest

from repro.core.sample import (
    DT,
    DX,
    DY,
    NCOLS,
    T,
    X,
    Y,
    Sample,
    samples_array,
    validate_sample_array,
)


class TestSample:
    def test_defaults_match_paper_granularity(self):
        s = Sample(x=100.0, y=200.0, t=10.0)
        assert s.dx == 100.0
        assert s.dy == 100.0
        assert s.dt == 1.0

    def test_derived_geometry(self):
        s = Sample(x=0.0, y=0.0, t=5.0, dx=200.0, dy=100.0, dt=10.0)
        assert s.x_max == 200.0
        assert s.y_max == 100.0
        assert s.t_end == 15.0
        assert s.center == (100.0, 50.0)
        assert s.t_mid == 10.0

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Sample(x=0.0, y=0.0, t=0.0, dx=-1.0)
        with pytest.raises(ValueError):
            Sample(x=0.0, y=0.0, t=0.0, dt=-1.0)

    def test_row_roundtrip(self):
        s = Sample(x=1.0, y=2.0, t=3.0, dx=4.0, dy=5.0, dt=6.0)
        assert Sample.from_row(s.to_row()) == s

    def test_row_column_order(self):
        row = Sample(x=1.0, y=3.0, t=5.0, dx=2.0, dy=4.0, dt=6.0).to_row()
        assert row[X] == 1.0 and row[DX] == 2.0
        assert row[Y] == 3.0 and row[DY] == 4.0
        assert row[T] == 5.0 and row[DT] == 6.0

    def test_covers(self):
        big = Sample(x=0.0, y=0.0, t=0.0, dx=1000.0, dy=1000.0, dt=100.0)
        small = Sample(x=100.0, y=100.0, t=10.0, dx=50.0, dy=50.0, dt=5.0)
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_is_reflexive(self):
        s = Sample(x=5.0, y=5.0, t=5.0)
        assert s.covers(s)


class TestSamplesArray:
    def test_empty_yields_0x6(self):
        arr = samples_array([])
        assert arr.shape == (0, NCOLS)

    def test_stacks_samples(self):
        arr = samples_array([Sample(x=0.0, y=0.0, t=0.0), Sample(x=1.0, y=1.0, t=1.0)])
        assert arr.shape == (2, NCOLS)

    def test_rejects_bad_row_shape(self):
        with pytest.raises(ValueError):
            samples_array([np.zeros(5)])


class TestValidation:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            validate_sample_array(np.zeros((3, 5)))

    def test_rejects_nan(self):
        arr = np.zeros((1, NCOLS))
        arr[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            validate_sample_array(arr)

    def test_rejects_negative_extent(self):
        arr = np.zeros((1, NCOLS))
        arr[0, DT] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            validate_sample_array(arr)

    def test_accepts_valid(self):
        arr = np.zeros((2, NCOLS))
        out = validate_sample_array(arr)
        assert out.dtype == np.float64
