"""Tests for sample suppression (paper Section 7.1)."""

import numpy as np
import pytest

from repro.core.config import SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.suppression import (
    suppress_dataset,
    suppress_fingerprint,
    suppression_mask,
)
from tests.conftest import make_fp


def fp_with_extents(uid, extents):
    """Fingerprint whose samples have the given (dx, dy, dt) extents."""
    rows = [
        (float(i * 1e5), float(i * 1e5), float(i * 1e4), dx, dy, dt)
        for i, (dx, dy, dt) in enumerate(extents)
    ]
    return make_fp(uid, rows)


class TestMask:
    def test_spatial_threshold_on_either_axis(self):
        fp = fp_with_extents(
            "a", [(100.0, 100.0, 1.0), (100.0, 9_000.0, 1.0), (9_000.0, 100.0, 1.0)]
        )
        cfg = SuppressionConfig(spatial_threshold_m=5_000.0)
        np.testing.assert_array_equal(
            suppression_mask(fp.data, cfg), [True, False, False]
        )

    def test_temporal_threshold(self):
        fp = fp_with_extents("a", [(100.0, 100.0, 30.0), (100.0, 100.0, 600.0)])
        cfg = SuppressionConfig(temporal_threshold_min=360.0)
        np.testing.assert_array_equal(suppression_mask(fp.data, cfg), [True, False])

    def test_thresholds_inclusive(self):
        fp = fp_with_extents("a", [(5_000.0, 100.0, 360.0)])
        cfg = SuppressionConfig(spatial_threshold_m=5_000.0, temporal_threshold_min=360.0)
        assert suppression_mask(fp.data, cfg).all()

    def test_disabled_config_keeps_all(self):
        fp = fp_with_extents("a", [(1e6, 1e6, 1e5)])
        assert suppression_mask(fp.data, SuppressionConfig()).all()


class TestSuppressFingerprint:
    def test_noop_when_disabled(self):
        fp = fp_with_extents("a", [(1e6, 1e6, 1e5)])
        assert suppress_fingerprint(fp, SuppressionConfig()) is fp

    def test_drops_only_over_threshold(self):
        fp = fp_with_extents("a", [(100.0, 100.0, 1.0), (9e4, 100.0, 1.0)])
        out = suppress_fingerprint(fp, SuppressionConfig(spatial_threshold_m=1e4))
        assert out.m == 1

    def test_keep_at_least_one_retains_best(self):
        fp = fp_with_extents("a", [(6e4, 100.0, 1.0), (2e4, 100.0, 1.0)])
        out = suppress_fingerprint(fp, SuppressionConfig(spatial_threshold_m=1e4))
        assert out.m == 1
        assert out.data[0, 1] == 2e4  # the least-stretched survivor

    def test_keep_at_least_one_disabled(self):
        fp = fp_with_extents("a", [(6e4, 100.0, 1.0)])
        cfg = SuppressionConfig(spatial_threshold_m=1e4, keep_at_least_one=False)
        out = suppress_fingerprint(fp, cfg)
        assert out.m == 0


class TestSuppressDataset:
    def test_stats_counts(self):
        ds = FingerprintDataset(
            [
                fp_with_extents("a", [(100.0, 100.0, 1.0), (9e4, 100.0, 1.0)]),
                fp_with_extents("b", [(100.0, 100.0, 1.0)]),
            ]
        )
        cfg = SuppressionConfig(spatial_threshold_m=1e4)
        out, stats = suppress_dataset(ds, cfg)
        assert stats.total_samples == 3
        assert stats.discarded_samples == 1
        assert stats.discarded_fingerprints == 0
        assert stats.discarded_fraction == pytest.approx(1 / 3)
        assert out.n_samples == 2

    def test_fully_suppressed_fingerprint_dropped_without_safeguard(self):
        ds = FingerprintDataset([fp_with_extents("a", [(9e4, 100.0, 1.0)])])
        cfg = SuppressionConfig(spatial_threshold_m=1e4, keep_at_least_one=False)
        out, stats = suppress_dataset(ds, cfg)
        assert len(out) == 0
        assert stats.discarded_fingerprints == 1

    def test_safeguard_keeps_fingerprint(self):
        ds = FingerprintDataset([fp_with_extents("a", [(9e4, 100.0, 1.0)])])
        cfg = SuppressionConfig(spatial_threshold_m=1e4)
        out, stats = suppress_dataset(ds, cfg)
        assert len(out) == 1
        assert stats.discarded_fingerprints == 0

    def test_disabled_config_passthrough(self, toy_dataset):
        out, stats = suppress_dataset(toy_dataset, SuppressionConfig())
        assert out.n_samples == toy_dataset.n_samples
        assert stats.discarded_samples == 0


class TestConfigValidation:
    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ValueError):
            SuppressionConfig(spatial_threshold_m=0.0)
        with pytest.raises(ValueError):
            SuppressionConfig(temporal_threshold_min=-5.0)

    def test_enabled_flag(self):
        assert not SuppressionConfig().enabled
        assert SuppressionConfig(spatial_threshold_m=1.0).enabled
        assert SuppressionConfig(temporal_threshold_min=1.0).enabled
