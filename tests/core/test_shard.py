"""Tests for the sharded GLOVE tier (partitioner, driver, repair)."""

import numpy as np
import pytest

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import ComputeConfig, GloveConfig
from repro.core.engine import (
    available_backends,
    get_default_compute,
    get_glove_driver,
    register_glove_driver,
    set_default_compute,
)
from repro.core.glove import GloveStats, glove
from repro.core.shard import (
    AUTO_SHARD_CAP,
    AUTO_SHARD_TARGET,
    partition_indices,
    resolve_shards,
    sharded_glove,
)
from tests.conftest import make_fp
from tests.properties.test_k_anonymity import assert_k_anonymous


def _compute(shards, workers=1, strategy="time"):
    return ComputeConfig(
        backend="sharded", shards=shards, workers=workers, shard_strategy=strategy
    )


class TestPartitioner:
    def test_time_partitions_cover_exactly_once(self, small_civ):
        fps = list(small_civ)
        parts = partition_indices(fps, 4, "time")
        assert len(parts) == 4
        covered = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(covered, np.arange(len(fps)))

    def test_time_partitions_are_balanced_and_local(self, small_civ):
        fps = list(small_civ)
        parts = partition_indices(fps, 4, "time")
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1
        mids = [
            0.5 * (float(fp.data[0, 4]) + float((fp.data[:, 4] + fp.data[:, 5]).max()))
            for fp in fps
        ]
        # Contiguous runs in midpoint order: each shard's latest midpoint
        # never exceeds the next shard's earliest.
        for left, right in zip(parts, parts[1:]):
            assert max(mids[int(i)] for i in left) <= min(mids[int(i)] for i in right)

    def test_hash_partitions_cover_exactly_once(self, small_civ):
        fps = list(small_civ)
        parts = partition_indices(fps, 4, "hash")
        covered = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(covered, np.arange(len(fps)))

    def test_hash_is_stable_under_reordering(self, small_civ):
        fps = list(small_civ)
        parts = partition_indices(fps, 3, "hash")
        shuffled = list(reversed(fps))
        parts_rev = partition_indices(shuffled, 3, "hash")
        by_uid = lambda order, parts: [
            sorted(order[int(i)].uid for i in part) for part in parts
        ]
        assert sorted(map(tuple, by_uid(fps, parts))) == sorted(
            map(tuple, by_uid(shuffled, parts_rev))
        )

    def test_deterministic(self, small_civ):
        fps = list(small_civ)
        for strategy in ("time", "hash"):
            a = partition_indices(fps, 3, strategy)
            b = partition_indices(fps, 3, strategy)
            assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_clamps_to_population(self):
        fps = [make_fp(f"u{i}", [(0.0, 0.0, float(i))]) for i in range(3)]
        parts = partition_indices(fps, 10, "time")
        assert len(parts) == 3
        assert all(p.size == 1 for p in parts)

    def test_single_shard_is_identity(self, small_civ):
        fps = list(small_civ)
        (part,) = partition_indices(fps, 1, "time")
        np.testing.assert_array_equal(part, np.arange(len(fps)))

    def test_unknown_strategy_raises(self, small_civ):
        with pytest.raises(ValueError, match="unknown shard strategy"):
            partition_indices(list(small_civ), 2, "geo")


class TestResolveShards:
    def test_explicit_wins_and_clamps(self):
        assert resolve_shards(ComputeConfig(shards=4), 100) == 4
        assert resolve_shards(ComputeConfig(shards=8), 5) == 5

    def test_auto_scales_with_population(self):
        assert resolve_shards(ComputeConfig(), 100) == 1
        assert resolve_shards(ComputeConfig(), AUTO_SHARD_TARGET + 1) == 2
        assert resolve_shards(ComputeConfig(), 10 ** 6) == AUTO_SHARD_CAP


class TestGoldenEquivalence:
    """shards=1 must be byte-identical; shards>1 must stay k-anonymous
    with bounded extra stretch (DESIGN.md D5)."""

    def test_single_shard_byte_identical_to_numpy(self, small_civ):
        config = GloveConfig(k=2)
        reference = glove(small_civ, config, ComputeConfig(backend="numpy"))
        sharded = glove(small_civ, config, _compute(shards=1))
        assert sharded.stats.n_merges == reference.stats.n_merges
        assert len(sharded.dataset) == len(reference.dataset)
        for a, b in zip(sharded.dataset, reference.dataset):
            assert a.uid == b.uid
            assert a.members == b.members
            assert a.data.tobytes() == b.data.tobytes()

    @pytest.mark.parametrize("shards,strategy", [(2, "time"), (3, "time"), (3, "hash")])
    def test_multi_shard_k_anonymous_and_complete(self, small_civ, shards, strategy):
        config = GloveConfig(k=2)
        result = glove(small_civ, config, _compute(shards=shards, strategy=strategy))
        covered = assert_k_anonymous(result.dataset, config.k)
        assert covered == set(small_civ.uids)
        assert result.dataset.is_k_anonymous(config.k)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_multi_shard_stretch_within_tolerance(self, small_civ, shards):
        # Documented tolerance (DESIGN.md D5): with >= ~20 fingerprints
        # per shard the median generalized extents stay within a small
        # constant of the unsharded run; enforce 4x spatial / 2x
        # temporal (measured <= 1.9x / 1.2x on this seeded scenario).
        config = GloveConfig(k=2)
        reference = glove(small_civ, config, ComputeConfig(backend="numpy"))
        sharded = glove(small_civ, config, _compute(shards=shards))
        ref_s, ref_t = extent_accuracy(reference.dataset)
        shard_s, shard_t = extent_accuracy(sharded.dataset)
        assert shard_s.median <= 4.0 * ref_s.median
        assert shard_t.median <= 2.0 * ref_t.median


class TestStatsCounters:
    def test_defaults(self):
        stats = GloveStats()
        assert stats.shards_used == 1
        assert stats.boundary_repaired == 0

    def test_unsharded_run_counts_one_shard(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2), ComputeConfig(backend="numpy"))
        assert result.stats.shards_used == 1
        assert result.stats.boundary_repaired == 0

    def test_sharded_run_records_shards(self, small_civ):
        result = glove(small_civ, GloveConfig(k=2), _compute(shards=3))
        assert result.stats.shards_used == 3
        assert 0 <= result.stats.boundary_repaired <= 3
        # Each shard leaves at most one non-anonymous leftover behind.
        assert result.stats.boundary_repaired <= result.stats.shards_used

    def test_pool_matches_sequential(self, small_civ):
        config = GloveConfig(k=2)
        sequential = glove(small_civ, config, _compute(shards=3, workers=1))
        pooled = glove(small_civ, config, _compute(shards=3, workers=3))
        assert len(sequential.dataset) == len(pooled.dataset)
        for a, b in zip(sequential.dataset, pooled.dataset):
            assert a.members == b.members
            np.testing.assert_array_equal(a.data, b.data)


class TestDriverRouting:
    def test_sharded_backend_registered(self):
        assert "sharded" in available_backends()
        assert get_glove_driver("sharded") is sharded_glove
        assert get_glove_driver("numpy") is None

    def test_glove_routes_to_driver(self, small_civ):
        via_glove = glove(small_civ, GloveConfig(k=2), _compute(shards=2))
        direct = sharded_glove(small_civ, GloveConfig(k=2), _compute(shards=2))
        assert via_glove.stats.shards_used == direct.stats.shards_used == 2
        for a, b in zip(via_glove.dataset, direct.dataset):
            assert a.members == b.members
            np.testing.assert_array_equal(a.data, b.data)

    def test_duplicate_driver_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_glove_driver("sharded", sharded_glove)

    def test_process_wide_default_routes(self, small_civ):
        original = get_default_compute()
        try:
            set_default_compute(_compute(shards=2))
            result = glove(small_civ, GloveConfig(k=2))
            assert result.stats.shards_used == 2
        finally:
            set_default_compute(original)


class TestBoundaryRepair:
    def test_all_shards_undersized_falls_back_to_greedy(self):
        # k=5 with three users per shard: no shard can finish a group on
        # its own, so the repair pass greedy-merges the leftovers.
        fps = [
            make_fp(f"u{i}", [(100.0 * i, 0.0, 10.0 * i), (100.0 * i, 50.0, 10.0 * i + 5)])
            for i in range(6)
        ]
        from repro.core.dataset import FingerprintDataset

        dataset = FingerprintDataset(fps, name="tiny")
        result = sharded_glove(dataset, GloveConfig(k=5), _compute(shards=3))
        covered = assert_k_anonymous(result.dataset, 5)
        assert covered == {fp.uid for fp in fps}
        assert result.stats.boundary_repaired == 3

    def test_leftover_absorbed_into_nearest_group(self):
        # Odd population with k=2: some shard ends with a leftover that
        # must be folded across the shard boundary.
        fps = [
            make_fp(f"u{i}", [(50.0 * i, 0.0, 5.0 * i), (50.0 * i, 25.0, 5.0 * i + 2)])
            for i in range(9)
        ]
        from repro.core.dataset import FingerprintDataset

        dataset = FingerprintDataset(fps, name="odd")
        result = sharded_glove(dataset, GloveConfig(k=2), _compute(shards=3))
        covered = assert_k_anonymous(result.dataset, 2)
        assert covered == {fp.uid for fp in fps}
        assert result.stats.boundary_repaired >= 1
        assert result.stats.leftover_merged
