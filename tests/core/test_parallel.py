"""Tests for the multi-process pairwise substrate."""

import numpy as np
import pytest

from repro.core.parallel import parallel_pairwise_matrix
from repro.core.pairwise import pairwise_matrix


class TestParallelMatrix:
    def test_matches_sequential(self, small_civ):
        fps = list(small_civ)[:20]
        seq = pairwise_matrix(fps)
        par = parallel_pairwise_matrix(fps, n_workers=2, block=4)
        off = ~np.eye(len(fps), dtype=bool)
        np.testing.assert_allclose(par[off], seq[off], atol=1e-12)
        assert np.isinf(np.diag(par)).all()

    def test_single_worker_fallback(self, small_civ):
        fps = list(small_civ)[:8]
        seq = pairwise_matrix(fps)
        par = parallel_pairwise_matrix(fps, n_workers=1)
        np.testing.assert_allclose(
            np.where(np.isinf(par), -1, par), np.where(np.isinf(seq), -1, seq)
        )

    def test_tiny_input_fallback(self, small_civ):
        fps = list(small_civ)[:3]
        par = parallel_pairwise_matrix(fps, n_workers=4)
        assert par.shape == (3, 3)
        assert np.isfinite(par[0, 1])

    def test_kgap_accepts_parallel_matrix(self, small_civ):
        from repro.core.kgap import kgap

        fps = list(small_civ)[:15]
        from repro.core.dataset import FingerprintDataset

        subset = FingerprintDataset(fps, name="sub")
        matrix = parallel_pairwise_matrix(fps, n_workers=2)
        result = kgap(subset, k=2, matrix=matrix)
        reference = kgap(subset, k=2)
        np.testing.assert_allclose(result.gaps, reference.gaps, atol=1e-12)
