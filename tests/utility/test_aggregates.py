"""Tests for OD matrices, density maps and entropy profiles."""

import numpy as np
import pytest

from repro.core.dataset import FingerprintDataset
from repro.utility.density import density_map, density_similarity, top_zones
from repro.utility.od_matrix import (
    intrazonal_fraction,
    od_matrix,
    od_similarity,
    total_flow,
)
from repro.utility.predictability import entropy_profile, location_entropy
from tests.conftest import make_fp

HOUR = 60.0


def commuter(uid, home_xy, work_xy):
    """User with clean night/day anchor samples."""
    hx, hy = home_xy
    wx, wy = work_xy
    return make_fp(
        uid,
        [
            (hx, hy, 2 * HOUR),
            (hx, hy, 3 * HOUR),
            (wx, wy, 10 * HOUR),
            (wx, wy, 14 * HOUR),
        ],
    )


class TestODMatrix:
    def test_flows_counted(self):
        ds = FingerprintDataset(
            [
                commuter("a", (1_000.0, 1_000.0), (25_000.0, 1_000.0)),
                commuter("b", (2_000.0, 1_000.0), (26_000.0, 1_000.0)),
                commuter("c", (2_000.0, 2_000.0), (2_500.0, 2_500.0)),
            ]
        )
        flows = od_matrix(ds, zone_m=10_000.0)
        assert total_flow(flows) == 3
        assert flows[((0, 0), (2, 0))] == 2
        assert intrazonal_fraction(flows) == pytest.approx(1 / 3)

    def test_group_counts_weighted(self):
        ds = FingerprintDataset(
            [
                make_fp(
                    "g",
                    [(0.0, 0.0, 2 * HOUR), (0.0, 0.0, 10 * HOUR)],
                    count=4,
                    members=("a", "b", "c", "d"),
                )
            ]
        )
        flows = od_matrix(ds, zone_m=10_000.0)
        assert total_flow(flows) == 4

    def test_similarity_identity(self):
        ds = FingerprintDataset(
            [commuter("a", (0.0, 0.0), (25_000.0, 0.0))]
        )
        flows = od_matrix(ds)
        assert od_similarity(flows, flows) == pytest.approx(1.0)

    def test_similarity_disjoint(self):
        a = {((0, 0), (1, 0)): 5.0}
        b = {((3, 3), (4, 4)): 5.0}
        assert od_similarity(a, b) == 0.0

    def test_empty_matrices_similar(self):
        assert od_similarity({}, {}) == 1.0

    def test_zone_validation(self, small_civ):
        with pytest.raises(ValueError):
            od_matrix(small_civ, zone_m=0.0)


class TestDensity:
    def test_point_samples_single_zone(self):
        ds = FingerprintDataset([make_fp("a", [(500.0, 500.0, 0.0)])])
        density = density_map(ds, zone_m=10_000.0)
        assert density == {(0, 0): 1.0}

    def test_generalized_sample_spreads_mass(self):
        ds = FingerprintDataset(
            [
                make_fp(
                    "g",
                    [(5_000.0, 5_000.0, 0.0, 10_000.0, 100.0, 1.0)],
                    count=2,
                    members=("a", "b"),
                )
            ]
        )
        density = density_map(ds, zone_m=10_000.0)
        # Rectangle spans zones (0,0) and (1,0): mass 2 split in half.
        assert density[(0, 0)] == pytest.approx(1.0)
        assert density[(1, 0)] == pytest.approx(1.0)

    def test_similarity_bounds(self, small_civ):
        d = density_map(small_civ)
        assert density_similarity(d, d) == pytest.approx(1.0)
        assert density_similarity(d, {}) == 0.0

    def test_top_zones_sorted(self, small_civ):
        zones = top_zones(density_map(small_civ), n=5)
        masses = [m for _, m in zones]
        assert masses == sorted(masses, reverse=True)

    def test_top_zones_validation(self):
        with pytest.raises(ValueError):
            top_zones({}, n=0)


class TestEntropy:
    def test_single_location_zero_entropy(self):
        fp = make_fp("a", [(0.0, 0.0, float(t)) for t in range(5)])
        est = location_entropy(fp)
        assert est.n_locations == 1
        assert est.random_entropy == 0.0
        assert est.shannon_entropy == 0.0

    def test_uniform_two_locations_one_bit(self):
        fp = make_fp(
            "a",
            [(0.0, 0.0, 0.0), (5_000.0, 0.0, 10.0), (0.0, 0.0, 20.0), (5_000.0, 0.0, 30.0)],
        )
        est = location_entropy(fp)
        assert est.shannon_entropy == pytest.approx(1.0)
        assert est.random_entropy == pytest.approx(1.0)

    def test_shannon_bounded_by_random(self, small_civ):
        profile = entropy_profile(small_civ)
        assert (profile["shannon"] <= profile["random"] + 1e-9).all()

    def test_profile_shapes(self, small_civ):
        profile = entropy_profile(small_civ)
        assert profile["shannon"].shape == (len(small_civ),)
        assert profile["n_locations"].dtype == np.int64
