"""Tests for the original-vs-anonymized utility harness."""

import numpy as np
import pytest

from repro.core.config import GloveConfig
from repro.core.glove import glove
from repro.utility.comparison import compare_utility


class TestCompareUtility:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.cdr.datasets import synthesize

        original = synthesize("synth-civ", n_users=60, days=3, seed=8)
        anonymized = glove(original, GloveConfig(k=2)).dataset
        return compare_utility(original, anonymized)

    def test_identity_comparison_perfect(self, small_civ):
        comparison = compare_utility(small_civ, small_civ)
        assert comparison.od_cosine == pytest.approx(1.0)
        assert comparison.density_cosine == pytest.approx(1.0)
        assert comparison.home_median_displacement_m == pytest.approx(0.0, abs=1e-9)

    def test_density_preserved(self, comparison):
        # Section 2.4: population distributions survive anonymization.
        assert comparison.density_cosine > 0.6

    def test_entropy_signal_survives(self, comparison):
        assert comparison.entropy_correlation > 0.2

    def test_home_better_preserved_than_random(self, comparison):
        # Home displacement stays far below the country scale (~500 km).
        assert comparison.home_median_displacement_m < 20_000.0

    def test_intrazonal_commuting_in_range(self, comparison):
        assert 0.0 <= comparison.od_intrazonal_original <= 1.0
        assert 0.0 <= comparison.od_intrazonal_anonymized <= 1.0
