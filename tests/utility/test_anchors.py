"""Tests for home/work anchor detection."""

import numpy as np
import pytest

from repro.core.dataset import FingerprintDataset
from repro.utility.anchors import anchor_displacements, detect_anchors
from tests.conftest import make_fp

HOUR = 60.0


class TestDetection:
    def test_home_from_night_samples(self):
        fp = make_fp(
            "a",
            [
                (1_000.0, 2_000.0, 2 * HOUR),       # night @ home
                (1_000.0, 2_000.0, 3 * HOUR),       # night @ home
                (9_000.0, 9_000.0, 11 * HOUR),      # day @ work
            ],
        )
        est = detect_anchors(fp)
        assert est.home == (1_000.0, 2_100.0) or est.home[0] == pytest.approx(1_050.0, abs=100)

    def test_work_from_office_samples(self):
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 2 * HOUR),
                (9_000.0, 9_000.0, 10 * HOUR),
                (9_000.0, 9_000.0, 14 * HOUR),
                (5_000.0, 5_000.0, 15 * HOUR),
            ],
        )
        est = detect_anchors(fp)
        assert est.work is not None
        assert est.work[0] == pytest.approx(9_050.0, abs=101)

    def test_missing_windows_yield_none(self):
        fp = make_fp("a", [(0.0, 0.0, 20 * HOUR)])  # evening only
        est = detect_anchors(fp)
        assert est.home is None
        assert est.work is None

    def test_most_frequent_wins(self):
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 1 * HOUR),
                (0.0, 0.0, 2 * HOUR),
                (5_000.0, 0.0, 3 * HOUR),
            ],
        )
        est = detect_anchors(fp)
        assert est.home[0] == pytest.approx(0.0, abs=101)


class TestDisplacements:
    def test_identity_zero_displacement(self, small_civ):
        disp = anchor_displacements(small_civ, small_civ)
        if disp["home"].size:
            assert disp["home"].max() == pytest.approx(0.0, abs=1e-9)

    def test_glove_displacement_bounded(self, small_civ):
        from repro.core.config import GloveConfig
        from repro.core.glove import glove

        published = glove(small_civ, GloveConfig(k=2)).dataset
        disp = anchor_displacements(small_civ, published)
        assert disp["home"].size > 0
        # Home detection survives anonymization to within a few km for
        # the typical user (Section 2.4's claim).
        assert np.median(disp["home"]) < 10_000.0

    def test_missing_members_skipped(self, small_civ):
        published = FingerprintDataset(
            [make_fp("g", [(0.0, 0.0, 2 * HOUR)], count=1, members=("nobody",))]
        )
        disp = anchor_displacements(small_civ, published)
        assert disp["home"].size == 0
