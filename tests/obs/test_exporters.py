"""Tests of the snapshot renderers and the gated OTLP bridge."""

import json

import pytest

from repro.obs import (
    OTEL_INSTALL_HINT,
    MetricsRegistry,
    dump_json,
    export_otlp,
    render_table,
    snapshot_to_otlp,
    validate_snapshot,
)


@pytest.fixture
def snapshot():
    registry = MetricsRegistry(enabled=True)
    registry.counter("stream.events").inc(880)
    registry.gauge("stream.events_per_sec").set(9445.6)
    registry.histogram("stream.window_wall_s", boundaries=[0.1, 1.0]).observe(0.3)
    return registry.snapshot()


class TestRenderTable:
    def test_lists_every_instrument(self, snapshot):
        table = render_table(snapshot)
        assert "repro.metrics.v1" in table
        assert "stream.events" in table
        assert "stream.events_per_sec" in table
        assert "stream.window_wall_s" in table
        assert "p95" in table

    def test_empty_registry_renders(self):
        table = render_table(MetricsRegistry(enabled=True).snapshot())
        assert "no instruments" in table

    def test_rejects_invalid_snapshot(self):
        with pytest.raises(ValueError):
            render_table({"schema": "nope"})


class TestDumpJson:
    def test_round_trips_and_validates(self, snapshot, tmp_path):
        path = dump_json(snapshot, tmp_path / "deep" / "metrics.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        validate_snapshot(loaded)
        assert loaded == snapshot


class TestOtlpConversion:
    def test_counter_maps_to_monotonic_sum(self, snapshot):
        payload = snapshot_to_otlp(snapshot, time_unix_nano=123)
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        by_name = {m["name"]: m for m in metrics}
        counter = by_name["stream.events"]["sum"]
        assert counter["isMonotonic"] is True
        assert counter["dataPoints"][0] == {"timeUnixNano": 123, "asInt": 880}

    def test_gauge_and_histogram_shapes(self, snapshot):
        payload = snapshot_to_otlp(snapshot, time_unix_nano=123)
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        by_name = {m["name"]: m for m in metrics}
        gauge = by_name["stream.events_per_sec"]["gauge"]["dataPoints"][0]
        assert gauge["asDouble"] == pytest.approx(9445.6)
        hist = by_name["stream.window_wall_s"]["histogram"]["dataPoints"][0]
        assert hist["count"] == 1
        assert hist["explicitBounds"] == [0.1, 1.0]
        assert hist["bucketCounts"] == [0, 1, 0]

    def test_payload_is_json_serializable(self, snapshot):
        json.dumps(snapshot_to_otlp(snapshot, time_unix_nano=123))

    def test_service_name_resource(self, snapshot):
        payload = snapshot_to_otlp(snapshot, time_unix_nano=123)
        attrs = payload["resourceMetrics"][0]["resource"]["attributes"]
        assert {"key": "service.name", "value": {"stringValue": "glove-repro"}} in attrs


class TestOtlpGate:
    def test_export_without_the_extra_names_the_fix(self, snapshot):
        try:
            import opentelemetry  # noqa: F401

            pytest.skip("opentelemetry installed; the gate cannot fire")
        except ImportError:
            pass
        with pytest.raises(RuntimeError, match=r"glove-repro\[otel\]"):
            export_otlp(snapshot, "http://localhost:4318")

    def test_hint_names_the_extra(self):
        assert "[otel]" in OTEL_INSTALL_HINT
