"""End-to-end tests of the ``--metrics*`` CLI flags (DESIGN.md D12)."""

import json

import pytest

from repro.cli import main
from repro.obs import get_metrics, validate_snapshot

#: Snapshot keys a stream run must always report (the D12 acceptance
#: set: throughput, latency quantiles, suppression, carry depth,
#: cache hit/miss, engine dispatch counters).
STREAM_COUNTERS = {
    "stream.events",
    "stream.windows",
    "artifact.hits",
    "artifact.misses",
    "engine.boundary_crossings",
    "engine.probe_dispatches",
    "engine.batched_probes",
}
STREAM_GAUGES = {
    "stream.events_per_sec",
    "stream.window_latency_p50_s",
    "stream.window_latency_p95_s",
    "stream.suppression_rate",
    "stream.carry_over_depth",
}


@pytest.fixture
def raw_csv(tmp_path):
    path = tmp_path / "raw.csv"
    assert main(
        ["generate", "synth-civ", "--users", "30", "--days", "2", "--seed", "4",
         "-o", str(path)]
    ) == 0
    return path


def _stream(raw_csv, tmp_path, *extra):
    return main(
        ["stream", str(raw_csv), "-k", "2", "--window", "720", "--max-lag", "60",
         "-o", str(tmp_path / "out.csv"), *extra]
    )


class TestMetricsFlags:
    def test_metrics_prints_table(self, raw_csv, tmp_path, capsys):
        assert _stream(raw_csv, tmp_path, "--metrics") == 0
        out = capsys.readouterr().out
        assert "metrics (repro.metrics.v1)" in out
        assert "stream.events" in out
        assert "engine.boundary_crossings" in out

    def test_metrics_json_snapshot_has_acceptance_keys(self, raw_csv, tmp_path):
        snap_path = tmp_path / "metrics.json"
        assert _stream(raw_csv, tmp_path, "--metrics-json", str(snap_path)) == 0
        snapshot = json.loads(snap_path.read_text())
        validate_snapshot(snapshot)
        assert STREAM_COUNTERS <= set(snapshot["counters"])
        assert STREAM_GAUGES <= set(snapshot["gauges"])
        assert snapshot["counters"]["stream.events"] > 0
        assert snapshot["counters"]["engine.probe_dispatches"] > 0

    def test_cached_run_still_reports_stream_metrics(self, raw_csv, tmp_path):
        # First run computes; second is served from the artifact store
        # yet must report identical stream aggregates.
        first = tmp_path / "m1.json"
        second = tmp_path / "m2.json"
        assert _stream(raw_csv, tmp_path, "--metrics-json", str(first)) == 0
        assert _stream(raw_csv, tmp_path, "--metrics-json", str(second)) == 0
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        for key in STREAM_COUNTERS - {"artifact.hits", "artifact.misses"}:
            assert a["counters"][key] == b["counters"][key], key

    def test_registry_restored_after_run(self, raw_csv, tmp_path):
        assert _stream(raw_csv, tmp_path, "--metrics") == 0
        assert get_metrics().enabled is False

    def test_without_flags_no_registry_is_installed(self, raw_csv, tmp_path):
        assert _stream(raw_csv, tmp_path) == 0
        assert get_metrics().enabled is False

    def test_otlp_without_extra_degrades_to_error(self, raw_csv, tmp_path, capsys):
        try:
            import opentelemetry  # noqa: F401

            pytest.skip("opentelemetry installed; the gate cannot fire")
        except ImportError:
            pass
        code = _stream(raw_csv, tmp_path, "--metrics-otlp", "http://localhost:4318")
        assert code == 2
        assert "glove-repro[otel]" in capsys.readouterr().err


class TestMetricsOnEverySubcommand:
    def test_generate(self, tmp_path):
        snap = tmp_path / "m.json"
        assert main(
            ["generate", "synth-civ", "--users", "10", "--days", "1", "--seed", "1",
             "-o", str(tmp_path / "g.csv"), "--metrics-json", str(snap)]
        ) == 0
        snapshot = json.loads(snap.read_text())
        validate_snapshot(snapshot)
        assert any(k.startswith("pipeline.dataset") for k in snapshot["counters"])

    def test_measure(self, raw_csv, tmp_path):
        snap = tmp_path / "m.json"
        assert main(
            ["measure", str(raw_csv), "-k", "2", "--metrics-json", str(snap)]
        ) == 0
        validate_snapshot(json.loads(snap.read_text()))

    def test_anonymize_reports_dispatch_counters(self, raw_csv, tmp_path):
        snap = tmp_path / "m.json"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "-o", str(tmp_path / "p.csv"),
             "--metrics-json", str(snap)]
        ) == 0
        snapshot = json.loads(snap.read_text())
        validate_snapshot(snapshot)
        assert snapshot["counters"]["engine.probe_dispatches"] > 0
        # Run again: the anonymize stage is cached, yet dispatch
        # counters must still be reported (harvested from the result).
        snap2 = tmp_path / "m2.json"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "-o", str(tmp_path / "p.csv"),
             "--metrics-json", str(snap2)]
        ) == 0
        cached = json.loads(snap2.read_text())
        assert (
            cached["counters"]["engine.probe_dispatches"]
            == snapshot["counters"]["engine.probe_dispatches"]
        )

    def test_attack(self, raw_csv, tmp_path):
        published = tmp_path / "p.csv"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "-o", str(published)]
        ) == 0
        snap = tmp_path / "m.json"
        assert main(
            ["attack", str(raw_csv), str(published), "-k", "2",
             "--metrics-json", str(snap)]
        ) == 0
        validate_snapshot(json.loads(snap.read_text()))

    def test_info(self, raw_csv, tmp_path, capsys):
        assert main(["info", str(raw_csv), "--metrics"]) == 0
        assert "metrics (repro.metrics.v1)" in capsys.readouterr().out
