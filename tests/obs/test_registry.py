"""Tests of the metrics registry (DESIGN.md D12).

Covers the three satellite guarantees: snapshot schema stability
(golden dict), thread safety under concurrent span/counter updates,
and the disabled-registry no-op path.
"""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDARIES_S,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    validate_snapshot,
)
from repro.obs.registry import _NULL, Histogram


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestInstruments:
    def test_counter_inc_and_set_to(self, registry):
        c = registry.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set_to(3)
        assert c.value == 3
        c.set_to(3)  # idempotent re-harvest
        assert c.value == 3

    def test_counter_is_get_or_create(self, registry):
        assert registry.counter("same") is registry.counter("same")
        assert registry.counter("same") is not registry.counter("other")

    def test_gauge_set_and_max(self, registry):
        g = registry.gauge("g")
        g.set(2.5)
        assert g.value == 2.5
        g.max(1.0)
        assert g.value == 2.5
        g.max(7.0)
        assert g.value == 7.0

    def test_histogram_counts_and_sum(self, registry):
        h = registry.histogram("h")
        for v in (0.01, 0.02, 0.3):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.33)

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("bad", boundaries=[1.0, 0.5])
        with pytest.raises(ValueError, match="increasing"):
            Histogram("bad", boundaries=[])

    def test_span_times_the_block(self, registry):
        with registry.span("work"):
            pass
        h = registry.histogram("work")
        assert h.count == 1
        assert 0.0 <= h.sum < 1.0


class TestHistogramQuantiles:
    def test_empty_is_zero(self, registry):
        h = registry.histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.95) == 0.0

    def test_single_sample_is_every_quantile(self, registry):
        h = registry.histogram("h")
        h.observe(0.042)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == pytest.approx(0.042)

    def test_q_is_clamped(self, registry):
        h = registry.histogram("h")
        h.observe(0.01)
        h.observe(0.02)
        assert h.quantile(-3.0) <= h.quantile(1.5)
        assert h.quantile(1.5) == pytest.approx(0.02, abs=0.01)

    def test_quantiles_bounded_by_observed_range(self, registry):
        h = registry.histogram("h")
        values = [0.003, 0.007, 0.04, 0.2, 0.9, 3.0]
        for v in values:
            h.observe(v)
        for q in (0.1, 0.5, 0.9, 0.95):
            assert min(values) <= h.quantile(q) <= max(values)

    def test_estimate_within_one_bucket_of_truth(self, registry):
        h = registry.histogram("h")
        for _ in range(100):
            h.observe(0.3)  # lands in the (0.25, 0.5] bucket
        assert 0.25 <= h.quantile(0.5) <= 0.5

    def test_overflow_bucket_catches_huge_values(self, registry):
        h = registry.histogram("h")
        h.observe(1e6)  # beyond the last default edge
        snap = h._snapshot()
        assert snap["bucket_counts"][-1] == 1
        assert h.quantile(0.5) == pytest.approx(1e6)


class TestSnapshotSchema:
    def test_golden_shape(self, registry):
        """The exact v1 snapshot shape; changing it must break here."""
        registry.counter("runs").inc(2)
        registry.gauge("depth").set(1.5)
        registry.histogram("lat", boundaries=[0.1, 1.0]).observe(0.05)
        snapshot = registry.snapshot()
        assert snapshot == {
            "schema": "repro.metrics.v1",
            "enabled": True,
            "counters": {"runs": 2},
            "gauges": {"depth": 1.5},
            "histograms": {
                "lat": {
                    "count": 1,
                    "sum": 0.05,
                    "min": 0.05,
                    "max": 0.05,
                    "boundaries": [0.1, 1.0],
                    "bucket_counts": [1, 0, 0],
                    "p50": 0.05,
                    "p95": 0.05,
                }
            },
        }

    def test_snapshot_is_json_and_validates(self, registry):
        registry.counter("c").inc()
        with registry.span("s"):
            pass
        snapshot = registry.snapshot()
        validate_snapshot(snapshot)
        validate_snapshot(json.loads(json.dumps(snapshot)))  # survives JSON

    def test_snapshot_names_are_sorted(self, registry):
        for name in ("zz", "aa", "mm"):
            registry.counter(name).inc()
        assert list(registry.snapshot()["counters"]) == ["aa", "mm", "zz"]

    def test_validator_rejects_wrong_schema(self, registry):
        snapshot = registry.snapshot()
        snapshot["schema"] = "repro.metrics.v0"
        with pytest.raises(ValueError, match="unknown snapshot schema"):
            validate_snapshot(snapshot)

    def test_validator_rejects_missing_sections(self):
        with pytest.raises(ValueError):
            validate_snapshot({"schema": SNAPSHOT_SCHEMA, "enabled": True})

    def test_validator_rejects_malformed_histogram(self, registry):
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        snapshot["histograms"]["h"].pop("p95")
        with pytest.raises(ValueError, match="exactly the keys"):
            validate_snapshot(snapshot)

    def test_validator_rejects_inconsistent_buckets(self, registry):
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        snapshot["histograms"]["h"]["count"] = 99
        with pytest.raises(ValueError, match="sum to count"):
            validate_snapshot(snapshot)

    def test_validator_rejects_negative_counter(self, registry):
        snapshot = registry.snapshot()
        snapshot["counters"]["bad"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            validate_snapshot(snapshot)


class TestThreadSafety:
    def test_concurrent_counter_updates_lose_nothing(self, registry):
        n_threads, n_incs = 8, 2500
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            c = registry.counter("shared")
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert registry.counter("shared").value == n_threads * n_incs

    def test_concurrent_spans_and_observations(self, registry):
        n_threads, n_spans = 8, 300
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(n_spans):
                with registry.span("hot"):
                    pass
                registry.histogram("obs").observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert registry.histogram("hot").count == n_threads * n_spans
        assert registry.histogram("obs").count == n_threads * n_spans
        validate_snapshot(registry.snapshot())

    def test_concurrent_get_or_create_returns_one_instrument(self, registry):
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(registry.counter("raced"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(c is results[0] for c in results)


class TestDisabledRegistry:
    def test_accessors_return_the_shared_null(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is _NULL
        assert registry.gauge("g") is _NULL
        assert registry.histogram("h") is _NULL
        assert registry.span("s") is _NULL

    def test_null_instrument_absorbs_everything(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("c")
        c.inc()
        c.set_to(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.1)
        assert registry.histogram("h").quantile(0.5) == 0.0
        with registry.span("s"):
            pass

    def test_disabled_snapshot_is_empty_but_valid(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        validate_snapshot(snapshot)
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_process_default_is_disabled(self):
        assert get_metrics().enabled is False

    def test_set_metrics_installs_and_restores(self):
        live = MetricsRegistry(enabled=True)
        previous = set_metrics(live)
        try:
            assert get_metrics() is live
        finally:
            set_metrics(previous)
        assert get_metrics() is previous

    def test_set_metrics_none_restores_disabled_default(self):
        previous = set_metrics(MetricsRegistry(enabled=True))
        try:
            set_metrics(None)
            assert get_metrics().enabled is False
        finally:
            set_metrics(previous)


def test_default_boundaries_are_increasing():
    edges = DEFAULT_LATENCY_BOUNDARIES_S
    assert all(b > a for a, b in zip(edges, edges[1:]))
