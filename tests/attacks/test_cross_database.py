"""Tests for the cross-database (check-in) linkage attack."""

import numpy as np
import pytest

from repro.attacks.cross_database import (
    cross_database_attack,
    simulate_checkin_database,
)
from repro.core.config import GloveConfig
from repro.core.glove import glove


@pytest.fixture(scope="module")
def side_channel_setup():
    from repro.cdr.datasets import synthesize

    original = synthesize("synth-civ", n_users=40, days=2, seed=11)
    side = simulate_checkin_database(
        original, coverage=0.4, checkins_per_user=5, rng=np.random.default_rng(7)
    )
    return original, side


class TestSimulation:
    def test_coverage(self, side_channel_setup):
        original, side = side_channel_setup
        assert len(side.identities) == round(0.4 * len(original))

    def test_checkins_near_true_samples(self, side_channel_setup):
        original, side = side_channel_setup
        for identity in side.identities[:5]:
            fp = original[side.ground_truth[identity]]
            centers_x = fp.data[:, 0] + fp.data[:, 1] / 2
            centers_y = fp.data[:, 2] + fp.data[:, 3] / 2
            for cx, cy, ct in side.checkins[identity]:
                d = np.hypot(centers_x - cx, centers_y - cy).min()
                assert d < 2_000.0  # within a few jitter sigmas

    def test_ground_truth_consistent(self, side_channel_setup):
        original, side = side_channel_setup
        assert set(side.ground_truth.values()) <= set(original.uids)

    def test_validation(self, side_channel_setup):
        original, _ = side_channel_setup
        with pytest.raises(ValueError):
            simulate_checkin_database(original, coverage=0.0)
        with pytest.raises(ValueError):
            simulate_checkin_database(original, checkins_per_user=0)


class TestAttack:
    def test_pseudonymized_data_breaks(self, side_channel_setup):
        # Against the merely pseudonymized original, the attack
        # re-identifies a large share of side-channel identities —
        # the paper's motivating result [7].
        original, side = side_channel_setup
        outcome = cross_database_attack(side, original)
        assert outcome.reidentification_rate > 0.5

    def test_glove_blocks_reidentification(self, side_channel_setup):
        original, side = side_channel_setup
        published = glove(original, GloveConfig(k=2)).dataset
        outcome = cross_database_attack(side, published)
        assert outcome.reidentification_rate == 0.0
        # Non-empty candidate sets always hold at least k subscribers.
        assert outcome.min_nonempty_candidates in (0,) or (
            outcome.min_nonempty_candidates >= 2
        )

    def test_tolerances_affect_candidates(self, side_channel_setup):
        original, side = side_channel_setup
        strict = cross_database_attack(
            side, original, spatial_tolerance_m=200.0, temporal_tolerance_min=10.0
        )
        loose = cross_database_attack(
            side, original, spatial_tolerance_m=5_000.0, temporal_tolerance_min=240.0
        )
        assert (
            loose.candidate_subscribers.sum() >= strict.candidate_subscribers.sum()
        )
