"""Tests for record-linkage attacks, including k-anonymity validation."""

import pytest

from repro.attacks.record_linkage import (
    uniqueness_given_random_points,
    uniqueness_given_top_locations,
)
from repro.core.config import GloveConfig
from repro.core.glove import glove


class TestUniquenessPremise:
    """The attacks reproduce the paper's motivation ([5], [6]):
    original CDR data is highly unique."""

    def test_random_points_pin_most_users(self, small_civ):
        outcome = uniqueness_given_random_points(small_civ, n_points=4, seed=3)
        assert outcome.uniqueness > 0.8

    def test_top_locations_identify_many_users(self, small_civ):
        outcome = uniqueness_given_top_locations(small_civ, n_locations=3)
        # Top-3 locations are weaker side information than spatiotemporal
        # points, but still isolate a sizable share of users.
        assert outcome.uniqueness > 0.2

    def test_more_knowledge_more_unique(self, small_civ):
        two = uniqueness_given_random_points(small_civ, n_points=2, seed=3)
        six = uniqueness_given_random_points(small_civ, n_points=6, seed=3)
        assert six.uniqueness >= two.uniqueness

    def test_candidate_counts_at_least_one(self, small_civ):
        # The target itself always matches its own constraints.
        outcome = uniqueness_given_random_points(small_civ, n_points=4, seed=3)
        assert outcome.min_candidates >= 1


class TestGloveDefeatsLinkage:
    """k-anonymity validation: after GLOVE, no attack with any subset
    of a user's samples narrows him below k candidates."""

    @pytest.fixture(scope="class")
    def published(self, request):
        from repro.cdr.datasets import synthesize

        original = synthesize("synth-civ", n_users=40, days=2, seed=11)
        return original, glove(original, GloveConfig(k=2)).dataset

    def test_random_point_attack_blocked(self, published):
        original, anonymized = published
        outcome = uniqueness_given_random_points(original, anonymized, n_points=4, seed=3)
        assert outcome.min_candidates >= 2
        assert outcome.fraction_identified_within(2) == 0.0

    def test_top_location_attack_blocked(self, published):
        original, anonymized = published
        outcome = uniqueness_given_top_locations(original, anonymized, n_locations=3)
        assert outcome.min_candidates >= 2

    def test_full_fingerprint_attack_blocked(self, published):
        # Quasi-identifier-blind anonymity: even an adversary knowing
        # the *entire* fingerprint finds at least k candidates.
        original, anonymized = published
        outcome = uniqueness_given_random_points(
            original, anonymized, n_points=10_000, seed=3
        )
        assert outcome.min_candidates >= 2
