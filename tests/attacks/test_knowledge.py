"""Tests for adversary knowledge models."""

import numpy as np
import pytest

from repro.attacks.knowledge import (
    SpatialConstraint,
    SpatioTemporalConstraint,
    constraint_matches_fingerprint,
    random_sample_knowledge,
    top_locations_knowledge,
)
from tests.conftest import make_fp


class TestTopLocations:
    def test_most_frequent_first(self):
        fp = make_fp(
            "a",
            [
                (0.0, 0.0, 0.0),
                (0.0, 0.0, 10.0),
                (0.0, 0.0, 20.0),
                (500.0, 0.0, 30.0),
                (500.0, 0.0, 40.0),
                (900.0, 0.0, 50.0),
            ],
        )
        top = top_locations_knowledge(fp, n=2)
        assert top[0].x == 0.0
        assert top[1].x == 500.0

    def test_fewer_locations_than_n(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0)])
        assert len(top_locations_knowledge(fp, n=5)) == 1

    def test_rejects_zero_n(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            top_locations_knowledge(fp, n=0)


class TestRandomSamples:
    def test_sample_count(self, small_civ, rng):
        fp = small_civ[0]
        constraints = random_sample_knowledge(fp, n=4, rng=rng)
        assert len(constraints) == min(4, fp.m)

    def test_constraints_come_from_fingerprint(self, small_civ, rng):
        fp = small_civ[0]
        rows = {tuple(r) for r in fp.data}
        for c in random_sample_knowledge(fp, n=6, rng=rng):
            assert (c.x, c.dx, c.y, c.dy, c.t, c.dt) in rows

    def test_rejects_zero_n(self, small_civ, rng):
        with pytest.raises(ValueError):
            random_sample_knowledge(small_civ[0], n=0, rng=rng)


class TestConstraintMatching:
    def test_exact_sample_matches(self):
        fp = make_fp("a", [(100.0, 200.0, 10.0)])
        c = SpatioTemporalConstraint(100.0, 100.0, 200.0, 100.0, 10.0, 1.0)
        assert constraint_matches_fingerprint(c, fp)

    def test_overlapping_generalized_sample_matches(self):
        # Published sample generalizes the known location: overlap test
        # keeps the user in the candidate set.
        fp = make_fp("g", [(0.0, 0.0, 0.0, 10_000.0, 10_000.0, 600.0)])
        c = SpatioTemporalConstraint(5_000.0, 100.0, 5_000.0, 100.0, 30.0, 1.0)
        assert constraint_matches_fingerprint(c, fp)

    def test_spatial_only_constraint_ignores_time(self):
        fp = make_fp("a", [(100.0, 200.0, 9_999.0)])
        c = SpatialConstraint(100.0, 100.0, 200.0, 100.0)
        assert constraint_matches_fingerprint(c, fp)

    def test_disjoint_space_no_match(self):
        fp = make_fp("a", [(0.0, 0.0, 10.0)])
        c = SpatioTemporalConstraint(50_000.0, 100.0, 0.0, 100.0, 10.0, 1.0)
        assert not constraint_matches_fingerprint(c, fp)

    def test_disjoint_time_no_match(self):
        fp = make_fp("a", [(0.0, 0.0, 10.0)])
        c = SpatioTemporalConstraint(0.0, 100.0, 0.0, 100.0, 5_000.0, 1.0)
        assert not constraint_matches_fingerprint(c, fp)
