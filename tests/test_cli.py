"""Tests for the ``glove`` command-line tool."""

import pytest

from repro.cli import main


@pytest.fixture
def raw_csv(tmp_path):
    path = tmp_path / "raw.csv"
    code = main(
        ["generate", "synth-civ", "--users", "30", "--days", "2", "--seed", "4",
         "-o", str(path)]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_creates_file(self, raw_csv):
        assert raw_csv.exists()
        header = raw_csv.read_text().splitlines()[0]
        assert header == "uid,t_min,x_m,y_m"

    def test_rejects_unknown_preset(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "paris", "-o", str(tmp_path / "x.csv")])


class TestMeasure:
    def test_reports_statistics(self, raw_csv, capsys):
        assert main(["measure", str(raw_csv), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-gap" in out
        assert "radius of gyration" in out

    def test_k_too_large(self, raw_csv, capsys):
        assert main(["measure", str(raw_csv), "-k", "999"]) == 2


class TestAnonymizeAndAttack:
    def test_full_workflow(self, raw_csv, tmp_path, capsys):
        published = tmp_path / "published.csv"
        code = main(
            ["anonymize", str(raw_csv), "-k", "2",
             "--suppress", "15000", "360", "-o", str(published)]
        )
        assert code == 0
        assert published.exists()
        out = capsys.readouterr().out
        assert "anonymized" in out

        code = main(["attack", str(raw_csv), str(published), "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SAFE" in out

    def test_attack_flags_unsafe_publication(self, raw_csv, capsys):
        # "Publishing" the raw file itself must be flagged unsafe.
        code = main(["attack", str(raw_csv), str(raw_csv), "-k", "2"])
        out = capsys.readouterr().out
        assert code == 4
        assert "UNSAFE" in out

    def test_no_reshape_option(self, raw_csv, tmp_path):
        published = tmp_path / "pub2.csv"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--no-reshape", "-o", str(published)]
        ) == 0


class TestInfo:
    def test_event_file(self, raw_csv, capsys):
        assert main(["info", str(raw_csv)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint length" in out
        assert "minimum anonymity-set size: 1" in out

    def test_published_file(self, raw_csv, tmp_path, capsys):
        published = tmp_path / "pub.csv"
        main(["anonymize", str(raw_csv), "-k", "2", "-o", str(published)])
        capsys.readouterr()
        assert main(["info", str(published)]) == 0
        out = capsys.readouterr().out
        assert "minimum anonymity-set size: 2" in out


class TestComputeFlags:
    """The --backend / --workers / --chunk / --no-prune substrate flags."""

    def test_anonymize_backend_selection(self, raw_csv, tmp_path, capsys):
        outputs = {}
        for backend in ("numpy", "process", "auto"):
            published = tmp_path / f"pub-{backend}.csv"
            code = main(
                ["anonymize", str(raw_csv), "-k", "2",
                 "--backend", backend, "-o", str(published)]
            )
            assert code == 0
            outputs[backend] = published.read_text()
        # Backend choice must never change the published bytes.
        assert outputs["numpy"] == outputs["process"] == outputs["auto"]

    def test_anonymize_no_prune_identical(self, raw_csv, tmp_path, capsys):
        pruned = tmp_path / "pruned.csv"
        full = tmp_path / "full.csv"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "numpy",
             "-o", str(pruned)]
        ) == 0
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "numpy",
             "--no-prune", "--chunk", "32", "-o", str(full)]
        ) == 0
        assert pruned.read_text() == full.read_text()

    def test_measure_accepts_backend(self, raw_csv, capsys):
        assert main(["measure", str(raw_csv), "-k", "2", "--backend", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "2-gap" in out

    def test_kernel_threads_never_changes_output(self, raw_csv, tmp_path):
        outputs = {}
        for nt in ("1", "2"):
            published = tmp_path / f"pub-threads-{nt}.csv"
            assert main(
                ["anonymize", str(raw_csv), "-k", "2",
                 "--kernel-threads", nt, "-o", str(published)]
            ) == 0
            outputs[nt] = published.read_bytes()
        assert outputs["1"] == outputs["2"]

    def test_invalid_kernel_threads_exits_2(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["anonymize", str(raw_csv), "-k", "2",
                 "--kernel-threads", "0", "-o", str(tmp_path / "out.csv")]
            )
        assert excinfo.value.code == 2
        assert "kernel_threads" in capsys.readouterr().err


class TestShardedBackend:
    """The sharded tier end-to-end through the CLI."""

    def test_anonymize_sharded_end_to_end(self, raw_csv, tmp_path, capsys):
        published = tmp_path / "pub-sharded.csv"
        code = main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "sharded",
             "--shards", "3", "-o", str(published)]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["info", str(published)]) == 0
        out = capsys.readouterr().out
        assert "minimum anonymity-set size: 2" in out

    def test_single_shard_byte_identical_to_numpy(self, raw_csv, tmp_path):
        one_shard = tmp_path / "one-shard.csv"
        unsharded = tmp_path / "unsharded.csv"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "sharded",
             "--shards", "1", "-o", str(one_shard)]
        ) == 0
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "numpy",
             "-o", str(unsharded)]
        ) == 0
        assert one_shard.read_bytes() == unsharded.read_bytes()

    def test_shard_strategy_flag(self, raw_csv, tmp_path):
        published = tmp_path / "pub-hash.csv"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "sharded",
             "--shards", "2", "--shard-strategy", "hash", "-o", str(published)]
        ) == 0
        assert published.exists()

    def test_measure_accepts_sharded(self, raw_csv, capsys):
        assert main(["measure", str(raw_csv), "-k", "2", "--backend", "sharded"]) == 0
        out = capsys.readouterr().out
        assert "2-gap" in out


class TestPipelineFlags:
    """The --artifact-dir / --no-cache artifact-store flags."""

    def test_generate_accepts_scenario_name(self, tmp_path, capsys):
        # The "smoke" scenario is synth-civ at 30 users / 2 days / seed 4
        # — the exact scale of the raw_csv fixture.
        from_scenario = tmp_path / "scenario.csv"
        from_preset = tmp_path / "preset.csv"
        assert main(["generate", "smoke", "-o", str(from_scenario)]) == 0
        assert main(
            ["generate", "synth-civ", "--users", "30", "--days", "2", "--seed", "4",
             "-o", str(from_preset)]
        ) == 0
        assert from_scenario.read_bytes() == from_preset.read_bytes()

    def test_generate_flags_override_scenario(self, tmp_path, capsys):
        small = tmp_path / "small.csv"
        assert main(["generate", "smoke", "--users", "10", "-o", str(small)]) == 0
        uids = {line.split(",")[0] for line in small.read_text().splitlines()[1:]}
        assert 0 < len(uids) <= 10  # scenario's 30 users overridden

    def test_anonymize_artifact_dir_reuses_cache(self, raw_csv, tmp_path, capsys):
        store = tmp_path / "store"
        first = tmp_path / "pub1.csv"
        second = tmp_path / "pub2.csv"
        for out in (first, second):
            assert main(
                ["anonymize", str(raw_csv), "-k", "2",
                 "--artifact-dir", str(store), "-o", str(out)]
            ) == 0
        assert first.read_bytes() == second.read_bytes()
        assert list(store.rglob("*.pkl"))  # the glove artifact landed

    def test_no_cache_writes_nothing_and_matches(self, raw_csv, tmp_path, monkeypatch):
        store = tmp_path / "store"
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(store))
        cached = tmp_path / "cached.csv"
        fresh = tmp_path / "fresh.csv"
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "-o", str(cached)]
        ) == 0
        populated = sorted(store.rglob("*.pkl"))
        assert populated
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--no-cache", "-o", str(fresh)]
        ) == 0
        assert cached.read_bytes() == fresh.read_bytes()
        # --no-cache must not have touched the store.
        assert sorted(store.rglob("*.pkl")) == populated

    def test_measure_accepts_pipeline_flags(self, raw_csv, tmp_path, capsys):
        assert main(
            ["measure", str(raw_csv), "-k", "2",
             "--artifact-dir", str(tmp_path / "store")]
        ) == 0
        assert "2-gap" in capsys.readouterr().out

    def test_anonymize_sqlite_backend_reuses_cache(self, raw_csv, tmp_path, capsys):
        store = tmp_path / "store"
        first = tmp_path / "pub1.csv"
        second = tmp_path / "pub2.csv"
        for out in (first, second):
            assert main(
                ["anonymize", str(raw_csv), "-k", "2",
                 "--artifact-dir", str(store), "--artifact-backend", "sqlite",
                 "-o", str(out)]
            ) == 0
        assert first.read_bytes() == second.read_bytes()
        assert list(store.glob("artifacts-*.sqlite"))  # one database file
        assert not list(store.rglob("*.pkl"))  # no per-artifact files

    def test_unknown_artifact_backend_rejected(self, raw_csv, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["anonymize", str(raw_csv), "-k", "2",
                 "--artifact-backend", "etcd", "-o", str(tmp_path / "out.csv")]
            )
        assert excinfo.value.code == 2  # argparse choices


class TestStream:
    """The ``glove stream`` subcommand end-to-end."""

    def test_windowed_run_end_to_end(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "windows.csv"
        code = main(
            ["stream", str(raw_csv), "-k", "2", "--window", "720",
             "--max-lag", "60", "-o", str(out)]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "streamed" in text
        assert "throughput" in text
        assert "window 0" in text

    def test_single_window_byte_identical_to_anonymize(self, raw_csv, tmp_path):
        streamed = tmp_path / "streamed.csv"
        batch = tmp_path / "batch.csv"
        assert main(
            ["stream", str(raw_csv), "-k", "2", "--window", "999999999",
             "--no-carry-over", "-o", str(streamed)]
        ) == 0
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "-o", str(batch)]
        ) == 0
        assert streamed.read_bytes() == batch.read_bytes()

    def test_single_window_byte_identical_on_sharded_backend(self, raw_csv, tmp_path):
        streamed = tmp_path / "streamed.csv"
        batch = tmp_path / "batch.csv"
        assert main(
            ["stream", str(raw_csv), "-k", "2", "--window", "999999999",
             "--no-carry-over", "--backend", "sharded", "-o", str(streamed)]
        ) == 0
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--backend", "sharded",
             "-o", str(batch)]
        ) == 0
        assert streamed.read_bytes() == batch.read_bytes()

    def test_published_windows_are_k_anonymous(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "windows.csv"
        assert main(
            ["stream", str(raw_csv), "-k", "2", "--window", "720",
             "--suppress", "15000", "360", "-o", str(out)]
        ) == 0
        capsys.readouterr()
        # Group counts survive the CSV round trip; every published
        # group hides at least 2 subscribers.
        from repro.cdr.io import read_fingerprints_csv

        published = read_fingerprints_csv(out)
        assert len(published) > 0
        assert all(fp.count >= 2 for fp in published)

    def test_under_populated_window_without_carry_exits_2(self, raw_csv, tmp_path, capsys):
        # 30 users cannot fill k=25 inside 6 h windows; without
        # carry-over this is a clean error, not a traceback.
        code = main(
            ["stream", str(raw_csv), "-k", "25", "--window", "360",
             "--no-carry-over", "-o", str(tmp_path / "x.csv")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "carry-over" in err

    def test_sliding_and_jitter_flags(self, raw_csv, tmp_path):
        out = tmp_path / "sliding.csv"
        assert main(
            ["stream", str(raw_csv), "-k", "2", "--window", "720",
             "--slide", "360", "--max-lag", "30", "--feed-jitter", "15",
             "--feed-seed", "3", "-o", str(out)]
        ) == 0
        assert out.exists()


class TestStreamFlagValidation:
    """Invalid windowing flags must exit 2, like --workers/--shards."""

    @pytest.mark.parametrize("value", ["0", "-720"])
    def test_window_rejected(self, raw_csv, tmp_path, capsys, value):
        with pytest.raises(SystemExit) as exc:
            main(["stream", str(raw_csv), "-k", "2", "--window", value,
                  "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "window must be positive" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-60"])
    def test_slide_rejected(self, raw_csv, tmp_path, capsys, value):
        with pytest.raises(SystemExit) as exc:
            main(["stream", str(raw_csv), "-k", "2", "--window", "720",
                  "--slide", value, "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "slide must be positive" in capsys.readouterr().err

    def test_slide_exceeding_window_rejected(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", str(raw_csv), "-k", "2", "--window", "360",
                  "--slide", "720", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "slide must not exceed window" in capsys.readouterr().err

    def test_negative_max_lag_rejected(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", str(raw_csv), "-k", "2", "--window", "720",
                  "--max-lag", "-1", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "max-lag must be non-negative" in capsys.readouterr().err

    def test_negative_feed_jitter_rejected(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", str(raw_csv), "-k", "2", "--window", "720",
                  "--feed-jitter", "-1", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "feed-jitter must be non-negative" in capsys.readouterr().err

    def test_stream_rejects_bad_compute_flags(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", str(raw_csv), "-k", "2", "--window", "720",
                  "--workers", "0", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "workers must be at least 1" in capsys.readouterr().err


class TestMethodAxis:
    """The --method axis of the anonymize and attack subcommands."""

    def test_glove_method_byte_identical_to_default(self, raw_csv, tmp_path):
        implicit = tmp_path / "implicit.csv"
        explicit = tmp_path / "explicit.csv"
        assert main(["anonymize", str(raw_csv), "-k", "2", "-o", str(implicit)]) == 0
        assert main(
            ["anonymize", str(raw_csv), "-k", "2", "--method", "glove",
             "-o", str(explicit)]
        ) == 0
        assert implicit.read_bytes() == explicit.read_bytes()

    def test_w4m_end_to_end(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "w4m.csv"
        code = main(
            ["anonymize", str(raw_csv), "-k", "2", "--method", "w4m-lc",
             "--delta", "2000", "--trash", "0.1", "-o", str(out)]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "W4M-LC" in text
        assert "created" in text

    def test_nwa_and_generalization_run(self, raw_csv, tmp_path):
        for method, extra in (("nwa", ["--period", "120"]),
                              ("generalization", ["--grid", "2500", "60"])):
            out = tmp_path / f"{method}.csv"
            assert main(
                ["anonymize", str(raw_csv), "--method", method, *extra,
                 "-o", str(out)]
            ) == 0
            assert out.exists()

    def test_attack_with_method_anonymizes_then_attacks(self, raw_csv, capsys):
        assert main(["attack", str(raw_csv), "--method", "glove", "-k", "2"]) == 0
        text = capsys.readouterr().out
        assert "GLOVE" in text and "SAFE" in text

    def test_attack_rejects_published_file_plus_method(self, raw_csv, capsys):
        code = main(["attack", str(raw_csv), str(raw_csv), "--method", "glove"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_attack_rejects_method_flags_with_published_file(self, raw_csv, capsys):
        # Method options only make sense when the attack anonymizes;
        # silently ignoring them against a published file would hide
        # user error.
        code = main(["attack", str(raw_csv), str(raw_csv), "--delta", "2000"])
        assert code == 2
        assert "--delta" in capsys.readouterr().err


class TestMethodFlagValidation:
    """Unknown --method and invalid per-method options exit 2."""

    def test_unknown_method_rejected(self, raw_csv, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "--method", "gpu",
                  "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2

    @pytest.mark.parametrize("value", ["0", "-2000"])
    def test_non_positive_delta_rejected(self, raw_csv, tmp_path, capsys, value):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "--method", "w4m-lc",
                  "--delta", value, "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "delta_m must be positive" in capsys.readouterr().err

    def test_invalid_trash_fraction_rejected(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "--method", "nwa",
                  "--trash", "1.5", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "trash_fraction" in capsys.readouterr().err

    def test_non_positive_grid_rejected(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "--method", "generalization",
                  "--grid", "0", "60", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_flag_of_other_method_rejected(self, raw_csv, tmp_path, capsys):
        # --period belongs to nwa; --suppress belongs to glove.
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "--method", "w4m-lc",
                  "--period", "30", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "--period only applies" in capsys.readouterr().err
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "--method", "nwa",
                  "--suppress", "15000", "360", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "--suppress only applies" in capsys.readouterr().err

    def test_attack_validates_method_options_too(self, raw_csv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["attack", str(raw_csv), "--method", "w4m-lc", "--delta", "-1"])
        assert exc.value.code == 2
        assert "delta_m must be positive" in capsys.readouterr().err


class TestComputeFlagValidation:
    """Invalid substrate flags must exit 2 with a clear message."""

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_workers_rejected(self, raw_csv, tmp_path, capsys, value):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "-k", "2", "--workers", value,
                  "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "workers must be at least 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_shards_rejected(self, raw_csv, tmp_path, capsys, value):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "-k", "2", "--backend", "sharded",
                  "--shards", value, "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2
        assert "shards must be at least 1" in capsys.readouterr().err

    def test_unknown_shard_strategy_rejected(self, raw_csv, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["anonymize", str(raw_csv), "-k", "2", "--backend", "sharded",
                  "--shard-strategy", "geo", "-o", str(tmp_path / "x.csv")])
        assert exc.value.code == 2

    def test_rejects_unknown_backend(self, raw_csv, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["anonymize", str(raw_csv), "-k", "2", "--backend", "gpu",
                 "-o", str(tmp_path / "x.csv")]
            )
