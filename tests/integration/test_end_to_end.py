"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.analysis.accuracy import extent_accuracy, utility_report
from repro.analysis.anonymizability import kgap_cdf
from repro.attacks.record_linkage import uniqueness_given_random_points
from repro.baselines.w4m import W4MConfig, w4m_lc
from repro.cdr.datasets import synthesize
from repro.cdr.io import read_fingerprints_csv, write_fingerprints_csv
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.glove import glove


class TestFullPipeline:
    """Synthesize -> measure -> anonymize -> validate -> publish."""

    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        original = synthesize("synth-civ", n_users=50, days=2, seed=21)
        cdf, result = kgap_cdf(original, k=2)
        anonymized = glove(
            original,
            GloveConfig(
                k=2,
                suppression=SuppressionConfig(
                    spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
                ),
            ),
        )
        path = tmp_path_factory.mktemp("publish") / "published.csv"
        write_fingerprints_csv(anonymized.dataset, path)
        return original, cdf, anonymized, path

    def test_original_is_unique(self, pipeline):
        original, cdf, _, _ = pipeline
        assert cdf(0.0) == 0.0  # nobody is 2-anonymous before GLOVE

    def test_glove_fixes_it(self, pipeline):
        _, _, anonymized, _ = pipeline
        assert anonymized.dataset.is_k_anonymous(2)

    def test_published_file_roundtrip(self, pipeline):
        original, _, anonymized, path = pipeline
        published = read_fingerprints_csv(path)
        assert published.is_k_anonymous(2)
        assert published.n_users == original.n_users

    def test_attack_on_published_file(self, pipeline):
        original, _, anonymized, _ = pipeline
        outcome = uniqueness_given_random_points(
            original, anonymized.dataset, n_points=5, seed=1
        )
        # Nobody is narrowed to a non-empty set below k; empty sets are
        # possible (suppression removed the known sample) and fine.
        assert outcome.fraction_identified_within(2) == 0.0
        assert outcome.worst_nonempty_candidates() >= 2

    def test_utility_preserved(self, pipeline):
        original, _, anonymized, _ = pipeline
        spatial, temporal = extent_accuracy(anonymized.dataset)
        # A nontrivial share of published samples keeps city-block
        # spatial accuracy even at this tiny (50-user) scale; the fig7
        # benchmark asserts the paper-shaped fractions at full scale.
        assert spatial(2_000.0) > 0.15


class TestGloveVsW4M:
    """The Table 2 ordering holds end-to-end on a fresh dataset."""

    @pytest.fixture(scope="class")
    def faceoff(self):
        dataset = synthesize("dakar", n_users=44, days=2, seed=5)
        g = glove(
            dataset,
            GloveConfig(
                k=2,
                suppression=SuppressionConfig(
                    spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
                ),
            ),
        )
        w = w4m_lc(dataset, W4MConfig(k=2))
        return dataset, g, w

    def test_glove_keeps_everyone(self, faceoff):
        dataset, g, w = faceoff
        assert g.dataset.n_users == dataset.n_users
        assert w.stats.discarded_fingerprints > 0

    def test_glove_fabricates_nothing(self, faceoff):
        _, g, w = faceoff
        assert w.stats.created_samples > 0
        # GLOVE's output never contains samples outside the original
        # union: its sample count shrinks.
        assert g.dataset.n_samples <= g.stats.n_input_fingerprints * 1_000

    def test_glove_more_accurate_in_time(self, faceoff):
        # Citywide at toy scale: W4M's 2 km cylinder caps its spatial
        # error, so the decisive dimension is time (as in the paper,
        # where the W4M time error is 20x GLOVE's).  The spatial win is
        # asserted at full scale by the table2 benchmark.
        dataset, g, w = faceoff
        g_report = utility_report(dataset, g.dataset, "GLOVE", mode="cover")
        assert g_report.mean_time_error_min < w.stats.mean_time_error_min


class TestCrossPresetConsistency:
    @pytest.mark.parametrize("preset", ["synth-civ", "synth-sen", "abidjan", "dakar"])
    def test_every_preset_supports_full_flow(self, preset):
        dataset = synthesize(preset, n_users=24, days=1, seed=3)
        if len(dataset) < 4:
            pytest.skip("screening left too few users at this tiny scale")
        result = glove(dataset, GloveConfig(k=2))
        assert result.dataset.is_k_anonymous(2)
        assert result.dataset.n_users == dataset.n_users
