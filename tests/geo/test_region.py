"""Tests for rectangular regions."""

import numpy as np
import pytest

from repro.geo.region import Region


@pytest.fixture
def region():
    return Region("test", 0.0, 1000.0, 0.0, 500.0)


class TestGeometry:
    def test_dimensions(self, region):
        assert region.width == 1000.0
        assert region.height == 500.0
        assert region.area_km2 == pytest.approx(0.5)
        assert region.center == (500.0, 250.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Region("bad", 10.0, 10.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Region("bad", 0.0, 1.0, 5.0, 4.0)


class TestContains:
    def test_inside(self, region):
        assert region.contains(500.0, 100.0)

    def test_boundary_inclusive(self, region):
        assert region.contains(0.0, 0.0)
        assert region.contains(1000.0, 500.0)

    def test_outside(self, region):
        assert not region.contains(-1.0, 100.0)
        assert not region.contains(500.0, 501.0)

    def test_array(self, region):
        mask = region.contains(np.array([1.0, -1.0]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(mask, [True, False])


class TestClip:
    def test_clip_scalar(self, region):
        assert region.clip(-10.0, 600.0) == (0.0, 500.0)

    def test_clip_is_inside(self, region, rng):
        x, y = region.clip(rng.uniform(-2000, 2000, 50), rng.uniform(-2000, 2000, 50))
        assert region.contains(x, y).all()


class TestSubregion:
    def test_subregion_within_bounds(self, region):
        sub = region.subregion("sub", 100.0, 100.0, 300.0)
        assert sub.x_min == 0.0  # clamped
        assert sub.x_max == 400.0
        assert sub.y_min == 0.0
        assert sub.y_max == 400.0

    def test_subregion_name(self, region):
        assert region.subregion("core", 500.0, 250.0, 10.0).name == "core"
