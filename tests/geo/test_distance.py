"""Tests for distance helpers."""

import numpy as np
import pytest

from repro.geo.distance import euclidean_m, haversine_m
from repro.geo.projection import EARTH_RADIUS_M


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(7.5, -5.5, 7.5, -5.5) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_m(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M / 180.0, rel=1e-9)

    def test_quarter_circumference(self):
        d = haversine_m(0.0, 0.0, 90.0, 0.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M / 2.0, rel=1e-9)

    def test_symmetry(self):
        assert haversine_m(3.0, 4.0, 8.0, -2.0) == pytest.approx(
            haversine_m(8.0, -2.0, 3.0, 4.0)
        )

    def test_array_broadcast(self):
        d = haversine_m(0.0, 0.0, np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert d.shape == (2,)
        assert d[1] > d[0]


class TestEuclidean:
    def test_pythagoras(self):
        assert euclidean_m(0.0, 0.0, 3.0, 4.0) == 5.0

    def test_array(self):
        d = euclidean_m(np.zeros(3), np.zeros(3), np.array([1.0, 2.0, 3.0]), np.zeros(3))
        np.testing.assert_array_equal(d, [1.0, 2.0, 3.0])
