"""Tests for the regular-grid discretization."""

import numpy as np
import pytest

from repro.geo.grid import Grid


class TestSnap:
    def test_snap_scalar(self):
        grid = Grid(cell_size=100.0)
        assert grid.snap(151.0, 99.9) == (100.0, 0.0)

    def test_snap_negative_coordinates(self):
        grid = Grid(cell_size=100.0)
        assert grid.snap(-1.0, -101.0) == (-100.0, -200.0)

    def test_snap_exact_boundary(self):
        grid = Grid(cell_size=100.0)
        assert grid.snap(200.0, 300.0) == (200.0, 300.0)

    def test_snap_array(self):
        grid = Grid(cell_size=100.0)
        gx, gy = grid.snap(np.array([0.0, 155.0]), np.array([99.0, 201.0]))
        np.testing.assert_array_equal(gx, [0.0, 100.0])
        np.testing.assert_array_equal(gy, [0.0, 200.0])

    def test_snap_with_origin(self):
        grid = Grid(cell_size=100.0, origin=(50.0, 50.0))
        assert grid.snap(149.0, 149.0) == (50.0, 50.0)
        assert grid.snap(151.0, 150.0) == (150.0, 150.0)

    def test_snap_idempotent(self, rng):
        grid = Grid(cell_size=250.0)
        x, y = rng.uniform(-1e6, 1e6, 100), rng.uniform(-1e6, 1e6, 100)
        gx, gy = grid.snap(x, y)
        gx2, gy2 = grid.snap(gx, gy)
        np.testing.assert_array_equal(gx, gx2)
        np.testing.assert_array_equal(gy, gy2)


class TestCellIndex:
    def test_index_scalar(self):
        grid = Grid(cell_size=100.0)
        assert grid.cell_index(250.0, -50.0) == (2, -1)

    def test_center_roundtrip(self):
        grid = Grid(cell_size=100.0)
        cx, cy = grid.cell_center(3, 7)
        assert (cx, cy) == (350.0, 750.0)
        assert grid.cell_index(cx, cy) == (3, 7)


class TestCoarsen:
    def test_coarsen_multiplies_cell_size(self):
        grid = Grid(cell_size=100.0)
        assert grid.coarsen(10).cell_size == 1000.0

    def test_coarsen_keeps_origin(self):
        grid = Grid(cell_size=100.0, origin=(7.0, 9.0))
        assert grid.coarsen(2).origin == (7.0, 9.0)

    def test_coarsen_rejects_non_integer(self):
        with pytest.raises(ValueError):
            Grid().coarsen(1.5)

    def test_coarsen_rejects_zero(self):
        with pytest.raises(ValueError):
            Grid().coarsen(0)


class TestValidation:
    def test_rejects_non_positive_cell(self):
        with pytest.raises(ValueError):
            Grid(cell_size=0.0)

    def test_equality_and_hash(self):
        assert Grid(100.0) == Grid(100.0)
        assert Grid(100.0) != Grid(200.0)
        assert hash(Grid(100.0)) == hash(Grid(100.0))
