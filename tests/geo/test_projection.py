"""Tests for the Lambert azimuthal equal-area projection."""

import math

import numpy as np
import pytest

from repro.geo.distance import haversine_m
from repro.geo.projection import EARTH_RADIUS_M, LambertAzimuthalEqualArea


@pytest.fixture
def proj():
    return LambertAzimuthalEqualArea(lat0=7.5, lon0=-5.5)


class TestForward:
    def test_origin_maps_to_zero(self, proj):
        x, y = proj.forward(7.5, -5.5)
        assert abs(x) < 1e-6
        assert abs(y) < 1e-6

    def test_north_displacement_is_positive_y(self, proj):
        x, y = proj.forward(8.5, -5.5)
        assert abs(x) < 1e-6
        assert y > 0

    def test_east_displacement_is_positive_x(self, proj):
        x, y = proj.forward(7.5, -4.5)
        assert x > 0
        assert abs(y) < 1e3  # tiny curvature term only

    def test_small_displacement_matches_haversine(self, proj):
        # Near the origin the projection is nearly isometric.
        x, y = proj.forward(7.6, -5.4)
        planar = math.hypot(x, y)
        sphere = haversine_m(7.5, -5.5, 7.6, -5.4)
        assert planar == pytest.approx(sphere, rel=1e-4)

    def test_array_input(self, proj):
        lats = np.array([7.5, 8.0, 9.0])
        lons = np.array([-5.5, -5.0, -4.0])
        x, y = proj.forward(lats, lons)
        assert x.shape == (3,)
        assert y.shape == (3,)

    def test_antipode_rejected(self, proj):
        with pytest.raises(ValueError, match="antipode"):
            proj.forward(-7.5, 174.5)


class TestInverse:
    def test_roundtrip_scalar(self, proj):
        lat, lon = proj.inverse(*proj.forward(8.2, -4.9))
        assert lat == pytest.approx(8.2, abs=1e-9)
        assert lon == pytest.approx(-4.9, abs=1e-9)

    def test_roundtrip_array(self, proj, rng):
        lats = rng.uniform(4.0, 11.0, 50)
        lons = rng.uniform(-9.0, -2.0, 50)
        x, y = proj.forward(lats, lons)
        back_lat, back_lon = proj.inverse(x, y)
        np.testing.assert_allclose(back_lat, lats, atol=1e-9)
        np.testing.assert_allclose(back_lon, lons, atol=1e-9)

    def test_origin_roundtrip(self, proj):
        lat, lon = proj.inverse(0.0, 0.0)
        assert lat == pytest.approx(7.5)
        assert lon == pytest.approx(-5.5)


class TestEqualArea:
    def test_area_preservation(self, proj):
        # A 1-degree cell projected far from the origin keeps its area.
        import itertools

        for lat0, lon0 in [(7.5, -5.5), (10.5, -3.0), (5.0, -8.0)]:
            corners = list(itertools.product([lat0, lat0 + 1], [lon0, lon0 + 1]))
            xs, ys = zip(*[proj.forward(la, lo) for la, lo in corners])
            # Shoelace area of the projected quadrilateral (convex here).
            quad = [(xs[0], ys[0]), (xs[1], ys[1]), (xs[3], ys[3]), (xs[2], ys[2])]
            area = 0.0
            for i in range(4):
                x1, y1 = quad[i]
                x2, y2 = quad[(i + 1) % 4]
                area += x1 * y2 - x2 * y1
            area = abs(area) / 2.0
            # True spherical area of the 1x1-degree cell.
            phi1, phi2 = math.radians(lat0), math.radians(lat0 + 1)
            true = EARTH_RADIUS_M**2 * math.radians(1.0) * (math.sin(phi2) - math.sin(phi1))
            assert area == pytest.approx(true, rel=1e-3)


class TestValidation:
    def test_bad_lat0(self):
        with pytest.raises(ValueError):
            LambertAzimuthalEqualArea(lat0=91.0, lon0=0.0)

    def test_bad_lon0(self):
        with pytest.raises(ValueError):
            LambertAzimuthalEqualArea(lat0=0.0, lon0=200.0)

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            LambertAzimuthalEqualArea(lat0=0.0, lon0=0.0, radius=-1.0)
