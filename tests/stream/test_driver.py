"""Tests for the incremental streaming driver (:mod:`repro.stream.driver`).

The anchor invariant (DESIGN.md D7) and the carry-over machinery:
byte-identity with batch GLOVE for a whole-recording window, deferral
and carry-over of under-populated windows, end-of-stream residual
repair, and late-event handling at the watermark boundary.
"""

import numpy as np
import pytest

from repro.core.config import ComputeConfig, GloveConfig, SuppressionConfig
from repro.core.glove import glove
from repro.stream.driver import stream_glove
from repro.stream.feed import replay_dataset
from repro.stream.windows import StreamConfig

from tests.properties.test_k_anonymity import assert_k_anonymous

#: A window comfortably covering any reproduction-scale recording.
WHOLE_RECORDING = StreamConfig(window_min=1e9, carry_over=False)


def assert_same_publication(stream_ds, batch_ds):
    """Byte-level equality of two published datasets."""
    assert len(stream_ds) == len(batch_ds)
    for a, b in zip(stream_ds, batch_ds):
        assert a.uid == b.uid
        assert a.count == b.count
        assert a.members == b.members
        assert np.array_equal(a.data, b.data)


class TestAnchorInvariant:
    """Single whole-recording window + no carry-over == batch GLOVE."""

    @pytest.mark.parametrize("backend", ["numpy", "sharded"])
    def test_byte_identical_to_batch(self, small_civ, backend):
        compute = ComputeConfig(backend=backend, workers=1)
        batch = glove(small_civ, GloveConfig(k=2), compute)
        result = stream_glove(small_civ, GloveConfig(k=2), WHOLE_RECORDING, compute)
        assert len(result.emitted) == 1
        assert_same_publication(result.emitted[0].dataset, batch.dataset)

    def test_byte_identical_with_suppression_and_no_reshape(self, small_civ):
        config = GloveConfig(
            k=2,
            suppression=SuppressionConfig(
                spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
            ),
            reshape=False,
        )
        compute = ComputeConfig(backend="numpy")
        batch = glove(small_civ, config, compute)
        result = stream_glove(small_civ, config, WHOLE_RECORDING, compute)
        assert_same_publication(result.emitted[0].dataset, batch.dataset)
        supp = result.emitted[0].stats.suppression
        assert supp.discarded_samples == batch.stats.suppression.discarded_samples

    def test_combined_dataset_is_the_single_window(self, small_civ):
        result = stream_glove(small_civ, GloveConfig(k=2), WHOLE_RECORDING)
        combined = result.combined_dataset()
        assert_same_publication(combined, result.emitted[0].dataset)

    def test_byte_identical_for_non_uid_sorted_dataset(self, small_civ):
        # The invariant must not depend on insertion order coinciding
        # with lexicographic uid order (zero-padded synthetic uids hide
        # that): reverse the population and compare again.
        from repro.core.dataset import FingerprintDataset

        reversed_ds = FingerprintDataset(list(small_civ)[::-1], name="rev")
        assert reversed_ds.uids != sorted(reversed_ds.uids)
        batch = glove(reversed_ds, GloveConfig(k=2), ComputeConfig(backend="numpy"))
        result = stream_glove(
            reversed_ds, GloveConfig(k=2), WHOLE_RECORDING, ComputeConfig(backend="numpy")
        )
        assert_same_publication(result.emitted[0].dataset, batch.dataset)


class TestWindowedRuns:
    def test_every_window_k_anonymous_and_covers_window_users(self, small_civ):
        result = stream_glove(
            small_civ, GloveConfig(k=2), StreamConfig(window_min=6 * 60.0)
        )
        assert len(result.emitted) > 1
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 2)
        published = {m for w in result.emitted for fp in w.dataset for m in fp.members}
        assert published == set(small_civ.uids)

    def test_no_carry_windows_match_independent_batch_runs(self, small_civ):
        stream_cfg = StreamConfig(window_min=12 * 60.0, carry_over=False)
        result = stream_glove(small_civ, GloveConfig(k=2), stream_cfg)
        assert len(result.emitted) >= 2
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 2)
            assert window.stats.n_carried_in == 0

    def test_no_carry_raises_on_under_populated_window(self, small_civ):
        with pytest.raises(ValueError, match="carry-over"):
            stream_glove(
                small_civ,
                GloveConfig(k=35),  # above any single 6 h window's population
                StreamConfig(window_min=6 * 60.0, carry_over=False),
            )

    def test_windows_are_ordered_and_stats_aggregate(self, small_civ):
        result = stream_glove(
            small_civ, GloveConfig(k=2), StreamConfig(window_min=6 * 60.0)
        )
        indices = [w.index for w in result.windows]
        assert indices == sorted(indices)
        assert result.stats.n_events == small_civ.n_samples
        assert result.stats.n_users == len(small_civ)
        assert result.stats.n_windows == len(result.windows)
        assert result.stats.events_per_sec > 0
        assert result.stats.latency_p95_s >= result.stats.latency_p50_s >= 0
        assert sum(w.stats.n_groups for w in result.emitted) == result.stats.n_groups

    def test_rejects_population_below_k(self, small_civ):
        with pytest.raises(ValueError, match="cannot reach k"):
            stream_glove(small_civ, GloveConfig(k=99), StreamConfig(window_min=60.0))


class TestCarryOver:
    def test_deferred_windows_carry_into_later_ones(self, small_civ):
        # k well above any single window's population forces deferrals.
        result = stream_glove(
            small_civ, GloveConfig(k=35), StreamConfig(window_min=6 * 60.0)
        )
        assert result.stats.n_deferred_windows > 0
        assert any(w.stats.n_carried_in > 0 for w in result.emitted)
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 35)
        published = {m for w in result.emitted for fp in w.dataset for m in fp.members}
        assert published == set(small_civ.uids)

    def test_absorbed_members_not_claimed_twice(self, small_civ):
        result = stream_glove(
            small_civ, GloveConfig(k=5), StreamConfig(window_min=3 * 60.0)
        )
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 5)
        assert any(
            w.stats.n_absorbed > 0 or w.stats.n_carried_in > 0 for w in result.windows
        )

    def test_residual_pool_reaching_k_emits_residual_window(self, toy_dataset):
        # One event per window at the tail forces a below-k carry chain
        # that only the end-of-stream repair can resolve.
        result = stream_glove(
            toy_dataset, GloveConfig(k=2), StreamConfig(window_min=30.0)
        )
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 2)
        published = {m for w in result.emitted for fp in w.dataset for m in fp.members}
        assert published == set(toy_dataset.uids)

    def test_carry_disabled_by_config(self, small_civ):
        result = stream_glove(
            small_civ,
            GloveConfig(k=2),
            StreamConfig(window_min=12 * 60.0, carry_over=False),
        )
        assert all(w.stats.carried_out_members == 0 for w in result.windows)
        assert result.stats.n_deferred_windows == 0


class TestLateEvents:
    def test_jitter_within_lag_is_invisible(self, small_civ):
        config = GloveConfig(k=2)
        in_order = stream_glove(
            small_civ, config, StreamConfig(window_min=12 * 60.0, max_lag_min=60.0)
        )
        jittered_feed = replay_dataset(small_civ, max_jitter_min=45.0, seed=3)
        jittered = stream_glove(
            small_civ,
            config,
            StreamConfig(window_min=12 * 60.0, max_lag_min=60.0),
            feed=jittered_feed,
        )
        # The watermark absorbs any disorder below the lag: identical
        # windows, hence identical publications.
        assert jittered.stats.n_late_redirected == 0
        assert len(in_order.windows) == len(jittered.windows)
        for a, b in zip(in_order.emitted, jittered.emitted):
            assert_same_publication(a.dataset, b.dataset)

    def test_late_events_beyond_lag_redirected_but_k_anonymous(self, small_civ):
        feed = replay_dataset(small_civ, max_jitter_min=90.0, seed=3)
        result = stream_glove(
            small_civ,
            GloveConfig(k=2),
            StreamConfig(window_min=12 * 60.0, max_lag_min=0.0),
            feed=feed,
        )
        assert result.stats.n_late_redirected > 0
        assert result.stats.n_late_dropped == 0
        assert sum(w.stats.n_late_events for w in result.windows) == (
            result.stats.n_late_redirected
        )
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 2)

    def test_drop_policy_below_k_residue_suppressed_not_crashed(self):
        # b's only event arrives after its window closed and is
        # dropped; every window then holds only a, so nothing can ever
        # reach k=2.  The lossy run must account the residue, not raise.
        from repro.core.dataset import FingerprintDataset
        from repro.core.fingerprint import Fingerprint
        from repro.stream.feed import ReplayFeed

        def row(t):
            return [0.0, 100.0, 0.0, 100.0, float(t), 1.0]

        a = Fingerprint("a", np.array([row(0), row(100), row(200)]))
        b = Fingerprint("b", np.array([row(5)]))
        dataset = FingerprintDataset([a, b], name="lossy")
        rows = np.array([row(0), row(100), row(200), row(5)])
        feed = ReplayFeed(["a", "a", "a", "b"], rows, name="lossy-feed")
        result = stream_glove(
            dataset,
            GloveConfig(k=2),
            StreamConfig(window_min=30.0, max_lag_min=0.0, late_policy="drop"),
            feed=feed,
        )
        assert result.stats.n_late_dropped == 1
        assert result.emitted == []
        assert result.stats.n_unpublished_members == 1

    def test_drop_policy_loses_only_late_events(self, small_civ):
        feed = replay_dataset(small_civ, max_jitter_min=90.0, seed=3)
        result = stream_glove(
            small_civ,
            GloveConfig(k=2),
            StreamConfig(window_min=12 * 60.0, max_lag_min=0.0, late_policy="drop"),
            feed=feed,
        )
        assert result.stats.n_late_dropped > 0
        kept = sum(w.stats.n_events for w in result.windows)
        assert kept == small_civ.n_samples - result.stats.n_late_dropped
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 2)


class TestSlidingWindows:
    def test_overlapping_windows_each_k_anonymous(self, small_civ):
        result = stream_glove(
            small_civ,
            GloveConfig(k=3),
            StreamConfig(window_min=12 * 60.0, slide_min=6 * 60.0),
        )
        assert len(result.windows) > 2
        for window in result.emitted:
            assert_k_anonymous(window.dataset, 3)

    def test_combined_dataset_disambiguates_repeated_uids(self, small_civ):
        result = stream_glove(
            small_civ,
            GloveConfig(k=2),
            StreamConfig(window_min=12 * 60.0, slide_min=6 * 60.0),
        )
        combined = result.combined_dataset()
        total = sum(len(w.dataset) for w in result.emitted)
        assert len(combined) == total  # nothing silently dropped
