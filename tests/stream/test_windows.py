"""Tests for the window manager (:mod:`repro.stream.windows`)."""

import numpy as np
import pytest

from repro.stream.feed import StreamEvent
from repro.stream.windows import ClosedWindow, StreamConfig, WindowManager


def ev(uid, t):
    row = np.array([0.0, 100.0, 0.0, 100.0, float(t), 1.0])
    return StreamEvent(uid=uid, t=float(t), row=row)


def drain(manager, events):
    closed = []
    for event in events:
        closed.extend(manager.push(event))
    closed.extend(manager.flush())
    return closed


class TestStreamConfig:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(window_min=0), "window must be positive"),
            (dict(window_min=-10), "window must be positive"),
            (dict(window_min=10, slide_min=0), "slide must be positive"),
            (dict(window_min=10, slide_min=-1), "slide must be positive"),
            (dict(window_min=10, slide_min=11), "slide must not exceed window"),
            (dict(window_min=10, max_lag_min=-1), "max-lag must be non-negative"),
            (dict(window_min=10, late_policy="teleport"), "late_policy"),
        ],
    )
    def test_rejects_invalid(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            StreamConfig(**kwargs)

    def test_tumbling_default(self):
        cfg = StreamConfig(window_min=60.0)
        assert cfg.slide == 60.0
        assert StreamConfig(window_min=60.0, slide_min=20.0).slide == 20.0


class TestTumblingWindows:
    def test_partitions_events(self):
        manager = WindowManager(StreamConfig(window_min=10.0))
        closed = drain(manager, [ev("a", t) for t in (0, 1, 9, 10, 15, 29)])
        assert [w.index for w in closed] == [0, 1, 2]
        assert [w.n_events for w in closed] == [3, 2, 1]
        assert closed[0].start == 0.0 and closed[0].end == 10.0
        assert closed[2].start == 20.0 and closed[2].end == 30.0

    def test_origin_follows_first_event(self):
        manager = WindowManager(StreamConfig(window_min=10.0))
        closed = drain(manager, [ev("a", 103), ev("a", 111)])
        assert [w.index for w in closed] == [0]
        assert closed[0].start == 103.0
        assert closed[0].n_events == 2

    def test_empty_windows_never_materialize(self):
        manager = WindowManager(StreamConfig(window_min=10.0))
        closed = drain(manager, [ev("a", 0), ev("a", 95)])
        assert [w.index for w in closed] == [0, 9]

    def test_fingerprints_in_uid_order(self):
        manager = WindowManager(StreamConfig(window_min=100.0))
        closed = drain(manager, [ev("b", 0), ev("a", 1), ev("b", 2)])
        fps = closed[0].fingerprints()
        assert [fp.uid for fp in fps] == ["a", "b"]
        assert fps[1].m == 2


class TestSlidingWindows:
    def test_overlap_replicates_events(self):
        manager = WindowManager(StreamConfig(window_min=20.0, slide_min=10.0))
        closed = drain(manager, [ev("a", 5), ev("a", 15), ev("a", 25)])
        by_index = {w.index: w for w in closed}
        # t=15 is covered by [0, 20) and [10, 30).
        assert by_index[0].n_events == 2
        assert by_index[1].n_events == 2
        assert by_index[2].n_events == 1


class TestWatermark:
    def test_window_closes_only_past_lag(self):
        manager = WindowManager(StreamConfig(window_min=10.0, max_lag_min=5.0))
        assert manager.push(ev("a", 0)) == []
        # Watermark at 12 - 5 = 7 < 10: window 0 still open.
        assert manager.push(ev("a", 12)) == []
        closed = manager.push(ev("a", 15.1))
        assert [w.index for w in closed] == [0]

    def test_event_within_lag_joins_nominal_window(self):
        manager = WindowManager(StreamConfig(window_min=10.0, max_lag_min=5.0))
        manager.push(ev("a", 0))
        manager.push(ev("a", 12))
        closed = manager.push(ev("b", 9))  # 3 minutes late, within lag
        assert closed == []
        closed = drain(manager, [])
        w0 = next(w for w in closed if w.index == 0)
        assert w0.n_events == 2
        assert w0.n_late_events == 0
        assert "b" in w0.rows_by_uid

    def test_late_event_redirected_to_oldest_open(self):
        manager = WindowManager(StreamConfig(window_min=10.0, max_lag_min=0.0))
        manager.push(ev("a", 0))
        manager.push(ev("a", 25))  # closes windows 0 and 1
        closed = manager.push(ev("b", 9))  # nominal window 0 is gone
        assert closed == []
        assert manager.n_redirected == 1
        remaining = manager.flush()
        w2 = next(w for w in remaining if w.index == 2)
        assert "b" in w2.rows_by_uid
        assert w2.n_late_events == 1

    def test_late_event_dropped_under_drop_policy(self):
        manager = WindowManager(
            StreamConfig(window_min=10.0, max_lag_min=0.0, late_policy="drop")
        )
        manager.push(ev("a", 0))
        manager.push(ev("a", 25))
        manager.push(ev("b", 9))
        assert manager.n_dropped == 1
        remaining = manager.flush()
        assert all("b" not in w.rows_by_uid for w in remaining)

    def test_boundary_event_exactly_at_watermark(self):
        # An event recorded exactly max_lag before the newest one sits
        # right on the watermark: its window must still be open.
        manager = WindowManager(StreamConfig(window_min=10.0, max_lag_min=5.0))
        manager.push(ev("a", 0))
        manager.push(ev("a", 15))  # watermark 10: window 0 closes at >= 10
        assert manager.n_redirected == 0
        closed = manager.push(ev("b", 10))  # watermark boundary, window 1
        assert manager.n_redirected == 0
        remaining = manager.flush()
        w1 = next(w for w in remaining for _ in [0] if w.index == 1)
        assert "b" in w1.rows_by_uid

    def test_sliding_late_event_counted_once(self):
        # Both nominal windows of t=25 ([10, 30) and [20, 40)) are
        # closed: one event, one redirect — not one per missed window.
        cfg = StreamConfig(window_min=20.0, slide_min=10.0, max_lag_min=0.0)
        manager = WindowManager(cfg)
        manager.push(ev("a", 0))
        manager.push(ev("a", 60))
        manager.push(ev("b", 25))
        assert manager.n_redirected == 1
        dropper = WindowManager(
            StreamConfig(window_min=20.0, slide_min=10.0, max_lag_min=0.0, late_policy="drop")
        )
        dropper.push(ev("a", 0))
        dropper.push(ev("a", 60))
        dropper.push(ev("b", 25))
        assert dropper.n_dropped == 1

    def test_sliding_missed_replica_is_not_late(self):
        # t=35 misses the closed [20, 40) replica but lands in the open
        # [30, 50): ordinary overlap attrition, no late accounting.
        cfg = StreamConfig(window_min=20.0, slide_min=10.0, max_lag_min=0.0)
        manager = WindowManager(cfg)
        manager.push(ev("a", 0))
        manager.push(ev("a", 45))  # closes windows through [20, 40)
        manager.push(ev("b", 35))
        assert manager.n_redirected == 0 and manager.n_dropped == 0
        remaining = manager.flush()
        w3 = next(w for w in remaining if w.index == 3)
        assert "b" in w3.rows_by_uid
        assert w3.n_late_events == 0
        dropper = WindowManager(
            StreamConfig(window_min=20.0, slide_min=10.0, max_lag_min=0.0, late_policy="drop")
        )
        dropper.push(ev("a", 0))
        dropper.push(ev("a", 45))
        dropper.push(ev("b", 35))
        assert dropper.n_dropped == 0  # the event was published, not dropped

    def test_pre_origin_event_clamped_into_window_zero(self):
        manager = WindowManager(StreamConfig(window_min=10.0, max_lag_min=60.0))
        manager.push(ev("a", 50))
        manager.push(ev("b", 45))  # recorded before the origin
        closed = manager.flush()
        w0 = next(w for w in closed if w.index == 0)
        assert "b" in w0.rows_by_uid


class TestBoundedState:
    def test_open_windows_bounded_by_overlap(self):
        cfg = StreamConfig(window_min=20.0, slide_min=5.0, max_lag_min=0.0)
        manager = WindowManager(cfg)
        peak = 0
        for t in range(0, 500, 1):
            manager.push(ev("a", float(t)))
            peak = max(peak, manager.n_open)
        # ceil(window / slide) open windows, +1 for the closing edge.
        assert peak <= 5

    def test_flush_idempotent(self):
        manager = WindowManager(StreamConfig(window_min=10.0))
        manager.push(ev("a", 0))
        assert len(manager.flush()) == 1
        assert manager.flush() == []
