"""Tests for the event-feed adapter (:mod:`repro.stream.feed`)."""

import numpy as np
import pytest

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import T
from repro.stream.feed import ReplayFeed, feed_fingerprint, replay_dataset


class TestReplayDataset:
    def test_replays_every_sample_in_time_order(self, small_civ):
        feed = replay_dataset(small_civ)
        assert len(feed) == small_civ.n_samples
        assert feed.n_users == len(small_civ)
        ts = [e.t for e in feed]
        assert ts == sorted(ts)

    def test_events_carry_exact_rows(self, small_civ):
        feed = replay_dataset(small_civ)
        by_uid = {}
        for event in feed:
            by_uid.setdefault(event.uid, []).append(event.row)
        for fp in small_civ:
            rebuilt = feed_fingerprint(fp.uid, by_uid[fp.uid])
            assert np.array_equal(rebuilt.data, fp.data)

    def test_zero_jitter_is_deterministic(self, small_civ):
        a = replay_dataset(small_civ)
        b = replay_dataset(small_civ)
        assert a.uids == b.uids
        assert np.array_equal(a.rows, b.rows)

    def test_jitter_bounded_and_seeded(self, small_civ):
        a = replay_dataset(small_civ, max_jitter_min=30.0, seed=7)
        b = replay_dataset(small_civ, max_jitter_min=30.0, seed=7)
        assert a.uids == b.uids and np.array_equal(a.rows, b.rows)
        # Reordering happens, but an event never arrives after one
        # recorded more than the jitter bound later.
        ts = a.rows[:, T]
        assert (ts[1:] < ts[:-1]).any()  # genuinely out of order
        running_max = np.maximum.accumulate(ts)
        assert float((running_max - ts).max()) < 30.0

    def test_rejects_grouped_fingerprints(self):
        group = Fingerprint(
            "g", np.array([[0.0, 100.0, 0.0, 100.0, 0.0, 1.0]]), count=2, members=("a", "b")
        )
        ds = FingerprintDataset([group], name="pub")
        with pytest.raises(ValueError, match="grouped"):
            replay_dataset(ds)

    def test_rejects_negative_jitter(self, small_civ):
        with pytest.raises(ValueError, match="non-negative"):
            replay_dataset(small_civ, max_jitter_min=-1.0)


class TestReplayFeed:
    def test_time_extent_and_shape_validation(self, small_civ):
        feed = replay_dataset(small_civ)
        lo, hi = feed.time_extent()
        assert lo <= hi
        with pytest.raises(ValueError, match="shape"):
            ReplayFeed(["a"], np.zeros((1, 4)))
        with pytest.raises(ValueError, match="uids"):
            ReplayFeed(["a", "b"], np.zeros((1, 6)))

    def test_empty_feed(self):
        feed = ReplayFeed([], np.empty((0, 6)))
        assert len(feed) == 0
        assert feed.time_extent() == (0.0, 0.0)
        assert list(feed) == []
