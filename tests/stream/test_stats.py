"""Tests of the streaming statistics layer and its metrics harvest.

Includes the satellite regression tests for
``StreamStats.latency_quantile`` edge cases and the timing-free guard
that instrumentation does not change what the stream computes.
"""

import pytest

from repro.core.config import GloveConfig
from repro.core.suppression import SuppressionStats
from repro.obs import MetricsRegistry, set_metrics
from repro.stream.driver import stream_glove
from repro.stream.stats import StreamStats, WindowStats
from repro.stream.windows import StreamConfig


class TestLatencyQuantileEdgeCases:
    def test_empty_window_list_returns_zero(self):
        stats = StreamStats()
        assert stats.latency_quantile(0.5) == 0.0
        assert stats.latency_quantile(0.95) == 0.0
        assert stats.latency_p50_s == 0.0
        assert stats.latency_p95_s == 0.0

    def test_single_sample_is_every_quantile(self):
        stats = StreamStats(window_wall_s=[0.123])
        for q in (0.0, 0.5, 0.95, 1.0):
            assert stats.latency_quantile(q) == pytest.approx(0.123)

    def test_q_outside_unit_interval_is_clamped(self):
        stats = StreamStats(window_wall_s=[0.1, 0.2, 0.3])
        assert stats.latency_quantile(-0.5) == pytest.approx(0.1)
        assert stats.latency_quantile(1.5) == pytest.approx(0.3)

    def test_interior_quantiles_unchanged(self):
        stats = StreamStats(window_wall_s=[0.1, 0.2, 0.3])
        assert stats.latency_quantile(0.5) == pytest.approx(0.2)

    def test_deferred_only_run_has_zero_latency(self):
        # Deferred windows never enter window_wall_s.
        stats = StreamStats()
        stats.record_window(WindowStats(index=0, start_min=0, end_min=10, deferred=True))
        assert stats.window_wall_s == []
        assert stats.latency_p95_s == 0.0


class TestRecordWindow:
    def test_folds_engine_counters(self):
        stats = StreamStats()
        stats.record_window(
            WindowStats(
                index=0, start_min=0, end_min=10,
                n_boundary_crossings=5, n_probe_dispatches=9, n_batched_probes=7,
            )
        )
        stats.record_window(
            WindowStats(
                index=1, start_min=10, end_min=20,
                n_boundary_crossings=2, n_probe_dispatches=3, n_batched_probes=1,
            )
        )
        assert stats.n_boundary_crossings == 7
        assert stats.n_probe_dispatches == 12
        assert stats.n_batched_probes == 8

    def test_folds_suppression_totals(self):
        stats = StreamStats()
        stats.record_window(
            WindowStats(
                index=0, start_min=0, end_min=10,
                suppression=SuppressionStats(
                    total_samples=100, discarded_samples=10, discarded_fingerprints=1
                ),
            )
        )
        stats.record_window(
            WindowStats(
                index=1, start_min=10, end_min=20,
                suppression=SuppressionStats(
                    total_samples=300, discarded_samples=30, discarded_fingerprints=2
                ),
            )
        )
        assert stats.suppression_total_samples == 400
        assert stats.suppression_discarded_samples == 40
        assert stats.suppression_discarded_fingerprints == 3
        assert stats.suppression_rate == pytest.approx(0.1)

    def test_suppression_rate_zero_when_nothing_published(self):
        assert StreamStats().suppression_rate == 0.0


class TestRecordMetrics:
    def test_publishes_the_acceptance_key_set(self):
        registry = MetricsRegistry(enabled=True)
        stats = StreamStats(
            n_events=100, n_users=10, wall_s=2.0, window_wall_s=[0.1, 0.2],
            n_boundary_crossings=5, n_probe_dispatches=9, n_batched_probes=7,
            max_carried_members=3,
        )
        stats.record_metrics(registry)
        snap = registry.snapshot()
        assert snap["counters"]["stream.events"] == 100
        assert snap["counters"]["engine.boundary_crossings"] == 5
        assert snap["gauges"]["stream.events_per_sec"] == pytest.approx(50.0)
        assert snap["gauges"]["stream.window_latency_p50_s"] == pytest.approx(0.15)
        assert snap["gauges"]["stream.carry_over_depth"] == 3.0
        assert snap["gauges"]["stream.suppression_rate"] == 0.0

    def test_harvest_is_idempotent(self):
        registry = MetricsRegistry(enabled=True)
        stats = StreamStats(n_events=100, n_boundary_crossings=5)
        stats.record_metrics(registry)
        stats.record_metrics(registry)  # e.g. driver + CLI both harvest
        snap = registry.snapshot()
        assert snap["counters"]["stream.events"] == 100
        assert snap["counters"]["engine.boundary_crossings"] == 5


class TestInstrumentationParity:
    """Timing-free guard: metrics must not change what is computed."""

    def test_dispatch_counters_match_uninstrumented_baseline(self, small_civ):
        config = GloveConfig(k=2)
        stream = StreamConfig(window_min=720.0, max_lag_min=30.0)
        baseline = stream_glove(small_civ, config, stream)

        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            instrumented = stream_glove(small_civ, config, stream)
        finally:
            set_metrics(previous)

        a, b = baseline.stats, instrumented.stats
        assert a.n_boundary_crossings == b.n_boundary_crossings
        assert a.n_probe_dispatches == b.n_probe_dispatches
        assert a.n_batched_probes == b.n_batched_probes
        assert a.n_merges == b.n_merges
        assert a.n_groups == b.n_groups
        assert a.n_events == b.n_events
        # ...and the registry saw exactly the run's totals.
        snap = registry.snapshot()
        assert snap["counters"]["engine.probe_dispatches"] == b.n_probe_dispatches
        assert snap["counters"]["stream.merges"] == b.n_merges

    def test_stream_run_harvests_dispatch_counters(self, small_civ):
        # The carry-over path runs _greedy_merge directly; its engine
        # counters must still reach StreamStats (PR 8 gap).
        result = stream_glove(
            small_civ, GloveConfig(k=2), StreamConfig(window_min=720.0, max_lag_min=30.0)
        )
        assert result.stats.n_probe_dispatches > 0
        assert result.stats.n_boundary_crossings > 0
        per_window = sum(w.stats.n_probe_dispatches for w in result.windows)
        assert per_window == result.stats.n_probe_dispatches
