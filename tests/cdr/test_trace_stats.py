"""Substitution-fidelity suite: the synthetic CDR substrate must exhibit
the statistics DESIGN.md claims preserve the paper's findings."""

import numpy as np
import pytest

from repro.cdr.trace_stats import night_day_ratio, trace_statistics
from repro.core.dataset import FingerprintDataset


@pytest.fixture(scope="module")
def stats():
    from repro.cdr.datasets import synthesize

    dataset = synthesize("synth-civ", n_users=100, days=3, seed=5)
    return trace_statistics(dataset)


class TestCircadianShape:
    def test_profile_normalized(self, stats):
        assert stats.hourly_profile.shape == (24,)
        assert stats.hourly_profile.sum() == pytest.approx(1.0)

    def test_deep_night_trough(self, stats):
        # Published CDR diurnal curves show night activity at a small
        # fraction of the evening peak.
        assert night_day_ratio(stats) < 0.25

    def test_evening_peak(self, stats):
        assert int(stats.hourly_profile.argmax()) in range(11, 23)


class TestSparsityAndBurstiness:
    def test_sparse_sampling(self, stats):
        # Median inter-event gaps of tens of minutes: CDR, not GPS.
        assert stats.median_interevent_min > 5.0

    def test_long_tailed_gaps(self, stats):
        assert stats.p90_interevent_min > 3.0 * stats.median_interevent_min

    def test_bursty(self, stats):
        # Goh-Barabasi B > 0 distinguishes bursty from Poisson traffic.
        assert stats.burstiness > 0.2


class TestHeterogeneity:
    def test_rate_spread(self, stats):
        assert stats.rate_p90_over_p10 > 2.5

    def test_anchor_concentration(self, stats):
        # Zipf visit frequencies: the top location draws a large share.
        assert stats.top_location_share > 0.2
        assert stats.median_locations_per_user >= 3


class TestLocality:
    def test_radius_of_gyration_band(self, stats):
        # Paper Section 7.3: median ~2 km, mean ~10-12 km.
        assert 500.0 <= stats.rg_median_m <= 8_000.0
        assert stats.rg_mean_m > 2.0 * stats.rg_median_m


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics(FingerprintDataset())
