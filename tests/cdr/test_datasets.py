"""Tests for the named dataset presets."""

import numpy as np
import pytest

from repro.analysis.gyration import gyration_summary
from repro.cdr.datasets import PRESETS, preset_config, synthesize


class TestPresets:
    def test_all_presets_known(self):
        assert set(PRESETS) == {"synth-civ", "synth-sen", "abidjan", "dakar"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset_config("paris")

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_config_construction(self, name):
        cfg = preset_config(name, n_users=100, days=3)
        assert cfg.n_users == 100
        assert cfg.days == 3
        assert cfg.name == name

    def test_antenna_scaling(self):
        small = preset_config("synth-civ", n_users=50).network.n_antennas
        large = preset_config("synth-civ", n_users=800).network.n_antennas
        assert small < large
        assert large <= 450

    def test_city_regions_smaller_than_countries(self):
        civ = preset_config("synth-civ").region
        abj = preset_config("abidjan").region
        assert abj.area_km2 < civ.area_km2 / 10


class TestSynthesize:
    def test_screening_reduces_or_keeps_users(self):
        raw = synthesize("synth-civ", n_users=40, days=2, seed=2, screened=False)
        screened = synthesize("synth-civ", n_users=40, days=2, seed=2, screened=True)
        assert len(screened) <= len(raw)

    def test_civ_screening_rule(self):
        ds = synthesize("synth-civ", n_users=40, days=2, seed=2)
        for fp in ds:
            assert fp.m / 2 >= 1.0  # at least one sample per day

    def test_sen_screening_rule(self):
        ds = synthesize("synth-sen", n_users=40, days=4, seed=2)
        for fp in ds:
            days_active = np.unique((fp.data[:, 4] // (24 * 60)).astype(int)).size
            assert days_active / 4 >= 0.75

    def test_determinism(self):
        d1 = synthesize("dakar", n_users=30, days=2, seed=9)
        d2 = synthesize("dakar", n_users=30, days=2, seed=9)
        assert d1.uids == d2.uids


class TestStatisticalShape:
    """The synthetic data must exhibit the properties the paper's
    findings rest on (DESIGN.md substitution table)."""

    @pytest.fixture(scope="class")
    def civ(self):
        return synthesize("synth-civ", n_users=120, days=3, seed=0)

    def test_radius_of_gyration_locality(self, civ):
        # Paper Section 7.3: median around 2 km, mean an order of
        # magnitude larger (long tail).  Accept a generous band.
        summary = gyration_summary(civ)
        assert 500.0 <= summary.median_m <= 8_000.0
        assert summary.mean_m > 1.5 * summary.median_m

    def test_sparse_sampling(self, civ):
        # CDR fingerprints are sparse: far fewer samples than minutes.
        lengths = np.array([fp.m for fp in civ])
        assert lengths.mean() < 0.05 * 3 * 24 * 60

    def test_heterogeneous_lengths(self, civ):
        lengths = np.array([fp.m for fp in civ])
        assert lengths.std() / lengths.mean() > 0.3

    def test_high_uniqueness(self, civ):
        # No two users share a full fingerprint (the paper's premise).
        keys = {fp.trace_key() for fp in civ}
        assert len(keys) == len(civ)
