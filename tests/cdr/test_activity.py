"""Tests for the event-timing model."""

import numpy as np
import pytest

from repro.cdr.activity import (
    MINUTES_PER_DAY,
    WEEKDAY_PROFILE,
    WEEKEND_PROFILE,
    ActivityConfig,
    ActivityModel,
)


@pytest.fixture
def model():
    return ActivityModel()


class TestProfiles:
    def test_profiles_have_24_hours(self):
        assert WEEKDAY_PROFILE.shape == (24,)
        assert WEEKEND_PROFILE.shape == (24,)

    def test_night_trough(self):
        # Hours 2-4 are the quietest part of the day.
        assert WEEKDAY_PROFILE[2:5].max() < WEEKDAY_PROFILE[9:21].min()

    def test_evening_peak(self):
        assert WEEKDAY_PROFILE.argmax() in range(17, 22)


class TestEventTimes:
    def test_times_within_period(self, model, rng):
        t = model.event_times(10.0, days=3, rng=rng)
        assert (t >= 0).all()
        assert (t < 3 * MINUTES_PER_DAY).all()

    def test_times_sorted_unique_integral(self, model, rng):
        t = model.event_times(10.0, days=3, rng=rng)
        assert (np.diff(t) > 0).all()
        np.testing.assert_array_equal(t, np.floor(t))  # 1-minute precision

    def test_rate_scales_event_count(self, model):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        low = model.event_times(2.0, days=10, rng=rng1)
        high = model.event_times(20.0, days=10, rng=rng2)
        assert high.size > low.size * 3

    def test_zero_days_rejected(self, model, rng):
        with pytest.raises(ValueError):
            model.event_times(5.0, days=0, rng=rng)

    def test_circadian_shape(self, model, rng):
        t = model.event_times(30.0, days=60, rng=rng)
        hours = (t % MINUTES_PER_DAY) // 60
        night = np.isin(hours, [1, 2, 3, 4]).mean()
        evening = np.isin(hours, [18, 19, 20, 21]).mean()
        assert evening > 5 * night

    def test_burstiness_produces_short_gaps(self, model, rng):
        t = model.event_times(15.0, days=30, rng=rng)
        gaps = np.diff(t)
        # With bursts, a sizable share of gaps is just a few minutes
        # even though the mean gap is tens of minutes.
        assert (gaps <= 5).mean() > 0.15


class TestHeterogeneity:
    def test_user_rate_lognormal_spread(self, model, rng):
        rates = np.array([model.user_rate(rng) for _ in range(2000)])
        assert rates.min() > 0
        # Lognormal(sigma=0.6): p90/p10 ratio is around 4-5.
        assert np.quantile(rates, 0.9) / np.quantile(rates, 0.1) > 3.0

    def test_weekend_detection(self):
        model = ActivityModel(ActivityConfig(week_start_day=0))
        assert not model.is_weekend(0)  # Monday
        assert model.is_weekend(5)  # Saturday
        assert model.is_weekend(6)  # Sunday
        assert not model.is_weekend(7)  # next Monday

    def test_week_start_shift(self):
        model = ActivityModel(ActivityConfig(week_start_day=5))
        assert model.is_weekend(0)
        assert not model.is_weekend(2)


class TestConfigValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ActivityConfig(mean_sessions_per_day=0.0)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            ActivityConfig(burst_continuation=1.0)

    def test_rejects_bad_week_start(self):
        with pytest.raises(ValueError):
            ActivityConfig(week_start_day=7)
