"""Tests for the synthetic antenna network."""

import numpy as np
import pytest

from repro.cdr.antenna import AntennaNetwork, AntennaNetworkConfig
from repro.geo.region import Region


@pytest.fixture
def region():
    return Region("test", 0.0, 200_000.0, 0.0, 150_000.0)


@pytest.fixture
def network(region, rng):
    return AntennaNetwork(region, AntennaNetworkConfig(n_cities=5, n_antennas=120), rng=rng)


class TestPlacement:
    def test_antennas_inside_region(self, network, region):
        assert region.contains(network.positions[:, 0], network.positions[:, 1]).all()

    def test_positions_grid_snapped(self, network):
        assert (network.positions % 100.0 == 0).all()

    def test_positions_unique(self, network):
        assert np.unique(network.positions, axis=0).shape[0] == network.n_antennas

    def test_city_weights_zipf(self, network):
        w = network.city_weights
        assert w[0] == max(w)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) <= 0).all()

    def test_bigger_city_more_antennas(self, network):
        sizes = [network.antennas_of_city(c).size for c in range(5)]
        assert sizes[0] >= sizes[-1]

    def test_rural_antennas_marked(self, region, rng):
        net = AntennaNetwork(
            region,
            AntennaNetworkConfig(n_cities=3, n_antennas=100, rural_fraction=0.3),
            rng=rng,
        )
        assert (net.antenna_city == -1).sum() > 0


class TestQueries:
    def test_nearest_identity(self, network):
        # Each antenna's own position maps to itself (positions unique).
        idx = network.nearest(network.positions[:, 0], network.positions[:, 1])
        np.testing.assert_array_equal(idx, np.arange(network.n_antennas))

    def test_nearest_scalar(self, network):
        i = network.nearest(1000.0, 1000.0)
        assert isinstance(i, int)
        assert 0 <= i < network.n_antennas

    def test_antennas_within_radius(self, network):
        x, y = network.positions[0]
        nearby = network.antennas_within(float(x), float(y), 10_000.0)
        assert 0 in nearby
        dists = np.hypot(
            network.positions[nearby, 0] - x, network.positions[nearby, 1] - y
        )
        assert (dists <= 10_000.0).all()

    def test_antennas_of_city_bounds(self, network):
        with pytest.raises(ValueError):
            network.antennas_of_city(99)


class TestConfigValidation:
    def test_rejects_zero_cities(self):
        with pytest.raises(ValueError):
            AntennaNetworkConfig(n_cities=0)

    def test_rejects_fewer_antennas_than_cities(self):
        with pytest.raises(ValueError):
            AntennaNetworkConfig(n_cities=10, n_antennas=5)

    def test_rejects_bad_rural_fraction(self):
        with pytest.raises(ValueError):
            AntennaNetworkConfig(rural_fraction=1.0)

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            AntennaNetworkConfig(city_radius_min_m=5_000.0, city_radius_max_m=1_000.0)


class TestDeterminism:
    def test_same_seed_same_network(self, region):
        n1 = AntennaNetwork(region, rng=np.random.default_rng(5))
        n2 = AntennaNetwork(region, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(n1.positions, n2.positions)
