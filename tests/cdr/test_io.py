"""Tests for CSV serialization."""

import numpy as np
import pytest

from repro.cdr.io import (
    read_events_csv,
    read_fingerprints_csv,
    write_events_csv,
    write_fingerprints_csv,
)
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from tests.conftest import make_fp


class TestEventCSV:
    def test_roundtrip(self, small_civ, tmp_path):
        path = tmp_path / "events.csv"
        n = write_events_csv(small_civ, path)
        assert n == small_civ.n_samples
        back = read_events_csv(path)
        assert sorted(back.uids) == sorted(small_civ.uids)
        for uid in small_civ.uids:
            np.testing.assert_allclose(back[uid].data, small_civ[uid].data)

    def test_rejects_generalized_data(self, tmp_path):
        fp = make_fp("g", [(0.0, 0.0, 0.0, 500.0, 500.0, 60.0)])
        with pytest.raises(ValueError, match="generalized"):
            write_events_csv(FingerprintDataset([fp]), tmp_path / "x.csv")

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_events_csv(path)


class TestFingerprintCSV:
    def test_roundtrip_with_groups(self, tmp_path):
        ds = FingerprintDataset(
            [
                make_fp(
                    "g1",
                    [(0.0, 0.0, 0.0, 500.0, 500.0, 60.0)],
                    count=2,
                    members=("a", "b"),
                ),
                make_fp("g2", [(1.0, 2.0, 3.0)]),
            ]
        )
        path = tmp_path / "fps.csv"
        n = write_fingerprints_csv(ds, path)
        assert n == 2
        back = read_fingerprints_csv(path)
        assert back["g1"].count == 2
        assert len(back["g1"].members) == 2
        np.testing.assert_allclose(back["g1"].data, ds["g1"].data, atol=1e-3)

    def test_glove_output_roundtrip(self, small_civ, tmp_path):
        from repro.core.config import GloveConfig
        from repro.core.glove import glove

        result = glove(small_civ, GloveConfig(k=2))
        path = tmp_path / "anon.csv"
        write_fingerprints_csv(result.dataset, path)
        back = read_fingerprints_csv(path)
        assert back.n_users == small_civ.n_users
        assert back.is_k_anonymous(2)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("uid,count\nx,1\n")
        with pytest.raises(ValueError, match="header"):
            read_fingerprints_csv(path)

    def test_preserves_order(self, tmp_path):
        ds = FingerprintDataset(
            [make_fp("z", [(0.0, 0.0, 0.0)]), make_fp("a", [(1.0, 1.0, 1.0)])]
        )
        path = tmp_path / "order.csv"
        write_fingerprints_csv(ds, path)
        assert read_fingerprints_csv(path).uids == ["z", "a"]


class TestByteStableRoundTrip:
    """write -> read -> write must be a byte-level fixed point.

    The CSV is the publication format: once a dataset has passed
    through it, re-serializing the parsed records must reproduce the
    file exactly, so published artifacts can be round-tripped (and
    content-addressed) without drift.
    """

    def test_anonymized_dataset_round_trips_byte_for_byte(self, small_civ, tmp_path):
        from repro.core.config import GloveConfig
        from repro.core.glove import glove

        result = glove(small_civ, GloveConfig(k=2))
        first = tmp_path / "anon1.csv"
        second = tmp_path / "anon2.csv"
        write_fingerprints_csv(result.dataset, first)
        back = read_fingerprints_csv(first)
        write_fingerprints_csv(back, second)
        assert first.read_bytes() == second.read_bytes()
        # Record-level identity too: every row group survives intact.
        assert back.uids == result.dataset.uids
        for uid in back.uids:
            assert back[uid].count == result.dataset[uid].count
            assert back[uid].data.shape == result.dataset[uid].data.shape

    def test_event_csv_round_trips_byte_for_byte(self, small_civ, tmp_path):
        first = tmp_path / "events1.csv"
        second = tmp_path / "events2.csv"
        write_events_csv(small_civ, first)
        write_events_csv(read_events_csv(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_cli_anonymize_output_round_trips_byte_for_byte(self, tmp_path):
        from repro.cli import main

        raw = tmp_path / "raw.csv"
        published = tmp_path / "published.csv"
        rewritten = tmp_path / "rewritten.csv"
        assert main(
            ["generate", "synth-civ", "--users", "30", "--days", "2", "--seed", "4",
             "-o", str(raw), "--no-cache"]
        ) == 0
        assert main(
            ["anonymize", str(raw), "-k", "2", "--suppress", "15000", "360",
             "-o", str(published), "--no-cache"]
        ) == 0
        back = read_fingerprints_csv(published)
        write_fingerprints_csv(back, rewritten)
        assert published.read_bytes() == rewritten.read_bytes()
        assert back.is_k_anonymous(2)
