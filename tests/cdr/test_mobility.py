"""Tests for the event-location model."""

import numpy as np
import pytest

from repro.cdr.antenna import AntennaNetwork, AntennaNetworkConfig
from repro.cdr.mobility import MobilityConfig, MobilityModel
from repro.cdr.population import Population
from repro.geo.region import Region


@pytest.fixture
def setup(rng):
    region = Region("test", 0.0, 200_000.0, 0.0, 200_000.0)
    network = AntennaNetwork(
        region, AntennaNetworkConfig(n_cities=4, n_antennas=100), rng=rng
    )
    population = Population(network, n_users=10, rng=rng)
    model = MobilityModel(network)
    return network, population, model


class TestSchedule:
    def test_hour_of_day(self, setup):
        _, _, model = setup
        assert model.hour_of_day(0.0) == 0
        assert model.hour_of_day(13 * 60 + 59) == 13
        assert model.hour_of_day(24 * 60 + 30) == 0  # next day

    def test_weekend(self, setup):
        _, _, model = setup
        assert not model.is_weekend(0.0)  # Monday 00:00
        assert model.is_weekend(5 * 24 * 60.0)  # Saturday


class TestLocationDraws:
    def test_antenna_index_valid(self, setup, rng):
        network, population, model = setup
        user = population[0]
        for t in [60.0, 600.0, 900.0, 1300.0]:
            a = model.antenna_at(user, t, rng)
            assert 0 <= a < network.n_antennas

    def test_night_events_are_near_home(self, setup):
        network, population, model = setup
        rng = np.random.default_rng(9)
        user = population[0]
        hx, hy = network.positions[user.home_antenna]
        hits = 0
        n = 200
        for _ in range(n):
            t = float(rng.uniform(60, 300))  # 01:00-05:00 Monday
            a = model.antenna_at(user, t, rng)
            ax, ay = network.positions[a]
            if np.hypot(ax - hx, ay - hy) <= model.config.handoff_radius_m:
                hits += 1
        assert hits / n > 0.7

    def test_workday_events_concentrate_at_work(self, setup):
        network, population, model = setup
        rng = np.random.default_rng(9)
        user = population[0]
        wx, wy = network.positions[user.work_antenna]
        hits = 0
        n = 200
        for _ in range(n):
            t = float(rng.uniform(10 * 60, 17 * 60))  # Monday working hours
            a = model.antenna_at(user, t, rng)
            ax, ay = network.positions[a]
            if np.hypot(ax - wx, ay - wy) <= model.config.handoff_radius_m:
                hits += 1
        assert hits / n > 0.4

    def test_exploration_stays_in_region(self, setup):
        network, population, model = setup
        rng = np.random.default_rng(9)
        user = population[0]
        for _ in range(100):
            a = model._explore(user, rng)
            x, y = network.positions[a]
            assert network.region.contains(float(x), float(y))

    def test_handoff_stays_within_radius(self, setup):
        network, population, model = setup
        rng = np.random.default_rng(9)
        anchor = population[0].home_antenna
        x0, y0 = network.positions[anchor]
        for _ in range(50):
            a = model._handoff(anchor, rng)
            x, y = network.positions[a]
            assert np.hypot(x - x0, y - y0) <= model.config.handoff_radius_m + 1e-9


class TestConfigValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MobilityConfig(night_home_prob=1.5)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            MobilityConfig(exploration_scale_m=0.0)
