"""Tests for end-to-end CDR synthesis."""

import numpy as np
import pytest

from repro.cdr.activity import ActivityConfig
from repro.cdr.antenna import AntennaNetworkConfig
from repro.cdr.generator import CDRGenerator, GeneratorConfig, generate_dataset
from repro.core.sample import DT, DX, DY, T, X, Y
from repro.geo.region import Region


@pytest.fixture
def config():
    return GeneratorConfig(
        name="unit",
        region=Region("unit", 0.0, 100_000.0, 0.0, 100_000.0),
        n_users=25,
        days=2,
        network=AntennaNetworkConfig(n_cities=3, n_antennas=60),
        activity=ActivityConfig(mean_sessions_per_day=6.0),
    )


class TestGeneration:
    def test_dataset_shape(self, config):
        ds = generate_dataset(config, seed=4)
        assert 0 < len(ds) <= 25
        assert ds.n_samples > 0
        assert ds.name == "unit"

    def test_original_granularity(self, config):
        ds = generate_dataset(config, seed=4)
        for fp in ds:
            assert (fp.data[:, DX] == 100.0).all()
            assert (fp.data[:, DY] == 100.0).all()
            assert (fp.data[:, DT] == 1.0).all()

    def test_grid_snapped_positions(self, config):
        ds = generate_dataset(config, seed=4)
        for fp in ds:
            assert (fp.data[:, X] % 100.0 == 0).all()
            assert (fp.data[:, Y] % 100.0 == 0).all()

    def test_integral_minutes(self, config):
        ds = generate_dataset(config, seed=4)
        for fp in ds:
            np.testing.assert_array_equal(fp.data[:, T], np.floor(fp.data[:, T]))
            assert (fp.data[:, T] < 2 * 24 * 60).all()

    def test_positions_are_antenna_sites(self, config):
        gen = CDRGenerator(config, seed=4)
        ds = gen.generate()
        sites = {tuple(p) for p in gen.network.positions}
        for fp in ds:
            for row in fp.data:
                assert (row[X], row[Y]) in sites

    def test_no_duplicate_samples(self, config):
        ds = generate_dataset(config, seed=4)
        for fp in ds:
            assert np.unique(fp.data, axis=0).shape[0] == fp.m

    def test_determinism(self, config):
        d1 = generate_dataset(config, seed=4)
        d2 = generate_dataset(config, seed=4)
        assert d1.uids == d2.uids
        for fp1, fp2 in zip(d1, d2):
            np.testing.assert_array_equal(fp1.data, fp2.data)

    def test_seed_changes_output(self, config):
        d1 = generate_dataset(config, seed=4)
        d2 = generate_dataset(config, seed=5)
        same = all(
            fp1.m == fp2.m and np.array_equal(fp1.data, fp2.data)
            for fp1, fp2 in zip(d1, d2)
            if fp1.uid == fp2.uid
        )
        assert not same


class TestConfigValidation:
    def test_rejects_zero_users(self, config):
        with pytest.raises(ValueError):
            GeneratorConfig(
                name="bad", region=config.region, n_users=0, days=1
            )

    def test_rejects_zero_days(self, config):
        with pytest.raises(ValueError):
            GeneratorConfig(
                name="bad", region=config.region, n_users=1, days=0
            )
