"""Tests for the subscriber population model."""

import numpy as np
import pytest

from repro.cdr.antenna import AntennaNetwork, AntennaNetworkConfig
from repro.cdr.population import Population, PopulationConfig
from repro.geo.region import Region


@pytest.fixture
def network(rng):
    region = Region("test", 0.0, 300_000.0, 0.0, 200_000.0)
    return AntennaNetwork(
        region, AntennaNetworkConfig(n_cities=6, n_antennas=150), rng=rng
    )


@pytest.fixture
def population(network, rng):
    return Population(network, n_users=80, rng=rng)


class TestAnchors:
    def test_population_size(self, population):
        assert len(population) == 80

    def test_unique_uids(self, population):
        uids = [u.uid for u in population]
        assert len(set(uids)) == 80

    def test_anchor_structure(self, population, network):
        for user in population:
            assert user.anchors.shape[0] >= 2
            assert (user.anchors >= 0).all()
            assert (user.anchors < network.n_antennas).all()
            assert user.home_antenna == user.anchors[0]
            assert user.work_antenna == user.anchors[1]

    def test_anchor_weights_normalized(self, population):
        for user in population:
            assert user.anchor_weights.sum() == pytest.approx(1.0)
            assert (np.diff(user.anchor_weights) <= 1e-12).all()  # Zipf decreasing

    def test_home_city_valid(self, population, network):
        for user in population:
            assert 0 <= user.home_city < network.config.n_cities


class TestCommutes:
    def test_commute_distances_mostly_local(self, network, rng):
        pop = Population(
            network, n_users=200, config=PopulationConfig(commuter_fraction=0.0), rng=rng
        )
        d = np.array(
            [
                np.hypot(
                    *(network.positions[u.home_antenna] - network.positions[u.work_antenna])
                )
                for u in pop
            ]
        )
        # Exponential commutes with 4 km scale: median well under 10 km.
        assert np.median(d) < 10_000.0

    def test_commuter_fraction_changes_tail(self, network):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        local = Population(
            network, n_users=150, config=PopulationConfig(commuter_fraction=0.0), rng=rng1
        )
        commuters = Population(
            network, n_users=150, config=PopulationConfig(commuter_fraction=0.5), rng=rng2
        )

        def mean_commute(pop):
            return np.mean(
                [
                    np.hypot(
                        *(
                            network.positions[u.home_antenna]
                            - network.positions[u.work_antenna]
                        )
                    )
                    for u in pop
                ]
            )

        assert mean_commute(commuters) > mean_commute(local)


class TestConfigValidation:
    def test_rejects_bad_commuter_fraction(self):
        with pytest.raises(ValueError):
            PopulationConfig(commuter_fraction=1.5)

    def test_rejects_negative_secondary(self):
        with pytest.raises(ValueError):
            PopulationConfig(mean_secondary_anchors=-1.0)

    def test_rejects_zero_users(self, network, rng):
        with pytest.raises(ValueError):
            Population(network, n_users=0, rng=rng)
