"""Tests for the dataset screening rules (paper Section 3)."""

import pytest

from repro.cdr.filtering import filter_active_days, filter_min_samples_per_day
from repro.core.dataset import FingerprintDataset
from tests.conftest import make_fp

DAY = 24 * 60.0


@pytest.fixture
def mixed():
    return FingerprintDataset(
        [
            # 4 samples over 2 days: passes >=1/day.
            make_fp("busy", [(0.0, 0.0, 10.0), (0.0, 0.0, 100.0),
                             (0.0, 0.0, DAY + 10), (0.0, 0.0, DAY + 50)]),
            # 1 sample over 2 days: fails >=1/day.
            make_fp("quiet", [(0.0, 0.0, 10.0)]),
            # Active day 0 only out of 2: fails 75% activity.
            make_fp("oneday", [(0.0, 0.0, 10.0), (0.0, 0.0, 20.0)]),
        ]
    )


class TestMinSamplesPerDay:
    def test_filters_low_rate_users(self, mixed):
        out = filter_min_samples_per_day(mixed, min_per_day=1.0, days=2)
        assert "busy" in out
        assert "quiet" not in out
        assert "oneday" in out  # 2 samples / 2 days = 1.0

    def test_days_inferred_from_extent(self, mixed):
        out = filter_min_samples_per_day(mixed, min_per_day=1.0)
        assert "busy" in out

    def test_rejects_bad_days(self, mixed):
        with pytest.raises(ValueError):
            filter_min_samples_per_day(mixed, days=0)


class TestActiveDays:
    def test_filters_inactive_users(self, mixed):
        out = filter_active_days(mixed, min_active_fraction=0.75, days=2)
        assert "busy" in out  # active both days
        assert "oneday" not in out  # active 1 of 2 days = 0.5
        assert "quiet" not in out

    def test_full_fraction(self, mixed):
        out = filter_active_days(mixed, min_active_fraction=1.0, days=2)
        assert out.uids == ["busy"]

    def test_rejects_bad_fraction(self, mixed):
        with pytest.raises(ValueError):
            filter_active_days(mixed, min_active_fraction=0.0)

    def test_keeps_name(self, mixed):
        assert filter_active_days(mixed, days=2).name == mixed.name
