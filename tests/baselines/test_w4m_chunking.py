"""Tests for W4M-LC's chunked operation (the "LC" scalability device)."""

import numpy as np
import pytest

from repro.baselines.w4m import W4MConfig, w4m_lc


@pytest.fixture(scope="module")
def dataset():
    from repro.cdr.datasets import synthesize

    return synthesize("synth-civ", n_users=50, days=2, seed=13)


class TestChunkedRuns:
    def test_multi_chunk_covers_all_users(self, dataset):
        result = w4m_lc(dataset, W4MConfig(k=2, chunk_size=16))
        published = {fp.uid for fp in result.dataset}
        assert len(published) == len(dataset) - result.stats.discarded_fingerprints

    def test_chunking_trashes_per_chunk(self, dataset):
        # 10% trashing applies within each chunk; totals match the sum
        # of per-chunk floors.
        result = w4m_lc(dataset, W4MConfig(k=2, chunk_size=16, trash_fraction=0.10))
        n = len(dataset)
        # chunk sizes: 16, 16, 18 (tail merged) -> floors 1 + 1 + 1.
        assert result.stats.discarded_fingerprints == 3

    def test_small_chunks_still_reach_k(self, dataset):
        result = w4m_lc(dataset, W4MConfig(k=3, chunk_size=12))
        from collections import Counter

        timelines = Counter(tuple(fp.data[:, 4]) for fp in result.dataset)
        assert all(v >= 3 for v in timelines.values())

    def test_chunked_vs_unchunked_counts(self, dataset):
        chunked = w4m_lc(dataset, W4MConfig(k=2, chunk_size=16))
        whole = w4m_lc(dataset, W4MConfig(k=2, chunk_size=1_000))
        # Same input mass accounted for either way.
        assert (
            chunked.stats.total_original_samples
            == whole.stats.total_original_samples
        )
        # Chunking restricts cluster candidates, so its error can only
        # plausibly be equal or worse on average; sanity-check both are
        # positive rather than asserting a strict ordering (noise).
        assert chunked.stats.mean_position_error_m > 0
        assert whole.stats.mean_position_error_m > 0
