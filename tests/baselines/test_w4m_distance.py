"""Tests for the LST trajectory distance."""

import numpy as np
import pytest

from repro.baselines.w4m_distance import (
    DISJOINT_PENALTY_M_PER_MIN,
    PointTrajectory,
    lst_distance,
    lst_distance_matrix,
)
from tests.conftest import make_fp


def traj(uid, points):
    t, x, y = zip(*points)
    return PointTrajectory(
        uid, np.asarray(t, float), np.asarray(x, float), np.asarray(y, float)
    )


class TestPointTrajectory:
    def test_from_fingerprint_midpoints(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0), (1000.0, 0.0, 10.0)])
        tr = PointTrajectory.from_fingerprint(fp)
        assert tr.m == 2
        np.testing.assert_allclose(tr.t, [0.5, 10.5])
        np.testing.assert_allclose(tr.x, [50.0, 1050.0])

    def test_duplicate_times_averaged(self):
        fp = make_fp("a", [(0.0, 0.0, 5.0), (1000.0, 0.0, 5.0)])
        tr = PointTrajectory.from_fingerprint(fp)
        assert tr.m == 1
        assert tr.x[0] == pytest.approx(550.0)

    def test_interpolation(self):
        tr = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        pos = tr.positions_at(np.array([5.0]))
        np.testing.assert_allclose(pos, [[500.0, 0.0]])

    def test_clamping_outside_span(self):
        tr = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        pos = tr.positions_at(np.array([-5.0, 20.0]))
        np.testing.assert_allclose(pos, [[0.0, 0.0], [1000.0, 0.0]])


class TestLSTDistance:
    def test_identical_trajectories_zero(self):
        tr = traj("a", [(0.0, 0.0, 0.0), (10.0, 500.0, 0.0)])
        assert lst_distance(tr, tr) == 0.0

    def test_parallel_offset(self):
        a = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        b = traj("b", [(0.0, 0.0, 300.0), (10.0, 1000.0, 300.0)])
        assert lst_distance(a, b) == pytest.approx(300.0)

    def test_symmetry(self):
        a = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        b = traj("b", [(2.0, 500.0, 100.0), (12.0, 800.0, 200.0)])
        assert lst_distance(a, b) == pytest.approx(lst_distance(b, a))

    def test_disjoint_windows_penalized(self):
        a = traj("a", [(0.0, 0.0, 0.0), (10.0, 0.0, 0.0)])
        b = traj("b", [(1_000.0, 0.0, 0.0), (1_010.0, 0.0, 0.0)])
        d = lst_distance(a, b)
        assert d >= (1_000.0 - 10.0) * DISJOINT_PENALTY_M_PER_MIN

    def test_matrix_properties(self):
        trs = [
            traj("a", [(0.0, 0.0, 0.0), (10.0, 100.0, 0.0)]),
            traj("b", [(0.0, 50.0, 0.0), (10.0, 150.0, 0.0)]),
            traj("c", [(5.0, 9_000.0, 9_000.0), (15.0, 9_100.0, 9_000.0)]),
        ]
        mat = lst_distance_matrix(trs)
        assert np.isinf(np.diag(mat)).all()
        assert mat[0, 1] == pytest.approx(mat[1, 0])
        assert mat[0, 1] < mat[0, 2]
