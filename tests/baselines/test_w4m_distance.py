"""Tests for the LST trajectory distance."""

import numpy as np
import pytest

from repro.baselines.w4m_distance import (
    DISJOINT_PENALTY_M_PER_MIN,
    PointTrajectory,
    lst_distance,
    lst_distance_matrix,
)
from tests.conftest import make_fp


def traj(uid, points):
    t, x, y = zip(*points)
    return PointTrajectory(
        uid, np.asarray(t, float), np.asarray(x, float), np.asarray(y, float)
    )


class TestPointTrajectory:
    def test_from_fingerprint_midpoints(self):
        fp = make_fp("a", [(0.0, 0.0, 0.0), (1000.0, 0.0, 10.0)])
        tr = PointTrajectory.from_fingerprint(fp)
        assert tr.m == 2
        np.testing.assert_allclose(tr.t, [0.5, 10.5])
        np.testing.assert_allclose(tr.x, [50.0, 1050.0])

    def test_duplicate_times_averaged(self):
        fp = make_fp("a", [(0.0, 0.0, 5.0), (1000.0, 0.0, 5.0)])
        tr = PointTrajectory.from_fingerprint(fp)
        assert tr.m == 1
        assert tr.x[0] == pytest.approx(550.0)

    def test_interpolation(self):
        tr = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        pos = tr.positions_at(np.array([5.0]))
        np.testing.assert_allclose(pos, [[500.0, 0.0]])

    def test_clamping_outside_span(self):
        tr = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        pos = tr.positions_at(np.array([-5.0, 20.0]))
        np.testing.assert_allclose(pos, [[0.0, 0.0], [1000.0, 0.0]])


class TestLSTDistance:
    def test_identical_trajectories_zero(self):
        tr = traj("a", [(0.0, 0.0, 0.0), (10.0, 500.0, 0.0)])
        assert lst_distance(tr, tr) == 0.0

    def test_parallel_offset(self):
        a = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        b = traj("b", [(0.0, 0.0, 300.0), (10.0, 1000.0, 300.0)])
        assert lst_distance(a, b) == pytest.approx(300.0)

    def test_symmetry(self):
        a = traj("a", [(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        b = traj("b", [(2.0, 500.0, 100.0), (12.0, 800.0, 200.0)])
        assert lst_distance(a, b) == pytest.approx(lst_distance(b, a))

    def test_disjoint_windows_penalized(self):
        a = traj("a", [(0.0, 0.0, 0.0), (10.0, 0.0, 0.0)])
        b = traj("b", [(1_000.0, 0.0, 0.0), (1_010.0, 0.0, 0.0)])
        d = lst_distance(a, b)
        assert d >= (1_000.0 - 10.0) * DISJOINT_PENALTY_M_PER_MIN

    def test_matrix_properties(self):
        trs = [
            traj("a", [(0.0, 0.0, 0.0), (10.0, 100.0, 0.0)]),
            traj("b", [(0.0, 50.0, 0.0), (10.0, 150.0, 0.0)]),
            traj("c", [(5.0, 9_000.0, 9_000.0), (15.0, 9_100.0, 9_000.0)]),
        ]
        mat = lst_distance_matrix(trs)
        assert np.isinf(np.diag(mat)).all()
        assert mat[0, 1] == pytest.approx(mat[1, 0])
        assert mat[0, 1] < mat[0, 2]


class TestVectorizedMatrix:
    """The batched matrix build equals the scalar reference bitwise."""

    @staticmethod
    def _random_trajectories(seed, n=30):
        rng = np.random.default_rng(seed)
        trajs = []
        for i in range(n):
            m = int(rng.integers(1, 25))
            t = np.unique(np.sort(rng.uniform(0, 4_000, m)))
            if i % 5 == 0:
                # Some disjoint time windows to exercise the penalty arm.
                t = t + 8_000 + i * 400
            trajs.append(
                PointTrajectory(
                    uid=f"u{i}",
                    t=t,
                    x=rng.uniform(0, 60_000, t.size),
                    y=rng.uniform(0, 60_000, t.size),
                )
            )
        return trajs

    @staticmethod
    def _scalar_reference(trajs, sync_points=48):
        n = len(trajs)
        ref = np.full((n, n), np.inf)
        for i in range(n):
            for j in range(i + 1, n):
                d = lst_distance(trajs[i], trajs[j], sync_points)
                ref[i, j] = ref[j, i] = d
        return ref

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exactly_equals_scalar_reference(self, seed):
        trajs = self._random_trajectories(seed)
        assert np.array_equal(lst_distance_matrix(trajs), self._scalar_reference(trajs))

    def test_pair_blocking_does_not_change_values(self):
        trajs = self._random_trajectories(3)
        ref = self._scalar_reference(trajs)
        assert np.array_equal(lst_distance_matrix(trajs, pair_block=7), ref)

    def test_custom_sync_points(self):
        trajs = self._random_trajectories(4, n=12)
        assert np.array_equal(
            lst_distance_matrix(trajs, sync_points=9),
            self._scalar_reference(trajs, sync_points=9),
        )

    def test_degenerate_sizes(self):
        assert lst_distance_matrix([]).shape == (0, 0)
        single = self._random_trajectories(5, n=1)
        mat = lst_distance_matrix(single)
        assert mat.shape == (1, 1) and np.isinf(mat[0, 0])
