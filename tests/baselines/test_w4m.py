"""Tests for the W4M-LC anonymizer."""

import numpy as np
import pytest

from repro.baselines.w4m import W4MConfig, w4m_lc
from repro.core.sample import DT, DX, DY, T, X, Y


@pytest.fixture(scope="module")
def w4m_result(request):
    from repro.cdr.datasets import synthesize

    dataset = synthesize("synth-civ", n_users=40, days=2, seed=11)
    return dataset, w4m_lc(dataset, W4MConfig(k=2))


class TestOutputStructure:
    def test_survivors_published_individually(self, w4m_result):
        original, result = w4m_result
        assert len(result.dataset) == len(original) - result.stats.discarded_fingerprints
        assert all(fp.count == 1 for fp in result.dataset)

    def test_cluster_members_share_timeline(self, w4m_result):
        _, result = w4m_result
        # Each cluster resamples to the medoid timeline; group members
        # therefore share their sample times.  Reconstruct clusters by
        # timeline signature and check every group has >= k members.
        from collections import Counter

        signatures = Counter(tuple(fp.data[:, T]) for fp in result.dataset)
        assert all(v >= 2 for v in signatures.values())

    def test_point_samples_published(self, w4m_result):
        _, result = w4m_result
        for fp in result.dataset:
            assert (fp.data[:, DX] == 100.0).all()
            assert (fp.data[:, DT] == 1.0).all()


class TestStats:
    def test_trashing_follows_fraction(self, w4m_result):
        original, result = w4m_result
        expected = int(np.floor(0.10 * len(original)))
        assert result.stats.discarded_fingerprints == expected

    def test_creates_synthetic_samples(self, w4m_result):
        # The paper's Table 2 headline: W4M fabricates a substantial
        # fraction of samples on CDR data.
        _, result = w4m_result
        assert result.stats.created_fraction > 0.05

    def test_deletes_samples(self, w4m_result):
        _, result = w4m_result
        assert result.stats.deleted_samples >= 0
        assert result.stats.total_original_samples > 0

    def test_errors_accumulated(self, w4m_result):
        _, result = w4m_result
        assert result.stats.mean_position_error_m > 0.0
        assert result.stats.mean_time_error_min >= 0.0


class TestCylinderEditing:
    def test_members_within_delta_cylinder(self, w4m_result):
        # After editing, at each timeline instant cluster members lie
        # within delta/2 of their centroid.
        from collections import defaultdict

        _, result = w4m_result
        groups = defaultdict(list)
        for fp in result.dataset:
            groups[tuple(fp.data[:, T])].append(fp)
        delta = result.config.delta_m
        for members in groups.values():
            xs = np.stack([fp.data[:, X] + fp.data[:, DX] / 2 for fp in members])
            ys = np.stack([fp.data[:, Y] + fp.data[:, DY] / 2 for fp in members])
            cx, cy = xs.mean(axis=0), ys.mean(axis=0)
            dist = np.hypot(xs - cx[None, :], ys - cy[None, :])
            assert (dist <= delta / 2.0 + 1e-6).all()


class TestConfigValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            W4MConfig(k=1)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            W4MConfig(delta_m=0.0)

    def test_rejects_bad_trash(self):
        with pytest.raises(ValueError):
            W4MConfig(trash_fraction=1.0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            W4MConfig(chunk_size=1)
