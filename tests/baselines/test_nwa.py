"""Tests for the NWA baseline (spatial-only, synchronized trajectories)."""

import numpy as np
import pytest

from repro.baselines.nwa import NWAConfig, nwa


@pytest.fixture(scope="module")
def nwa_result():
    from repro.cdr.datasets import synthesize

    dataset = synthesize("synth-civ", n_users=40, days=2, seed=11)
    return dataset, nwa(dataset, NWAConfig(k=2, period_min=60.0))


class TestOutput:
    def test_all_survivors_share_global_timeline(self, nwa_result):
        _, result = nwa_result
        timelines = {tuple(fp.data[:, 4]) for fp in result.dataset}
        assert len(timelines) == 1  # one synchronized timeline for all

    def test_trashing(self, nwa_result):
        original, result = nwa_result
        expected = int(np.floor(0.10 * len(original)))
        assert result.stats.discarded_fingerprints == expected

    def test_cylinder_enforced(self, nwa_result):
        from collections import defaultdict

        _, result = nwa_result
        # Group members by... NWA publishes all users on one timeline,
        # so check cluster cylinders via pairwise distances within the
        # published dataset is not directly possible; instead check
        # the weaker global invariant: positions are finite and inside
        # a plausible range.
        for fp in result.dataset:
            assert np.isfinite(fp.data).all()


class TestSynchronizationCost:
    """The quantitative point of the module: NWA's premise does not fit
    CDR data (paper Section 8)."""

    def test_massive_sample_fabrication(self, nwa_result):
        _, result = nwa_result
        # The synchronized timeline fabricates far more samples than
        # the original dataset even contains.
        assert result.stats.created_fraction > 1.0

    def test_worse_than_w4m_in_fabrication(self, nwa_result):
        from repro.baselines.w4m import W4MConfig, w4m_lc

        original, result = nwa_result
        w4m = w4m_lc(original, W4MConfig(k=2))
        assert result.stats.created_fraction > w4m.stats.created_fraction

    def test_errors_reported(self, nwa_result):
        _, result = nwa_result
        assert result.stats.mean_position_error_m > 0.0
        assert result.stats.mean_time_error_min >= 0.0


class TestValidation:
    def test_config_bounds(self):
        with pytest.raises(ValueError):
            NWAConfig(k=1)
        with pytest.raises(ValueError):
            NWAConfig(delta_m=0)
        with pytest.raises(ValueError):
            NWAConfig(period_min=0)
        with pytest.raises(ValueError):
            NWAConfig(trash_fraction=1.0)
