"""Tests for the greedy k-member clustering of W4M-LC."""

import numpy as np
import pytest

from repro.baselines.w4m_cluster import chunk_indices, greedy_k_clusters


def ring_distance_matrix(n, rng):
    """Random symmetric matrix with inf diagonal."""
    mat = rng.uniform(1.0, 100.0, (n, n))
    mat = (mat + mat.T) / 2.0
    np.fill_diagonal(mat, np.inf)
    return mat


class TestClustering:
    def test_all_clusters_reach_k(self, rng):
        mat = ring_distance_matrix(23, rng)
        outcome = greedy_k_clusters(mat, k=4, trash_fraction=0.1)
        for cluster in outcome.clusters:
            assert cluster.size >= 4

    def test_partition_is_complete(self, rng):
        mat = ring_distance_matrix(20, rng)
        outcome = greedy_k_clusters(mat, k=3, trash_fraction=0.1)
        assigned = np.concatenate(outcome.clusters)
        all_ids = np.concatenate([assigned, outcome.trashed])
        assert sorted(all_ids.tolist()) == list(range(20))
        assert np.unique(assigned).size == assigned.size

    def test_trash_fraction_respected(self, rng):
        mat = ring_distance_matrix(30, rng)
        outcome = greedy_k_clusters(mat, k=2, trash_fraction=0.2)
        assert outcome.trashed.size == 6

    def test_outliers_get_trashed(self, rng):
        # Two tight groups plus two far outliers.
        n = 12
        mat = np.full((n, n), 1e6)
        for block in (range(0, 5), range(5, 10)):
            for i in block:
                for j in block:
                    mat[i, j] = 1.0
        np.fill_diagonal(mat, np.inf)
        outcome = greedy_k_clusters(mat, k=5, trash_fraction=0.17)
        assert set(outcome.trashed.tolist()) <= {10, 11}

    def test_too_few_members_all_trashed(self, rng):
        mat = ring_distance_matrix(3, rng)
        outcome = greedy_k_clusters(mat, k=5)
        assert outcome.clusters == []
        assert outcome.trashed.size == 3

    def test_validation(self, rng):
        mat = ring_distance_matrix(5, rng)
        with pytest.raises(ValueError):
            greedy_k_clusters(mat, k=1)
        with pytest.raises(ValueError):
            greedy_k_clusters(mat, k=2, trash_fraction=1.0)
        with pytest.raises(ValueError):
            greedy_k_clusters(np.zeros((2, 3)), k=2)


class TestChunking:
    def test_single_chunk(self):
        chunks = chunk_indices(10, 100)
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0], np.arange(10))

    def test_multiple_chunks_cover_all(self):
        chunks = chunk_indices(25, 10)
        np.testing.assert_array_equal(np.concatenate(chunks), np.arange(25))

    def test_small_tail_merged(self):
        chunks = chunk_indices(21, 10)
        assert len(chunks) == 2
        assert chunks[-1].size == 11

    def test_rejects_tiny_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_indices(10, 1)
