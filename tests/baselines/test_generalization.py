"""Tests for uniform spatiotemporal generalization."""

import numpy as np
import pytest

from repro.baselines.generalization import (
    PAPER_LEVELS,
    GeneralizationLevel,
    generalize_dataset,
    generalize_sample_array,
)
from repro.core.sample import DT, DX, DY, T, X, Y
from tests.conftest import make_fp


class TestLevels:
    def test_paper_levels(self):
        labels = [lvl.label for lvl in PAPER_LEVELS]
        assert labels == ["0.1-1", "1-30", "2.5-60", "5-120", "10-240", "20-480"]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GeneralizationLevel(0.0, 1.0)
        with pytest.raises(ValueError):
            GeneralizationLevel(100.0, -1.0)


class TestGeneralizeArray:
    def test_snaps_to_bins(self):
        data = np.array([[1234.0, 100.0, 5678.0, 100.0, 47.0, 1.0]])
        out = generalize_sample_array(data, GeneralizationLevel(1_000.0, 30.0))
        assert out[0, X] == 1_000.0
        assert out[0, Y] == 5_000.0
        assert out[0, T] == 30.0
        assert out[0, DX] == 1_000.0
        assert out[0, DY] == 1_000.0
        assert out[0, DT] == 30.0

    def test_collapses_same_bin_samples(self):
        data = np.array(
            [
                [100.0, 100.0, 100.0, 100.0, 1.0, 1.0],
                [200.0, 100.0, 200.0, 100.0, 2.0, 1.0],
            ]
        )
        out = generalize_sample_array(data, GeneralizationLevel(1_000.0, 30.0))
        assert out.shape[0] == 1

    def test_identity_level_preserves_grid_data(self, small_civ):
        level = GeneralizationLevel(100.0, 1.0)
        fp = small_civ[0]
        out = generalize_sample_array(fp.data, level)
        np.testing.assert_allclose(np.unique(out, axis=0), np.unique(fp.data, axis=0))


class TestGeneralizeDataset:
    def test_makes_twins_identical(self):
        from repro.core.dataset import FingerprintDataset

        ds = FingerprintDataset(
            [
                make_fp("a", [(100.0, 100.0, 5.0)]),
                make_fp("b", [(700.0, 200.0, 25.0)]),
            ]
        )
        coarse = generalize_dataset(ds, GeneralizationLevel(1_000.0, 30.0))
        assert coarse["a"].same_trace(coarse["b"])

    def test_anonymizes_monotonically(self, small_civ):
        fine = generalize_dataset(small_civ, GeneralizationLevel(1_000.0, 30.0))
        coarse = generalize_dataset(small_civ, GeneralizationLevel(20_000.0, 480.0))

        def n_unique(ds):
            return len({fp.trace_key() for fp in ds})

        assert n_unique(coarse) <= n_unique(fine)

    def test_keeps_user_count(self, small_civ):
        out = generalize_dataset(small_civ, GeneralizationLevel(5_000.0, 120.0))
        assert len(out) == len(small_civ)
        assert out.n_users == small_civ.n_users
