"""Smoke test of the Section 2.4 utility experiment."""

from repro.experiments import utility_eval


class TestUtilityExperiment:
    def test_runs_and_reports(self):
        report = utility_eval.run(n_users=36, days=2, seed=11)
        comparison = report.data["comparison"]
        assert set(comparison) == {
            "home_median_displacement_m",
            "work_median_displacement_m",
            "od_cosine",
            "density_cosine",
            "entropy_correlation",
            "od_intrazonal_original",
            "od_intrazonal_anonymized",
        }
        assert 0.0 <= comparison["od_cosine"] <= 1.0
        assert 0.0 <= comparison["density_cosine"] <= 1.0
        text = report.render()
        assert "original vs anonymized" in text

    def test_density_preserved_at_smoke_scale(self):
        report = utility_eval.run(n_users=36, days=2, seed=11)
        assert report.data["comparison"]["density_cosine"] > 0.5
