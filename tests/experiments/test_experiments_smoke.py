"""Smoke tests: every experiment runs at reduced scale and exhibits the
paper's qualitative findings.

Scale note: these use tiny populations (tens of users) so that the
whole suite stays fast; the benchmarks run the same experiments at the
scale recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table2,
)
from repro.experiments.runner import EXPERIMENTS, build_parser

N = 36
DAYS = 2
SEED = 11


class TestFig3:
    def test_no_user_2_anonymous(self):
        report = fig3.run(n_users=N, days=DAYS, seed=SEED, ks=(2, 5, 10))
        for preset, frac in report.data["fraction_2anonymous"].items():
            assert frac == 0.0, preset

    def test_gap_sublinear_in_k(self):
        report = fig3.run(n_users=N, days=DAYS, seed=SEED, ks=(2, 5, 10))
        assert report.data["gap_growth_factor"] < report.data["k_growth_factor"]


class TestFig4:
    def test_generalization_fails(self):
        report = fig4.run(n_users=N, days=DAYS, seed=SEED)
        # Even the coarsest level leaves the majority unique.
        assert report.data["coarsest_anonymized_fraction"] < 0.6
        # The finest level anonymizes nobody.
        for (preset, label), frac in report.data["anonymized_fraction"].items():
            if label == "0.1-1":
                assert frac == 0.0


class TestFig5:
    def test_temporal_dominates(self):
        # At this toy scale spatial stretches are inflated (few users
        # over a whole country), so the dominance threshold is relaxed;
        # the fig5 benchmark asserts >60% at full scale.
        report = fig5.run(n_users=N, days=DAYS, seed=SEED)
        for preset, frac in report.data["temporal_dominant_fraction"].items():
            assert frac > 0.4, preset

    def test_temporal_tail_heavier(self):
        report = fig5.run(n_users=N, days=DAYS, seed=SEED)
        assert (
            report.data["twi_median"]["temporal"] > report.data["twi_median"]["spatial"]
        )


class TestFig7:
    def test_everyone_anonymized_with_accuracy(self):
        report = fig7.run(n_users=N, days=DAYS, seed=SEED)
        for preset in ("synth-civ", "synth-sen"):
            assert report.data[preset]["k_anonymous"]
            # Scale-relaxed: the fig7 benchmark asserts >0.15 at its
            # larger population.
            assert report.data[preset]["frac_original_spatial"] > 0.05


class TestFig8:
    def test_monotone_degradation(self):
        report = fig8.run(n_users=N, days=DAYS, seed=SEED, ks=(2, 3, 5))
        per_k = report.data["per_k"]
        assert all(v["k_anonymous"] for v in per_k.values())
        assert (
            per_k[2]["frac_original_spatial"]
            >= per_k[3]["frac_original_spatial"]
            >= per_k[5]["frac_original_spatial"]
        )


class TestFig9:
    def test_suppression_improves_accuracy(self):
        report = fig9.run(n_users=N, days=DAYS, seed=SEED)
        baseline = report.data["baseline"]["mean_spatial_m"]
        tightest = report.data["spatial_sweep"][0]
        assert tightest["mean_m"] <= baseline
        # Tighter thresholds discard more.
        fracs = [p["discarded_fraction"] for p in report.data["spatial_sweep"]]
        assert all(a >= b - 1e-12 for a, b in zip(fracs, fracs[1:]))

    def test_temporal_sweep_monotone(self):
        report = fig9.run(n_users=N, days=DAYS, seed=SEED)
        fracs = [p["discarded_fraction"] for p in report.data["temporal_sweep"]]
        assert all(a >= b - 1e-12 for a, b in zip(fracs, fracs[1:]))


class TestFig10:
    def test_shorter_more_accurate(self):
        report = fig10.run(n_users=N, days=4, seed=SEED, timespans=(1, 4))
        for preset in ("synth-civ", "synth-sen"):
            series = report.data[preset]
            assert series[0]["median_spatial_m"] <= series[-1]["median_spatial_m"] * 1.5


class TestFig11:
    def test_small_fraction_less_accurate(self):
        report = fig11.run(n_users=N, days=DAYS, seed=SEED, fractions=(0.25, 1.0))
        for preset in ("synth-civ", "synth-sen"):
            series = {s["fraction"]: s for s in report.data[preset]}
            # Thinner crowds cannot be *more* accurate (tolerate noise).
            assert (
                series[0.25]["median_spatial_m"]
                >= series[1.0]["median_spatial_m"] * 0.5
            )


class TestTable2:
    @pytest.fixture(scope="class")
    def report(self):
        return table2.run(
            n_users=N, days=DAYS, seed=SEED, presets=("synth-civ", "dakar"), ks=(2,)
        )

    def test_glove_truthfulness_columns(self, report):
        for (k, preset), rows in report.data["results"].items():
            assert rows["glove"]["created_samples"] == 0
            assert rows["glove"]["discarded_fingerprints"] == 0

    def test_w4m_fabricates_samples(self, report):
        for rows in report.data["results"].values():
            assert rows["w4m"]["created_fraction"] > 0.05
            assert rows["w4m"]["discarded_fingerprints"] > 0

    def test_glove_wins_time_accuracy(self, report):
        for rows in report.data["results"].values():
            assert (
                rows["glove"]["mean_time_error_min"]
                < rows["w4m"]["mean_time_error_min"]
            )

    def test_glove_wins_position_accuracy_countrywide(self, report):
        # The citywide spatial margin needs full scale (see benchmarks);
        # countrywide the ordering already holds at smoke scale.
        rows = report.data["results"][(2, "synth-civ")]
        assert (
            rows["glove"]["mean_position_error_m"]
            < rows["w4m"]["mean_position_error_m"]
        )

    def test_extra_methods_join_by_name(self):
        report = table2.run(
            n_users=16, days=DAYS, seed=SEED, presets=("synth-civ",), ks=(2,),
            methods=("w4m-lc", "nwa", "glove"),
        )
        rows = report.data["results"][(2, "synth-civ")]
        assert set(rows) == {"w4m", "nwa", "glove"}
        # NWA's synchronization fabricates samples at nearly every
        # published instant — far beyond W4M's resampling.
        assert rows["nwa"]["created_fraction"] > rows["glove"]["created_fraction"]


class TestTable2Caching:
    """The acceptance invariant: a repeated table2 suite invocation
    computes each W4M-LC and GLOVE run exactly once (stage counters)."""

    def test_w4m_runs_once_across_repeated_invocation(self):
        from repro.core.artifacts import ArtifactStore
        from repro.core.pipeline import Pipeline, set_default_pipeline

        pipeline = Pipeline(ArtifactStore(root=None))
        old = set_default_pipeline(pipeline)
        try:
            for _ in range(2):
                table2.run(
                    n_users=16, days=DAYS, seed=SEED, presets=("synth-civ",), ks=(2,)
                )
        finally:
            set_default_pipeline(old)
        anonymize = pipeline.stats["anonymize"]
        assert anonymize.computed == 1  # one W4M-LC run for two invocations
        assert anonymize.requests == 2
        assert all(count == 1 for count in anonymize.computed_labels.values())
        assert pipeline.stats["glove"].computed == 1
        assert pipeline.stats["dataset"].computed == 1


class TestScenarioMethodAxis:
    def test_method_and_options_reach_the_cached_stage(self):
        import io

        from repro.core.artifacts import ArtifactStore
        from repro.core.pipeline import Pipeline
        from repro.experiments.runner import run_experiments

        pipeline = Pipeline(ArtifactStore(root=None))
        for delta in (2_000.0, 3_000.0):
            run_experiments(
                ["uniqueness"], n_users=12, days=1, seed=5, stream=io.StringIO(),
                pipeline=pipeline, method="w4m-lc", method_options={"delta_m": delta},
            )
        # Distinct method_options must reach the method config (hence
        # distinct artifact keys), not be silently dropped.
        assert pipeline.stats["anonymize"].computed == 2
        # The same holds for glove scenarios with options: a non-default
        # config must reach the glove stage, not fall back to defaults.
        run_experiments(
            ["uniqueness"], n_users=12, days=1, seed=5, stream=io.StringIO(),
            pipeline=pipeline, method="glove", method_options={"reshape": False},
        )
        labels = pipeline.stats["glove"].computed_labels
        assert pipeline.stats["glove"].computed == sum(labels.values())
        assert pipeline.stats["glove"].computed == 1  # the reshape=False run


class TestAttackMatrix:
    def test_glove_safe_baselines_measured(self):
        from repro.experiments import attack_matrix

        report = attack_matrix.run(n_users=N, days=DAYS, seed=SEED, k=2)
        results = report.data["results"]
        assert set(results) == {"glove", "w4m-lc", "nwa", "generalization"}
        assert report.data["glove_safe"]
        assert results["glove"]["min_nonempty_candidates"] >= 2
        # Legacy uniform generalization leaves users identifiable (the
        # Fig. 4 finding re-expressed as attack success).
        assert not results["generalization"]["safe"]

    def test_method_subset(self):
        from repro.experiments import attack_matrix

        report = attack_matrix.run(
            n_users=16, days=DAYS, seed=SEED, k=2, methods=("glove",)
        )
        assert list(report.data["results"]) == ["glove"]


class TestStreamEval:
    def test_window_sweep_structure(self):
        from repro.experiments import stream_eval

        report = stream_eval.run(
            n_users=N, days=DAYS, seed=SEED, windows_h=(6.0, 24.0)
        )
        assert set(report.data["windows"]) == {"6h", "24h"}
        six, day = report.data["windows"]["6h"], report.data["windows"]["24h"]
        # 2 recorded days: 8 six-hour windows vs 2 daily windows.
        assert six["n_windows"] > day["n_windows"] >= 2
        for entry in (six, day):
            assert entry["events_per_sec"] > 0
            assert entry["latency_p95_s"] >= entry["latency_p50_s"] >= 0

    def test_batch_is_the_generalization_floor(self):
        from repro.experiments import stream_eval

        report = stream_eval.run(
            n_users=N, days=DAYS, seed=SEED, windows_h=(6.0,)
        )
        batch = report.data["batch"]
        streaming = report.data["windows"]["6h"]
        # Windowed publications split the population into more, smaller
        # releases than the single batch publication.
        assert streaming["n_groups"] > batch["n_groups"]


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "table2",
            "utility",
            "stability",
            "uniqueness",
            "ablation-weights",
            "stream",
            "attacks",
        }

    def test_parser_defaults(self):
        # Scale flags default to None so that --scenario can fill them
        # in main(); the fallback constants carry the actual defaults.
        from repro.experiments.runner import DEFAULT_DAYS, DEFAULT_N_USERS

        args = build_parser().parse_args([])
        assert args.n_users is None
        assert args.experiments is None
        assert (DEFAULT_N_USERS, DEFAULT_DAYS) == (150, 5)

    def test_parser_subset(self):
        args = build_parser().parse_args(["-e", "fig3", "-n", "10"])
        assert args.experiments == ["fig3"]
        assert args.n_users == 10
