"""Tests for report formatting."""

import numpy as np

from repro.experiments.report import (
    ExperimentReport,
    fmt,
    format_cdf_series,
    format_table,
)


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5  # title, header, sep, 2 rows

    def test_cdf_series(self):
        text = format_cdf_series("label", [0.0, 1.0], [0.5, 1.0], x_name="gap")
        assert "label" in text
        assert "gap" in text
        assert "0.500" in text

    def test_fmt_integers(self):
        assert fmt(5) == "5"
        assert fmt(np.int64(7)) == "7"

    def test_fmt_floats(self):
        assert fmt(0.0) == "0"
        assert fmt(1234.5) == "1,234"
        assert fmt(0.123456) == "0.123"


class TestExperimentReport:
    def test_render_structure(self):
        report = ExperimentReport(exp_id="figX", title="demo", paper_claim="c")
        report.add_table(["h"], [[1]])
        report.add_cdf("cdf", [0.0], [1.0])
        report.add_text("note")
        text = report.render()
        assert text.startswith("== figX: demo ==")
        assert "paper claim: c" in text
        assert "note" in text

    def test_data_dict(self):
        report = ExperimentReport(exp_id="x", title="t", paper_claim="c")
        report.data["key"] = 1
        assert report.data["key"] == 1
