"""Detailed data-shape tests of individual experiment modules.

The smoke tests check headline claims; these verify the structured
``data`` payloads each module exposes (the contract the benchmarks and
EXPERIMENTS.md rely on).
"""

import pytest

from repro.baselines.generalization import PAPER_LEVELS
from repro.experiments import fig3, fig4, fig9, fig10, fig11, table2

N = 30
DAYS = 2
SEED = 7


class TestFig3Payload:
    @pytest.fixture(scope="class")
    def report(self):
        return fig3.run(n_users=N, days=DAYS, seed=SEED, ks=(2, 5))

    def test_keys(self, report):
        assert set(report.data) >= {
            "median_gap",
            "fraction_2anonymous",
            "median_gap_by_k",
            "gap_growth_factor",
            "k_growth_factor",
        }

    def test_median_by_k_sorted(self, report):
        by_k = report.data["median_gap_by_k"]
        ks = sorted(by_k)
        assert all(by_k[a] <= by_k[b] + 1e-12 for a, b in zip(ks, ks[1:]))

    def test_sections_render(self, report):
        text = report.render()
        assert "Fig.3a" in text and "Fig.3b" in text


class TestFig4Payload:
    def test_every_level_reported(self):
        report = fig4.run(n_users=N, days=DAYS, seed=SEED)
        labels = {label for (_, label) in report.data["anonymized_fraction"]}
        assert labels == {lvl.label for lvl in PAPER_LEVELS}


class TestFig9Payload:
    @pytest.fixture(scope="class")
    def report(self):
        return fig9.run(n_users=N, days=DAYS, seed=SEED)

    def test_sweep_lengths(self, report):
        assert len(report.data["spatial_sweep"]) == len(fig9.SPATIAL_SWEEP_M)
        assert len(report.data["temporal_sweep"]) == len(fig9.TEMPORAL_SWEEP_MIN)

    def test_thresholds_recorded(self, report):
        thresholds = [p["threshold_m"] for p in report.data["spatial_sweep"]]
        assert thresholds == sorted(thresholds)

    def test_baseline_present(self, report):
        baseline = report.data["baseline"]
        assert baseline["mean_spatial_m"] >= baseline["median_spatial_m"] * 0.1


class TestFig10Payload:
    def test_series_days_sorted(self):
        report = fig10.run(n_users=N, days=3, seed=SEED, timespans=(1, 3))
        for preset in ("synth-civ", "synth-sen"):
            days = [s["days"] for s in report.data[preset]]
            assert days == sorted(days)

    def test_timespans_clamped_to_days(self):
        report = fig10.run(n_users=N, days=2, seed=SEED, timespans=(1, 99))
        for preset in ("synth-civ", "synth-sen"):
            assert max(s["days"] for s in report.data[preset]) <= 2


class TestFig11Payload:
    def test_user_counts_scale_with_fraction(self):
        report = fig11.run(n_users=N, days=DAYS, seed=SEED, fractions=(0.5, 1.0))
        for preset in ("synth-civ", "synth-sen"):
            series = {s["fraction"]: s["n_users"] for s in report.data[preset]}
            assert series[0.5] <= series[1.0]


class TestTable2Payload:
    def test_rows_for_every_cell(self):
        report = table2.run(
            n_users=N, days=DAYS, seed=SEED, presets=("dakar",), ks=(2,)
        )
        results = report.data["results"]
        assert set(results) == {(2, "dakar")}
        for rows in results.values():
            assert set(rows) == {"w4m", "glove"}
            for method in rows.values():
                assert {
                    "discarded_fingerprints",
                    "created_samples",
                    "deleted_samples",
                    "mean_position_error_m",
                    "mean_time_error_min",
                } <= set(method)
