"""Tests for report artifacts and ASCII plotting."""

import json

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCDF
from repro.experiments.artifacts import load_report_data, save_report
from repro.experiments.ascii_plot import ascii_cdf, ascii_series
from repro.experiments.report import ExperimentReport


class TestArtifacts:
    def make_report(self):
        report = ExperimentReport(exp_id="figX", title="demo", paper_claim="c")
        report.add_text("hello")
        report.data["scalar"] = 1.5
        report.data["array"] = np.array([1.0, 2.0])
        report.data[("tuple", "key")] = {"nested": np.int64(3)}
        return report

    def test_save_and_load(self, tmp_path):
        paths = save_report(self.make_report(), tmp_path)
        assert paths["txt"].exists()
        assert paths["json"].exists()
        assert "hello" in paths["txt"].read_text()
        data = load_report_data(paths["json"])
        assert data["exp_id"] == "figX"
        assert data["data"]["scalar"] == 1.5
        assert data["data"]["array"] == [1.0, 2.0]
        assert data["data"]["tuple/key"]["nested"] == 3

    def test_json_is_valid(self, tmp_path):
        paths = save_report(self.make_report(), tmp_path)
        json.loads(paths["json"].read_text())  # must not raise

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_report(self.make_report(), target)
        assert (target / "figX.txt").exists()


class TestAsciiCDF:
    def test_renders_curve(self, rng):
        cdf = EmpiricalCDF(rng.uniform(0, 10, 200))
        panel = ascii_cdf({"u": cdf}, width=40, height=10)
        assert "o" in panel
        assert "u" in panel.splitlines()[-1]  # legend

    def test_multiple_curves_distinct_marks(self, rng):
        c1 = EmpiricalCDF(rng.uniform(0, 1, 100))
        c2 = EmpiricalCDF(rng.uniform(0, 2, 100))
        panel = ascii_cdf({"a": c1, "b": c2}, width=40, height=10)
        assert "o" in panel and "+" in panel

    def test_log_scale(self, rng):
        cdf = EmpiricalCDF(rng.lognormal(0, 2, 500))
        panel = ascii_cdf({"x": cdf}, log_x=True, width=40, height=8)
        assert panel.count("\n") >= 8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_cdf({"x": EmpiricalCDF([1.0])}, width=4, height=2)


class TestAsciiSeries:
    def test_renders(self):
        panel = ascii_series(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=30,
            height=8,
        )
        assert "o" in panel and "+" in panel
        assert "up" in panel and "down" in panel

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            ascii_series([1], {"x": [1]})
