"""Tests for the glove-repro experiment runner."""

import io

import pytest

from repro.experiments.runner import EXPERIMENTS, build_parser, run_experiments


class TestRunExperiments:
    def test_runs_and_prints(self, tmp_path):
        stream = io.StringIO()
        reports = run_experiments(
            ["fig4"], n_users=24, days=1, seed=3, stream=stream
        )
        assert "fig4" in reports
        out = stream.getvalue()
        assert "uniform spatiotemporal generalization" in out
        assert "completed in" in out

    def test_saves_artifacts(self, tmp_path):
        stream = io.StringIO()
        run_experiments(
            ["fig4"], n_users=24, days=1, seed=3, stream=stream, output=str(tmp_path)
        )
        assert (tmp_path / "fig4.txt").exists()
        assert (tmp_path / "fig4.json").exists()
        assert "artifacts:" in stream.getvalue()

    def test_every_registered_experiment_accepts_standard_args(self):
        # The registry contract: every run() takes (n_users, days, seed).
        import inspect

        for name, fn in EXPERIMENTS.items():
            params = inspect.signature(fn).parameters
            assert {"n_users", "days", "seed"} <= set(params), name


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["-e", "fig99"])

    def test_output_flag(self):
        args = build_parser().parse_args(["-o", "somewhere"])
        assert args.output == "somewhere"
