"""Tests for the glove-repro experiment runner."""

import io

import pytest

from repro.core.artifacts import ArtifactStore
from repro.core.pipeline import Pipeline
from repro.experiments.runner import (
    EXPERIMENTS,
    build_parser,
    main,
    run_experiments,
)


class TestRunExperiments:
    def test_runs_and_prints(self, tmp_path):
        stream = io.StringIO()
        reports = run_experiments(
            ["fig4"], n_users=24, days=1, seed=3, stream=stream
        )
        assert "fig4" in reports
        out = stream.getvalue()
        assert "uniform spatiotemporal generalization" in out
        assert "completed in" in out

    def test_saves_artifacts(self, tmp_path):
        stream = io.StringIO()
        run_experiments(
            ["fig4"], n_users=24, days=1, seed=3, stream=stream, output=str(tmp_path)
        )
        assert (tmp_path / "fig4.txt").exists()
        assert (tmp_path / "fig4.json").exists()
        assert "artifacts:" in stream.getvalue()

    def test_every_registered_experiment_accepts_standard_args(self):
        # The registry contract: every run() takes (n_users, days, seed).
        import inspect

        for name, fn in EXPERIMENTS.items():
            params = inspect.signature(fn).parameters
            assert {"n_users", "days", "seed"} <= set(params), name


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["-e", "fig99"])
        assert exc.value.code == 2

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--scenario", "warp-speed"])
        assert exc.value.code == 2

    def test_output_flag(self):
        args = build_parser().parse_args(["-o", "somewhere"])
        assert args.output == "somewhere"

    def test_pipeline_flags(self):
        args = build_parser().parse_args(["--artifact-dir", "x", "--no-cache"])
        assert args.artifact_dir == "x"
        assert args.no_cache


class TestList:
    def test_list_exits_zero_and_prints_registries(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "fig3" in out
        assert "scenarios:" in out
        assert "suite" in out
        assert "synth-civ" in out

    def test_unknown_experiment_exits_two_through_main(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["-e", "fig99"])
        assert exc.value.code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestScenarioResolution:
    def test_scenario_scale_with_flag_overrides(self):
        # --scenario fills the scale; explicit flags take precedence.
        import repro.experiments.runner as runner_mod

        recorded = {}

        def fake_run(names, n_users, days, seed, **kwargs):
            recorded.update(names=names, n_users=n_users, days=days, seed=seed)
            return {}

        original = runner_mod.run_experiments
        runner_mod.run_experiments = fake_run
        try:
            assert main(["--scenario", "smoke", "-e", "fig4", "-n", "16"]) == 0
        finally:
            runner_mod.run_experiments = original
        assert recorded["names"] == ["fig4"]
        assert recorded["n_users"] == 16  # explicit flag wins
        assert recorded["days"] == 2  # from the smoke scenario
        assert recorded["seed"] == 4  # from the smoke scenario

    def test_suite_scenario_supplies_experiments(self):
        import repro.experiments.runner as runner_mod

        recorded = {}

        def fake_run(names, n_users, days, seed, **kwargs):
            recorded.update(names=names)
            return {}

        original = runner_mod.run_experiments
        runner_mod.run_experiments = fake_run
        try:
            assert main(["--scenario", "suite"]) == 0
        finally:
            runner_mod.run_experiments = original
        assert recorded["names"] == ["fig3", "fig8", "table2"]


class TestComputeOnceAcceptance:
    """The PR's acceptance criterion: one synthesis per dataset key."""

    def test_suite_synthesizes_each_dataset_exactly_once(self):
        # fig3 needs synth-civ and synth-sen (the latter twice in the
        # module), fig8 needs synth-civ again, table2 needs all four
        # presets twice (k=2 and k=5): without the pipeline that is ten
        # synthesize() calls; with it, exactly one per unique key.
        pipeline = Pipeline(ArtifactStore(root=None))
        run_experiments(
            ["fig3", "fig8", "table2"],
            n_users=40,
            days=2,
            seed=0,
            stream=io.StringIO(),
            pipeline=pipeline,
        )
        stats = pipeline.stats["dataset"]
        assert len(stats.computed_labels) == 4  # civ, sen, abidjan, dakar
        assert all(count == 1 for count in stats.computed_labels.values())
        assert stats.hits > 0
        # GLOVE runs are shared across experiments too: fig8's k=2 run
        # on synth-civ is the same artifact as table2's.
        glove_stats = pipeline.stats["glove"]
        assert glove_stats.hits > 0
        assert all(count == 1 for count in glove_stats.computed_labels.values())

    def test_cache_off_reports_byte_identical(self):
        cached = run_experiments(
            ["fig3"],
            n_users=24,
            days=1,
            seed=3,
            stream=io.StringIO(),
            pipeline=Pipeline(ArtifactStore(root=None)),
        )
        fresh = run_experiments(
            ["fig3"],
            n_users=24,
            days=1,
            seed=3,
            stream=io.StringIO(),
            pipeline=Pipeline(ArtifactStore(root=None), enabled=False),
        )
        assert cached["fig3"].render() == fresh["fig3"].render()
