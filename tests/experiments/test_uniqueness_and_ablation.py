"""Smoke tests of the uniqueness and metric-ablation experiments."""

from repro.experiments import ablation_weights, uniqueness


class TestUniquenessExperiment:
    def test_paper_shapes(self):
        report = uniqueness.run(
            n_users=36, days=2, seed=11, point_counts=(1, 4), location_counts=(1, 3)
        )
        points = report.data["random_points"]
        # More knowledge -> more uniqueness (weakly monotone).
        assert points[4]["raw_unique"] >= points[1]["raw_unique"]
        # A handful of points is near-total identification ([6]).
        assert points[4]["raw_unique"] > 0.8
        # Top locations identify a meaningful share ([5]).
        locs = report.data["top_locations"]
        assert locs[3]["raw_unique"] > 0.2

    def test_glove_blocks_everything(self):
        report = uniqueness.run(
            n_users=36, days=2, seed=11, point_counts=(4,), location_counts=(3,)
        )
        assert report.data["glove_never_identified"]


class TestMetricAblation:
    def test_uniqueness_robust_across_variants(self):
        report = ablation_weights.run(n_users=30, days=2, seed=11)
        assert report.data["uniqueness_robust"]

    def test_time_skew_raises_dominance(self):
        report = ablation_weights.run(n_users=30, days=2, seed=11)
        variants = report.data["variants"]
        # Skewing the exchange rate toward space (tiny phimax_sigma)
        # must lower the temporal share relative to the time-skewed
        # variant, by construction of the metric.
        assert (
            variants["time-skewed rate"]["temporal_dominance"]
            >= variants["space-skewed rate"]["temporal_dominance"]
        )

    def test_all_variants_evaluated(self):
        report = ablation_weights.run(n_users=30, days=2, seed=11)
        assert len(report.data["variants"]) == len(ablation_weights.VARIANTS)
