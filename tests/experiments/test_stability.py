"""Smoke test of the seed-stability experiment."""

from repro.experiments import stability


class TestStability:
    def test_claims_hold_across_draws(self):
        report = stability.run(n_users=30, days=2, seed=3, n_seeds=3)
        assert report.data["always_nonanonymous"]
        assert len(report.data["median_2gap"]["values"]) == 3
        ci = report.data["median_2gap"]
        assert ci["ci_low"] <= ci["mean"] <= ci["ci_high"]

    def test_report_renders(self):
        report = stability.run(n_users=30, days=2, seed=3, n_seeds=2)
        text = report.render()
        assert "independent dataset draws" in text
