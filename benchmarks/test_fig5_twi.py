"""Benchmark: Fig. 5 — the temporal long tail behind low anonymizability.

Paper shape asserted: spatial stretch distributions are lighter-tailed
than temporal ones (Fig. 5a), and the temporal component dominates the
anonymization cost for the large majority of fingerprints (Fig. 5b).
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig5


def test_fig5_tail_weight_and_ratio(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig5.run(n_users=n_users, days=days, seed=seed),
        rounds=1,
        iterations=1,
    )

    twi = report.data["twi_median"]
    assert twi["temporal"] > twi["spatial"]
    heavy = report.data["twi_heavy_fraction"]
    assert heavy["temporal"] > heavy["spatial"]

    dominance = report.data["temporal_dominant_fraction"]
    for preset, frac in dominance.items():
        assert frac > 0.6, preset

    benchmark.extra_info["twi_median"] = {k: round(v, 2) for k, v in twi.items()}
    benchmark.extra_info["temporal_dominant_fraction"] = {
        p: round(v, 2) for p, v in dominance.items()
    }
    benchmark.extra_info["paper"] = (
        "Fig5a: spatial TWI<1.5 in ~85% of cases, temporal >=1.5 in ~70%; "
        "Fig5b: temporal > spatial for ~95% of fingerprints"
    )
