"""Benchmark: Fig. 7 — accuracy of GLOVE 2-anonymized datasets.

Paper shape asserted: full 2-anonymity with a sizable fraction of
samples at (or near) the original granularity — something Fig. 4 shows
uniform generalization cannot deliver at any granularity.
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig7


def test_fig7_glove_accuracy(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig7.run(n_users=n_users, days=days, seed=seed),
        rounds=1,
        iterations=1,
    )

    for preset in ("synth-civ", "synth-sen"):
        stats = report.data[preset]
        assert stats["k_anonymous"], preset
        # Paper: 20-40% of samples keep original spatial accuracy and
        # 70-80% stay within 2 km.  At reproduction scale (a hundred-odd
        # users instead of 82k-320k) the crowd is far thinner and both
        # shares sit lower — exactly the size effect the paper's own
        # Fig. 11 documents.  The assertions pin the qualitative shape
        # (a sizable share at original accuracy, a larger one within
        # 2 km); EXPERIMENTS.md records measured-vs-paper values.
        assert stats["frac_original_spatial"] > 0.08, preset
        assert stats["frac_within_2km"] > 0.2, preset
        assert stats["frac_within_2km"] > stats["frac_original_spatial"], preset
        benchmark.extra_info[preset] = {
            key: round(val, 3) if isinstance(val, float) else val
            for key, val in stats.items()
        }
    benchmark.extra_info["paper"] = (
        "20-40% keep original spatial accuracy; 70-80% within ~2km/~2h"
    )
