"""Benchmarks tying the reproduction to the paper's Sections 1 and 8.

* the uniqueness premise ([5], [6]) and its removal by GLOVE;
* the NWA baseline: spatial-only anonymization of synchronized
  trajectories is the wrong tool for CDR data (Section 8's argument,
  quantified).
"""

import numpy as np

from benchmarks.conftest import bench_scale
from repro.baselines.nwa import NWAConfig, nwa
from repro.baselines.w4m import W4MConfig, w4m_lc
from repro.experiments import uniqueness


def test_uniqueness_premise(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: uniqueness.run(n_users=n_users, days=days, seed=seed),
        rounds=1,
        iterations=1,
    )
    points = report.data["random_points"]
    # Paper [6]: four points identify ~95%; the synthetic substrate
    # reproduces near-total uniqueness.
    assert points[4]["raw_unique"] > 0.9
    # Paper [5]: top-3 locations identify roughly half.
    locs = report.data["top_locations"]
    assert 0.2 < locs[3]["raw_unique"] <= 1.0
    assert report.data["glove_never_identified"]
    benchmark.extra_info["raw_unique_4_points"] = round(points[4]["raw_unique"], 2)
    benchmark.extra_info["raw_unique_top3"] = round(locs[3]["raw_unique"], 2)
    benchmark.extra_info["paper"] = (
        "[6]: ~95% unique at 4 points; [5]: ~50% unique at top-3 locations"
    )


def test_nwa_unfit_for_cdr(benchmark, civ_dataset):
    result = benchmark.pedantic(
        lambda: nwa(civ_dataset, NWAConfig(k=2, period_min=60.0)),
        rounds=1,
        iterations=1,
    )
    w4m = w4m_lc(civ_dataset, W4MConfig(k=2))
    # NWA's synchronization fabricates more data than the dataset holds;
    # W4M (which at least handles time) fabricates far less; GLOVE zero.
    assert result.stats.created_fraction > 1.0
    assert result.stats.created_fraction > w4m.stats.created_fraction
    benchmark.extra_info["created_fraction"] = {
        "nwa": round(result.stats.created_fraction, 2),
        "w4m": round(w4m.stats.created_fraction, 2),
        "glove": 0.0,
    }
    benchmark.extra_info["paper"] = (
        "Section 8: GPS-style techniques presume synchronized sampling; "
        "CDR sampling is heterogeneous and sparse"
    )
