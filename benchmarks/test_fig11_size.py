"""Benchmark: Fig. 11 — accuracy vs dataset size.

Paper shape asserted: thinner crowds are harder to hide in, but the
degradation is only pronounced at small retained fractions (the paper
sees clear impairment below a few tens of thousands of users; at our
scale the same relative ordering holds between 5-25% subsets and the
full population).
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig11


def test_fig11_size_sweep(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig11.run(
            n_users=n_users, days=days, seed=seed, fractions=(0.1, 0.25, 0.5, 1.0)
        ),
        rounds=1,
        iterations=1,
    )

    for preset in ("synth-civ", "synth-sen"):
        series = {s["fraction"]: s for s in report.data[preset]}
        # The thinnest subset is no more accurate than the full dataset
        # (noise allowance of 10%).
        assert (
            series[0.1]["mean_spatial_m"] >= series[1.0]["mean_spatial_m"] * 0.9
        ), preset
        benchmark.extra_info[preset] = [
            {
                "fraction": s["fraction"],
                "mean_km": round(s["mean_spatial_m"] / 1000, 2),
                "mean_min": round(s["mean_temporal_min"], 1),
            }
            for s in report.data[preset]
        ]
    benchmark.extra_info["paper"] = (
        "accuracy impaired only when the crowd becomes very thin"
    )
