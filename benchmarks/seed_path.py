"""The pre-engine dense-matrix GLOVE loop, preserved as a benchmark baseline.

This is the seed repository's `glove()` control flow: a dense
``(2n, 2n)`` stretch matrix over all slot pairs, full one-vs-all row
recomputation after every merge, and free argmin refreshes against the
cached rows.  The production implementation in
:mod:`repro.core.glove` replaced the matrix with O(n) per-slot state
plus lower-bound pruning; this module exists so ``BENCH_glove.json``
can keep measuring the engine against the original path (and assert
that both produce identical outputs) from PR 1 onward.

Not part of the public API — benchmark/regression harness only.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.config import GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.engine import SlotStore
from repro.core.glove import GloveResult, GloveStats
from repro.core.merge import merge_fingerprints
from repro.core.pairwise import one_vs_all
from repro.core.reshape import reshape_fingerprint
from repro.core.suppression import SuppressionStats, suppress_dataset


def seed_glove(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    chunk: int = 256,
) -> GloveResult:
    """k-anonymize with the original dense-matrix greedy loop."""
    fps = list(dataset)
    k = config.k
    n = len(fps)
    total_users = sum(fp.count for fp in fps)
    if total_users < k:
        raise ValueError(f"dataset hides {total_users} users in total, cannot reach k={k}")
    if any(fp.m == 0 for fp in fps):
        raise ValueError("input contains empty fingerprints; screen the dataset first")

    stats = GloveStats(n_input_fingerprints=n)
    work = SlotStore(fps)
    capacity = work.capacity
    cfg = config.stretch

    stretch = np.full((capacity, capacity), np.inf, dtype=np.float64)
    pending = np.zeros(capacity, dtype=bool)
    pending[:n] = work.counts[:n] < k
    finished: List[int] = [slot for slot in range(n) if not pending[slot]]

    pending_idx = np.flatnonzero(pending)
    for pos, i in enumerate(pending_idx[:-1]):
        targets = pending_idx[pos + 1 :]
        vals = one_vs_all(work.fps[i].data, work.fps[i].count, work, cfg, targets, chunk)
        stretch[i, targets] = vals
        stretch[targets, i] = vals
    stats.n_exact_evaluations += (pending_idx.size * (pending_idx.size - 1)) // 2

    best_val = np.full(capacity, np.inf)
    best_idx = np.full(capacity, -1, dtype=np.int64)

    def _refresh_best(slot: int) -> None:
        live = pending.copy()
        live[slot] = False
        if not live.any():
            best_val[slot] = np.inf
            best_idx[slot] = -1
            return
        row = np.where(live, stretch[slot], np.inf)
        j = int(row.argmin())
        best_val[slot] = row[j]
        best_idx[slot] = j

    for i in np.flatnonzero(pending):
        _refresh_best(int(i))

    def _merge_pair(i: int, j: int):
        merged = merge_fingerprints(work.fps[i], work.fps[j], cfg)
        if config.reshape:
            merged = reshape_fingerprint(merged)
        return merged

    while pending.sum() >= 2:
        candidates = np.where(pending, best_val, np.inf)
        i = int(candidates.argmin())
        j = int(best_idx[i])
        merged = _merge_pair(i, j)
        stats.n_merges += 1

        pending[i] = False
        pending[j] = False
        stretch[i, :] = np.inf
        stretch[:, i] = np.inf
        stretch[j, :] = np.inf
        stretch[:, j] = np.inf
        best_val[i] = best_val[j] = np.inf

        slot = work.append(merged)
        if merged.count >= k:
            finished.append(slot)
        else:
            pending[slot] = True
            targets = np.flatnonzero(pending)
            targets = targets[targets != slot]
            if targets.size:
                vals = one_vs_all(merged.data, merged.count, work, cfg, targets, chunk)
                stretch[slot, targets] = vals
                stretch[targets, slot] = vals
                stats.n_exact_evaluations += targets.size
            _refresh_best(slot)

        for r in np.flatnonzero(pending):
            r = int(r)
            if r == slot:
                continue
            if best_idx[r] in (i, j):
                _refresh_best(r)
            elif pending[slot] and stretch[r, slot] < best_val[r]:
                best_val[r] = stretch[r, slot]
                best_idx[r] = slot

    leftover = np.flatnonzero(pending)
    if leftover.size == 1:
        lo = int(leftover[0])
        if not finished:
            raise RuntimeError("no finished group to absorb the leftover fingerprint")
        targets = np.array(finished, dtype=np.int64)
        vals = one_vs_all(work.fps[lo].data, work.fps[lo].count, work, cfg, targets, chunk)
        stats.n_exact_evaluations += targets.size
        tgt = int(targets[int(vals.argmin())])
        merged = _merge_pair(lo, tgt)
        stats.n_merges += 1
        stats.leftover_merged = True
        slot = work.append(merged)
        finished[finished.index(tgt)] = slot
        pending[lo] = False

    out = FingerprintDataset(name=f"{dataset.name}-glove-k{k}")
    for slot in finished:
        out.add(work.fps[slot])
    stats.n_output_fingerprints = len(out)

    if config.suppression.enabled:
        out, supp = suppress_dataset(out, config.suppression)
        stats.suppression = supp
    else:
        stats.suppression = SuppressionStats(
            total_samples=out.n_samples, discarded_samples=0, discarded_fingerprints=0
        )
    return GloveResult(dataset=out, stats=stats, config=config)
