"""Benchmarks for the paper-suggested extensions.

* partial-fingerprint anonymization (paper Section 7): cheaper and more
  accurate than full-length GLOVE under an assumed adversary;
* the multi-process pairwise substrate (paper Section 6.3 parallelism);
* the cross-database check-in attack (paper Section 1, ref. [7]):
  breaks pseudonymized data, blocked by GLOVE;
* the downstream-utility harness (paper Section 2.4 claim).
"""

import numpy as np

from benchmarks.conftest import bench_scale
from repro.analysis.accuracy import extent_accuracy
from repro.attacks.cross_database import cross_database_attack, simulate_checkin_database
from repro.core.config import GloveConfig
from repro.core.glove import glove
from repro.core.pairwise import pairwise_matrix
from repro.core.parallel import parallel_pairwise_matrix
from repro.core.partial import partial_glove, time_window_model
from repro.experiments import utility_eval


def test_partial_vs_full_glove(benchmark, civ_dataset):
    """Partial anonymization preserves more accuracy than full-length."""
    full = glove(civ_dataset, GloveConfig(k=2))

    partial = benchmark.pedantic(
        lambda: partial_glove(civ_dataset, time_window_model(9, 17), GloveConfig(k=2)),
        rounds=1,
        iterations=1,
    )
    assert partial.exposed_result.dataset.is_k_anonymous(2)

    s_full, _ = extent_accuracy(full.dataset)
    s_part, _ = extent_accuracy(partial.dataset)
    assert float(s_part(200.0)) > float(s_full(200.0))
    benchmark.extra_info["frac_original_spatial"] = {
        "full": round(float(s_full(200.0)), 3),
        "partial_9_17": round(float(s_part(200.0)), 3),
    }
    benchmark.extra_info["exposed_fraction"] = round(partial.exposed_fraction, 3)
    benchmark.extra_info["paper"] = (
        "Section 7: partial anonymization 'is less expensive to achieve' "
        "under attacker-knowledge assumptions"
    )


def test_parallel_pairwise_speedup(benchmark, civ_dataset):
    """Multi-process matrix build matches the sequential kernel."""
    fps = list(civ_dataset)[:80]

    par = benchmark.pedantic(
        lambda: parallel_pairwise_matrix(fps, n_workers=4, block=8),
        rounds=1,
        iterations=1,
    )
    seq = pairwise_matrix(fps)
    off = ~np.eye(len(fps), dtype=bool)
    np.testing.assert_allclose(par[off], seq[off], atol=1e-12)
    benchmark.extra_info["n_fingerprints"] = len(fps)
    benchmark.extra_info["paper"] = "Section 6.3: all key calculations parallelizable"


def test_cross_database_attack_blocked(benchmark, civ_dataset):
    """Check-in linkage breaks pseudonyms, not GLOVE output."""
    side = simulate_checkin_database(
        civ_dataset, coverage=0.3, checkins_per_user=5, rng=np.random.default_rng(3)
    )
    published = glove(civ_dataset, GloveConfig(k=2)).dataset

    outcome = benchmark.pedantic(
        lambda: cross_database_attack(side, published), rounds=1, iterations=1
    )
    baseline = cross_database_attack(side, civ_dataset)
    assert baseline.reidentification_rate > 0.3
    assert outcome.reidentification_rate == 0.0
    benchmark.extra_info["reidentified"] = {
        "pseudonymized": round(baseline.reidentification_rate, 2),
        "glove_k2": round(outcome.reidentification_rate, 2),
    }
    benchmark.extra_info["paper"] = (
        "ref [7]: hundreds re-identified from check-ins at 90% confidence; "
        "GLOVE's k-anonymity blocks the attack"
    )


def test_utility_preservation(benchmark):
    """Section 2.4: aggregate analyses survive anonymization."""
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: utility_eval.run(n_users=n_users, days=days, seed=seed),
        rounds=1,
        iterations=1,
    )
    comparison = report.data["comparison"]
    assert comparison["density_cosine"] > 0.6
    assert comparison["home_median_displacement_m"] < 15_000.0
    benchmark.extra_info["comparison"] = {
        key: (round(val, 3) if isinstance(val, float) else val)
        for key, val in comparison.items()
    }
    benchmark.extra_info["paper"] = (
        "Section 2.4: routine-behaviour and aggregate analyses remain valid"
    )
