"""Benchmark: Fig. 9 — the suppression trade-off.

Paper shape asserted: suppressing a small fraction of over-stretched
samples improves mean accuracy substantially (paper: mean position
accuracy 5 km -> ~1 km for <8% discarded; mean time accuracy halved
for ~4% discarded), with monotone threshold/discard curves.
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig9


def test_fig9_suppression_tradeoff(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig9.run(n_users=n_users, days=days, seed=seed),
        rounds=1,
        iterations=1,
    )

    baseline_mean = report.data["baseline"]["mean_spatial_m"]
    sweep = report.data["spatial_sweep"]
    # The 15 km threshold point: a modest discard buys a big gain.
    point = next(p for p in sweep if p["threshold_m"] == 15_000.0)
    assert point["mean_m"] < baseline_mean * 0.75
    assert point["discarded_fraction"] < 0.35

    tsweep = report.data["temporal_sweep"]
    t_base = report.data["baseline"]["mean_temporal_min"]
    t_point = next(p for p in tsweep if p["threshold_min"] == 360.0)
    assert t_point["mean_min"] < t_base

    benchmark.extra_info["baseline_mean_spatial_km"] = round(baseline_mean / 1000, 2)
    benchmark.extra_info["at_15km_6h"] = {
        "mean_spatial_km": round(point["mean_m"] / 1000, 2),
        "discarded": round(point["discarded_fraction"], 3),
    }
    benchmark.extra_info["paper"] = (
        "mean position accuracy >5km -> ~1km while discarding <8% of samples"
    )
