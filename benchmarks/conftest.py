"""Shared configuration of the benchmark suite.

Each benchmark regenerates one paper figure/table at a reproducible
scale and records the headline numbers in ``extra_info`` so that
``pytest benchmarks/ --benchmark-only`` output documents paper-vs-
measured (see EXPERIMENTS.md).

Scale is controlled by environment variables so the suite can be run
larger on beefier machines:

* ``REPRO_BENCH_USERS`` (default 120) — synthetic users per dataset;
* ``REPRO_BENCH_DAYS`` (default 4) — recording period;
* ``REPRO_BENCH_SEED`` (default 0).
"""

import os

import pytest

from repro.cdr.datasets import synthesize

BENCH_USERS = int(os.environ.get("REPRO_BENCH_USERS", "120"))
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "4"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def bench_scale():
    """The (n_users, days, seed) triple used across the suite."""
    return BENCH_USERS, BENCH_DAYS, BENCH_SEED


@pytest.fixture(scope="session")
def civ_dataset():
    """Session-cached synth-civ dataset at benchmark scale."""
    return synthesize("synth-civ", n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def sen_dataset():
    """Session-cached synth-sen dataset at benchmark scale."""
    return synthesize("synth-sen", n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED)
