"""Shared configuration of the benchmark suite.

Each benchmark regenerates one paper figure/table at a reproducible
scale and records the headline numbers in ``extra_info`` so that
``pytest benchmarks/ --benchmark-only`` output documents paper-vs-
measured (see EXPERIMENTS.md).

Scale is controlled by environment variables so the suite can be run
larger on beefier machines:

* ``REPRO_BENCH_USERS`` (default 120) — synthetic users per dataset;
* ``REPRO_BENCH_DAYS`` (default 4) — recording period;
* ``REPRO_BENCH_SEED`` (default 0).

At session end the suite also emits ``BENCH_glove.json`` at the repo
root: wall-clock of a seeded 500-fingerprint ``glove()`` run per
compute backend, against the pre-engine dense-matrix baseline
(:mod:`benchmarks.seed_path`), so the perf trajectory of the hot loop
is tracked PR over PR.  Scale/skip knobs:

* ``REPRO_BENCH_GLOVE`` — set to ``0`` to skip the emission;
* ``REPRO_BENCH_GLOVE_USERS`` (default 500), ``REPRO_BENCH_GLOVE_DAYS``
  (default 2) — scale of the timed run.

The emission also covers the sharded tier: a ``sharded`` row on the
500-fingerprint scenario (same wall-clock comparison as numpy/process,
plus the k-anonymity audit — sharded output is *not* expected to be
byte-identical at shards > 1), and a ``large_n`` record that runs the
sharded backend on a 10k+-fingerprint synthetic population and audits
it with the reusable ``assert_k_anonymous`` checker from
``tests/properties/test_k_anonymity.py``.  Knobs:

* ``REPRO_BENCH_SHARD_USERS`` (default 10500; ``0`` skips the large-n
  record), ``REPRO_BENCH_SHARD_DAYS`` (default 2).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cdr.datasets import synthesize

BENCH_USERS = int(os.environ.get("REPRO_BENCH_USERS", "120"))
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "4"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

GLOVE_BENCH_USERS = int(os.environ.get("REPRO_BENCH_GLOVE_USERS", "500"))
GLOVE_BENCH_DAYS = int(os.environ.get("REPRO_BENCH_GLOVE_DAYS", "2"))
SHARD_BENCH_USERS = int(os.environ.get("REPRO_BENCH_SHARD_USERS", "10500"))
SHARD_BENCH_DAYS = int(os.environ.get("REPRO_BENCH_SHARD_DAYS", "2"))
GLOVE_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_glove.json"
_REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_module(name: str, path: Path):
    """Import a module by file path (seed baseline, test-side checker)."""
    import importlib.util
    import sys

    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def bench_scale():
    """The (n_users, days, seed) triple used across the suite."""
    return BENCH_USERS, BENCH_DAYS, BENCH_SEED


@pytest.fixture(scope="session")
def civ_dataset():
    """Session-cached synth-civ dataset at benchmark scale."""
    return synthesize("synth-civ", n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def sen_dataset():
    """Session-cached synth-sen dataset at benchmark scale."""
    return synthesize("synth-sen", n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED)


def _run_glove_bench() -> dict:
    """Time a seeded GLOVE run on the baseline and on every backend."""
    import numpy as np

    from repro.core.config import ComputeConfig, GloveConfig
    from repro.core.glove import glove

    seed_path = _load_module(
        "benchmarks_seed_path", Path(__file__).resolve().parent / "seed_path.py"
    )
    seed_glove = seed_path.seed_glove

    dataset = synthesize(
        "synth-civ", n_users=GLOVE_BENCH_USERS, days=GLOVE_BENCH_DAYS, seed=BENCH_SEED
    )
    config = GloveConfig(k=2)

    def digest(result):
        return (
            result.stats.n_merges,
            len(result.dataset),
            sum(float(fp.data.sum()) for fp in result.dataset),
        )

    t0 = time.time()
    baseline = seed_glove(dataset, config)
    seed_s = time.time() - t0
    reference = digest(baseline)

    record = {
        "n_fingerprints": len(dataset),
        "days": GLOVE_BENCH_DAYS,
        "seed": BENCH_SEED,
        "k": config.k,
        "seed_path_s": round(seed_s, 3),
        "seed_path_exact_evaluations": baseline.stats.n_exact_evaluations,
        "backends": {},
    }
    # Note: the pruned glove loop batches exact evaluations in small
    # chunks, so the process backend's pool only engages on bulk matrix
    # builds, not inside this run — its row measures the configuration
    # overhead of the multi-core tier on the same workload, and is
    # expected to track the numpy row until a pool-friendly stage lands.
    compute_by_backend = {
        "numpy": ComputeConfig(backend="numpy"),
        "process": ComputeConfig(backend="process"),
    }
    for backend, compute in compute_by_backend.items():
        t0 = time.time()
        result = glove(dataset, config, compute)
        elapsed = time.time() - t0
        consistent = digest(result) == reference and all(
            a.members == b.members and np.array_equal(a.data, b.data)
            for a, b in zip(result.dataset, baseline.dataset)
        )
        record["backends"][backend] = {
            "wall_s": round(elapsed, 3),
            "parallel_targets_threshold": compute.parallel_targets_threshold,
            "speedup_vs_seed_path": round(seed_s / elapsed, 2) if elapsed > 0 else None,
            "exact_evaluations": result.stats.n_exact_evaluations,
            "pruned_evaluations": result.stats.n_pruned_evaluations,
            "identical_to_seed_path": consistent,
        }

    # The sharded tier on the same scenario: output is k-anonymous but
    # not byte-identical at shards > 1 (grouping is shard-local), so the
    # row records the anonymity audit instead of the identity check.
    t0 = time.time()
    sharded = glove(dataset, config, ComputeConfig(backend="sharded", shards=4))
    elapsed = time.time() - t0
    record["backends"]["sharded"] = {
        "wall_s": round(elapsed, 3),
        "shards_used": sharded.stats.shards_used,
        "boundary_repaired": sharded.stats.boundary_repaired,
        "speedup_vs_seed_path": round(seed_s / elapsed, 2) if elapsed > 0 else None,
        "exact_evaluations": sharded.stats.n_exact_evaluations,
        "pruned_evaluations": sharded.stats.n_pruned_evaluations,
        "k_anonymous": sharded.dataset.is_k_anonymous(config.k),
        "covers_all_users": sharded.dataset.n_users == dataset.n_users,
    }
    return record


def _run_shard_bench() -> dict:
    """Sharded GLOVE on a 10k+-fingerprint population, audited for
    k-anonymity with the reusable test-harness checker."""
    from repro.core.config import ComputeConfig, GloveConfig
    from repro.core.glove import glove

    harness = _load_module(
        "tests_properties_k_anonymity",
        _REPO_ROOT / "tests" / "properties" / "test_k_anonymity.py",
    )
    dataset = synthesize(
        "synth-civ", n_users=SHARD_BENCH_USERS, days=SHARD_BENCH_DAYS, seed=BENCH_SEED
    )
    config = GloveConfig(k=2)
    compute = ComputeConfig(backend="sharded")
    t0 = time.time()
    result = glove(dataset, config, compute)
    elapsed = time.time() - t0
    # Record the *computed* audit results: a raise here would leave the
    # previous (green) BENCH_glove.json on disk, hiding the regression.
    try:
        harness.assert_k_anonymous(result.dataset, config.k)
        k_anonymous = True
    except AssertionError:
        k_anonymous = False
    # Coverage is judged independently of the group-size audit so the
    # record attributes a regression to the right invariant.
    covered = {member for fp in result.dataset for member in fp.members}
    return {
        "n_fingerprints": len(dataset),
        "days": SHARD_BENCH_DAYS,
        "seed": BENCH_SEED,
        "k": config.k,
        "backend": "sharded",
        "shards_used": result.stats.shards_used,
        "shard_strategy": compute.shard_strategy,
        "boundary_repaired": result.stats.boundary_repaired,
        "wall_s": round(elapsed, 3),
        "n_merges": result.stats.n_merges,
        "n_output_groups": len(result.dataset),
        "k_anonymous": k_anonymous,
        "covers_all_users": covered == set(dataset.uids),
    }


#: Minimum tests in the session before the timed benchmark runs, so a
#: deselected one-test run doesn't pay the multi-run glove() price.
_GLOVE_BENCH_MIN_TESTS = 50


def pytest_sessionfinish(session, exitstatus):
    """Emit BENCH_glove.json after a green full session.

    Skipped on failures, on ``--collect-only``, on heavily deselected
    runs (fewer than ``_GLOVE_BENCH_MIN_TESTS`` tests), or when
    ``REPRO_BENCH_GLOVE=0``.
    """
    if os.environ.get("REPRO_BENCH_GLOVE", "1") == "0":
        return
    if exitstatus != 0:
        return
    if session.config.getoption("collectonly", False):
        return
    if session.testscollected < _GLOVE_BENCH_MIN_TESTS:
        return
    record = _run_glove_bench()
    if SHARD_BENCH_USERS > 0:
        record["large_n"] = _run_shard_bench()
    GLOVE_BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        numpy_speedup = record["backends"]["numpy"]["speedup_vs_seed_path"]
        line = (
            f"[BENCH_glove] n={record['n_fingerprints']} seed-path "
            f"{record['seed_path_s']}s, numpy backend x{numpy_speedup}"
        )
        if "large_n" in record:
            big = record["large_n"]
            audit = "k-anonymous" if big["k_anonymous"] else "K-ANONYMITY VIOLATED"
            line += (
                f"; sharded n={big['n_fingerprints']} in {big['wall_s']}s "
                f"({big['shards_used']} shards, {audit})"
            )
        reporter.write_line(line + f" -> {GLOVE_BENCH_PATH.name}")
