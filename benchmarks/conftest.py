"""Shared configuration of the benchmark suite.

Each benchmark regenerates one paper figure/table at a reproducible
scale and records the headline numbers in ``extra_info`` so that
``pytest benchmarks/ --benchmark-only`` output documents paper-vs-
measured (see EXPERIMENTS.md).

Scale is controlled by environment variables so the suite can be run
larger on beefier machines:

* ``REPRO_BENCH_USERS`` (default 120) — synthetic users per dataset;
* ``REPRO_BENCH_DAYS`` (default 4) — recording period;
* ``REPRO_BENCH_SEED`` (default 0).

At session end the suite also emits ``BENCH_glove.json`` at the repo
root: wall-clock of a seeded 500-fingerprint ``glove()`` run per
compute backend against the pre-engine dense-matrix baseline
(:mod:`benchmarks.seed_path`), a ``kernel`` microbenchmark of the
per-call ``one_vs_all`` dispatch cost (numpy vs compiled tier, small
and large target counts) plus the batched multi-probe entries at batch
sizes 1/8/64, a 10k+-fingerprint sharded-tier audit with dispatch
counters and a ``kernel_threads`` byte-identity sweep,
a ``suite_cached`` record timing a repeated experiment-suite run cold
vs warm through the artifact pipeline, a ``stream`` record with the
streaming tier's throughput and per-window latency on the stream-500
scenario, a ``baselines`` record comparing every registered
anonymizer (GLOVE, W4M-LC, NWA, generalization) at Table-2 settings,
and a ``metrics_overhead`` record guarding the always-on-cheap
contract of the D12 observability layer.
Scale/skip knobs:

* ``REPRO_BENCH_GLOVE`` — set to ``0`` to skip the emission;
* ``REPRO_BENCH_GLOVE_USERS`` (default 500), ``REPRO_BENCH_GLOVE_DAYS``
  (default 2) — scale of the timed run;
* ``REPRO_BENCH_SHARD_USERS`` (default 10500; ``0`` skips the large-n
  record), ``REPRO_BENCH_SHARD_DAYS`` (default 2);
* ``REPRO_BENCH_SUITE_USERS`` (default 60; ``0`` skips the
  suite_cached record);
* ``REPRO_BENCH_STREAM_USERS`` (default 500; ``0`` skips the stream
  throughput record), ``REPRO_BENCH_STREAM_DAYS`` (default 2);
* ``REPRO_BENCH_BASELINES_USERS`` (default 48; ``0`` skips the
  baselines comparison record), ``REPRO_BENCH_BASELINES_DAYS``
  (default 2);
* ``REPRO_BENCH_CONCURRENT_WORKERS`` (default 4; ``0`` skips the
  ``cache_concurrent`` record), ``REPRO_BENCH_CONCURRENT_USERS``
  (default 150) — the multi-process single-flight dedup record: M
  forked workers request the same cold dataset through a shared
  artifact store (disk and SQLite backends) and the record asserts
  exactly one compute with byte-identical results;
* ``REPRO_BENCH_METRICS`` (default 1; ``0`` skips the
  ``metrics_overhead`` record) — the always-on-cheap guard: the
  glove-500 run and the stream-500 replay timed with the metrics
  registry disabled vs installed (min-of-3 each), asserting the
  instrumented overhead stays under the 5% budget (DESIGN.md D12).

Every emission record is itself a content-addressed artifact
(:mod:`repro.core.artifacts`), keyed by its scenario parameters plus a
digest of the package sources: re-running the tier-1 suite with
unchanged code and scenarios serves the records from the store instead
of re-paying the multi-run ``glove()`` price, while any source edit
recomputes them.  ``REPRO_CACHE=0`` forces a full re-measure.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.artifacts import ArtifactStore, canonical_key, source_digest
from repro.core.config import env_int
from repro.core.pipeline import Pipeline
from repro.core.scenarios import get_scenario

BENCH_USERS = env_int("REPRO_BENCH_USERS", 120)
BENCH_DAYS = env_int("REPRO_BENCH_DAYS", 4)
BENCH_SEED = env_int("REPRO_BENCH_SEED", 0)

GLOVE_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_glove.json"
_REPO_ROOT = Path(__file__).resolve().parent.parent
_SEED_PATH_FILE = Path(__file__).resolve().parent / "seed_path.py"

#: The emission's workload scenarios, env-scaled from the registry.
BENCH_SCENARIO = get_scenario("bench").scaled(
    n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED
)
GLOVE_SCENARIO = get_scenario("glove-500").scaled(
    n_users=env_int("REPRO_BENCH_GLOVE_USERS", 500),
    days=env_int("REPRO_BENCH_GLOVE_DAYS", 2),
    seed=BENCH_SEED,
)
SHARD_BENCH_USERS = env_int("REPRO_BENCH_SHARD_USERS", 10500)
SHARD_SCENARIO = get_scenario("large-n").scaled(
    n_users=max(SHARD_BENCH_USERS, 1),
    days=env_int("REPRO_BENCH_SHARD_DAYS", 2),
    seed=BENCH_SEED,
)
SUITE_BENCH_USERS = env_int("REPRO_BENCH_SUITE_USERS", 60)
SUITE_SCENARIO = get_scenario("suite").scaled(n_users=max(SUITE_BENCH_USERS, 1))
STREAM_BENCH_USERS = env_int("REPRO_BENCH_STREAM_USERS", 500)
STREAM_SCENARIO = get_scenario("stream-500").scaled(
    n_users=max(STREAM_BENCH_USERS, 1),
    days=env_int("REPRO_BENCH_STREAM_DAYS", 2),
    seed=BENCH_SEED,
)
BASELINES_BENCH_USERS = env_int("REPRO_BENCH_BASELINES_USERS", 48)
BASELINES_SCENARIO = get_scenario("baselines-smoke").scaled(
    n_users=max(BASELINES_BENCH_USERS, 1),
    days=env_int("REPRO_BENCH_BASELINES_DAYS", 2),
    seed=BENCH_SEED,
)
METRICS_BENCH = env_int("REPRO_BENCH_METRICS", 1)
CONCURRENT_BENCH_WORKERS = env_int("REPRO_BENCH_CONCURRENT_WORKERS", 4)
CONCURRENT_SCENARIO = get_scenario("bench").scaled(
    n_users=max(env_int("REPRO_BENCH_CONCURRENT_USERS", 150), 1),
    days=2,
    seed=BENCH_SEED,
)

#: One store (and pipeline) for the whole benchmark session: dataset
#: synthesis and emission records persist across runs.
_STORE = ArtifactStore.from_env()
_PIPELINE = Pipeline(_STORE)


def _load_module(name: str, path: Path):
    """Import a module by file path (seed baseline, test-side checker)."""
    import importlib.util
    import sys

    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def bench_scale():
    """The (n_users, days, seed) triple used across the suite."""
    return BENCH_USERS, BENCH_DAYS, BENCH_SEED


@pytest.fixture(scope="session")
def civ_dataset():
    """Session-cached synth-civ dataset at benchmark scale."""
    return _PIPELINE.dataset(
        "synth-civ", n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def sen_dataset():
    """Session-cached synth-sen dataset at benchmark scale."""
    return _PIPELINE.dataset(
        "synth-sen", n_users=BENCH_USERS, days=BENCH_DAYS, seed=BENCH_SEED
    )


def _bench_record_key(name: str, scenario) -> str:
    """Artifact key of one emission record: scenario + sources.

    The source digest makes code edits (anywhere in ``repro``, the
    preserved seed path, or this harness itself — a new measured field
    must re-measure, not be served from a record that lacks it)
    invalidate the cached measurement, so BENCH numbers always
    describe the checked-out implementation (DESIGN.md D6).
    """
    return canonical_key(
        "bench",
        {
            "record": name,
            "scenario": scenario.key_params(),
            "sources": source_digest(
                "repro", str(_SEED_PATH_FILE), str(Path(__file__).resolve())
            ),
        },
    )


def _run_glove_bench() -> dict:
    """Time a seeded GLOVE run on the baseline and on every backend."""
    import numpy as np

    from repro.core.config import ComputeConfig, GloveConfig
    from repro.core.glove import glove

    seed_path = _load_module("benchmarks_seed_path", _SEED_PATH_FILE)
    seed_glove = seed_path.seed_glove

    dataset = GLOVE_SCENARIO.synthesize(_PIPELINE)
    config = GloveConfig(k=GLOVE_SCENARIO.k)

    def digest(result):
        return (
            result.stats.n_merges,
            len(result.dataset),
            sum(float(fp.data.sum()) for fp in result.dataset),
        )

    t0 = time.time()
    baseline = seed_glove(dataset, config)
    seed_s = time.time() - t0
    reference = digest(baseline)

    record = {
        "n_fingerprints": len(dataset),
        "days": GLOVE_SCENARIO.days,
        "seed": GLOVE_SCENARIO.seed,
        "k": config.k,
        "seed_path_s": round(seed_s, 3),
        "seed_path_exact_evaluations": baseline.stats.n_exact_evaluations,
        "backends": {},
    }
    # Note: the pruned glove loop batches exact evaluations in small
    # chunks, so the process backend's pool only engages on bulk matrix
    # builds, not inside this run — its row measures the configuration
    # overhead of the multi-core tier on the same workload, and is
    # expected to track the numpy row until a pool-friendly stage lands.
    compute_by_backend = {
        "numpy": ComputeConfig(backend="numpy"),
        "process": ComputeConfig(backend="process"),
    }
    # The compiled tier rides the same identity harness: acceptance is
    # bitwise equality with the seed path, same as the numpy reference.
    from repro.core import kernels

    record["kernel_tier"] = kernels.COMPILED_TIER
    if kernels.COMPILED_AVAILABLE:
        compute_by_backend["compiled"] = ComputeConfig(backend="compiled")
        # Thread-splitter rows: identical bytes are part of the record
        # (byte-identity at any kernel_threads, DESIGN.md D11).
        compute_by_backend["compiled-t2"] = ComputeConfig(
            backend="compiled", kernel_threads=2
        )
        compute_by_backend["compiled-t8"] = ComputeConfig(
            backend="compiled", kernel_threads=8
        )
    for backend, compute in compute_by_backend.items():
        t0 = time.time()
        result = glove(dataset, config, compute)
        elapsed = time.time() - t0
        consistent = digest(result) == reference and all(
            a.members == b.members and np.array_equal(a.data, b.data)
            for a, b in zip(result.dataset, baseline.dataset)
        )
        stats = result.stats
        record["backends"][backend] = {
            "wall_s": round(elapsed, 3),
            "parallel_targets_threshold": compute.parallel_targets_threshold,
            "speedup_vs_seed_path": round(seed_s / elapsed, 2) if elapsed > 0 else None,
            "exact_evaluations": stats.n_exact_evaluations,
            "pruned_evaluations": stats.n_pruned_evaluations,
            "bound_pruned": stats.n_bound_pruned,
            "boundary_crossings": stats.n_boundary_crossings,
            "probe_dispatches": stats.n_probe_dispatches,
            "batched_probes": stats.n_batched_probes,
            "probes_per_crossing": round(
                stats.n_probe_dispatches / max(stats.n_boundary_crossings, 1), 1
            ),
            "identical_to_seed_path": consistent,
        }
        if compute.kernel_threads is not None:
            record["backends"][backend]["kernel_threads"] = compute.kernel_threads

    # The sharded tier on the same scenario: output is k-anonymous but
    # not byte-identical at shards > 1 (grouping is shard-local), so the
    # row records the anonymity audit instead of the identity check.
    t0 = time.time()
    sharded = glove(dataset, config, ComputeConfig(backend="sharded", shards=4))
    elapsed = time.time() - t0
    record["backends"]["sharded"] = {
        "wall_s": round(elapsed, 3),
        "shards_used": sharded.stats.shards_used,
        "boundary_repaired": sharded.stats.boundary_repaired,
        "speedup_vs_seed_path": round(seed_s / elapsed, 2) if elapsed > 0 else None,
        "exact_evaluations": sharded.stats.n_exact_evaluations,
        "pruned_evaluations": sharded.stats.n_pruned_evaluations,
        "bound_pruned": sharded.stats.n_bound_pruned,
        "boundary_crossings": sharded.stats.n_boundary_crossings,
        "probe_dispatches": sharded.stats.n_probe_dispatches,
        "batched_probes": sharded.stats.n_batched_probes,
        "k_anonymous": sharded.dataset.is_k_anonymous(config.k),
        "covers_all_users": sharded.dataset.n_users == dataset.n_users,
    }
    return record


def _run_kernel_bench() -> dict:
    """Per-call dispatch cost of the stretch kernels, numpy vs compiled.

    Times ``one_vs_all`` at a small and a large target count on the
    glove-500 population — the dispatch-overhead claim behind Issue 6:
    the greedy loop issues thousands of tiny calls, where the NumPy
    broadcast kernel's per-call fixed cost dominates the arithmetic.
    Also cross-checks that every timed call is bitwise equal across the
    tiers, so the microbenchmark doubles as a parity probe.
    """
    import numpy as np

    from repro.core import kernels
    from repro.core.config import ComputeConfig, StretchConfig
    from repro.core.engine import CompiledBackend, NumpyBackend
    from repro.core.pairwise import PaddedFingerprints

    dataset = GLOVE_SCENARIO.synthesize(_PIPELINE)
    fps = list(dataset)
    packed = PaddedFingerprints(fps)
    compute, stretch = ComputeConfig(backend="numpy"), StretchConfig()
    probe = fps[0]

    backends = {"numpy": NumpyBackend(compute, stretch)}
    if kernels.COMPILED_AVAILABLE:
        backends["compiled"] = CompiledBackend(compute, stretch)

    n = len(fps)
    target_sets = {
        "small": np.arange(1, min(5, n), dtype=np.int64),
        "large": np.arange(1, n, dtype=np.int64),
    }
    calls_by_size = {"small": 400, "large": 20}
    record = {
        "n_fingerprints": n,
        "m_max": int(packed.data.shape[1]),
        "kernel_tier": kernels.COMPILED_TIER,
        "target_counts": {size: int(t.size) for size, t in target_sets.items()},
        "backends": {},
    }
    reference = {
        size: backends["numpy"].one_vs_all(probe.data, probe.count, packed, targets)
        for size, targets in target_sets.items()
    }
    for name, backend in backends.items():
        row = {}
        for size, targets in target_sets.items():
            calls = calls_by_size[size]
            out = backend.one_vs_all(probe.data, probe.count, packed, targets)  # warm-up
            t0 = time.perf_counter()
            for _ in range(calls):
                out = backend.one_vs_all(probe.data, probe.count, packed, targets)
            elapsed = time.perf_counter() - t0
            per_call = elapsed / calls
            row[size] = {
                "per_call_us": round(per_call * 1e6, 1),
                "per_pair_us": round(per_call / targets.size * 1e6, 2),
                "calls": calls,
                "identical_to_numpy": bool(np.array_equal(out, reference[size])),
            }
        record["backends"][name] = row
    if "compiled" in record["backends"]:
        record["dispatch_speedup_small"] = round(
            record["backends"]["numpy"]["small"]["per_call_us"]
            / record["backends"]["compiled"]["small"]["per_call_us"],
            2,
        )
        # The batched multi-probe entries: one native call moves the
        # whole probe batch, so the per-probe dispatch cost amortizes
        # with batch size while the per-probe one_vs_all loop pays the
        # full Python→native crossing every row.
        compiled = backends["compiled"]
        targets = target_sets["small"]
        batched = {}
        for batch_size in (1, 8, 64):
            probes = [fps[i % n].data for i in range(batch_size)]
            counts = [fps[i % n].count for i in range(batch_size)]
            calls = max(4, 256 // batch_size)
            out = compiled.many_vs_all(probes, counts, packed, targets)  # warm-up
            t0 = time.perf_counter()
            for _ in range(calls):
                out = compiled.many_vs_all(probes, counts, packed, targets)
            batched_elapsed = time.perf_counter() - t0
            t0 = time.perf_counter()
            for _ in range(calls):
                loop = np.stack(
                    [
                        compiled.one_vs_all(p, float(c), packed, targets)
                        for p, c in zip(probes, counts)
                    ]
                )
            loop_elapsed = time.perf_counter() - t0
            per_probe = batched_elapsed / calls / batch_size
            per_probe_loop = loop_elapsed / calls / batch_size
            batched[str(batch_size)] = {
                "per_probe_us": round(per_probe * 1e6, 2),
                "per_probe_loop_us": round(per_probe_loop * 1e6, 2),
                "batched_speedup": round(per_probe_loop / per_probe, 2)
                if per_probe > 0
                else None,
                "crossings_per_call": 1,
                "probes_per_crossing": batch_size,
                "identical_to_loop": bool(np.array_equal(out, loop)),
            }
        record["batched_dispatch"] = batched

        # The fused bounded row entry across the prune-rate spectrum
        # (Issue 10): per-probe dispatch cost when the in-kernel bound
        # never fires (~0%), fires on about half the pairs (~50%), and
        # at the natural rate of this population (~90%).  The 0%/50%
        # rows run against widened hull summaries (plus -inf thresholds
        # on half the probes for the 50% anchor) — a timing instrument
        # only — so parity is judged on the evaluated positions, which
        # always run the exact kernel faithfully.
        from repro.core.engine import StretchEngine

        with StretchEngine(
            fps, stretch=stretch, compute=ComputeConfig(backend="compiled")
        ) as engine:
            store = engine.store
            probe_slots = np.arange(8, dtype=np.int64)
            bd_targets = np.arange(8, store.size, dtype=np.int64)
            t_lists = [bd_targets] * probe_slots.size
            rev = [np.zeros(bd_targets.size, dtype=bool)] * probe_slots.size
            best_vals = np.full(store.capacity, np.inf)
            ref_rows = engine.rows(probe_slots, bd_targets)

            hull, bhull, bocc = engine._hull, engine._bucket_hull, engine._bucket_occ
            # ~0%: every slot summarized by the global envelope — all
            # hull gaps are zero, so the bound can never beat a best.
            wide_hull = np.empty_like(hull)
            wide_bhull = bhull.copy()
            for lo, hi in ((0, 1), (2, 3), (4, 5)):
                wide_hull[lo] = hull[lo].min()
                wide_hull[hi] = hull[hi].max()
                wide_bhull[..., lo] = hull[lo].min()
                wide_bhull[..., hi] = hull[hi].max()
            # ~50%: wide hulls again (no bound ever fires on its own)
            # but every other probe's threshold pinned to -inf, so its
            # whole row prunes — exactly half the pairs, without the
            # running-best feedback that drags a displaced-hull mix to
            # ~100%.
            open_tau = np.full(probe_slots.size, np.inf)
            half_tau = open_tau.copy()
            half_tau[1::2] = -np.inf
            settings = {
                "prune_0": ((wide_hull, wide_bhull, bocc), open_tau),
                "prune_50": ((wide_hull, wide_bhull, bocc), half_tau),
                "natural": ((hull, bhull, bocc), open_tau),
            }
            bounded = {}
            for key, (bounds, thresholds) in settings.items():
                rows, pruned = compiled.bounded_many_vs_some(
                    probe_slots, store, bounds, t_lists, thresholds, rev, best_vals
                )
                total = bd_targets.size * probe_slots.size
                parity = all(
                    bool(np.array_equal(row[row < np.inf], ref_rows[p][row < np.inf]))
                    for p, row in enumerate(rows)
                )
                calls = 30
                t0 = time.perf_counter()
                for _ in range(calls):
                    compiled.bounded_many_vs_some(
                        probe_slots, store, bounds, t_lists, thresholds, rev, best_vals
                    )
                elapsed = time.perf_counter() - t0
                bounded[key] = {
                    "per_probe_us": round(elapsed / calls / probe_slots.size * 1e6, 2),
                    "prune_rate": round(float(pruned.sum()) / total, 3),
                    "parity_at_evaluated": parity,
                }
            record["bounded_dispatch"] = bounded

        # Routing crossover (Issue 10 satellite): with a compiled
        # inline tier the auto backend must keep even threshold-sized
        # one-vs-all calls inline — the pool's per-pair cost (~26 µs)
        # never crosses back below the inline compiled kernel's
        # (~0.97 µs), so size alone must not send work to the pool.
        from repro.core.engine import AutoBackend, ProcessBackend

        big = np.arange(1, n, dtype=np.int64)
        auto = AutoBackend(
            ComputeConfig(backend="auto", workers=2, parallel_targets_threshold=8),
            stretch,
        )
        with auto:
            auto.one_vs_all(probe.data, probe.count, packed, big)
            stays_inline = auto._process is None
        pool = ProcessBackend(
            ComputeConfig(backend="process", workers=2, parallel_targets_threshold=8),
            stretch,
        )
        with pool:
            pool.one_vs_all(probe.data, probe.count, packed, big)  # warm-up
            calls = 5
            t0 = time.perf_counter()
            for _ in range(calls):
                pool.one_vs_all(probe.data, probe.count, packed, big)
            pool_per_pair_us = (time.perf_counter() - t0) / calls / big.size * 1e6
        inline_per_pair_us = record["backends"]["compiled"]["large"]["per_pair_us"]
        record["auto_routing"] = {
            "large_one_vs_all_stays_inline": stays_inline,
            "inline_compiled_per_pair_us": inline_per_pair_us,
            "process_pool_per_pair_us": round(pool_per_pair_us, 2),
            "inline_beats_pool": bool(inline_per_pair_us <= pool_per_pair_us),
        }
        assert stays_inline, (
            "auto backend pooled a one_vs_all despite the compiled inline tier"
        )
    return record


def _run_shard_bench() -> dict:
    """Sharded GLOVE on a 10k+-fingerprint population, audited for
    k-anonymity with the reusable test-harness checker.

    Also sweeps the compiled tier's ``kernel_threads`` splitter over the
    same workload: every thread count must produce byte-identical output
    (the record stores the digests' agreement, not just wall time).
    """
    from repro.core.artifacts import dataset_digest
    from repro.core.config import ComputeConfig, GloveConfig
    from repro.core.glove import glove

    harness = _load_module(
        "tests_properties_k_anonymity",
        _REPO_ROOT / "tests" / "properties" / "test_k_anonymity.py",
    )
    dataset = SHARD_SCENARIO.synthesize(_PIPELINE)
    config = GloveConfig(k=SHARD_SCENARIO.k)
    compute = ComputeConfig(backend="sharded")
    t0 = time.time()
    result = glove(dataset, config, compute)
    elapsed = time.time() - t0
    # Record the *computed* audit results: a raise here would leave the
    # previous (green) BENCH_glove.json on disk, hiding the regression.
    try:
        harness.assert_k_anonymous(result.dataset, config.k)
        k_anonymous = True
    except AssertionError:
        k_anonymous = False
    # Coverage is judged independently of the group-size audit so the
    # record attributes a regression to the right invariant.
    covered = {member for fp in result.dataset for member in fp.members}
    stats = result.stats
    record = {
        "n_fingerprints": len(dataset),
        "n_users": SHARD_SCENARIO.n_users,
        "days": SHARD_SCENARIO.days,
        "seed": SHARD_SCENARIO.seed,
        "k": config.k,
        "backend": "sharded",
        "shards_used": stats.shards_used,
        "shard_strategy": compute.shard_strategy,
        "boundary_repaired": stats.boundary_repaired,
        "wall_s": round(elapsed, 3),
        "n_merges": stats.n_merges,
        "n_output_groups": len(result.dataset),
        "exact_evaluations": stats.n_exact_evaluations,
        "bound_pruned": stats.n_bound_pruned,
        "boundary_crossings": stats.n_boundary_crossings,
        "probe_dispatches": stats.n_probe_dispatches,
        "batched_probes": stats.n_batched_probes,
        "probes_per_crossing": round(
            stats.n_probe_dispatches / max(stats.n_boundary_crossings, 1), 1
        ),
        "k_anonymous": k_anonymous,
        "covers_all_users": covered == set(dataset.uids),
    }
    from repro.core import kernels

    record["kernel_tier"] = kernels.COMPILED_TIER
    if kernels.COMPILED_AVAILABLE:
        digests = {1: dataset_digest(result.dataset)}
        sweep = {"1": {"wall_s": record["wall_s"]}}
        for nt in (2, 8):
            t0 = time.time()
            swept = glove(
                dataset, config, ComputeConfig(backend="sharded", kernel_threads=nt)
            )
            sweep[str(nt)] = {"wall_s": round(time.time() - t0, 3)}
            digests[nt] = dataset_digest(swept.dataset)
        record["kernel_threads_sweep"] = sweep
        record["identical_across_thread_counts"] = len(set(digests.values())) == 1
    return record


def _run_suite_bench() -> dict:
    """The repeated-suite scenario: cold vs warm through the pipeline.

    Runs the scenario's experiment suite twice against one fresh
    memo-only pipeline — the first pass computes every artifact, the
    second is served entirely from the store — and records the
    compute-once discipline: each (preset, n_users, days, seed) dataset
    synthesized exactly once, plus the cold/warm speedup.
    """
    import io

    from repro.experiments.runner import run_experiments

    pipeline = Pipeline(ArtifactStore(root=None))
    sc = SUITE_SCENARIO

    def one_pass() -> float:
        t0 = time.time()
        run_experiments(
            list(sc.experiments),
            n_users=sc.n_users,
            days=sc.days,
            seed=sc.seed,
            stream=io.StringIO(),
            pipeline=pipeline,
        )
        return time.time() - t0

    cold_s = one_pass()
    warm_s = one_pass()
    dataset_stats = pipeline.stats["dataset"]
    glove_stats = pipeline.stats["glove"]
    return {
        "experiments": list(sc.experiments),
        "preset": sc.preset,
        "n_users": sc.n_users,
        "days": sc.days,
        "seed": sc.seed,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup_warm_vs_cold": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "datasets_computed": dataset_stats.computed,
        "datasets_unique": len(dataset_stats.computed_labels),
        "synthesized_each_once": all(
            count == 1 for count in dataset_stats.computed_labels.values()
        ),
        "glove_runs_computed": glove_stats.computed,
        "glove_requests": glove_stats.requests,
    }


def _run_stream_bench() -> dict:
    """Throughput of the streaming tier on the stream-500 scenario.

    Replays the scenario's dataset as an event feed, anonymizes it
    window by window with carry-over, audits every emitted window with
    the reusable k-anonymity checker, and records the serving metrics:
    events per second and per-window latency quantiles.
    """
    from repro.core.config import GloveConfig
    from repro.stream.driver import stream_glove

    harness = _load_module(
        "tests_properties_k_anonymity",
        _REPO_ROOT / "tests" / "properties" / "test_k_anonymity.py",
    )
    dataset = STREAM_SCENARIO.synthesize(_PIPELINE)
    config = GloveConfig(k=STREAM_SCENARIO.k)
    stream_cfg = STREAM_SCENARIO.stream_config()
    result = stream_glove(dataset, config, stream_cfg)
    k_anonymous = True
    try:
        for window in result.emitted:
            harness.assert_k_anonymous(window.dataset, config.k)
    except AssertionError:
        k_anonymous = False
    published = {m for w in result.emitted for fp in w.dataset for m in fp.members}
    stats = result.stats
    return {
        "n_fingerprints": len(dataset),
        "days": STREAM_SCENARIO.days,
        "seed": STREAM_SCENARIO.seed,
        "k": config.k,
        "window_min": stream_cfg.window_min,
        "slide_min": stream_cfg.slide,
        "max_lag_min": stream_cfg.max_lag_min,
        "carry_over": stream_cfg.carry_over,
        "n_events": stats.n_events,
        "n_windows": stats.n_windows,
        "n_deferred_windows": stats.n_deferred_windows,
        "n_groups": stats.n_groups,
        "max_carried_members": stats.max_carried_members,
        "wall_s": round(stats.wall_s, 3),
        "events_per_sec": round(stats.events_per_sec, 1),
        "latency_p50_ms": round(stats.latency_p50_s * 1000.0, 1),
        "latency_p95_ms": round(stats.latency_p95_s * 1000.0, 1),
        "every_window_k_anonymous": k_anonymous,
        "covers_all_users": published == set(dataset.uids),
    }


def _run_baselines_bench() -> dict:
    """Table-2-style head-to-head of every registered anonymizer.

    Runs each method of the :mod:`repro.core.anonymizer` registry at
    its Table-2 settings on the baselines-smoke scenario, recording
    wall-clock, the normalized provenance schema, and a group-size
    audit over the method's anonymity groups.
    """
    from repro.core.anonymizer import anonymize_dataset, available_anonymizers
    from repro.experiments.table2 import method_config

    dataset = BASELINES_SCENARIO.synthesize(_PIPELINE)
    k = BASELINES_SCENARIO.k
    record = {
        "n_fingerprints": len(dataset),
        "days": BASELINES_SCENARIO.days,
        "seed": BASELINES_SCENARIO.seed,
        "k": k,
        "methods": {},
    }
    for method in available_anonymizers():
        t0 = time.time()
        result = anonymize_dataset(dataset, method, method_config(method, k))
        stats = result.stats  # normalization counts toward the method's cost
        elapsed = time.time() - t0
        record["methods"][method] = {
            "wall_s": round(elapsed, 3),
            "discarded_fingerprints": stats.discarded_fingerprints,
            "created_fraction": round(stats.created_fraction, 4),
            "deleted_fraction": round(stats.deleted_fraction, 4),
            "mean_position_error_m": round(stats.mean_position_error_m, 1),
            "mean_time_error_min": round(stats.mean_time_error_min, 1),
            "groups_all_k_anonymous": all(len(g) >= k for g in result.groups),
        }
    return record


def _cache_concurrent_worker(backend, store_dir, scenario, barrier, out_q):
    """One contender of the cache_concurrent record (forked process)."""
    from repro.core.artifacts import ArtifactStore, dataset_digest

    pipeline = Pipeline(ArtifactStore(root=store_dir, backend=backend))
    barrier.wait()  # maximize contention: everyone requests at once
    dataset = scenario.synthesize(pipeline)
    out_q.put((pipeline.stats["dataset"].computed, dataset_digest(dataset)))


def _run_cache_concurrent_bench() -> dict:
    """Single-flight dedup under real multi-process contention.

    M worker processes, each with its own store over one shared root,
    simultaneously request the same cold scenario dataset.  The seed
    store (per-process memo over an unlocked LRU) computed it M times;
    with single-flight locking exactly one worker computes and the
    rest are served the stored bytes — the property the acceptance
    criteria pin for both the disk and the SQLite backend.
    """
    import multiprocessing as mp
    import shutil
    import tempfile

    if "fork" not in mp.get_all_start_methods():
        return {"skipped": "no fork start method on this host"}
    ctx = mp.get_context("fork")
    workers = CONCURRENT_BENCH_WORKERS
    record = {
        "n_users": CONCURRENT_SCENARIO.n_users,
        "days": CONCURRENT_SCENARIO.days,
        "seed": CONCURRENT_SCENARIO.seed,
        "workers": workers,
        # What the pre-single-flight store did on this workload: every
        # worker missed and computed, so duplicate work scaled with M.
        "seed_duplicate_computes": workers,
        "backends": {},
    }
    for backend in ("disk", "sqlite"):
        store_dir = tempfile.mkdtemp(prefix=f"repro-conc-{backend}-")
        try:
            barrier = ctx.Barrier(workers)
            out_q = ctx.Queue()
            procs = [
                ctx.Process(
                    target=_cache_concurrent_worker,
                    args=(backend, store_dir, CONCURRENT_SCENARIO, barrier, out_q),
                )
                for _ in range(workers)
            ]
            t0 = time.time()
            for p in procs:
                p.start()
            outs = [out_q.get(timeout=600) for _ in procs]
            for p in procs:
                p.join(timeout=60)
            elapsed = time.time() - t0
            computes = sum(c for c, _ in outs)
            record["backends"][backend] = {
                "wall_s": round(elapsed, 3),
                "computes": computes,
                "exactly_one_compute": computes == 1,
                "byte_identical_results": len({d for _, d in outs}) == 1,
                # 1.0 means no duplicated work; the seed behavior is
                # `workers` (everyone recomputed the same artifact).
                "duplicate_work_factor": computes,
            }
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
    return record


def _run_metrics_overhead_bench() -> dict:
    """The always-on-cheap guard behind the D12 instrumentation.

    Times the glove-500 run and the stream-500 replay in two modes: the
    process registry at its disabled default (every instrument is the
    shared null object) and a live registry installed.  The modes are
    interleaved round-by-round so machine-load drift hits both equally,
    and min-of-N per mode tames scheduler noise; the record stores the
    overhead fraction against the 5% budget, plus the timing-free
    invariant that the instrumented runs' dispatch counters match the
    uninstrumented baselines exactly.
    """
    from repro.core.config import GloveConfig
    from repro.core.glove import glove
    from repro.obs import MetricsRegistry, set_metrics
    from repro.stream.driver import stream_glove

    glove_dataset = GLOVE_SCENARIO.synthesize(_PIPELINE)
    stream_dataset = STREAM_SCENARIO.synthesize(_PIPELINE)
    stream_cfg = STREAM_SCENARIO.stream_config()

    def counters(result):
        stats = result.stats
        return (
            stats.n_merges,
            stats.n_boundary_crossings,
            stats.n_probe_dispatches,
            stats.n_batched_probes,
        )

    def one_run(fn, registry):
        previous = set_metrics(registry)
        try:
            t0 = time.perf_counter()
            result = fn()
            return time.perf_counter() - t0, result
        finally:
            set_metrics(previous)

    repeats = 5
    budget = 0.05
    record = {"budget_fraction": budget, "runs_per_mode": repeats, "workloads": {}}
    workloads = {
        "glove": (
            len(glove_dataset),
            lambda: glove(glove_dataset, GloveConfig(k=GLOVE_SCENARIO.k)),
        ),
        "stream": (
            len(stream_dataset),
            lambda: stream_glove(
                stream_dataset, GloveConfig(k=STREAM_SCENARIO.k), stream_cfg
            ),
        ),
    }
    for name, (n, fn) in workloads.items():
        fn()  # warm-up: first call pays any lazy import/JIT cost
        registry = MetricsRegistry(enabled=True)
        base_s = inst_s = None
        baseline = instrumented = None
        for _ in range(repeats):
            elapsed, baseline = one_run(fn, registry=None)
            base_s = elapsed if base_s is None else min(base_s, elapsed)
            elapsed, instrumented = one_run(fn, registry=registry)
            inst_s = elapsed if inst_s is None else min(inst_s, elapsed)
        overhead = (inst_s - base_s) / base_s if base_s > 0 else 0.0
        record["workloads"][name] = {
            "n_fingerprints": n,
            "uninstrumented_s": round(base_s, 4),
            "instrumented_s": round(inst_s, 4),
            "overhead_fraction": round(overhead, 4),
            "overhead_ok": overhead < budget,
            "counters_match_baseline": counters(instrumented) == counters(baseline),
        }
    record["overhead_ok"] = all(
        row["overhead_ok"] for row in record["workloads"].values()
    )
    return record


#: Minimum tests in the session before the timed benchmark runs, so a
#: deselected one-test run doesn't pay the multi-run glove() price.
_GLOVE_BENCH_MIN_TESTS = 50


def pytest_sessionfinish(session, exitstatus):
    """Emit BENCH_glove.json after a green full session.

    Skipped on failures, on ``--collect-only``, on heavily deselected
    runs (fewer than ``_GLOVE_BENCH_MIN_TESTS`` tests), or when
    ``REPRO_BENCH_GLOVE=0``.  Each record is fetched through the
    artifact store: with unchanged sources and scenarios the emission
    costs one cache lookup instead of a multi-run ``glove()`` session.
    """
    if os.environ.get("REPRO_BENCH_GLOVE", "1") == "0":
        return
    if exitstatus != 0:
        return
    if session.config.getoption("collectonly", False):
        return
    if session.testscollected < _GLOVE_BENCH_MIN_TESTS:
        return
    record, glove_origin = _STORE.fetch(
        "bench", _bench_record_key("glove", GLOVE_SCENARIO), _run_glove_bench
    )
    origins = {glove_origin}
    from repro.core import kernels as _kernels

    # Keyed on the resolved kernel tier so installing/removing numba (or
    # losing the system compiler) forces a re-measure.
    record["kernel"], origin = _STORE.fetch(
        "bench",
        _bench_record_key(f"kernel[{_kernels.COMPILED_TIER}]", GLOVE_SCENARIO),
        _run_kernel_bench,
    )
    origins.add(origin)
    if SHARD_BENCH_USERS > 0:
        # Tier-keyed like the kernel row: the thread sweep and dispatch
        # counters describe the resolved compiled tier.
        record["large_n"], origin = _STORE.fetch(
            "bench",
            _bench_record_key(f"large_n[{_kernels.COMPILED_TIER}]", SHARD_SCENARIO),
            _run_shard_bench,
        )
        origins.add(origin)
    if SUITE_BENCH_USERS > 0:
        record["suite_cached"], origin = _STORE.fetch(
            "bench", _bench_record_key("suite_cached", SUITE_SCENARIO), _run_suite_bench
        )
        origins.add(origin)
    if STREAM_BENCH_USERS > 0:
        record["stream"], origin = _STORE.fetch(
            "bench", _bench_record_key("stream", STREAM_SCENARIO), _run_stream_bench
        )
        origins.add(origin)
    if BASELINES_BENCH_USERS > 0:
        record["baselines"], origin = _STORE.fetch(
            "bench",
            _bench_record_key("baselines", BASELINES_SCENARIO),
            _run_baselines_bench,
        )
        origins.add(origin)
    if CONCURRENT_BENCH_WORKERS > 0:
        record["cache_concurrent"], origin = _STORE.fetch(
            "bench",
            _bench_record_key(
                f"cache_concurrent[{CONCURRENT_BENCH_WORKERS}]", CONCURRENT_SCENARIO
            ),
            _run_cache_concurrent_bench,
        )
        origins.add(origin)
    if METRICS_BENCH > 0:
        # Keyed on both workload scenarios (and the kernel tier, via the
        # resolved "auto" backend) so either scale knob re-measures.
        record["metrics_overhead"], origin = _STORE.fetch(
            "bench",
            canonical_key(
                "bench",
                {
                    "record": f"metrics_overhead[{_kernels.COMPILED_TIER}]",
                    "scenario": GLOVE_SCENARIO.key_params(),
                    "stream_scenario": STREAM_SCENARIO.key_params(),
                    "sources": source_digest(
                        "repro", str(_SEED_PATH_FILE), str(Path(__file__).resolve())
                    ),
                },
            ),
            _run_metrics_overhead_bench,
        )
        origins.add(origin)
    GLOVE_BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        numpy_speedup = record["backends"]["numpy"]["speedup_vs_seed_path"]
        line = (
            f"[BENCH_glove] n={record['n_fingerprints']} seed-path "
            f"{record['seed_path_s']}s, numpy backend x{numpy_speedup}"
        )
        if record.get("kernel", {}).get("dispatch_speedup_small") is not None:
            kern = record["kernel"]
            line += (
                f"; kernel dispatch x{kern['dispatch_speedup_small']} "
                f"({kern['kernel_tier']} tier)"
            )
        if "large_n" in record:
            big = record["large_n"]
            audit = "k-anonymous" if big["k_anonymous"] else "K-ANONYMITY VIOLATED"
            line += (
                f"; sharded n={big['n_fingerprints']} in {big['wall_s']}s "
                f"({big['shards_used']} shards, {audit})"
            )
        if "suite_cached" in record:
            suite = record["suite_cached"]
            line += (
                f"; suite warm x{suite['speedup_warm_vs_cold']} "
                f"({suite['datasets_computed']} datasets synthesized)"
            )
        if "baselines" in record:
            base = record["baselines"]
            glove_ok = base["methods"].get("glove", {}).get("groups_all_k_anonymous")
            audit = "glove k-anonymous" if glove_ok else "GLOVE AUDIT FAILED"
            line += (
                f"; baselines n={base['n_fingerprints']} "
                f"x{len(base['methods'])} methods ({audit})"
            )
        if "cache_concurrent" in record and "backends" in record["cache_concurrent"]:
            conc = record["cache_concurrent"]
            deduped = all(
                row["exactly_one_compute"] for row in conc["backends"].values()
            )
            audit = "1 compute" if deduped else "DUPLICATE COMPUTES"
            line += (
                f"; cache_concurrent {conc['workers']} workers "
                f"x{len(conc['backends'])} backends ({audit})"
            )
        if "stream" in record:
            stream = record["stream"]
            audit = (
                "k-anonymous"
                if stream["every_window_k_anonymous"]
                else "K-ANONYMITY VIOLATED"
            )
            line += (
                f"; stream {stream['events_per_sec']:,.0f} ev/s over "
                f"{stream['n_windows']} windows (p95 "
                f"{stream['latency_p95_ms']}ms, {audit})"
            )
        if "metrics_overhead" in record:
            rows = record["metrics_overhead"]["workloads"]
            audit = (
                "<5% OK" if record["metrics_overhead"]["overhead_ok"] else "OVER BUDGET"
            )
            line += "; metrics overhead " + " ".join(
                f"{name} {row['overhead_fraction']:+.1%}"
                for name, row in sorted(rows.items())
            ) + f" ({audit})"
        if origins != {"computed"}:
            line += " [records served from artifact store]"
        reporter.write_line(line + f" -> {GLOVE_BENCH_PATH.name}")
