"""Micro-benchmarks of the computational substrate.

The paper's CUDA implementation evaluates Eq. 10 on 20-50k fingerprint
pairs per second (Section 6.3, GeForce GT 740).  These benchmarks
measure the NumPy kernels standing in for it, plus the other hot
operations of the GLOVE loop.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.core.config import GloveConfig, StretchConfig
from repro.core.glove import glove
from repro.core.merge import merge_fingerprints
from repro.core.pairwise import PaddedFingerprints, one_vs_all, pairwise_matrix
from repro.core.reshape import reshape_sample_array


def test_one_vs_all_kernel(benchmark, civ_dataset):
    """Pairs/second of the Eq. 10 kernel (paper: 20-50k pairs/s on GPU)."""
    fps = list(civ_dataset)
    packed = PaddedFingerprints(fps)
    probe = fps[0]

    result = benchmark(lambda: one_vs_all(probe.data, probe.count, packed))
    assert result.shape == (len(fps),)
    pairs_per_call = len(fps)
    benchmark.extra_info["pairs_per_call"] = pairs_per_call
    benchmark.extra_info["mean_fp_len"] = round(civ_dataset.mean_fingerprint_length, 1)
    benchmark.extra_info["paper"] = "CUDA PoC: 20-50k pairs/s on a GT 740"


def test_pairwise_matrix_build(benchmark, civ_dataset):
    """Full initial stretch matrix (the GLOVE initialization phase)."""
    fps = list(civ_dataset)[:60]
    mat = benchmark.pedantic(lambda: pairwise_matrix(fps), rounds=1, iterations=1)
    assert np.isfinite(mat[0, 1])
    benchmark.extra_info["n_fingerprints"] = len(fps)


def test_merge_operation(benchmark, civ_dataset):
    """One specialized-generalization merge (Eq. 12-13 + matching)."""
    fps = list(civ_dataset)
    a, b = fps[0], fps[1]
    merged = benchmark(lambda: merge_fingerprints(a, b))
    assert merged.count == 2


def test_reshape_operation(benchmark, rng=np.random.default_rng(0)):
    """Temporal-overlap resolution over a 200-sample fingerprint."""
    data = np.column_stack(
        [
            rng.uniform(0, 1e5, 200),
            np.full(200, 100.0),
            rng.uniform(0, 1e5, 200),
            np.full(200, 100.0),
            rng.uniform(0, 5_000, 200),
            rng.uniform(1, 240, 200),
        ]
    )
    out = benchmark(lambda: reshape_sample_array(data))
    assert out.shape[0] <= 200


def test_glove_end_to_end(benchmark, civ_dataset):
    """Complete GLOVE 2-anonymization at benchmark scale."""
    result = benchmark.pedantic(
        lambda: glove(civ_dataset, GloveConfig(k=2)), rounds=1, iterations=1
    )
    assert result.dataset.is_k_anonymous(2)
    benchmark.extra_info["n_users"] = len(civ_dataset)
    benchmark.extra_info["n_merges"] = result.stats.n_merges
    benchmark.extra_info["paper"] = "d4d datasets: ~60 GPU-hours each at 82k-320k users"
