"""Benchmark: Fig. 4 — uniform generalization fails to anonymize.

Paper shape asserted: the finest levels 2-anonymize nobody, and even
the 20 km / 8 h level leaves the majority of users non-anonymous
(paper: ~35% anonymized at best).
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig4


def test_fig4_generalization_sweep(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig4.run(n_users=n_users, days=days, seed=seed),
        rounds=1,
        iterations=1,
    )

    fractions = report.data["anonymized_fraction"]
    for (preset, label), frac in fractions.items():
        if label in ("0.1-1", "1-30"):
            assert frac <= 0.05, (preset, label)

    coarsest = report.data["coarsest_anonymized_fraction"]
    assert coarsest < 0.6  # the majority stays unique even at 20km-8h

    benchmark.extra_info["coarsest_anonymized_fraction"] = round(coarsest, 3)
    benchmark.extra_info["paper"] = "~35% 2-anonymized at 20km-480min; ~0% below"
