"""Benchmark: Fig. 8 — privacy/accuracy trade-off across k levels.

Paper shape asserted: accuracy degrades monotonically as k grows from
2 to 5 (share of samples at original granularity drops ~40% -> ~15% in
the paper), while k-anonymity always holds.
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig8


def test_fig8_k_sweep(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig8.run(n_users=n_users, days=days, seed=seed, ks=(2, 3, 5)),
        rounds=1,
        iterations=1,
    )

    per_k = report.data["per_k"]
    assert all(stats["k_anonymous"] for stats in per_k.values())
    assert (
        per_k[2]["frac_original_spatial"]
        >= per_k[3]["frac_original_spatial"]
        >= per_k[5]["frac_original_spatial"]
    )
    assert per_k[2]["frac_within_2h"] >= per_k[5]["frac_within_2h"]

    benchmark.extra_info["frac_original_spatial_by_k"] = {
        k: round(v["frac_original_spatial"], 3) for k, v in per_k.items()
    }
    benchmark.extra_info["paper"] = (
        "original spatial accuracy share: ~40% (k=2) -> ~25% (k=3) -> ~15% (k=5)"
    )
