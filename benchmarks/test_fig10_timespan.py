"""Benchmark: Fig. 10 — accuracy vs dataset timespan.

Paper shape asserted: shorter datasets anonymize more accurately (1-day
datasets are about twice as precise as 2-week ones in the paper), with
the degradation flattening as the timespan grows.
"""

from benchmarks.conftest import bench_scale
from repro.experiments import fig10


def test_fig10_timespan_sweep(benchmark):
    n_users, days, seed = bench_scale()
    days = max(days, 4)
    report = benchmark.pedantic(
        lambda: fig10.run(
            n_users=n_users, days=days, seed=seed, timespans=(1, 2, days)
        ),
        rounds=1,
        iterations=1,
    )

    for preset in ("synth-civ", "synth-sen"):
        series = report.data[preset]
        first, last = series[0], series[-1]
        # Shorter-or-equal median accuracy for the 1-day prefix, with a
        # noise allowance.
        assert first["median_spatial_m"] <= last["median_spatial_m"] * 1.25, preset
        assert first["median_temporal_min"] <= last["median_temporal_min"] * 1.25, preset
        benchmark.extra_info[preset] = [
            {
                "days": s["days"],
                "median_km": round(s["median_spatial_m"] / 1000, 2),
                "median_min": round(s["median_temporal_min"], 1),
            }
            for s in series
        ]
    benchmark.extra_info["paper"] = "1-day datasets ~2x more precise than 2-week ones"
