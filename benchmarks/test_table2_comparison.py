"""Benchmark: Table 2 — W4M-LC vs GLOVE comparative analysis.

Paper shape asserted, per dataset and k:

* GLOVE discards no fingerprint and creates no sample; W4M-LC trashes
  ~10% of fingerprints and fabricates a large sample fraction;
* GLOVE's mean time error is several times smaller than W4M-LC's;
* countrywide, GLOVE's mean position error is also several times
  smaller (citywide the 2 km cylinder caps W4M's spatial error, so the
  margin there is carried by the time dimension, as in the paper where
  GLOVE still wins both).
"""

from benchmarks.conftest import bench_scale
from repro.experiments import table2


def test_table2_glove_vs_w4m(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: table2.run(n_users=n_users, days=days, seed=seed, ks=(2, 5)),
        rounds=1,
        iterations=1,
    )

    for (k, preset), rows in report.data["results"].items():
        g, w = rows["glove"], rows["w4m"]
        # Truthfulness columns.
        assert g["created_samples"] == 0, (k, preset)
        assert g["discarded_fingerprints"] == 0, (k, preset)
        assert w["created_fraction"] > 0.10, (k, preset)
        assert w["discarded_fingerprints"] > 0, (k, preset)
        # Accuracy ordering.
        assert g["mean_time_error_min"] < w["mean_time_error_min"], (k, preset)
        if preset in ("synth-civ", "synth-sen"):
            assert g["mean_position_error_m"] < w["mean_position_error_m"], (k, preset)

    for (k, preset), rows in sorted(report.data["results"].items()):
        benchmark.extra_info[f"{preset}-k{k}"] = {
            "glove_pos_m": round(rows["glove"]["mean_position_error_m"]),
            "w4m_pos_m": round(rows["w4m"]["mean_position_error_m"]),
            "glove_time_min": round(rows["glove"]["mean_time_error_min"]),
            "w4m_time_min": round(rows["w4m"]["mean_time_error_min"]),
            "w4m_created_frac": round(rows["w4m"]["created_fraction"], 2),
            "glove_deleted_frac": round(rows["glove"]["deleted_fraction"], 2),
        }
    benchmark.extra_info["paper"] = (
        "k=2 civ: W4M 10.2km/1152min vs GLOVE 1.0km/60min; "
        "W4M creates 17-75% samples, trashes ~10% fingerprints"
    )
