"""Ablation benchmarks for GLOVE's design choices (DESIGN.md).

Three ablations:

* **reshaping** — resolving temporal overlaps costs spatial granularity
  but removes all overlaps (usability); measure both sides;
* **suppression thresholds** — the Table 2 settings versus none;
* **greedy pair order** — GLOVE's global-minimum pair selection versus
  a degenerate arbitrary-order merger, showing the greedy choice is
  what preserves accuracy.
"""

import numpy as np

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.dataset import FingerprintDataset
from repro.core.glove import glove
from repro.core.merge import merge_fingerprints
from repro.core.reshape import has_temporal_overlap, reshape_fingerprint


def test_ablation_reshape(benchmark, civ_dataset):
    """Reshape on vs off: overlap count and spatial extent cost."""
    with_reshape = glove(civ_dataset, GloveConfig(k=2, reshape=True))

    result = benchmark.pedantic(
        lambda: glove(civ_dataset, GloveConfig(k=2, reshape=False)),
        rounds=1,
        iterations=1,
    )

    overlapping = sum(1 for fp in result.dataset if has_temporal_overlap(fp.data))
    clean = sum(1 for fp in with_reshape.dataset if has_temporal_overlap(fp.data))
    assert clean == 0

    s_on, _ = extent_accuracy(with_reshape.dataset)
    s_off, _ = extent_accuracy(result.dataset)
    benchmark.extra_info["groups_with_overlaps_no_reshape"] = overlapping
    benchmark.extra_info["median_spatial_km"] = {
        "reshape_on": round(s_on.median / 1000, 2),
        "reshape_off": round(s_off.median / 1000, 2),
    }


def test_ablation_suppression(benchmark, civ_dataset):
    """Table 2 suppression thresholds vs none: accuracy gain per discard."""
    cfg = GloveConfig(
        k=2,
        suppression=SuppressionConfig(
            spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
        ),
    )
    result = benchmark.pedantic(lambda: glove(civ_dataset, cfg), rounds=1, iterations=1)
    baseline = glove(civ_dataset, GloveConfig(k=2))

    s_sup, t_sup = extent_accuracy(result.dataset)
    s_base, t_base = extent_accuracy(baseline.dataset)
    assert s_sup.mean <= s_base.mean
    assert t_sup.mean <= t_base.mean
    benchmark.extra_info["mean_spatial_km"] = {
        "suppressed": round(s_sup.mean / 1000, 2),
        "baseline": round(s_base.mean / 1000, 2),
    }
    benchmark.extra_info["discarded_fraction"] = round(
        result.stats.suppression.discarded_fraction, 3
    )


def _arbitrary_order_merger(dataset: FingerprintDataset, k: int) -> FingerprintDataset:
    """Degenerate baseline: merge fingerprints in insertion order."""
    out = FingerprintDataset(name="arbitrary")
    fps = list(dataset)
    i = 0
    gid = 0
    while i < len(fps):
        group = fps[i]
        j = i + 1
        while group.count < k and j < len(fps):
            group = merge_fingerprints(group, fps[j], uid=f"g{gid}")
            j += 1
        if group.count >= k:
            group = reshape_fingerprint(group)
            out.add(group)
            gid += 1
        i = j
    return out


def test_ablation_greedy_pairing(benchmark, civ_dataset):
    """GLOVE's minimum-stretch pairing vs arbitrary-order merging."""
    greedy = glove(civ_dataset, GloveConfig(k=2)).dataset

    arbitrary = benchmark.pedantic(
        lambda: _arbitrary_order_merger(civ_dataset, 2), rounds=1, iterations=1
    )

    s_greedy, t_greedy = extent_accuracy(greedy)
    s_arb, t_arb = extent_accuracy(arbitrary)
    # The greedy choice is the accuracy-preserving ingredient in the
    # *spatial* dimension (arbitrary pairing merges across cities and
    # blows the mean extent up by an order of magnitude).  Temporally
    # the two are close: circadian rhythms make any same-population
    # pairing cost similar time stretch, which is exactly the paper's
    # Section 5.3 point that time, not space, is the binding dimension.
    assert s_greedy.mean <= s_arb.mean * 0.5
    assert t_greedy.mean <= t_arb.mean * 2.0
    benchmark.extra_info["mean_spatial_km"] = {
        "glove_greedy": round(s_greedy.mean / 1000, 2),
        "arbitrary_order": round(s_arb.mean / 1000, 2),
    }
    benchmark.extra_info["mean_temporal_min"] = {
        "glove_greedy": round(t_greedy.mean, 1),
        "arbitrary_order": round(t_arb.mean, 1),
    }
