"""Benchmark: Fig. 3 — k-gap CDFs of the original datasets.

Paper shape asserted: nobody is 2-anonymous, the gap distribution's
bulk is small (anonymity close to reach), and the cost of k-anonymity
grows sub-linearly in k.
"""

import numpy as np

from benchmarks.conftest import bench_scale
from repro.experiments import fig3


def test_fig3_kgap_cdfs(benchmark):
    n_users, days, seed = bench_scale()
    report = benchmark.pedantic(
        lambda: fig3.run(n_users=n_users, days=days, seed=seed, ks=(2, 5, 10, 25, 50)),
        rounds=1,
        iterations=1,
    )

    # Fig. 3a: CDF starts at zero — no 2-anonymous user in either set.
    for preset, frac in report.data["fraction_2anonymous"].items():
        assert frac == 0.0, preset

    # Fig. 3b: sub-linear growth of the gap with k.
    growth = report.data["gap_growth_factor"]
    k_growth = report.data["k_growth_factor"]
    assert growth < k_growth / 2.0

    benchmark.extra_info["median_gap"] = {
        p: round(v, 4) for p, v in report.data["median_gap"].items()
    }
    benchmark.extra_info["gap_growth_k2_to_kmax"] = round(growth, 2)
    benchmark.extra_info["paper"] = (
        "Fig3a: CDF(0)=0, mass below ~0.2; Fig3b: sub-linear growth with k"
    )
