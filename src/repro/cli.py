"""The ``glove`` command-line tool: anonymize CDR files end to end.

Subcommands (all operating on the CSV formats of :mod:`repro.cdr.io`):

* ``generate`` — synthesize a preset (or scenario) dataset into an
  event CSV;
* ``measure``  — anonymizability statistics (k-gap) of an event CSV;
* ``anonymize`` — anonymize a dataset into a publishable fingerprint
  CSV with GLOVE or any registered baseline (``--method glove|w4m-lc|
  nwa|generalization`` plus per-method options, see DESIGN.md D8);
* ``stream``   — replay a dataset as a timestamped event feed and
  anonymize it window by window (``--window/--slide/--carry-over/
  --max-lag``, see DESIGN.md D7);
* ``attack``   — mount record-linkage attacks against a publication,
  or anonymize-then-attack any registered method (``--method``);
* ``info``     — summarize any dataset file.

Example session::

    glove generate synth-civ --users 150 --days 5 -o raw.csv
    glove measure raw.csv -k 2
    glove anonymize raw.csv -k 2 --suppress 15000 360 -o published.csv
    glove attack raw.csv published.csv -k 2

Large populations can be anonymized on the sharded tier
(``--backend sharded --shards 8``): shards are k-anonymized
concurrently and the shard boundaries repaired, see DESIGN.md D5.

``generate``, ``measure`` and ``anonymize`` request their expensive
stages (synthesis, k-gap matrices, GLOVE runs) through the
content-addressed artifact pipeline (:mod:`repro.core.pipeline`);
repeating a command on unchanged inputs is served from the persistent
store (``--no-cache`` recomputes, byte-identically).  The store's
backend is pluggable (``--artifact-backend disk|sqlite|redis``,
DESIGN.md D10): concurrent ``glove`` invocations requesting the same
cold artifact compute it exactly once under single-flight locking,
whatever the backend.  ``generate`` also accepts registered scenario
names (``glove generate smoke``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.analysis.accuracy import extent_accuracy
from repro.analysis.gyration import gyration_summary
from repro.attacks.record_linkage import (
    uniqueness_given_random_points,
    uniqueness_given_top_locations,
)
from repro.cdr.datasets import PRESETS
from repro.cdr.io import (
    read_events_csv,
    read_fingerprints_csv,
    write_events_csv,
    write_fingerprints_csv,
)
from repro.core.anonymizer import available_anonymizers, get_anonymizer
from repro.core.config import (
    GloveConfig,
    SuppressionConfig,
    add_compute_arguments,
    compute_config_from_args,
)
from repro.core.pipeline import add_pipeline_arguments, pipeline_from_args
from repro.core.scenarios import available_scenarios, get_scenario
from repro.obs import (
    MetricsRegistry,
    dump_json,
    export_otlp,
    get_metrics,
    render_table,
    set_metrics,
)
from repro.stream.windows import add_stream_arguments, stream_config_from_args


def _read_any(path: str):
    """Read an event CSV or a fingerprint CSV, whichever matches."""
    try:
        return read_events_csv(path)
    except ValueError:
        return read_fingerprints_csv(path)


def _record_store_metrics(pipeline) -> None:
    """Gauge the artifact store's size into the registry (D12).

    The operation counters (hits/misses/puts/evictions/flights) stream
    in live from the backend template methods; only the measured size
    needs an end-of-run reading.
    """
    metrics = get_metrics()
    if not metrics.enabled:
        return
    backend = pipeline.store.backend
    if backend is None:
        return
    stats = backend.stats()
    metrics.gauge(f"artifact_backend.{backend.name}.artifacts").set(stats.artifacts)
    metrics.gauge(f"artifact_backend.{backend.name}.total_bytes").set(stats.total_bytes)


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def cmd_generate(args) -> int:
    if args.preset in PRESETS:
        preset, users, days, seed = args.preset, args.users, args.days, args.seed
    else:
        scenario = get_scenario(args.preset)
        preset = scenario.preset
        users = args.users if args.users is not None else scenario.n_users
        days = args.days if args.days is not None else scenario.days
        seed = args.seed if args.seed is not None else scenario.seed
    users = users if users is not None else 150
    days = days if days is not None else 5
    seed = seed if seed is not None else 0
    pipeline = pipeline_from_args(args)
    dataset = pipeline.dataset(preset, n_users=users, days=days, seed=seed)
    rows = write_events_csv(dataset, args.output)
    _record_store_metrics(pipeline)
    print(f"wrote {rows} events for {len(dataset)} users to {args.output}")
    return 0


def cmd_measure(args) -> int:
    dataset = _read_any(args.dataset)
    if len(dataset) < args.k:
        print(f"error: dataset has {len(dataset)} users, k={args.k}", file=sys.stderr)
        return 2
    pipeline = pipeline_from_args(args)
    result = pipeline.kgap(dataset, k=args.k, compute=compute_config_from_args(args))
    _record_store_metrics(pipeline)
    print(f"dataset: {dataset}")
    print(f"{args.k}-gap: median={result.quantile(0.5):.4f} "
          f"p90={result.quantile(0.9):.4f} max={result.gaps.max():.4f}")
    print(f"already {args.k}-anonymous: {result.fraction_anonymous():.1%}")
    print(gyration_summary(dataset))
    return 0


def _glove_config_from_args(args) -> GloveConfig:
    """The GloveConfig of the shared -k/--suppress/--no-reshape flags."""
    suppression = SuppressionConfig()
    if getattr(args, "suppress", None):
        suppression = SuppressionConfig(
            spatial_threshold_m=args.suppress[0],
            temporal_threshold_min=args.suppress[1],
        )
    return GloveConfig(
        k=args.k, suppression=suppression, reshape=not getattr(args, "no_reshape", False)
    )


#: Which methods each per-method option flag applies to.
_METHOD_FLAGS = {
    "delta": ("w4m-lc", "nwa"),
    "trash": ("w4m-lc", "nwa"),
    "period": ("nwa",),
    "grid": ("generalization",),
    "suppress": ("glove",),
    "no_reshape": ("glove",),
}


def _method_config_from_args(args, method: str):
    """Build the chosen method's config from the per-method flags.

    Flags belonging to a different method, and invalid values (e.g. a
    non-positive ``--delta``), exit with status 2 and an ``error:``
    line — the ``--workers``/``--shards``/``--window`` convention.
    """
    for flag, methods in _METHOD_FLAGS.items():
        value = getattr(args, flag, None)
        if value is not None and value is not False and method not in methods:
            flag_txt = "--" + flag.replace("_", "-")
            print(
                f"error: {flag_txt} only applies to --method "
                f"{'/'.join(methods)}, not {method!r}",
                file=sys.stderr,
            )
            raise SystemExit(2)
    try:
        if method == "glove":
            return _glove_config_from_args(args)
        options = {}
        if getattr(args, "delta", None) is not None:
            options["delta_m"] = args.delta
        if getattr(args, "trash", None) is not None:
            options["trash_fraction"] = args.trash
        if getattr(args, "period", None) is not None:
            options["period_min"] = args.period
        if getattr(args, "grid", None) is not None:
            options["spatial_m"], options["temporal_min"] = args.grid
        return get_anonymizer(method).make_config(k=args.k, **options)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def cmd_anonymize(args) -> int:
    dataset = _read_any(args.dataset)
    method = args.method
    config = _method_config_from_args(args, method)
    pipeline = pipeline_from_args(args)
    result = pipeline.anonymize(
        dataset, config, compute=compute_config_from_args(args), method=method
    )
    anonymizer = get_anonymizer(method)
    if anonymizer.guarantees_k_anonymity and not result.dataset.is_k_anonymous(args.k):
        print("error: output failed the k-anonymity audit", file=sys.stderr)
        return 3
    rows = write_fingerprints_csv(result.dataset, args.output)
    _record_store_metrics(pipeline)
    if method == "glove":
        stats = result.raw.stats
        # Absolute writes so a run served from the artifact cache (no
        # live engine, no finalize_result increments) still reports
        # its dispatch counters; a live run is overwritten in place
        # with identical totals.
        metrics = get_metrics()
        metrics.counter("engine.boundary_crossings").set_to(stats.n_boundary_crossings)
        metrics.counter("engine.probe_dispatches").set_to(stats.n_probe_dispatches)
        metrics.counter("engine.batched_probes").set_to(stats.n_batched_probes)
        metrics.counter("engine.bound_pruned").set_to(stats.n_bound_pruned)
        metrics.counter("glove.merges").set_to(stats.n_merges)
        spatial, temporal = extent_accuracy(result.dataset)
        print(
            f"anonymized {result.dataset.n_users} users into "
            f"{len(result.dataset)} groups ({stats.n_merges} merges)"
        )
        print(
            f"accuracy: median extent {spatial.median / 1000:.2f} km / "
            f"{temporal.median:.0f} min; "
            f"suppressed {stats.suppression.discarded_fraction:.1%} of samples"
        )
        if stats.n_boundary_crossings:
            per_crossing = stats.n_probe_dispatches / stats.n_boundary_crossings
            print(
                f"dispatch: {stats.n_probe_dispatches} probe rows in "
                f"{stats.n_boundary_crossings} kernel calls "
                f"({per_crossing:.1f} probes/call, "
                f"{stats.n_batched_probes} via batched entries, "
                f"{stats.n_bound_pruned} pairs pruned in-kernel)"
            )
    else:
        s = result.stats
        print(
            f"anonymized {dataset.n_users} users with {anonymizer.display}: "
            f"{len(result.dataset)} fingerprints in {s.n_groups} groups, "
            f"{s.discarded_fingerprints} discarded"
        )
        print(
            f"samples: created {s.created_samples} ({s.created_fraction:.1%}), "
            f"deleted {s.deleted_samples} ({s.deleted_fraction:.1%}); "
            f"mean errors {s.mean_position_error_m / 1000:.2f} km / "
            f"{s.mean_time_error_min:.0f} min"
        )
    print(f"wrote {rows} sample rows to {args.output}")
    return 0


def cmd_stream(args) -> int:
    dataset = _read_any(args.dataset)
    stream_cfg = stream_config_from_args(args)
    config = _glove_config_from_args(args)
    pipeline = pipeline_from_args(args)
    try:
        result = pipeline.stream(
            dataset,
            config,
            stream_cfg,
            compute=compute_config_from_args(args),
            max_jitter_min=args.feed_jitter,
            seed=args.feed_seed,
        )
    except ValueError as exc:
        # An under-populated window with --no-carry-over, or a
        # population that cannot reach k at all.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for window in result.emitted:
        if not window.dataset.is_k_anonymous(args.k):
            print(
                f"error: window {window.index} failed the k-anonymity audit",
                file=sys.stderr,
            )
            return 3
    combined = result.combined_dataset(name=f"{dataset.name}-stream")
    rows = write_fingerprints_csv(combined, args.output)
    _record_store_metrics(pipeline)
    stats = result.stats
    # Harvest the run's aggregates whether it executed live or was
    # served from the artifact store; record_metrics writes absolute
    # values, so a live run's in-flight updates are simply re-asserted.
    stats.record_metrics(get_metrics())
    print(
        f"streamed {stats.n_events} events from {stats.n_users} users into "
        f"{stats.n_emitted_windows} windows ({stats.n_deferred_windows} deferred, "
        f"{stats.n_groups} groups, {stats.n_merges} merges)"
    )
    print(
        f"late events: {stats.n_late_redirected} redirected, "
        f"{stats.n_late_dropped} dropped"
    )
    if stats.n_unpublished_members:
        print(
            f"warning: {stats.n_unpublished_members} subscribers left below "
            f"k={args.k} by dropped events; their residue was suppressed",
            file=sys.stderr,
        )
    for window in result.windows:
        supp = window.stats.suppression
        supp_txt = (
            f"suppressed {supp.discarded_fraction:.1%}" if supp is not None else "deferred"
        )
        print(
            f"  window {window.index} [{window.start_min:.0f}, {window.end_min:.0f}) min: "
            f"{window.stats.n_events} events -> {window.stats.n_groups} groups, "
            f"{supp_txt}"
        )
    stream_stage = pipeline.stats.get("stream")
    cached = stream_stage is not None and stream_stage.hits > 0
    print(
        f"throughput: {stats.events_per_sec:,.0f} events/s; per-window latency "
        f"p50 {stats.latency_p50_s * 1000:.0f} ms, p95 {stats.latency_p95_s * 1000:.0f} ms"
        + (" [measured when computed; served from artifact store]" if cached else "")
    )
    print(f"wrote {rows} sample rows to {args.output}")
    return 0


def cmd_attack(args) -> int:
    original = _read_any(args.original)
    if args.published is not None and args.method is not None:
        print(
            "error: give either a published dataset file or --method, not both",
            file=sys.stderr,
        )
        return 2
    if args.published is not None:
        stray = [
            "--" + flag.replace("_", "-")
            for flag in ("delta", "trash", "period", "grid")
            if getattr(args, flag, None) is not None
        ]
        if stray:
            print(
                f"error: {'/'.join(stray)} only apply when anonymizing with "
                "--method, not to an already published file",
                file=sys.stderr,
            )
            return 2
        published = _read_any(args.published)
    else:
        # Anonymize-then-attack through the cached stage: point the
        # record-linkage attacks head-to-head at any registered method.
        method = args.method if args.method is not None else "glove"
        config = _method_config_from_args(args, method)
        pipeline = pipeline_from_args(args)
        result = pipeline.anonymize(original, config, method=method)
        published = result.dataset
        _record_store_metrics(pipeline)
        print(f"attacking {get_anonymizer(method).display} output (cached anonymize stage)")
    top = uniqueness_given_top_locations(original, published, n_locations=args.locations)
    rnd = uniqueness_given_random_points(
        original, published, n_points=args.points, seed=args.seed
    )
    print(f"top-{args.locations}-locations attack: "
          f"{top.fraction_identified_within(args.k):.1%} identified below k={args.k}")
    print(f"{args.points}-random-points attack:   "
          f"{rnd.fraction_identified_within(args.k):.1%} identified below k={args.k}")
    safe = (
        top.fraction_identified_within(args.k) == 0.0
        and rnd.fraction_identified_within(args.k) == 0.0
    )
    print("verdict:", "SAFE (no user below k)" if safe else "UNSAFE")
    return 0 if safe else 4


def cmd_info(args) -> int:
    dataset = _read_any(args.dataset)
    print(f"dataset: {dataset}")
    t_min, t_max = dataset.time_extent()
    print(f"time extent: {t_min:.0f}..{t_max:.0f} min "
          f"({(t_max - t_min) / (24 * 60):.1f} days)")
    lengths = np.array([fp.m for fp in dataset])
    print(f"fingerprint length: median {np.median(lengths):.0f}, "
          f"mean {lengths.mean():.1f}, max {lengths.max()}")
    print(f"minimum anonymity-set size: {dataset.min_anonymity()}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_metrics_arguments(parser) -> None:
    """Attach the shared --metrics reporting flags (every subcommand)."""
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print a metrics table (registry snapshot) after the run",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write the metrics snapshot (repro.metrics.v1 JSON) to PATH",
    )
    parser.add_argument(
        "--metrics-otlp",
        metavar="ENDPOINT",
        default=None,
        help="push the snapshot to an OTLP/HTTP collector "
        "(requires the [otel] extra)",
    )


def _add_method_arguments(parser, default: Optional[str]) -> None:
    """Attach the shared --method + per-method option flags."""
    parser.add_argument(
        "--method",
        choices=available_anonymizers(),
        default=default,
        help="anonymization technique (default: glove); baselines are "
        "cached through the same anonymize stage",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=None,
        metavar="METRES",
        help="(w4m-lc, nwa) spatiotemporal cylinder diameter",
    )
    parser.add_argument(
        "--trash",
        type=float,
        default=None,
        metavar="FRACTION",
        help="(w4m-lc, nwa) max fraction of trajectories trashed",
    )
    parser.add_argument(
        "--period",
        type=float,
        default=None,
        metavar="MINUTES",
        help="(nwa) synchronized-timeline sampling period",
    )
    parser.add_argument(
        "--grid",
        nargs=2,
        type=float,
        default=None,
        metavar=("METRES", "MINUTES"),
        help="(generalization) uniform space/time bin sizes",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``glove`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="glove", description="k-anonymize mobile traffic fingerprints (GLOVE)."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a preset or scenario dataset")
    g.add_argument(
        "preset",
        choices=sorted(PRESETS) + available_scenarios(),
        help="dataset preset, or a registered scenario name (whose "
        "scale fills in --users/--days/--seed)",
    )
    g.add_argument("--users", type=int, default=None, help="default: 150")
    g.add_argument("--days", type=int, default=None, help="default: 5")
    g.add_argument("--seed", type=int, default=None, help="default: 0")
    g.add_argument("-o", "--output", required=True)
    add_pipeline_arguments(g)
    _add_metrics_arguments(g)
    g.set_defaults(func=cmd_generate)

    m = sub.add_parser("measure", help="anonymizability statistics")
    m.add_argument("dataset")
    m.add_argument("-k", type=int, default=2)
    add_compute_arguments(m)
    add_pipeline_arguments(m)
    _add_metrics_arguments(m)
    m.set_defaults(func=cmd_measure)

    a = sub.add_parser(
        "anonymize", help="anonymize with GLOVE or any registered baseline"
    )
    a.add_argument("dataset")
    a.add_argument("-k", type=int, default=2)
    a.add_argument(
        "--suppress",
        nargs=2,
        type=float,
        metavar=("METRES", "MINUTES"),
        help="(glove) suppression thresholds (e.g. 15000 360)",
    )
    a.add_argument("--no-reshape", action="store_true")
    _add_method_arguments(a, default="glove")
    a.add_argument("-o", "--output", required=True)
    add_compute_arguments(a, pruning=True)
    add_pipeline_arguments(a)
    _add_metrics_arguments(a)
    a.set_defaults(func=cmd_anonymize)

    st = sub.add_parser(
        "stream",
        help="windowed incremental GLOVE over a replayed event feed",
    )
    st.add_argument("dataset")
    st.add_argument("-k", type=int, default=2)
    st.add_argument(
        "--suppress",
        nargs=2,
        type=float,
        metavar=("METRES", "MINUTES"),
        help="per-window suppression thresholds (e.g. 15000 360)",
    )
    st.add_argument("--no-reshape", action="store_true")
    st.add_argument("-o", "--output", required=True)
    add_stream_arguments(st)
    add_compute_arguments(st, pruning=True)
    add_pipeline_arguments(st)
    _add_metrics_arguments(st)
    st.set_defaults(func=cmd_stream)

    t = sub.add_parser("attack", help="record-linkage attack validation")
    t.add_argument("original")
    t.add_argument(
        "published",
        nargs="?",
        default=None,
        help="published dataset to attack; omit to anonymize the "
        "original with --method first (cached) and attack that",
    )
    t.add_argument("-k", type=int, default=2)
    t.add_argument("--locations", type=int, default=3)
    t.add_argument("--points", type=int, default=5)
    t.add_argument("--seed", type=int, default=0)
    _add_method_arguments(t, default=None)
    add_pipeline_arguments(t)
    _add_metrics_arguments(t)
    t.set_defaults(func=cmd_attack)

    i = sub.add_parser("info", help="summarize a dataset file")
    i.add_argument("dataset")
    _add_metrics_arguments(i)
    i.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    The ``--metrics*`` flags (any subcommand) install a live process
    registry around the command and report its snapshot afterwards;
    without them the registry stays the disabled no-op and the
    instrumented paths cost nothing.
    """
    args = build_parser().parse_args(argv)
    wants_metrics = bool(
        getattr(args, "metrics", False)
        or getattr(args, "metrics_json", None)
        or getattr(args, "metrics_otlp", None)
    )
    if not wants_metrics:
        return args.func(args)
    registry = MetricsRegistry(enabled=True)
    # Pre-register the aggregate cache counters so the snapshot's key
    # set is stable whether or not the run happened to hit/miss.
    registry.counter("artifact.hits")
    registry.counter("artifact.misses")
    previous = set_metrics(registry)
    try:
        code = args.func(args)
    finally:
        set_metrics(previous)
    snapshot = registry.snapshot()
    if args.metrics:
        print(render_table(snapshot))
    if args.metrics_json:
        out = dump_json(snapshot, args.metrics_json)
        print(f"wrote metrics snapshot to {out}")
    if args.metrics_otlp:
        try:
            export_otlp(snapshot, args.metrics_otlp)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return code


if __name__ == "__main__":
    sys.exit(main())
