"""Fig. 8 — the privacy/accuracy trade-off for k = 2, 3, 5.

Paper findings reproduced here: accuracy degrades monotonically with
k — e.g. the share of samples at original spatial accuracy drops from
~40% (k=2) to ~25% (k=3) to ~15% (k=5) — and beyond k=5 the dataset
becomes hardly exploitable.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.fig7 import SPATIAL_GRID_M, TEMPORAL_GRID_MIN
from repro.experiments.report import ExperimentReport, fmt


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    preset: str = "synth-civ",
    ks: Sequence[int] = (2, 3, 5),
) -> ExperimentReport:
    """Reproduce the Fig. 8 k sweep on one preset (the paper uses civ)."""
    report = ExperimentReport(
        exp_id="fig8",
        title=f"GLOVE accuracy vs anonymity level on {preset}",
        paper_claim=(
            "accuracy CDFs degrade monotonically with k: fewer samples "
            "retain original granularity as the crowd size grows"
        ),
    )
    dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
    per_k: Dict[int, Dict[str, float]] = {}
    rows = []
    for k in sorted(ks):
        result = cached_glove(dataset, GloveConfig(k=k))
        spatial, temporal = extent_accuracy(result.dataset)
        grid_s, val_s = spatial.series(SPATIAL_GRID_M)
        grid_t, val_t = temporal.series(TEMPORAL_GRID_MIN)
        report.add_cdf(f"k={k}: position accuracy [m]", grid_s, val_s, "m")
        report.add_cdf(f"k={k}: time accuracy [min]", grid_t, val_t, "min")
        per_k[k] = {
            "k_anonymous": result.dataset.is_k_anonymous(k),
            "frac_original_spatial": float(spatial(200.0)),
            "frac_within_2km": float(spatial(2_000.0)),
            "frac_within_2h": float(temporal(120.0)),
        }
        rows.append(
            [
                k,
                per_k[k]["k_anonymous"],
                fmt(per_k[k]["frac_original_spatial"]),
                fmt(per_k[k]["frac_within_2km"]),
                fmt(per_k[k]["frac_within_2h"]),
            ]
        )
    report.add_table(
        ["k", "k-anonymous", "frac <=200 m", "frac <=2 km", "frac <=2 h"],
        rows,
        title="privacy/accuracy trade-off",
    )
    report.data["per_k"] = per_k
    return report
