"""Textual rendering of experiment results.

The harness does not plot; it prints the same rows and series the
paper's figures encode, so results can be diffed against the paper and
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cdf_series(
    label: str, grid: Sequence[float], values: Sequence[float], x_name: str = "x"
) -> str:
    """One CDF rendered as a two-row series."""
    xs = "  ".join(f"{x:>8g}" for x in grid)
    ys = "  ".join(f"{v:>8.3f}" for v in values)
    return f"{label}\n  {x_name:>6}: {xs}\n  {'CDF':>6}: {ys}"


def fmt(value, digits: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}g}"
    return str(value)


@dataclass
class ExperimentReport:
    """Result of one paper-figure/table reproduction.

    Attributes
    ----------
    exp_id:
        Paper artifact identifier, e.g. ``"fig3a"`` or ``"table2"``.
    title:
        Human-readable description.
    paper_claim:
        The qualitative claim of the paper this experiment checks.
    sections:
        Rendered text blocks (tables, CDF series).
    data:
        Structured results for programmatic assertions in tests and
        benchmarks.
    """

    exp_id: str
    title: str
    paper_claim: str
    sections: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def add_table(self, headers, rows, title: str = "") -> None:
        """Append a fixed-width table section."""
        self.sections.append(format_table(headers, rows, title))

    def add_cdf(self, label: str, grid, values, x_name: str = "x") -> None:
        """Append a CDF series section."""
        self.sections.append(format_cdf_series(label, grid, values, x_name))

    def add_text(self, text: str) -> None:
        """Append a free-text section."""
        self.sections.append(text)

    def render(self) -> str:
        """Full textual report."""
        header = f"== {self.exp_id}: {self.title} =="
        claim = f"paper claim: {self.paper_claim}"
        return "\n\n".join([header, claim] + self.sections) + "\n"
