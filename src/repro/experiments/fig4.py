"""Fig. 4 — uniform spatiotemporal generalization does not anonymize.

The paper's second premise: coarsening every sample identically, even
down to 20 km / 8 h bins, leaves the majority of users non-2-anonymous
(only ~35% reach 2-anonymity at the coarsest level).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.anonymizability import generalization_sweep
from repro.baselines.generalization import PAPER_LEVELS, GeneralizationLevel
from repro.core.pipeline import cached_dataset
from repro.experiments.report import ExperimentReport, fmt

#: Gap values at which the CDFs are reported.
GAP_GRID = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen"),
    levels: Sequence[GeneralizationLevel] = PAPER_LEVELS,
) -> ExperimentReport:
    """Reproduce the Fig. 4 generalization sweep on both presets."""
    report = ExperimentReport(
        exp_id="fig4",
        title="CDF of 2-gap under uniform spatiotemporal generalization",
        paper_claim=(
            "increased generalization shifts the CDF left only mildly; "
            "even 20 km / 8 h bins 2-anonymize only a minority (~35%) "
            "of users"
        ),
    )
    anonymized_fraction = {}
    for preset in presets:
        dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
        sweep = generalization_sweep(dataset, levels, k=2)
        rows = []
        for level in levels:
            cdf = sweep[level]
            frac0 = float(cdf(0.0))
            anonymized_fraction[(preset, level.label)] = frac0
            rows.append(
                [level.label, fmt(frac0), fmt(cdf.median), fmt(cdf.quantile(0.9))]
            )
        report.add_table(
            ["level (km-min)", "frac 2-anon", "median gap", "p90 gap"],
            rows,
            title=f"Fig.4 {preset} (n={len(dataset)})",
        )
    report.data["anonymized_fraction"] = anonymized_fraction
    coarsest = levels[-1].label
    worst = max(
        anonymized_fraction[(p, coarsest)] for p in presets
    )
    report.add_text(
        f"at the coarsest level ({coarsest}) at most {worst:.0%} of users "
        "reach 2-anonymity -> uniform generalization fails"
    )
    report.data["coarsest_anonymized_fraction"] = worst
    return report
