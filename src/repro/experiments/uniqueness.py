"""Uniqueness premise — the paper's Section 1 motivation, quantified.

The paper motivates GLOVE with two published measurements: 50% of 25M
subscribers are unique given their top-3 locations (Zang & Bolot [5]),
and four random spatiotemporal points identify ~95% of 1.5M users
(de Montjoye et al. [6]).  This experiment reproduces the *shape* of
both curves on the synthetic substrate — uniqueness grows steeply with
adversary knowledge and is near-total for a handful of spatiotemporal
points — and shows GLOVE output flattening them to zero.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.record_linkage import (
    uniqueness_given_random_points,
    uniqueness_given_top_locations,
)
from repro.core.anonymizer import get_anonymizer
from repro.core.pipeline import cached_anonymize, cached_dataset
from repro.experiments.report import ExperimentReport, fmt


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    preset: str = "synth-civ",
    point_counts: Sequence[int] = (1, 2, 4, 6),
    location_counts: Sequence[int] = (1, 2, 3, 5),
    k: int = 2,
    method: str = "glove",
    method_options=None,
) -> ExperimentReport:
    """Uniqueness vs adversary knowledge, before and after anonymization.

    ``method`` (with optional ``method_options`` config-factory
    overrides) selects any registered anonymizer; the published dataset
    comes through the cached ``anonymize`` stage, so the same attack
    runs head-to-head against GLOVE and every baseline.
    """
    display = get_anonymizer(method).display
    report = ExperimentReport(
        exp_id="uniqueness",
        title=f"Trajectory uniqueness vs adversary knowledge ({preset})",
        paper_claim=(
            "Section 1: a handful of spatiotemporal points uniquely "
            "identifies almost everyone ([6]: ~95% at 4 points); top "
            "locations identify about half ([5]); GLOVE removes the "
            "vulnerability"
        ),
    )
    original = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
    config = get_anonymizer(method).make_config(k=k, **dict(method_options or {}))
    published = cached_anonymize(original, method=method, config=config).dataset

    rows = []
    series_points = {}
    for n in point_counts:
        raw = uniqueness_given_random_points(original, n_points=n, seed=seed)
        anon = uniqueness_given_random_points(original, published, n_points=n, seed=seed)
        series_points[n] = {
            "raw_unique": raw.uniqueness,
            "anon_identified": anon.fraction_identified_within(k),
        }
        rows.append(
            [n, f"{raw.uniqueness:.0%}", f"{anon.fraction_identified_within(k):.0%}"]
        )
    report.add_table(
        ["random points known", "unique (raw)", f"below k={k} ({display})"],
        rows,
        title="de Montjoye-style attack [6]",
    )
    report.data["random_points"] = series_points

    rows = []
    series_locs = {}
    for n in location_counts:
        raw = uniqueness_given_top_locations(original, n_locations=n)
        anon = uniqueness_given_top_locations(original, published, n_locations=n)
        series_locs[n] = {
            "raw_unique": raw.uniqueness,
            "anon_identified": anon.fraction_identified_within(k),
        }
        rows.append(
            [n, f"{raw.uniqueness:.0%}", f"{anon.fraction_identified_within(k):.0%}"]
        )
    report.add_table(
        ["top locations known", "unique (raw)", f"below k={k} ({display})"],
        rows,
        title="Zang & Bolot-style attack [5]",
    )
    report.data["top_locations"] = series_locs

    report.data["method"] = method
    report.data["max_raw_uniqueness"] = max(
        entry["raw_unique"] for entry in series_points.values()
    )
    report.data["never_identified"] = all(
        entry["anon_identified"] == 0.0
        for entry in list(series_points.values()) + list(series_locs.values())
    )
    # Back-compat alias from when the experiment was GLOVE-only.
    report.data["glove_never_identified"] = report.data["never_identified"]
    return report
