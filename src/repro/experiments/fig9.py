"""Fig. 9 — combining GLOVE with suppression.

Paper findings reproduced here: discarding a small percentage of
over-stretched samples buys a large accuracy gain — e.g. the mean
spatial accuracy improves severalfold when fewer than ~10% of samples
are suppressed, and the gain is steepest for the first few suppressed
percent.

GLOVE is run once without suppression; each threshold pair is then
applied as a post-filter (suppression is a pure filter over the
published samples, so this is equivalent to re-running GLOVE with the
corresponding :class:`~repro.core.config.SuppressionConfig`).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.suppression import suppress_dataset
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.report import ExperimentReport, fmt

#: Spatial threshold sweep (paper left plot): metres, at a fixed 6 h
#: temporal threshold.
SPATIAL_SWEEP_M = (4_000.0, 8_000.0, 10_000.0, 15_000.0, 20_000.0, 40_000.0, 80_000.0)

#: Temporal threshold sweep (paper right plot): minutes.
TEMPORAL_SWEEP_MIN = (90.0, 120.0, 180.0, 240.0, 360.0, 480.0)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    preset: str = "synth-civ",
    k: int = 2,
    spatial_sweep: Sequence[float] = SPATIAL_SWEEP_M,
    temporal_sweep: Sequence[float] = TEMPORAL_SWEEP_MIN,
) -> ExperimentReport:
    """Reproduce the Fig. 9 suppression trade-off curves."""
    report = ExperimentReport(
        exp_id="fig9",
        title=f"Suppression trade-off after GLOVE {k}-anonymization ({preset})",
        paper_claim=(
            "suppressing a few percent of over-stretched samples "
            "improves mean accuracy severalfold; gains are steepest at "
            "small suppression fractions"
        ),
    )
    dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
    published = cached_glove(dataset, GloveConfig(k=k)).dataset

    spatial0, temporal0 = extent_accuracy(published)
    report.data["baseline"] = {
        "mean_spatial_m": spatial0.mean,
        "median_spatial_m": spatial0.median,
        "mean_temporal_min": temporal0.mean,
        "median_temporal_min": temporal0.median,
    }

    rows = []
    spatial_curve = []
    for thr in spatial_sweep:
        cfg = SuppressionConfig(spatial_threshold_m=thr, temporal_threshold_min=360.0)
        kept, stats = suppress_dataset(published, cfg)
        s, _ = extent_accuracy(kept)
        spatial_curve.append(
            {
                "threshold_m": thr,
                "discarded_fraction": stats.discarded_fraction,
                "mean_m": s.mean,
                "median_m": s.median,
            }
        )
        rows.append(
            [
                f"6h-{thr / 1000:g}Km",
                fmt(stats.discarded_fraction * 100) + "%",
                fmt(s.mean / 1000) + " km",
                fmt(s.median / 1000) + " km",
            ]
        )
    report.add_table(
        ["threshold", "discarded", "mean pos acc", "median pos acc"],
        rows,
        title="spatial suppression sweep (temporal threshold fixed at 6 h)",
    )
    report.data["spatial_sweep"] = spatial_curve

    rows = []
    temporal_curve = []
    for thr in temporal_sweep:
        cfg = SuppressionConfig(temporal_threshold_min=thr)
        kept, stats = suppress_dataset(published, cfg)
        _, t = extent_accuracy(kept)
        temporal_curve.append(
            {
                "threshold_min": thr,
                "discarded_fraction": stats.discarded_fraction,
                "mean_min": t.mean,
                "median_min": t.median,
            }
        )
        rows.append(
            [
                f"{thr:g}m",
                fmt(stats.discarded_fraction * 100) + "%",
                fmt(t.mean) + " min",
                fmt(t.median) + " min",
            ]
        )
    report.add_table(
        ["threshold", "discarded", "mean time acc", "median time acc"],
        rows,
        title="temporal suppression sweep",
    )
    report.data["temporal_sweep"] = temporal_curve
    return report
