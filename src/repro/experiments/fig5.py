"""Fig. 5 — why generalization fails: long-tailed temporal diversity.

Paper findings reproduced here:

* Fig. 5a: across fingerprints, the TWI of the spatial stretch
  component distribution is mostly below 1.5 (light tail), while the
  temporal component is typically at or above it (heavy tail); the
  total stretch distribution is shaped by the temporal part.
* Fig. 5b: the temporal component dominates the anonymization cost —
  for the vast majority of fingerprints the temporal stretch exceeds
  the spatial one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.anonymizability import tail_weight_analysis, temporal_ratio_cdf
from repro.core.kgap import StretchComponentCache
from repro.core.pipeline import cached_dataset, cached_kgap
from repro.experiments.report import ExperimentReport, fmt

#: TWI thresholds reported (1.5 separates exponential-like from lighter).
TWI_GRID = (0.3, 0.5, 1.0, 1.5, 3.0, 10.0)

#: Ratio grid of Fig. 5b.
RATIO_GRID = (0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen"),
) -> ExperimentReport:
    """Reproduce Fig. 5a (first preset) and Fig. 5b (all presets)."""
    report = ExperimentReport(
        exp_id="fig5",
        title="Tail weight and space/time split of the anonymization cost",
        paper_claim=(
            "spatial stretch distributions are light-tailed, temporal "
            "ones heavy-tailed; the temporal stretch exceeds the "
            "spatial one for ~95% of fingerprints"
        ),
    )

    # Fig. 5a on the first preset (the paper shows d4d-civ).
    dataset = cached_dataset(presets[0], n_users=n_users, days=days, seed=seed)
    result = cached_kgap(dataset, k=2)
    # One component cache serves both Fig. 5 analyses: they re-walk the
    # same neighbour sets, so the second pass is all memo hits.
    cache = StretchComponentCache(list(dataset))
    twi = tail_weight_analysis(dataset, k=2, result=result, cache=cache)
    rows = []
    for name in ("delta", "spatial", "temporal"):
        values = twi[name]
        rows.append(
            [
                name,
                fmt(float(np.median(values))),
                fmt(float((values >= 1.5).mean())),
                fmt(float(values.mean())),
            ]
        )
    report.add_table(
        ["component", "median TWI", "frac TWI>=1.5", "mean TWI"],
        rows,
        title=f"Fig.5a {presets[0]}: TWI of sample-stretch distributions",
    )
    report.data["twi_median"] = {k: float(np.median(v)) for k, v in twi.items()}
    report.data["twi_heavy_fraction"] = {
        k: float((v >= 1.5).mean()) for k, v in twi.items()
    }

    # Fig. 5b on every preset.
    dominance = {}
    ratio_cdf = temporal_ratio_cdf(dataset, k=2, result=result, cache=cache)
    for preset in presets:
        if preset != presets[0]:
            ds = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
            ratio_cdf = temporal_ratio_cdf(ds, k=2)
        grid, values = ratio_cdf.series(RATIO_GRID)
        report.add_cdf(f"Fig.5b {preset}: temporal share of cost", grid, values, "share")
        dominance[preset] = 1.0 - float(ratio_cdf(0.5))
    report.data["temporal_dominant_fraction"] = dominance
    report.add_text(
        "fraction of fingerprints whose temporal stretch exceeds the "
        "spatial one: "
        + ", ".join(f"{p}={v:.0%}" for p, v in dominance.items())
    )
    return report
