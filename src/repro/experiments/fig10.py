"""Fig. 10 — impact of dataset timespan on anonymized accuracy.

Paper findings reproduced here: shorter datasets anonymize more
accurately (fewer samples per fingerprint are easier to match), and
the loss of accuracy flattens as the timespan grows — weekly
periodicity means a multi-week dataset is not much harder than a
one-week one.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.report import ExperimentReport, fmt

#: Timespans in days (the paper uses 1, 2, 5, 7, 14).
TIMESPANS_DAYS = (1, 2, 5, 7)


def run(
    n_users: int = 150,
    days: int = 7,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen"),
    timespans: Sequence[int] = TIMESPANS_DAYS,
    k: int = 2,
) -> ExperimentReport:
    """Reproduce the Fig. 10 timespan sweep.

    One dataset is generated per preset at the longest timespan; the
    shorter variants are its prefixes, exactly as the paper extracts
    "datasets of different duration ... from the original" ones.
    """
    report = ExperimentReport(
        exp_id="fig10",
        title="GLOVE accuracy vs dataset timespan",
        paper_claim=(
            "shorter datasets anonymize more accurately; the accuracy "
            "loss flattens with growing timespan"
        ),
    )
    timespans = sorted(set(min(t, days) for t in timespans))
    for preset in presets:
        full = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
        rows = []
        series = []
        for span in timespans:
            subset = full.restrict_timespan(span)
            result = cached_glove(subset, GloveConfig(k=k))
            spatial, temporal = extent_accuracy(result.dataset)
            series.append(
                {
                    "days": span,
                    "median_spatial_m": spatial.median,
                    "mean_spatial_m": spatial.mean,
                    "median_temporal_min": temporal.median,
                    "mean_temporal_min": temporal.mean,
                }
            )
            rows.append(
                [
                    span,
                    fmt(spatial.median / 1000) + " km",
                    fmt(spatial.mean / 1000) + " km",
                    fmt(temporal.median) + " min",
                    fmt(temporal.mean) + " min",
                ]
            )
        report.add_table(
            ["days", "median pos", "mean pos", "median time", "mean time"],
            rows,
            title=f"{preset} (n={len(full)})",
        )
        report.data[preset] = series
    return report
