"""Command-line entry point that regenerates the paper's figures/tables.

Usage (installed as ``glove-repro``)::

    glove-repro                       # run everything at default scale
    glove-repro -e fig3 table2        # a subset
    glove-repro -n 250 -d 7 -s 3      # bigger datasets, other seed

Every experiment prints an :class:`~repro.experiments.report.ExperimentReport`
with the rows/series of the corresponding paper artifact.  Runtime
grows quadratically with ``--n-users`` (GLOVE is O(n^2 m^2)); the
defaults finish on a laptop in minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.core.config import (
    ComputeConfig,
    add_compute_arguments,
    compute_config_from_args,
)
from repro.core.engine import set_default_compute
from repro.experiments import (
    ablation_weights,
    fig3,
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    stability,
    table2,
    uniqueness,
    utility_eval,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table2": table2.run,
    "utility": utility_eval.run,
    "stability": stability.run,
    "uniqueness": uniqueness.run,
    "ablation-weights": ablation_weights.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="glove-repro",
        description="Reproduce the GLOVE paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "-e",
        "--experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS),
        default=sorted(EXPERIMENTS),
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "-n", "--n-users", type=int, default=150, help="synthetic users per dataset"
    )
    parser.add_argument(
        "-d", "--days", type=int, default=5, help="recording period in days"
    )
    parser.add_argument("-s", "--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="directory to save .txt/.json report artifacts",
    )
    add_compute_arguments(parser, pruning=True)
    return parser


def run_experiments(
    names: List[str],
    n_users: int,
    days: int,
    seed: int,
    stream=sys.stdout,
    output: str = None,
    compute: Optional[ComputeConfig] = None,
) -> Dict[str, object]:
    """Run the named experiments, printing each report; returns them.

    With ``output`` set, every report is also saved as ``.txt`` and
    ``.json`` artifacts in that directory.  ``compute`` selects the
    stretch-compute backend for every GLOVE run and k-gap matrix build
    of the session (installed as the process-wide default for the
    duration, then restored).
    """
    reports = {}
    previous = set_default_compute(compute) if compute is not None else None
    try:
        for name in names:
            t0 = time.time()
            report = EXPERIMENTS[name](n_users=n_users, days=days, seed=seed)
            elapsed = time.time() - t0
            reports[name] = report
            print(report.render(), file=stream)
            print(f"[{name} completed in {elapsed:.1f} s]\n", file=stream)
            if output is not None:
                from repro.experiments.artifacts import save_report

                paths = save_report(report, output)
                print(f"[artifacts: {paths['txt']}, {paths['json']}]\n", file=stream)
    finally:
        if previous is not None:
            set_default_compute(previous)
    return reports


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    run_experiments(
        args.experiments,
        args.n_users,
        args.days,
        args.seed,
        output=args.output,
        compute=compute_config_from_args(args),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
