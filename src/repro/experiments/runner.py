"""Command-line entry point that regenerates the paper's figures/tables.

Usage (installed as ``glove-repro``)::

    glove-repro                       # run everything at default scale
    glove-repro -e fig3 table2        # a subset
    glove-repro -n 250 -d 7 -s 3      # bigger datasets, other seed
    glove-repro --scenario suite      # a registered workload scenario
    glove-repro --list                # registered experiments/scenarios

Every experiment prints an :class:`~repro.experiments.report.ExperimentReport`
with the rows/series of the corresponding paper artifact.  Runtime
grows quadratically with ``--n-users`` (GLOVE is O(n^2 m^2)); the
defaults finish on a laptop in minutes.

Expensive stages (dataset synthesis, GLOVE runs, pairwise matrices) are
requested through the content-addressed artifact pipeline
(:mod:`repro.core.pipeline`), so a suite run computes each anonymized
population exactly once and repeated runs reuse the on-disk store —
``--no-cache`` computes everything fresh, byte-identically.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.core.config import (
    ComputeConfig,
    add_compute_arguments,
    compute_config_from_args,
)
from repro.core.engine import set_default_compute
from repro.core.pipeline import (
    Pipeline,
    add_pipeline_arguments,
    pipeline_from_args,
    set_default_pipeline,
)
from repro.core.scenarios import available_scenarios, get_scenario
from repro.experiments import (
    ablation_weights,
    attack_matrix,
    fig3,
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    stability,
    stream_eval,
    table2,
    uniqueness,
    utility_eval,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table2": table2.run,
    "utility": utility_eval.run,
    "stability": stability.run,
    "stream": stream_eval.run,
    "uniqueness": uniqueness.run,
    "ablation-weights": ablation_weights.run,
    "attacks": attack_matrix.run,
}

#: Fallback scale when neither flags nor a scenario specify one.
DEFAULT_N_USERS = 150
DEFAULT_DAYS = 5
DEFAULT_SEED = 0


def _experiment_name(name: str) -> str:
    """argparse type: a registered experiment name (exit 2 otherwise)."""
    if name not in EXPERIMENTS:
        raise argparse.ArgumentTypeError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return name


def _scenario_name(name: str) -> str:
    """argparse type: a registered scenario name (exit 2 otherwise)."""
    if name not in available_scenarios():
        raise argparse.ArgumentTypeError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    return name


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="glove-repro",
        description="Reproduce the GLOVE paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "-e",
        "--experiments",
        nargs="+",
        type=_experiment_name,
        default=None,
        metavar="NAME",
        help="experiments to run (default: all; see --list)",
    )
    parser.add_argument(
        "--scenario",
        type=_scenario_name,
        default=None,
        metavar="NAME",
        help="run at a registered workload scenario's scale (see --list); "
        "explicit -n/-d/-s flags override the scenario's fields",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the registered experiments and scenarios, then exit",
    )
    parser.add_argument(
        "-n",
        "--n-users",
        type=int,
        default=None,
        help=f"synthetic users per dataset (default: {DEFAULT_N_USERS})",
    )
    parser.add_argument(
        "-d",
        "--days",
        type=int,
        default=None,
        help=f"recording period in days (default: {DEFAULT_DAYS})",
    )
    parser.add_argument(
        "-s", "--seed", type=int, default=None, help="random seed (default: 0)"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="directory to save .txt/.json report artifacts",
    )
    add_compute_arguments(parser, pruning=True)
    add_pipeline_arguments(parser)
    return parser


def print_registry(stream=None) -> None:
    """List the registered experiments and scenarios (``--list``)."""
    stream = stream if stream is not None else sys.stdout
    print("experiments:", file=stream)
    for name in sorted(EXPERIMENTS):
        print(f"  {name}", file=stream)
    print("scenarios:", file=stream)
    for name in available_scenarios():
        sc = get_scenario(name)
        suite = f" -e {' '.join(sc.experiments)}" if sc.experiments else ""
        method = f" method={sc.method}" if sc.method != "glove" else ""
        print(
            f"  {name:<12} {sc.preset} n={sc.n_users} d={sc.days} "
            f"seed={sc.seed}{method}{suite}  {sc.description}",
            file=stream,
        )


def run_experiments(
    names: List[str],
    n_users: int,
    days: int,
    seed: int,
    stream=sys.stdout,
    output: str = None,
    compute: Optional[ComputeConfig] = None,
    pipeline: Optional[Pipeline] = None,
    method: str = "glove",
    method_options=None,
) -> Dict[str, object]:
    """Run the named experiments, printing each report; returns them.

    With ``output`` set, every report is also saved as ``.txt`` and
    ``.json`` artifacts in that directory.  ``compute`` selects the
    stretch-compute backend for every GLOVE run and k-gap matrix build
    of the session; ``pipeline`` selects the artifact store the
    experiments request datasets/anonymizations through.  Both are
    installed as the process-wide defaults for the duration, then
    restored.  ``method`` and ``method_options`` (the scenario method
    axis) are forwarded to every experiment whose signature accepts
    them, pointing the evaluation at any registered anonymizer.
    """
    import inspect

    reports = {}
    previous = set_default_compute(compute) if compute is not None else None
    previous_pipeline = set_default_pipeline(pipeline) if pipeline is not None else None
    try:
        for name in names:
            t0 = time.time()
            fn = EXPERIMENTS[name]
            kwargs = {}
            params = inspect.signature(fn).parameters
            if "method" in params and (method != "glove" or method_options):
                kwargs["method"] = method
                if method_options and "method_options" in params:
                    kwargs["method_options"] = dict(method_options)
            report = fn(n_users=n_users, days=days, seed=seed, **kwargs)
            elapsed = time.time() - t0
            reports[name] = report
            print(report.render(), file=stream)
            print(f"[{name} completed in {elapsed:.1f} s]\n", file=stream)
            if output is not None:
                from repro.experiments.artifacts import save_report

                paths = save_report(report, output)
                print(f"[artifacts: {paths['txt']}, {paths['json']}]\n", file=stream)
    finally:
        if previous is not None:
            set_default_compute(previous)
        if pipeline is not None:
            set_default_pipeline(previous_pipeline)
    return reports


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.list:
        print_registry()
        return 0
    scenario = get_scenario(args.scenario) if args.scenario else None

    def resolve(flag_value, scenario_value, fallback):
        if flag_value is not None:
            return flag_value
        return scenario_value if scenario is not None else fallback

    names = args.experiments
    if names is None:
        if scenario is not None and scenario.experiments:
            names = list(scenario.experiments)
        else:
            names = sorted(EXPERIMENTS)
    run_experiments(
        names,
        resolve(args.n_users, scenario.n_users if scenario else None, DEFAULT_N_USERS),
        resolve(args.days, scenario.days if scenario else None, DEFAULT_DAYS),
        resolve(args.seed, scenario.seed if scenario else None, DEFAULT_SEED),
        output=args.output,
        compute=compute_config_from_args(args),
        pipeline=pipeline_from_args(args),
        method=scenario.method if scenario is not None else "glove",
        method_options=scenario.method_options if scenario is not None else None,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
