"""Fig. 11 — impact of dataset size (user count) on anonymized accuracy.

Paper findings reproduced here: thinning the crowd makes users harder
to hide, but the effect only becomes remarkable at low retained
fractions — anonymizability is impaired only when the population drops
below a critical mass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.report import ExperimentReport, fmt

#: Retained user fractions (the paper sweeps 5% to 100%).
FRACTIONS = (0.05, 0.25, 0.5, 0.75, 1.0)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen"),
    fractions: Sequence[float] = FRACTIONS,
    k: int = 2,
) -> ExperimentReport:
    """Reproduce the Fig. 11 size sweep on both presets."""
    report = ExperimentReport(
        exp_id="fig11",
        title="GLOVE accuracy vs dataset size",
        paper_claim=(
            "smaller user populations anonymize less accurately, but "
            "the degradation is steep only at small retained fractions"
        ),
    )
    for preset in presets:
        full = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
        rng = np.random.default_rng(seed)
        rows = []
        series = []
        for fraction in sorted(set(fractions)):
            subset = (
                full
                if fraction >= 1.0
                else full.sample_users(fraction, rng)
            )
            if len(subset) < 2 * k:
                continue
            result = cached_glove(subset, GloveConfig(k=k))
            spatial, temporal = extent_accuracy(result.dataset)
            series.append(
                {
                    "fraction": fraction,
                    "n_users": len(subset),
                    "median_spatial_m": spatial.median,
                    "mean_spatial_m": spatial.mean,
                    "median_temporal_min": temporal.median,
                    "mean_temporal_min": temporal.mean,
                }
            )
            rows.append(
                [
                    f"{fraction:.0%}",
                    len(subset),
                    fmt(spatial.median / 1000) + " km",
                    fmt(spatial.mean / 1000) + " km",
                    fmt(temporal.median) + " min",
                    fmt(temporal.mean) + " min",
                ]
            )
        report.add_table(
            ["fraction", "users", "median pos", "mean pos", "median time", "mean time"],
            rows,
            title=f"{preset}",
        )
        report.data[preset] = series
    return report
