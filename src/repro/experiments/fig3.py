"""Fig. 3 — CDF of the k-gap in the original datasets.

Paper findings reproduced here:

* Fig. 3a: for k=2, no user has a zero gap (nobody is 2-anonymous) in
  either dataset, yet the probability mass sits below ~0.2: anonymity
  is "close to reach".
* Fig. 3b: raising k from 2 to 100 shifts the CDF right, but the cost
  grows *sub-linearly* with k.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.anonymizability import kgap_cdf, kgap_curves
from repro.core.pipeline import cached_dataset
from repro.experiments.report import ExperimentReport, fmt

#: Gap values at which the CDFs are reported.
GAP_GRID = (0.0, 0.05, 0.09, 0.1, 0.17, 0.2, 0.3, 0.4)

#: Anonymity levels of the Fig. 3b sweep.
K_SWEEP = (2, 5, 10, 25, 50, 100)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen"),
    ks: Sequence[int] = K_SWEEP,
) -> ExperimentReport:
    """Reproduce Fig. 3a (both presets) and Fig. 3b (k sweep, sen)."""
    report = ExperimentReport(
        exp_id="fig3",
        title="CDF of k-gap in original datasets",
        paper_claim=(
            "no user is 2-anonymous (CDF is 0 at the origin), but most "
            "mass lies below 0.2; the cost of k-anonymity grows "
            "sub-linearly with k"
        ),
    )

    medians_by_preset = {}
    frac_zero = {}
    for preset in presets:
        dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
        cdf, result = kgap_cdf(dataset, k=2)
        grid, values = cdf.series(GAP_GRID)
        report.add_cdf(f"Fig.3a {preset} (k=2, n={len(dataset)})", grid, values, "gap")
        medians_by_preset[preset] = cdf.median
        frac_zero[preset] = result.fraction_anonymous()

    report.data["median_gap"] = medians_by_preset
    report.data["fraction_2anonymous"] = frac_zero

    # Fig. 3b: k sweep on the second preset (the paper uses d4d-sen).
    sweep_preset = presets[-1]
    dataset = cached_dataset(sweep_preset, n_users=n_users, days=days, seed=seed)
    ks = tuple(k for k in ks if k < len(dataset))
    curves = kgap_curves(dataset, ks)
    rows = []
    medians = {}
    for k in ks:
        medians[k] = curves[k].median
        rows.append([k, fmt(curves[k].median), fmt(curves[k].quantile(0.9))])
    report.add_table(
        ["k", "median gap", "p90 gap"],
        rows,
        title=f"Fig.3b {sweep_preset}: k-gap growth with k",
    )
    report.data["median_gap_by_k"] = medians

    ks_arr = np.array(sorted(medians))
    med_arr = np.array([medians[k] for k in ks_arr])
    # Sub-linearity check: median gap growth from k=2 to k=max is far
    # below the k ratio itself.
    growth = med_arr[-1] / med_arr[0] if med_arr[0] > 0 else np.inf
    report.data["gap_growth_factor"] = float(growth)
    report.data["k_growth_factor"] = float(ks_arr[-1] / ks_arr[0])
    report.add_text(
        f"gap growth k={ks_arr[0]}->k={ks_arr[-1]}: x{growth:.2f} "
        f"(k itself grows x{ks_arr[-1] / ks_arr[0]:.0f}) -> sub-linear"
    )
    return report
