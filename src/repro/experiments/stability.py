"""Seed-stability analysis of the headline reproduction claims.

Not a paper artifact: at the reproduction's reduced scale, single-run
numbers carry sampling noise, so this experiment re-draws the synthetic
dataset under several seeds and reports each headline statistic with a
bootstrap confidence interval — the robustness evidence quoted in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.accuracy import extent_accuracy
from repro.analysis.anonymizability import kgap_cdf, temporal_ratio_cdf
from repro.analysis.bootstrap import bootstrap_ci
from repro.core.config import GloveConfig
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.report import ExperimentReport, fmt


def run(
    n_users: int = 100,
    days: int = 3,
    seed: int = 0,
    preset: str = "synth-civ",
    n_seeds: int = 5,
) -> ExperimentReport:
    """Re-run the headline measurements across ``n_seeds`` dataset draws."""
    report = ExperimentReport(
        exp_id="stability",
        title=f"Seed stability of headline claims ({preset}, {n_seeds} draws)",
        paper_claim=(
            "reproduction-quality check: the qualitative findings must "
            "hold for every random draw of the synthetic substrate"
        ),
    )
    medians, dominances, anon_fracs, frac_2km = [], [], [], []
    for draw in range(n_seeds):
        dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed + draw)
        cdf, result = kgap_cdf(dataset, k=2)
        medians.append(cdf.median)
        anon_fracs.append(result.fraction_anonymous())
        dominances.append(1.0 - float(temporal_ratio_cdf(dataset, k=2, result=result)(0.5)))
        published = cached_glove(dataset, GloveConfig(k=2)).dataset
        spatial, _ = extent_accuracy(published)
        frac_2km.append(float(spatial(2_000.0)))

    rows = []
    stats = {
        "median_2gap": np.asarray(medians),
        "fraction_2anonymous": np.asarray(anon_fracs),
        "temporal_dominance": np.asarray(dominances),
        "glove_frac_within_2km": np.asarray(frac_2km),
    }
    for name, values in stats.items():
        ci = bootstrap_ci(values, statistic=np.mean, n_resamples=500)
        rows.append([name, fmt(float(values.min())), fmt(float(values.max())), str(ci)])
        report.data[name] = {
            "values": values.tolist(),
            "mean": float(values.mean()),
            "ci_low": ci.low,
            "ci_high": ci.high,
        }
    report.add_table(["statistic", "min", "max", "mean [95% CI]"], rows,
                     title=f"{n_seeds} independent dataset draws")

    # The binary claims must hold in EVERY draw.
    report.data["always_nonanonymous"] = bool((stats["fraction_2anonymous"] == 0).all())
    report.data["always_temporal_dominant"] = bool((stats["temporal_dominance"] > 0.5).all())
    report.add_text(
        "claims holding in every draw: "
        f"nobody-2-anonymous={report.data['always_nonanonymous']}, "
        f"temporal-dominates={report.data['always_temporal_dominant']}"
    )
    return report
