"""Streaming vs batch GLOVE: the cost of windowed anonymization.

The streaming tier (DESIGN.md D7) trades generalization quality for
bounded latency and memory: a window's greedy merge search only sees
the subscribers active inside that window, so groups are formed from a
smaller candidate pool than the batch run's whole-recording population
— the temporal analogue of the sharded tier's locality trade-off
(DESIGN.md D5).  This experiment quantifies the trade across window
sizes on one dataset, comparing each streaming run's published windows
against the offline batch result:

* accuracy — median spatial/temporal extents of the published samples
  (smaller is better, the batch run is the floor);
* suppression — fraction of samples discarded per window under the
  paper's Table 2 thresholds, vs the batch fraction;
* operations — windows emitted/deferred, carried subscribers, events
  per second and per-window latency quantiles.

Every stage is requested through the artifact pipeline: the dataset is
synthesized once, the feed replayed once, and each (window, k)
streaming run cached independently.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.pipeline import cached_dataset, cached_glove, cached_stream
from repro.experiments.report import ExperimentReport, fmt
from repro.stream.windows import StreamConfig

#: Window-length sweep, in hours.
WINDOW_SWEEP_H = (6.0, 12.0, 24.0)

#: The paper's Table 2 suppression thresholds, applied per window.
SUPPRESSION = SuppressionConfig(spatial_threshold_m=15_000.0, temporal_threshold_min=360.0)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    preset: str = "synth-civ",
    k: int = 2,
    windows_h: Sequence[float] = WINDOW_SWEEP_H,
) -> ExperimentReport:
    """Compare windowed streaming GLOVE against the offline batch run."""
    report = ExperimentReport(
        exp_id="stream",
        title=f"Streaming GLOVE vs batch across window sizes ({preset}, k={k})",
        paper_claim=(
            "not in the paper (extension): per-window anonymization "
            "preserves k-anonymity at a bounded generalization cost "
            "that shrinks as windows grow toward the batch horizon"
        ),
    )
    dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
    config = GloveConfig(k=k, suppression=SUPPRESSION)

    batch = cached_glove(dataset, config)
    spatial_b, temporal_b = extent_accuracy(batch.dataset)
    batch_row = {
        "median_spatial_m": spatial_b.median,
        "median_temporal_min": temporal_b.median,
        "suppressed_fraction": batch.stats.suppression.discarded_fraction,
        "n_groups": len(batch.dataset),
    }
    report.data["batch"] = batch_row

    rows = []
    report.data["windows"] = {}
    for hours in windows_h:
        stream_cfg = StreamConfig(window_min=hours * 60.0)
        result = cached_stream(dataset, config, stream_cfg)
        combined = result.combined_dataset(name=f"{dataset.name}-w{hours:g}h")
        spatial, temporal = extent_accuracy(combined)
        total_samples = sum(
            w.stats.suppression.total_samples for w in result.emitted
        )
        discarded = sum(
            w.stats.suppression.discarded_samples for w in result.emitted
        )
        entry = {
            "window_min": hours * 60.0,
            "n_windows": result.stats.n_windows,
            "n_deferred": result.stats.n_deferred_windows,
            "n_groups": result.stats.n_groups,
            "median_spatial_m": spatial.median,
            "median_temporal_min": temporal.median,
            "suppressed_fraction": (discarded / total_samples) if total_samples else 0.0,
            "max_carried_members": result.stats.max_carried_members,
            "events_per_sec": result.stats.events_per_sec,
            "latency_p50_s": result.stats.latency_p50_s,
            "latency_p95_s": result.stats.latency_p95_s,
        }
        report.data["windows"][f"{hours:g}h"] = entry
        rows.append(
            [
                f"{hours:g} h",
                entry["n_windows"],
                entry["n_deferred"],
                entry["n_groups"],
                fmt(entry["median_spatial_m"] / 1000.0),
                fmt(entry["median_temporal_min"]),
                f"{entry['suppressed_fraction']:.1%}",
                fmt(entry["events_per_sec"], 3),
                fmt(entry["latency_p50_s"] * 1000.0),
            ]
        )
    rows.append(
        [
            "batch",
            1,
            0,
            batch_row["n_groups"],
            fmt(batch_row["median_spatial_m"] / 1000.0),
            fmt(batch_row["median_temporal_min"]),
            f"{batch_row['suppressed_fraction']:.1%}",
            "-",
            "-",
        ]
    )
    report.add_table(
        [
            "window",
            "windows",
            "deferred",
            "groups",
            "med spatial km",
            "med temporal min",
            "suppressed",
            "events/s",
            "p50 ms",
        ],
        rows,
        title="Streaming vs batch GLOVE (per-window publications)",
    )
    report.add_text(
        "Each streaming row publishes one k-anonymous dataset per window; "
        "the batch row is the offline lower bound on generalization. "
        "Carried-over subscribers reach k-anonymity in a later window "
        "(DESIGN.md D7)."
    )
    return report
