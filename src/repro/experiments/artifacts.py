"""Persist experiment results as reviewable artifacts.

The ``glove-repro`` runner can dump every report to a directory:
a ``.txt`` rendering (what the terminal showed) plus a ``.json`` file
with the structured ``data`` dict, so EXPERIMENTS.md numbers can be
traced to a concrete artifact and regenerated diffably.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.experiments.report import ExperimentReport

PathLike = Union[str, Path]


def _jsonable(obj):
    """Recursively convert experiment data into JSON-serializable form."""
    if isinstance(obj, dict):
        return {_key(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(asdict(obj))
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def _key(key) -> str:
    """JSON object keys must be strings; render tuples readably."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_report(report: ExperimentReport, directory: PathLike) -> Dict[str, Path]:
    """Write ``<exp_id>.txt`` and ``<exp_id>.json``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    txt_path = directory / f"{report.exp_id}.txt"
    json_path = directory / f"{report.exp_id}.json"
    txt_path.write_text(report.render())
    json_path.write_text(
        json.dumps(
            {
                "exp_id": report.exp_id,
                "title": report.title,
                "paper_claim": report.paper_claim,
                "data": _jsonable(report.data),
            },
            indent=2,
            sort_keys=True,
        )
    )
    return {"txt": txt_path, "json": json_path}


def load_report_data(path: PathLike) -> Dict:
    """Read back the structured data of a saved report."""
    with open(path) as f:
        return json.load(f)
