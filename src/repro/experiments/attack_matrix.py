"""Attack matrix — every registered anonymizer under every attack.

Not a numbered paper figure: the paper motivates GLOVE with three
published attacks (Zang & Bolot's top-locations linkage [5], de
Montjoye et al.'s random-points linkage [6], and Cecaj et al.'s
cross-database correlation [7]) and argues in Section 2/Table 2 that
prior anonymization techniques do not stop them.  This experiment makes
that argument measurable end to end: each method of the
:mod:`repro.core.anonymizer` registry publishes the same dataset
through the cached ``anonymize`` stage, and all three attacks run
head-to-head against every publication.

Expected shape: GLOVE holds every candidate set at >= k (zero
identified); W4M-LC/NWA trash subscribers and perturb within a
delta-cylinder but keep per-subscriber records, so a fraction of users
remains identifiable; uniform generalization leaves most users unique
(the Fig. 4 finding, re-expressed as attack success).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks.cross_database import (
    cross_database_attack,
    simulate_checkin_database,
)
from repro.attacks.record_linkage import (
    uniqueness_given_random_points,
    uniqueness_given_top_locations,
)
from repro.core.anonymizer import available_anonymizers, get_anonymizer
from repro.core.pipeline import cached_anonymize, cached_dataset
from repro.experiments.report import ExperimentReport


def run(
    n_users: int = 120,
    days: int = 5,
    seed: int = 0,
    preset: str = "synth-civ",
    k: int = 2,
    n_locations: int = 3,
    n_points: int = 4,
    methods: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    """Run the record-linkage and cross-database attacks on every method."""
    methods = list(methods) if methods is not None else available_anonymizers()
    report = ExperimentReport(
        exp_id="attacks",
        title=f"Attack matrix across anonymizers ({preset}, k={k})",
        paper_claim=(
            "Sections 1-2: linkage and cross-database attacks defeat "
            "legacy anonymization; GLOVE's k-anonymity by design holds "
            "every candidate set at >= k"
        ),
    )
    original = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
    side_channel = simulate_checkin_database(original)

    rows = []
    results = {}
    for method in methods:
        anonymizer = get_anonymizer(method)
        published = cached_anonymize(
            original, method=method, config=anonymizer.make_config(k=k)
        ).dataset
        top = uniqueness_given_top_locations(original, published, n_locations=n_locations)
        rnd = uniqueness_given_random_points(
            original, published, n_points=n_points, seed=seed
        )
        xdb = cross_database_attack(side_channel, published)
        entry = {
            "top_locations_identified": top.fraction_identified_within(k),
            "random_points_identified": rnd.fraction_identified_within(k),
            "cross_database_reidentified": xdb.reidentification_rate,
            "min_nonempty_candidates": xdb.min_nonempty_candidates,
            "safe": (
                top.fraction_identified_within(k) == 0.0
                and rnd.fraction_identified_within(k) == 0.0
                and xdb.reidentification_rate == 0.0
            ),
        }
        results[method] = entry
        rows.append(
            [
                anonymizer.display,
                f"{entry['top_locations_identified']:.0%}",
                f"{entry['random_points_identified']:.0%}",
                f"{entry['cross_database_reidentified']:.0%}",
                entry["min_nonempty_candidates"],
                "SAFE" if entry["safe"] else "UNSAFE",
            ]
        )
    report.add_table(
        [
            "method",
            f"top-{n_locations} locs below k",
            f"{n_points} points below k",
            "x-db re-identified",
            "min candidates",
            "verdict",
        ],
        rows,
        title=f"identified fractions at k={k}",
    )
    report.data["results"] = results
    report.data["glove_safe"] = results.get("glove", {}).get("safe", None)
    return report
