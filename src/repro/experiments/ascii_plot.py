"""Plain-text plotting for experiment reports.

The harness is deliberately dependency-light (no matplotlib), but the
paper's figures are easier to eyeball as curves than as number rows.
This module renders empirical CDFs and x/y series as fixed-width ASCII
panels that survive terminals, logs and markdown code blocks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.cdf import EmpiricalCDF

#: Characters used to distinguish overlaid curves.
CURVE_MARKS = "o+x*#@%&"


def ascii_cdf(
    curves: Dict[str, EmpiricalCDF],
    x_min: float = None,
    x_max: float = None,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    log_x: bool = False,
) -> str:
    """Render one or more CDFs as an ASCII panel.

    Parameters
    ----------
    curves:
        Label -> CDF; each gets its own marker character.
    x_min, x_max:
        X-axis range; defaults to the pooled data range.
    width, height:
        Character dimensions of the plotting area.
    log_x:
        Log-scale the x axis (used for the TWI and accuracy figures).
    """
    if not curves:
        raise ValueError("need at least one curve")
    if width < 16 or height < 4:
        raise ValueError("panel too small")

    lo = min(cdf.values[0] for cdf in curves.values()) if x_min is None else x_min
    hi = max(cdf.values[-1] for cdf in curves.values()) if x_max is None else x_max
    if log_x:
        lo = max(lo, 1e-12)
        if hi <= lo:
            hi = lo * 10.0
        xs = np.logspace(np.log10(lo), np.log10(hi), width)
    else:
        if hi <= lo:
            hi = lo + 1.0
        xs = np.linspace(lo, hi, width)

    grid = [[" "] * width for _ in range(height)]
    for (label, cdf), mark in zip(curves.items(), CURVE_MARKS):
        ys = np.asarray(cdf(xs), dtype=np.float64)
        rows = np.clip(((1.0 - ys) * (height - 1)).round().astype(int), 0, height - 1)
        for col, row in enumerate(rows):
            grid[row][col] = mark

    lines = []
    for r, row in enumerate(grid):
        y_tick = 1.0 - r / (height - 1)
        prefix = f"{y_tick:4.2f} |" if r % (height // 4 or 1) == 0 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4g}{' ' * max(0, width - 24)}{hi:>12.4g}  ({x_label})")
    legend = "  ".join(
        f"{mark}={label}" for (label, _), mark in zip(curves.items(), CURVE_MARKS)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    ys: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render x/y series (e.g. Fig. 9's trade-off curves) as ASCII."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least two x points")
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in ys.values()])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    for (label, series), mark in zip(ys.items(), CURVE_MARKS):
        series = np.asarray(series, dtype=np.float64)
        cols = np.clip(
            ((x - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int), 0, width - 1
        )
        rows = np.clip(
            ((y_hi - series) / (y_hi - y_lo) * (height - 1)).round().astype(int),
            0,
            height - 1,
        )
        for col, row in zip(cols, rows):
            grid[row][col] = mark

    lines = [f"{y_label} ({y_lo:.4g} .. {y_hi:.4g})"]
    for row in grid:
        lines.append("     |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_lo:<12.4g}{' ' * max(0, width - 24)}{x_hi:>12.4g}  ({x_label})")
    legend = "  ".join(
        f"{mark}={label}" for (label, _), mark in zip(ys.items(), CURVE_MARKS)
    )
    lines.append("      " + legend)
    return "\n".join(lines)
