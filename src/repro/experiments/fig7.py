"""Fig. 7 — accuracy of GLOVE 2-anonymized datasets.

Paper findings reproduced here: GLOVE achieves what uniform
generalization cannot (full 2-anonymity) while a substantial share of
samples keeps high accuracy — 20-40% retain the original spatial
granularity with small temporal error, and 70-80% stay within ~2 km and
~2 h.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.accuracy import extent_accuracy
from repro.core.config import GloveConfig
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.report import ExperimentReport, fmt

#: Fig. 7 x-axis ticks: position accuracy in metres.
SPATIAL_GRID_M = (200.0, 1_000.0, 2_000.0, 5_000.0, 20_000.0)

#: Fig. 7 x-axis ticks: time accuracy in minutes.
TEMPORAL_GRID_MIN = (1.0, 30.0, 120.0, 480.0, 1_440.0)


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen"),
    k: int = 2,
) -> ExperimentReport:
    """Reproduce the Fig. 7 accuracy CDFs for both presets."""
    report = ExperimentReport(
        exp_id="fig7",
        title=f"Spatiotemporal accuracy after GLOVE {k}-anonymization",
        paper_claim=(
            "all users are k-anonymized; 20-40% of samples keep the "
            "original spatial accuracy, 70-80% stay within ~2 km / ~2 h"
        ),
    )
    for preset in presets:
        dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
        result = cached_glove(dataset, GloveConfig(k=k))
        anonymous = result.dataset.is_k_anonymous(k)
        spatial, temporal = extent_accuracy(result.dataset)
        grid_s, val_s = spatial.series(SPATIAL_GRID_M)
        grid_t, val_t = temporal.series(TEMPORAL_GRID_MIN)
        report.add_cdf(f"{preset}: position accuracy [m]", grid_s, val_s, "m")
        report.add_cdf(f"{preset}: time accuracy [min]", grid_t, val_t, "min")
        report.data[preset] = {
            "k_anonymous": anonymous,
            "frac_original_spatial": float(spatial(200.0)),
            "frac_within_2km": float(spatial(2_000.0)),
            "frac_within_30min": float(temporal(30.0)),
            "frac_within_2h": float(temporal(120.0)),
        }
        report.add_text(
            f"{preset}: k-anonymous={anonymous}; "
            f"<=200 m: {float(spatial(200.0)):.0%}, <=2 km: {float(spatial(2_000.0)):.0%}; "
            f"<=30 min: {float(temporal(30.0)):.0%}, <=2 h: {float(temporal(120.0)):.0%}"
        )
    return report
