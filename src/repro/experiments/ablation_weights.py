"""Metric-parameter ablation — the paper's footnote 3 choice, stress-tested.

The stretch metric fixes ``φmax_σ = 20 km`` and ``φmax_τ = 8 h``; their
ratio is "the space/time exchange rate" (a ~0.5 km spatial loss weighs
as much as a ~15 min temporal one).  The paper argues results are not
an artifact of this choice.  This ablation re-runs the headline
measurements under perturbed metric parameters:

* φmax halved and doubled (both axes);
* the exchange rate skewed 4x toward space and toward time;
* asymmetric loss weights (w_σ, w_τ) = (0.25, 0.75) and (0.75, 0.25).

The qualitative claims (nobody 2-anonymous; temporal cost dominates)
must survive every variant — except, by construction, the variant that
nearly removes the temporal dimension from the metric.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.anonymizability import kgap_cdf, temporal_ratio_cdf
from repro.core.config import StretchConfig
from repro.core.pipeline import cached_dataset
from repro.experiments.report import ExperimentReport, fmt

#: Named metric variants: label -> StretchConfig.
VARIANTS: Dict[str, StretchConfig] = {
    "paper (20km/8h, 1:1)": StretchConfig(),
    "halved phimax": StretchConfig(phi_max_sigma_m=10_000.0, phi_max_tau_min=240.0),
    "doubled phimax": StretchConfig(phi_max_sigma_m=40_000.0, phi_max_tau_min=960.0),
    "space-skewed rate": StretchConfig(phi_max_sigma_m=5_000.0, phi_max_tau_min=480.0),
    "time-skewed rate": StretchConfig(phi_max_sigma_m=20_000.0, phi_max_tau_min=120.0),
    "w=(0.25,0.75)": StretchConfig(w_sigma=0.25, w_tau=0.75),
    "w=(0.75,0.25)": StretchConfig(w_sigma=0.75, w_tau=0.25),
}


def run(
    n_users: int = 100,
    days: int = 3,
    seed: int = 0,
    preset: str = "synth-civ",
) -> ExperimentReport:
    """Headline statistics under perturbed stretch-metric parameters."""
    report = ExperimentReport(
        exp_id="ablation-weights",
        title="Sensitivity of the findings to the stretch-metric parameters",
        paper_claim=(
            "footnote 3: phimax values set the space/time exchange rate; "
            "the paper's conclusions should not hinge on the exact choice"
        ),
    )
    dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)

    rows = []
    results = {}
    for label, config in VARIANTS.items():
        cdf, result = kgap_cdf(dataset, k=2, config=config)
        dominance = 1.0 - float(
            temporal_ratio_cdf(dataset, k=2, config=config, result=result)(0.5)
        )
        results[label] = {
            "fraction_2anonymous": result.fraction_anonymous(),
            "median_gap": cdf.median,
            "temporal_dominance": dominance,
        }
        rows.append(
            [
                label,
                fmt(result.fraction_anonymous()),
                fmt(cdf.median),
                f"{dominance:.0%}",
            ]
        )
    report.add_table(
        ["metric variant", "frac 2-anon", "median 2-gap", "temporal dominance"],
        rows,
    )
    report.data["variants"] = results

    robust = all(
        entry["fraction_2anonymous"] == 0.0 for entry in results.values()
    )
    report.data["uniqueness_robust"] = robust
    report.add_text(
        f"'nobody is 2-anonymous' holds under every metric variant: {robust}"
    )
    return report
