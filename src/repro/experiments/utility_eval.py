"""Utility evaluation — the paper's Section 2.4 claim, made measurable.

Not a numbered paper figure: the paper *asserts* that k-anonymized data
still supports routine-behaviour and aggregate analyses (home/work
locations, commuting flows, population distributions, next-location
prediction).  This experiment runs those analyses on original and
GLOVE-anonymized data and reports the agreement.
"""

from __future__ import annotations

from repro.core.anonymizer import get_anonymizer
from repro.core.pipeline import cached_anonymize, cached_dataset
from repro.experiments.report import ExperimentReport, fmt
from repro.utility.comparison import compare_utility


def run(
    n_users: int = 150,
    days: int = 5,
    seed: int = 0,
    preset: str = "synth-civ",
    k: int = 2,
    method: str = "glove",
    method_options=None,
) -> ExperimentReport:
    """Compare downstream analyses before/after anonymization.

    ``method`` (with optional ``method_options`` config-factory
    overrides) selects any registered anonymizer — the scenario method
    axis routes through both — so the Section 2.4 claim can be tested
    head-to-head against the baselines.
    """
    display = get_anonymizer(method).display
    report = ExperimentReport(
        exp_id="utility",
        title=f"Downstream utility of {display} {k}-anonymized data ({preset})",
        paper_claim=(
            "Section 2.4: k-anonymized data still fits routine-behaviour "
            "studies (home/work, next-location prediction) and aggregate "
            "statistics (commuting flows, population distributions)"
        ),
    )
    original = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
    config = get_anonymizer(method).make_config(k=k, **dict(method_options or {}))
    anonymized = cached_anonymize(original, method=method, config=config).dataset
    comparison = compare_utility(original, anonymized)

    rows = [
        ["home displacement (median)", f"{fmt(comparison.home_median_displacement_m)} m"],
        ["work displacement (median)", f"{fmt(comparison.work_median_displacement_m)} m"],
        ["OD-matrix cosine", fmt(comparison.od_cosine)],
        [
            "intrazonal commuting",
            f"{comparison.od_intrazonal_original:.2f} -> "
            f"{comparison.od_intrazonal_anonymized:.2f}",
        ],
        ["density-map cosine", fmt(comparison.density_cosine)],
        ["visit-entropy correlation", fmt(comparison.entropy_correlation)],
    ]
    report.add_table(["analysis", "agreement"], rows, title="original vs anonymized")
    report.data["method"] = method
    report.data["comparison"] = {
        "home_median_displacement_m": comparison.home_median_displacement_m,
        "work_median_displacement_m": comparison.work_median_displacement_m,
        "od_cosine": comparison.od_cosine,
        "density_cosine": comparison.density_cosine,
        "entropy_correlation": comparison.entropy_correlation,
        "od_intrazonal_original": comparison.od_intrazonal_original,
        "od_intrazonal_anonymized": comparison.od_intrazonal_anonymized,
    }
    return report
