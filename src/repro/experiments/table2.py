"""Table 2 — comparative analysis of W4M-LC and GLOVE.

Paper findings reproduced here, for k=2 and k=5 across four datasets
(two nationwide, two citywide):

* W4M-LC discards fingerprints (its trashing stage), fabricates a
  large fraction of synthetic samples (17-74% in the paper), and its
  mean position/time errors are hardly exploitable;
* GLOVE discards no fingerprint, creates no sample, deletes a modest
  fraction via suppression, and delivers errors several times smaller
  in both dimensions.

GLOVE runs with the paper's Table 2 suppression thresholds (15 km,
6 h); W4M-LC with its suggested settings (delta = 2 km, 10% trashing).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.analysis.accuracy import utility_report
from repro.baselines.w4m import W4MConfig, w4m_lc
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.suppression import suppress_dataset
from repro.core.pipeline import cached_dataset, cached_glove
from repro.experiments.report import ExperimentReport, fmt

#: Table 2 suppression thresholds for GLOVE.
GLOVE_SUPPRESSION = SuppressionConfig(
    spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
)

#: Table 2 W4M settings.
W4M_DELTA_M = 2_000.0
W4M_TRASH = 0.10


def run(
    n_users: int = 120,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen", "abidjan", "dakar"),
    ks: Sequence[int] = (2, 5),
) -> ExperimentReport:
    """Reproduce Table 2: one row block per k, one column pair per dataset."""
    report = ExperimentReport(
        exp_id="table2",
        title="W4M-LC vs GLOVE comparative analysis",
        paper_claim=(
            "W4M-LC trashes fingerprints, fabricates 17-74% synthetic "
            "samples and incurs errors of kilometres/hours; GLOVE "
            "discards nothing, fabricates nothing, and is several "
            "times more accurate on both axes"
        ),
    )
    results: Dict = {}
    for k in ks:
        rows = []
        for preset in presets:
            dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)

            w4m = w4m_lc(
                dataset,
                W4MConfig(k=k, delta_m=W4M_DELTA_M, trash_fraction=W4M_TRASH),
            )
            w4m_row = {
                "discarded_fingerprints": w4m.stats.discarded_fingerprints,
                "created_samples": w4m.stats.created_samples,
                "created_fraction": w4m.stats.created_fraction,
                "deleted_samples": w4m.stats.deleted_samples,
                "deleted_fraction": w4m.stats.deleted_fraction,
                "mean_position_error_m": w4m.stats.mean_position_error_m,
                "mean_time_error_min": w4m.stats.mean_time_error_min,
            }

            # GLOVE is run without suppression; the Table 2 thresholds
            # are applied as two post-filters sharing one merge pass:
            # the *release* keeps at least one sample per group (paper
            # property: zero discarded fingerprints), while the *error
            # statistics* follow the paper's accounting and exclude all
            # suppressed samples (errors are measured over survivors).
            g = cached_glove(dataset, GloveConfig(k=k))
            release, release_stats = suppress_dataset(g.dataset, GLOVE_SUPPRESSION)
            strict_cfg = replace(GLOVE_SUPPRESSION, keep_at_least_one=False)
            survivors, strict_stats = suppress_dataset(g.dataset, strict_cfg)
            rep = utility_report(dataset, release, "GLOVE", mode="cover")
            err = utility_report(dataset, survivors, "GLOVE", mode="cover")
            glove_row = {
                "discarded_fingerprints": rep.discarded_fingerprints,
                "created_samples": 0,
                "created_fraction": 0.0,
                "deleted_samples": strict_stats.discarded_samples,
                "deleted_fraction": strict_stats.discarded_fraction,
                "mean_position_error_m": err.mean_position_error_m,
                "mean_time_error_min": err.mean_time_error_min,
            }
            results[(k, preset)] = {"w4m": w4m_row, "glove": glove_row}

            for method, row in (("W4M-LC", w4m_row), ("GLOVE", glove_row)):
                rows.append(
                    [
                        preset,
                        method,
                        row["discarded_fingerprints"],
                        f"{row['created_samples']} ({row['created_fraction']:.1%})",
                        f"{row['deleted_samples']} ({row['deleted_fraction']:.1%})",
                        fmt(row["mean_position_error_m"], 4),
                        fmt(row["mean_time_error_min"], 4),
                    ]
                )
        report.add_table(
            [
                "dataset",
                "method",
                "disc. fp",
                "created samples",
                "deleted samples",
                "mean pos err [m]",
                "mean time err [min]",
            ],
            rows,
            title=f"k = {k}",
        )
    report.data["results"] = results
    return report
