"""Table 2 — comparative analysis of W4M-LC and GLOVE.

Paper findings reproduced here, for k=2 and k=5 across four datasets
(two nationwide, two citywide):

* W4M-LC discards fingerprints (its trashing stage), fabricates a
  large fraction of synthetic samples (17-74% in the paper), and its
  mean position/time errors are hardly exploitable;
* GLOVE discards no fingerprint, creates no sample, deletes a modest
  fraction via suppression, and delivers errors several times smaller
  in both dimensions.

GLOVE runs with the paper's Table 2 suppression thresholds (15 km,
6 h); W4M-LC with its suggested settings (delta = 2 km, 10% trashing).

Every method runs through the pipeline's content-addressed
``anonymize`` stage and reports the normalized provenance schema of
:mod:`repro.core.anonymizer` — so a repeated suite invocation computes
each W4M-LC and GLOVE run exactly once, and further comparators (e.g.
``nwa``) join the table by name.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.anonymizer import get_anonymizer
from repro.core.config import GloveConfig, SuppressionConfig
from repro.core.pipeline import cached_anonymize, cached_dataset
from repro.experiments.report import ExperimentReport, fmt

#: Table 2 suppression thresholds for GLOVE.
GLOVE_SUPPRESSION = SuppressionConfig(
    spatial_threshold_m=15_000.0, temporal_threshold_min=360.0
)

#: Table 2 W4M settings.
W4M_DELTA_M = 2_000.0
W4M_TRASH = 0.10

#: Legacy result-dict keys for the two paper methods.
_RESULT_KEYS = {"w4m-lc": "w4m", "glove": "glove"}


def method_config(method: str, k: int):
    """The Table-2 configuration of one registered method at ``k``."""
    if method == "glove":
        return GloveConfig(k=k, suppression=GLOVE_SUPPRESSION)
    if method in ("w4m-lc", "nwa"):
        return get_anonymizer(method).make_config(
            k=k, delta_m=W4M_DELTA_M, trash_fraction=W4M_TRASH
        )
    return get_anonymizer(method).make_config(k=k)


def run(
    n_users: int = 120,
    days: int = 5,
    seed: int = 0,
    presets: Sequence[str] = ("synth-civ", "synth-sen", "abidjan", "dakar"),
    ks: Sequence[int] = (2, 5),
    methods: Sequence[str] = ("w4m-lc", "glove"),
) -> ExperimentReport:
    """Reproduce Table 2: one row block per k, one row per (dataset, method)."""
    report = ExperimentReport(
        exp_id="table2",
        title="W4M-LC vs GLOVE comparative analysis",
        paper_claim=(
            "W4M-LC trashes fingerprints, fabricates 17-74% synthetic "
            "samples and incurs errors of kilometres/hours; GLOVE "
            "discards nothing, fabricates nothing, and is several "
            "times more accurate on both axes"
        ),
    )
    results: Dict = {}
    for k in ks:
        rows = []
        for preset in presets:
            dataset = cached_dataset(preset, n_users=n_users, days=days, seed=seed)
            per_method = {}
            for method in methods:
                result = cached_anonymize(
                    dataset, method=method, config=method_config(method, k)
                )
                s = result.stats
                per_method[_RESULT_KEYS.get(method, method)] = {
                    "discarded_fingerprints": s.discarded_fingerprints,
                    "created_samples": s.created_samples,
                    "created_fraction": s.created_fraction,
                    "deleted_samples": s.deleted_samples,
                    "deleted_fraction": s.deleted_fraction,
                    "mean_position_error_m": s.mean_position_error_m,
                    "mean_time_error_min": s.mean_time_error_min,
                }
                rows.append(
                    [
                        preset,
                        get_anonymizer(method).display,
                        s.discarded_fingerprints,
                        f"{s.created_samples} ({s.created_fraction:.1%})",
                        f"{s.deleted_samples} ({s.deleted_fraction:.1%})",
                        fmt(s.mean_position_error_m, 4),
                        fmt(s.mean_time_error_min, 4),
                    ]
                )
            results[(k, preset)] = per_method
        report.add_table(
            [
                "dataset",
                "method",
                "disc. fp",
                "created samples",
                "deleted samples",
                "mean pos err [m]",
                "mean time err [min]",
            ],
            rows,
            title=f"k = {k}",
        )
    report.data["results"] = results
    return report
