"""Experiment harness: one module per paper figure or table.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.report.ExperimentReport` whose sections
print the rows/series the corresponding paper artifact plots, and whose
``data`` dict carries structured values for tests and benchmarks.

| Module     | Paper artifact | Content |
|------------|----------------|---------|
| ``fig3``   | Fig. 3a/3b     | k-gap CDFs; k sweep |
| ``fig4``   | Fig. 4         | k-gap under uniform generalization |
| ``fig5``   | Fig. 5a/5b     | TWI and temporal/spatial cost split |
| ``fig7``   | Fig. 7         | GLOVE accuracy CDFs, k=2 |
| ``fig8``   | Fig. 8         | GLOVE accuracy CDFs, k=2/3/5 |
| ``fig9``   | Fig. 9         | suppression trade-off |
| ``fig10``  | Fig. 10        | accuracy vs dataset timespan |
| ``fig11``  | Fig. 11        | accuracy vs dataset size |
| ``table2`` | Table 2        | GLOVE vs W4M-LC comparison |

The :mod:`repro.experiments.runner` CLI runs any subset:
``glove-repro --experiments fig3 table2 --n-users 150``.
"""

from repro.experiments.report import ExperimentReport

__all__ = ["ExperimentReport"]
