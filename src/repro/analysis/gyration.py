"""Radius of gyration of mobile fingerprints (paper Section 7.3).

The radius of gyration of a user is the root-mean-square distance of
his samples from their center of mass — the standard compactness
measure of human mobility.  The paper reports medians around 2 km and
means around 10-12 km for its datasets, and uses this locality to
explain why citywide and nationwide datasets anonymize similarly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DX, DY, X, Y


def radius_of_gyration(fp: Fingerprint) -> float:
    """Radius of gyration of one fingerprint, in metres.

    Computed over sample centers; a single-sample fingerprint has
    radius zero.
    """
    if fp.m == 0:
        raise ValueError(f"fingerprint {fp.uid!r} has no samples")
    cx = fp.data[:, X] + fp.data[:, DX] / 2.0
    cy = fp.data[:, Y] + fp.data[:, DY] / 2.0
    mx, my = cx.mean(), cy.mean()
    return float(np.sqrt(((cx - mx) ** 2 + (cy - my) ** 2).mean()))


@dataclass(frozen=True)
class GyrationSummary:
    """Population summary of the radius-of-gyration distribution."""

    median_m: float
    mean_m: float
    p90_m: float

    def __str__(self) -> str:
        return (
            f"radius of gyration: median {self.median_m / 1000:.1f} km, "
            f"mean {self.mean_m / 1000:.1f} km, p90 {self.p90_m / 1000:.1f} km"
        )


def gyration_summary(dataset: FingerprintDataset) -> GyrationSummary:
    """Median/mean/90th-percentile radius of gyration of a dataset."""
    values = np.array([radius_of_gyration(fp) for fp in dataset])
    if values.size == 0:
        raise ValueError("dataset is empty")
    return GyrationSummary(
        median_m=float(np.median(values)),
        mean_m=float(values.mean()),
        p90_m=float(np.quantile(values, 0.9)),
    )
