"""Group-diversity audits: where k-anonymity is known to be weak.

The paper (Section 2.4) acknowledges that k-anonymity "has limitations
when confronted to attacks aiming at attribute linkage, at localizing
users, or at disclosing their presence and meetings" (citing
l-diversity and location-privacy quantification).  These audits make
the residual exposure of a GLOVE release measurable:

* :func:`location_diversity` — per published sample, the spatial extent
  is the adversary's residual uncertainty about *where* a member was; a
  group whose samples are tiny rectangles still k-anonymizes identity
  but localizes all its members precisely (homogeneity attack on the
  location attribute);
* :func:`meeting_disclosure` — published samples disclose that all
  group members were co-located within the sample's rectangle/interval;
  this reports how often such "meetings" are tighter than a given
  spatial and temporal bound;
* :func:`group_span_diversity` — dispersion of the group members'
  *original* positions inside each published sample: low dispersion
  means the generalized rectangle is a disclosure in disguise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y


def location_diversity(published: FingerprintDataset) -> EmpiricalCDF:
    """CDF of the localization uncertainty of published samples.

    The value per sample is its spatial extent ``max(dx, dy)`` in
    metres, weighted by group count: the residual uncertainty an
    adversary faces about a member's position given the record.
    Mass near 100 m means many users remain precisely localizable even
    though their identity is k-anonymized.
    """
    extents, weights = [], []
    for fp in published:
        extents.append(np.maximum(fp.data[:, DX], fp.data[:, DY]))
        weights.append(np.full(fp.m, fp.count, dtype=np.float64))
    if not extents:
        raise ValueError("dataset is empty")
    return EmpiricalCDF(np.concatenate(extents), np.concatenate(weights))


@dataclass(frozen=True)
class MeetingDisclosure:
    """How much co-location a release discloses.

    Attributes
    ----------
    n_group_samples:
        Published samples belonging to groups of two or more users.
    n_tight_meetings:
        Of those, samples asserting co-location within the configured
        spatial and temporal bounds.
    """

    n_group_samples: int
    n_tight_meetings: int

    @property
    def tight_fraction(self) -> float:
        """Fraction of group samples that disclose a tight meeting."""
        if self.n_group_samples == 0:
            return 0.0
        return self.n_tight_meetings / self.n_group_samples


def meeting_disclosure(
    published: FingerprintDataset,
    spatial_bound_m: float = 1_000.0,
    temporal_bound_min: float = 60.0,
) -> MeetingDisclosure:
    """Count published group samples tighter than the given bounds.

    A published sample of a group of ``n >= 2`` users asserts that all
    ``n`` visited the sample's rectangle during its interval; when both
    are tight, the release discloses a plausible meeting.
    """
    group_samples = 0
    tight = 0
    for fp in published:
        if fp.count < 2:
            continue
        group_samples += fp.m
        tight += int(
            (
                (np.maximum(fp.data[:, DX], fp.data[:, DY]) <= spatial_bound_m)
                & (fp.data[:, DT] <= temporal_bound_min)
            ).sum()
        )
    return MeetingDisclosure(n_group_samples=group_samples, n_tight_meetings=tight)


def group_span_diversity(
    original: FingerprintDataset, published: FingerprintDataset
) -> EmpiricalCDF:
    """CDF of member dispersion inside published samples.

    For every published sample of every multi-user group, collect the
    member's original sample centers that the published sample covers
    and measure their RMS dispersion (metres).  Low values mean the
    group's members truly were in the same small place — the published
    rectangle localizes everyone regardless of its size.
    """
    index: Dict[str, Fingerprint] = {}
    for fp in original:
        index[fp.uid] = fp

    dispersions: List[float] = []
    for group in published:
        if group.count < 2:
            continue
        for row in group.data:
            member_points = []
            for member in group.members:
                fp = index.get(member)
                if fp is None:
                    continue
                data = fp.data
                inside = (
                    (data[:, X] >= row[X] - 1e-9)
                    & (data[:, X] + data[:, DX] <= row[X] + row[DX] + 1e-9)
                    & (data[:, Y] >= row[Y] - 1e-9)
                    & (data[:, Y] + data[:, DY] <= row[Y] + row[DY] + 1e-9)
                    & (data[:, T] >= row[T] - 1e-9)
                    & (data[:, T] + data[:, DT] <= row[T] + row[DT] + 1e-9)
                )
                if inside.any():
                    cx = data[inside, X] + data[inside, DX] / 2.0
                    cy = data[inside, Y] + data[inside, DY] / 2.0
                    member_points.append((cx.mean(), cy.mean()))
            if len(member_points) >= 2:
                pts = np.asarray(member_points)
                center = pts.mean(axis=0)
                dispersions.append(
                    float(np.sqrt(((pts - center) ** 2).sum(axis=1).mean()))
                )
    if not dispersions:
        raise ValueError("no multi-member published samples with covered originals")
    return EmpiricalCDF(np.asarray(dispersions))
