"""The anonymizability analyses of paper Section 5.

Four analyses, one per figure:

* :func:`kgap_cdf` -- CDF of the k-gap over a dataset (Fig. 3a);
* :func:`kgap_curves` -- the same for several ``k`` values, reusing one
  pairwise matrix (Fig. 3b);
* :func:`generalization_sweep` -- k-gap CDFs of uniformly generalized
  dataset variants (Fig. 4);
* :func:`tail_weight_analysis` / :func:`temporal_ratio_cdf` -- per-user
  TWI of the sample-stretch distributions and the temporal-to-spatial
  cost ratio (Fig. 5a / 5b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.twi import tail_weight_index
from repro.baselines.generalization import GeneralizationLevel, generalize_dataset
from repro.core.config import StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.kgap import (
    KGapResult,
    StretchComponentCache,
    kgap,
    kgap_sweep,
    stretch_decomposition,
)
from repro.core.pipeline import cached_kgap, cached_matrix


def kgap_cdf(
    dataset: FingerprintDataset,
    k: int = 2,
    config: StretchConfig = StretchConfig(),
    matrix: Optional[np.ndarray] = None,
) -> Tuple[EmpiricalCDF, KGapResult]:
    """CDF of the k-gap of every user in a dataset (Fig. 3a).

    Without an explicit ``matrix``, the pairwise build goes through the
    default pipeline, so repeated evaluations of one dataset — across
    figures, k values or generalization levels — share a single
    artifact.
    """
    if matrix is None:
        result = cached_kgap(dataset, k=k, config=config)
    else:
        result = kgap(dataset, k=k, config=config, matrix=matrix)
    return EmpiricalCDF(result.gaps), result


def kgap_curves(
    dataset: FingerprintDataset,
    ks: Sequence[int],
    config: StretchConfig = StretchConfig(),
) -> Dict[int, EmpiricalCDF]:
    """k-gap CDFs for several anonymity levels (Fig. 3b).

    The pairwise stretch matrix is computed once — through the
    pipeline's ``matrix`` stage — and the neighbour search once at the
    largest level via :func:`repro.core.kgap.kgap_sweep`, sharing all
    the quadratic work across the ``k`` values as the definition of
    Eq. 11 allows.
    """
    if not ks:
        raise ValueError("ks must be non-empty")
    matrix = cached_matrix(dataset, config)
    results = kgap_sweep(dataset, ks, config=config, matrix=matrix)
    return {k: EmpiricalCDF(result.gaps) for k, result in results.items()}


def generalization_sweep(
    dataset: FingerprintDataset,
    levels: Sequence[GeneralizationLevel],
    k: int = 2,
    config: StretchConfig = StretchConfig(),
) -> Dict[GeneralizationLevel, EmpiricalCDF]:
    """k-gap CDFs of uniformly generalized dataset variants (Fig. 4).

    Each level coarsens every sample to a ``spatial x temporal`` bin
    before re-evaluating the k-gap; the paper's headline finding is
    that even extreme coarsening leaves most users non-2-anonymous.
    """
    out: Dict[GeneralizationLevel, EmpiricalCDF] = {}
    for level in levels:
        coarse = generalize_dataset(dataset, level)
        out[level], _ = kgap_cdf(coarse, k=k, config=config)
    return out


def tail_weight_analysis(
    dataset: FingerprintDataset,
    k: int = 2,
    config: StretchConfig = StretchConfig(),
    result: Optional[KGapResult] = None,
    cache: Optional[StretchComponentCache] = None,
) -> Dict[str, np.ndarray]:
    """Per-user TWI of the matched sample-stretch distributions (Fig. 5a).

    Returns arrays keyed ``"delta"``, ``"spatial"``, ``"temporal"``:
    the TWI of each user's distribution of total, spatial-component and
    temporal-component sample stretch efforts toward his ``k-1``
    nearest fingerprints.  A shared ``cache`` lets sibling analyses (or
    a k-sweep) reuse the per-pair matched components.
    """
    if result is None:
        result = cached_kgap(dataset, k=k, config=config)
    decomp = stretch_decomposition(dataset, result, config, cache=cache)
    return {
        "delta": np.array([tail_weight_index(d.delta) for d in decomp]),
        "spatial": np.array([tail_weight_index(d.spatial) for d in decomp]),
        "temporal": np.array([tail_weight_index(d.temporal) for d in decomp]),
    }


def temporal_ratio_cdf(
    dataset: FingerprintDataset,
    k: int = 2,
    config: StretchConfig = StretchConfig(),
    result: Optional[KGapResult] = None,
    cache: Optional[StretchComponentCache] = None,
) -> EmpiricalCDF:
    """CDF of the temporal share of the anonymization cost (Fig. 5b).

    Values above 0.5 mean the temporal stretch exceeds the spatial one;
    the paper reports this for ~95% of fingerprints.  A shared ``cache``
    lets sibling analyses reuse the per-pair matched components.
    """
    if result is None:
        result = cached_kgap(dataset, k=k, config=config)
    decomp = stretch_decomposition(dataset, result, config, cache=cache)
    return EmpiricalCDF(np.array([d.temporal_to_spatial_ratio for d in decomp]))
