"""Tail Weight Index (TWI) of a distribution (paper Section 5.3).

The paper cites Hoaglin, Mosteller & Tukey's robust tail-weight
measures and calibrates its index with two anchors (footnote 5): an
``Exp(1)`` distribution has TWI ~1.6 and a Pareto with shape 1 has TWI
~14.  The quantile-ratio index

    TWI = [ (Q(0.99) - Q(0.5)) / (Q(0.75) - Q(0.5)) ] / g

with ``g`` the same ratio for the standard Gaussian (~3.449), matches
both anchors (1.64 and 14.2 respectively) and is what this module
implements.  Higher TWI means a heavier right tail; values around 1
indicate Gaussian-like decay, values at or above ~1.5 indicate
exponential-or-heavier tails.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

#: Upper-tail quantile used by the index.
TAIL_Q = 0.99
#: Body quantile used by the index.
BODY_Q = 0.75


def gaussian_twi_norm(tail_q: float = TAIL_Q, body_q: float = BODY_Q) -> float:
    """Gaussian normalization constant of the quantile-ratio index."""
    return float((norm.ppf(tail_q) - norm.ppf(0.5)) / (norm.ppf(body_q) - norm.ppf(0.5)))


def tail_weight_index(
    values: np.ndarray,
    tail_q: float = TAIL_Q,
    body_q: float = BODY_Q,
) -> float:
    """TWI of a one-dimensional sample.

    Degenerate cases: with fewer than 4 observations, or when the body
    quantile spread ``Q(body) - Q(0.5)`` is zero (at least half the
    mass concentrated on one value), the index is defined as 0 — the
    distribution has no measurable tail.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if values.size < 4:
        return 0.0
    q50, qb, qt = np.quantile(values, [0.5, body_q, tail_q])
    body = qb - q50
    if body <= 0:
        return 0.0
    return float((qt - q50) / body / gaussian_twi_norm(tail_q, body_q))
