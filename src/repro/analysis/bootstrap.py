"""Bootstrap confidence intervals for the evaluation statistics.

The paper reports point estimates (medians, means, CDF fractions) on
single datasets.  At the reproduction's reduced scale, sampling noise
is non-negligible, so EXPERIMENTS.md quotes bootstrap intervals
alongside the measured values; this module provides the resampling
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile bootstrap interval.

    Attributes
    ----------
    estimate:
        The statistic on the full sample.
    low, high:
        Interval bounds at the requested confidence level.
    confidence:
        The nominal coverage (e.g. 0.95).
    """

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def __str__(self) -> str:
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}]"


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.median,
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` over ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-d array")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be at least 10")
    if rng is None:
        rng = np.random.default_rng(0)

    estimate = float(statistic(values))
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    stats = np.array([statistic(values[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=estimate, low=float(low), high=float(high), confidence=confidence
    )


def bootstrap_fraction_ci(
    successes: np.ndarray,
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Bootstrap CI of a Bernoulli fraction (e.g. "fraction 2-anonymous")."""
    successes = np.asarray(successes, dtype=np.float64)
    if ((successes != 0) & (successes != 1)).any():
        raise ValueError("successes must be 0/1 indicators")
    return bootstrap_ci(
        successes,
        statistic=np.mean,
        n_resamples=n_resamples,
        confidence=confidence,
        rng=rng,
    )
