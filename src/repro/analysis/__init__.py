"""Analysis toolkit: anonymizability and accuracy measurements.

* :mod:`repro.analysis.cdf` -- empirical CDFs (every figure of the
  paper is a CDF or a statistic of one).
* :mod:`repro.analysis.twi` -- the Tail Weight Index of Section 5.3.
* :mod:`repro.analysis.anonymizability` -- the Section 5 analyses
  (k-gap CDFs, generalization sweeps, stretch decomposition).
* :mod:`repro.analysis.accuracy` -- accuracy of anonymized datasets
  (Section 7: extent CDFs, matched errors, created/deleted counts).
* :mod:`repro.analysis.gyration` -- radius of gyration (Section 7.3).
* :mod:`repro.analysis.sparsity` -- (eps, delta)-sparsity (Section 5).
"""

from repro.analysis.accuracy import (
    AccuracyReport,
    extent_accuracy,
    matched_errors,
    utility_report,
)
from repro.analysis.anonymizability import (
    generalization_sweep,
    kgap_cdf,
    kgap_curves,
    tail_weight_analysis,
    temporal_ratio_cdf,
)
from repro.analysis.bootstrap import ConfidenceInterval, bootstrap_ci, bootstrap_fraction_ci
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.diversity import (
    MeetingDisclosure,
    group_span_diversity,
    location_diversity,
    meeting_disclosure,
)
from repro.analysis.gyration import radius_of_gyration, gyration_summary
from repro.analysis.sparsity import eps_delta_sparsity
from repro.analysis.twi import gaussian_twi_norm, tail_weight_index

__all__ = [
    "EmpiricalCDF",
    "tail_weight_index",
    "gaussian_twi_norm",
    "kgap_cdf",
    "kgap_curves",
    "generalization_sweep",
    "tail_weight_analysis",
    "temporal_ratio_cdf",
    "extent_accuracy",
    "matched_errors",
    "utility_report",
    "AccuracyReport",
    "radius_of_gyration",
    "gyration_summary",
    "eps_delta_sparsity",
    "bootstrap_ci",
    "bootstrap_fraction_ci",
    "ConfidenceInterval",
    "location_diversity",
    "meeting_disclosure",
    "MeetingDisclosure",
    "group_span_diversity",
]
