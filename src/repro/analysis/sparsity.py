"""(eps, delta)-sparsity of a fingerprint database (paper Section 5).

Narayanan & Shmatikov's sparsity notion, transplanted to the k-gap
dissimilarity: a database is ``(eps, delta)``-sparse when at most a
``delta`` fraction of records have another record within dissimilarity
``eps``.  The paper notes such scalar summaries are less informative
than full k-gap CDFs, but the measure is provided for completeness and
cross-checking.
"""

from __future__ import annotations

import numpy as np


def eps_delta_sparsity(matrix: np.ndarray, eps: float) -> float:
    """Smallest ``delta`` for which the database is ``(eps, delta)``-sparse.

    Parameters
    ----------
    matrix:
        Symmetric pairwise dissimilarity matrix with ``+inf`` diagonal
        (e.g. from :func:`repro.core.pairwise.pairwise_matrix`).
    eps:
        Dissimilarity radius.

    Returns
    -------
    The fraction of records whose nearest neighbour lies within
    ``eps``.  0 means every record is isolated at radius ``eps``
    (maximally sparse / unique); 1 means nobody is.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    if eps < 0:
        raise ValueError("eps must be non-negative")
    nearest = matrix.min(axis=1)
    return float((nearest <= eps).mean())
