"""Accuracy of anonymized datasets (paper Section 7).

Two complementary views:

* **extent accuracy** -- the granularity of published samples (spatial
  extent in metres, temporal extent in minutes); this is what the
  Fig. 7/8 CDFs and the Fig. 9 mean/median curves show ("position
  accuracy" / "time accuracy");
* **matched errors** -- per *original* sample, the displacement between
  the truth and the published sample that represents it; this is the
  "mean position error" / "mean time error" of Table 2 and is
  computable uniformly for GLOVE (covering samples) and W4M
  (perturbed samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y


def extent_accuracy(
    dataset: FingerprintDataset, weighted: bool = True
) -> Tuple[EmpiricalCDF, EmpiricalCDF]:
    """Spatial and temporal extent CDFs of published samples (Fig. 7/8).

    Spatial accuracy of a sample is ``max(dx, dy)`` in metres; temporal
    accuracy is ``dt`` in minutes.  With ``weighted=True`` each
    published sample counts once per subscriber it hides.
    """
    spatial, temporal, weights = [], [], []
    for fp in dataset:
        spatial.append(np.maximum(fp.data[:, DX], fp.data[:, DY]))
        temporal.append(fp.data[:, DT])
        weights.append(np.full(fp.m, fp.count, dtype=np.float64))
    if not spatial:
        raise ValueError("dataset is empty")
    s = np.concatenate(spatial)
    t = np.concatenate(temporal)
    w = np.concatenate(weights) if weighted else None
    return EmpiricalCDF(s, w), EmpiricalCDF(t, w)


def _member_index(anonymized: FingerprintDataset) -> Dict[str, Fingerprint]:
    index: Dict[str, Fingerprint] = {}
    for fp in anonymized:
        for member in fp.members:
            if member in index:
                raise ValueError(f"member {member!r} appears in multiple groups")
            index[member] = fp
    return index


def _centers(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    cx = data[:, X] + data[:, DX] / 2.0
    cy = data[:, Y] + data[:, DY] / 2.0
    ct = data[:, T] + data[:, DT] / 2.0
    return cx, cy, ct


@dataclass(frozen=True)
class MatchedErrors:
    """Per-original-sample reconstruction errors.

    Attributes
    ----------
    position_m:
        Distance between each original sample's center and the center
        of the published sample representing it, metres.
    time_min:
        Midpoint time distance, minutes.
    n_deleted:
        Original samples with no representing published sample
        (suppressed by GLOVE, trashed or clipped by W4M).
    n_total:
        Original samples examined.
    """

    position_m: np.ndarray
    time_min: np.ndarray
    n_deleted: int
    n_total: int

    @property
    def mean_position_m(self) -> float:
        """Mean position error over surviving samples, metres."""
        return float(self.position_m.mean()) if self.position_m.size else 0.0

    @property
    def mean_time_min(self) -> float:
        """Mean time error over surviving samples, minutes."""
        return float(self.time_min.mean()) if self.time_min.size else 0.0

    @property
    def deleted_fraction(self) -> float:
        """Fraction of original samples without a published counterpart."""
        return self.n_deleted / self.n_total if self.n_total else 0.0


def matched_errors(
    original: FingerprintDataset,
    anonymized: FingerprintDataset,
    mode: str = "cover",
) -> MatchedErrors:
    """Reconstruction errors of an anonymized dataset vs. the original.

    Parameters
    ----------
    original:
        The pre-anonymization micro-data (one fingerprint per user).
    anonymized:
        The published dataset; group membership must reference original
        uids (GLOVE output does; W4M output does too).
    mode:
        ``"cover"`` (GLOVE semantics): an original sample is represented
        by the published samples of its group that spatially and
        temporally contain it; uncovered samples count as deleted.
        ``"nearest"`` (perturbation semantics, W4M): every original
        sample is matched to the published sample at nearest midpoint
        time; users absent from the output count as deleted in full.
    """
    if mode not in ("cover", "nearest"):
        raise ValueError(f"unknown mode {mode!r}")
    index = _member_index(anonymized)
    pos_err, time_err = [], []
    n_deleted = 0
    n_total = 0
    for fp in original:
        n_total += fp.m
        group = index.get(fp.uid)
        if group is None or group.m == 0:
            n_deleted += fp.m
            continue
        ocx, ocy, oct_ = _centers(fp.data)
        gcx, gcy, gct = _centers(group.data)
        if mode == "nearest":
            j = np.abs(oct_[:, None] - gct[None, :]).argmin(axis=1)
            pos_err.append(np.hypot(ocx - gcx[j], ocy - gcy[j]))
            time_err.append(np.abs(oct_ - gct[j]))
            continue
        g = group.data
        covers = (
            (g[None, :, X] <= fp.data[:, None, X] + 1e-9)
            & (g[None, :, X] + g[None, :, DX] >= fp.data[:, None, X] + fp.data[:, None, DX] - 1e-9)
            & (g[None, :, Y] <= fp.data[:, None, Y] + 1e-9)
            & (g[None, :, Y] + g[None, :, DY] >= fp.data[:, None, Y] + fp.data[:, None, DY] - 1e-9)
            & (g[None, :, T] <= fp.data[:, None, T] + 1e-9)
            & (g[None, :, T] + g[None, :, DT] >= fp.data[:, None, T] + fp.data[:, None, DT] - 1e-9)
        )
        tdist = np.abs(oct_[:, None] - gct[None, :])
        tdist[~covers] = np.inf
        j = tdist.argmin(axis=1)
        covered = np.isfinite(tdist[np.arange(fp.m), j])
        n_deleted += int((~covered).sum())
        if covered.any():
            jj = j[covered]
            pos_err.append(np.hypot(ocx[covered] - gcx[jj], ocy[covered] - gcy[jj]))
            time_err.append(np.abs(oct_[covered] - gct[jj]))
    return MatchedErrors(
        position_m=np.concatenate(pos_err) if pos_err else np.empty(0),
        time_min=np.concatenate(time_err) if time_err else np.empty(0),
        n_deleted=n_deleted,
        n_total=n_total,
    )


@dataclass(frozen=True)
class AccuracyReport:
    """Table-2-style utility report of one anonymization run.

    Attributes
    ----------
    method:
        Label of the anonymization technique.
    discarded_fingerprints:
        Users of the original dataset absent from the published one.
    created_samples:
        Fabricated samples in the output (always 0 for GLOVE; W4M's
        interpolation produces them).
    deleted_samples:
        Original samples without a published counterpart.
    total_original_samples:
        Size of the original dataset in samples.
    mean_position_error_m, mean_time_error_min:
        Matched reconstruction errors.
    """

    method: str
    discarded_fingerprints: int
    created_samples: int
    deleted_samples: int
    total_original_samples: int
    mean_position_error_m: float
    mean_time_error_min: float

    @property
    def deleted_fraction(self) -> float:
        """Deleted samples as a fraction of the original dataset."""
        if self.total_original_samples == 0:
            return 0.0
        return self.deleted_samples / self.total_original_samples


def utility_report(
    original: FingerprintDataset,
    anonymized: FingerprintDataset,
    method: str,
    mode: str = "cover",
    created_samples: int = 0,
) -> AccuracyReport:
    """Build a Table-2 row for any anonymized dataset."""
    index = _member_index(anonymized)
    missing = sum(1 for fp in original if fp.uid not in index)
    errors = matched_errors(original, anonymized, mode=mode)
    return AccuracyReport(
        method=method,
        discarded_fingerprints=missing,
        created_samples=created_samples,
        deleted_samples=errors.n_deleted,
        total_original_samples=errors.n_total,
        mean_position_error_m=errors.mean_position_m,
        mean_time_error_min=errors.mean_time_min,
    )
