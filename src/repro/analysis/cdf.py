"""Empirical cumulative distribution functions.

Every evaluation plot of the paper is an empirical CDF (or a statistic
derived from one), so the class below is the common currency of the
experiment harness: it evaluates ``P[X <= x]``, inverts to quantiles,
and renders fixed-grid series for textual reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


class EmpiricalCDF:
    """Right-continuous empirical CDF of a one-dimensional sample.

    Optionally weighted: ``weights`` lets published samples count once
    per subscriber they represent.
    """

    def __init__(self, values: Iterable[float], weights: Iterable[float] = None):
        values = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                            dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional")
        if values.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        if weights is None:
            w = np.ones_like(values)
        else:
            w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                           dtype=np.float64)
            if w.shape != values.shape:
                raise ValueError("weights must match values in shape")
            if (w < 0).any() or w.sum() <= 0:
                raise ValueError("weights must be non-negative with positive sum")
        order = np.argsort(values, kind="stable")
        self.values = values[order]
        self._cum = np.cumsum(w[order])
        self._cum /= self._cum[-1]

    @property
    def n(self) -> int:
        """Number of underlying observations."""
        return self.values.shape[0]

    def __call__(self, x) -> np.ndarray:
        """Evaluate ``P[X <= x]`` at scalar or array ``x``."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.values, x, side="right")
        out = np.where(idx > 0, self._cum[np.maximum(idx - 1, 0)], 0.0)
        if out.ndim == 0:
            return float(out)
        return out

    def quantile(self, q) -> np.ndarray:
        """Smallest value whose CDF reaches ``q`` (generalized inverse)."""
        q = np.asarray(q, dtype=np.float64)
        if ((q < 0) | (q > 1)).any():
            raise ValueError("quantiles must be in [0, 1]")
        idx = np.searchsorted(self._cum, q, side="left")
        idx = np.minimum(idx, self.n - 1)
        out = self.values[idx]
        if out.ndim == 0:
            return float(out)
        return out

    @property
    def median(self) -> float:
        """The distribution median."""
        return float(self.quantile(0.5))

    @property
    def mean(self) -> float:
        """Weighted mean of the sample."""
        w = np.diff(np.concatenate([[0.0], self._cum]))
        return float((self.values * w).sum())

    def fraction_at_or_below(self, x: float) -> float:
        """Alias of ``self(x)`` with a scalar return."""
        return float(self(x))

    def series(self, grid: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """``(grid, cdf(grid))`` pair for report tables."""
        grid = np.asarray(grid, dtype=np.float64)
        return grid, np.asarray(self(grid), dtype=np.float64)

    def __repr__(self) -> str:
        return (
            f"EmpiricalCDF(n={self.n}, median={self.median:.4g}, "
            f"range=[{self.values[0]:.4g}, {self.values[-1]:.4g}])"
        )
