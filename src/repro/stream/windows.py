"""Window management for the streaming tier.

Events are grouped into time windows ``[origin + i*slide, origin +
i*slide + window)`` over their *recorded* sample times; ``slide ==
window`` gives tumbling windows (the default), ``slide < window``
sliding windows whose overlap replicates events into every window that
covers them.  The origin is the recorded time of the first event to
arrive.

Out-of-order arrival is absorbed by a **watermark**: the largest
recorded time seen so far minus ``max_lag_min``.  A window closes —
and becomes eligible for anonymization — only once the watermark
passes its end, so any event arriving at most ``max_lag_min`` minutes
after its timestamp still lands in its nominal window.  Events later
than that hit the :attr:`StreamConfig.late_policy`:

* ``"redirect"`` (default) — the event joins the oldest still-open
  window.  Its recorded timestamp is untouched (published samples stay
  truthful); only the processing unit it is anonymized with shifts.
* ``"drop"`` — the event is discarded and counted.

An event is late only when *every* nominal window has closed; with
sliding windows, missing a closed replica while still landing in an
open one is ordinary overlap attrition, not lateness.  Events recorded
*before* the origin (possible only under reordering) are clamped into
window 0 by the same reasoning.

Memory is bounded by the open windows: ``ceil(window/slide)`` windows
of events plus the dictionary of per-user row lists, independent of
stream length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import floor
from typing import Dict, List, Optional

from repro.core.fingerprint import Fingerprint
from repro.stream.feed import StreamEvent, feed_fingerprint

#: Recognized late-event policies.
LATE_POLICIES = ("redirect", "drop")


@dataclass(frozen=True)
class StreamConfig:
    """Configuration of the streaming anonymization tier.

    Attributes
    ----------
    window_min:
        Window length in minutes (must be positive).
    slide_min:
        Distance between consecutive window starts, minutes.  ``None``
        (the default) means tumbling windows (``slide == window``);
        must be positive and at most ``window_min``.
    max_lag_min:
        Watermark allowance: how many minutes an event may arrive
        after its recorded timestamp and still join its nominal
        window.
    carry_over:
        Carry under-populated groups (count < k) from a closed window
        into the next window's population instead of folding them
        locally, so late-arriving subscribers can still reach
        k-anonymity (DESIGN.md D7).  Disabled, every window is
        anonymized independently with full batch semantics — the
        anchor-invariant configuration.
    late_policy:
        ``"redirect"`` (late events join the oldest open window) or
        ``"drop"`` (late events are discarded and counted).
    """

    window_min: float
    slide_min: Optional[float] = None
    max_lag_min: float = 0.0
    carry_over: bool = True
    late_policy: str = "redirect"

    def __post_init__(self) -> None:
        if self.window_min <= 0:
            raise ValueError(f"window must be positive, got {self.window_min}")
        if self.slide_min is not None and self.slide_min <= 0:
            raise ValueError(f"slide must be positive, got {self.slide_min}")
        if self.slide_min is not None and self.slide_min > self.window_min:
            raise ValueError(
                f"slide must not exceed window, got slide={self.slide_min} "
                f"> window={self.window_min}"
            )
        if self.max_lag_min < 0:
            raise ValueError(f"max-lag must be non-negative, got {self.max_lag_min}")
        if self.late_policy not in LATE_POLICIES:
            raise ValueError(
                f"late_policy must be one of {LATE_POLICIES}, got {self.late_policy!r}"
            )

    @property
    def slide(self) -> float:
        """Effective slide (tumbling windows when ``slide_min`` is unset)."""
        return self.slide_min if self.slide_min is not None else self.window_min


def add_stream_arguments(parser) -> None:
    """Attach the windowing flags to an argparse parser.

    Mirrors :func:`repro.core.config.add_compute_arguments` so the
    streaming surface is declared once for the ``glove stream``
    subcommand (and any future streaming entry point).
    """
    import argparse

    parser.add_argument(
        "--window",
        type=float,
        required=True,
        metavar="MINUTES",
        help="window length in minutes (a window spanning the whole "
        "recording with --no-carry-over reproduces batch GLOVE exactly)",
    )
    parser.add_argument(
        "--slide",
        type=float,
        default=None,
        metavar="MINUTES",
        help="distance between window starts (default: --window, i.e. "
        "tumbling windows; must not exceed --window)",
    )
    parser.add_argument(
        "--max-lag",
        type=float,
        default=0.0,
        metavar="MINUTES",
        help="watermark allowance: how late an event may arrive and "
        "still join its nominal window (default: 0)",
    )
    parser.add_argument(
        "--carry-over",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="carry under-populated groups into the next window "
        "(--no-carry-over anonymizes every window independently)",
    )
    parser.add_argument(
        "--late-policy",
        choices=LATE_POLICIES,
        default="redirect",
        help="what to do with events later than --max-lag (default: "
        "redirect into the oldest open window)",
    )
    parser.add_argument(
        "--feed-jitter",
        type=float,
        default=0.0,
        metavar="MINUTES",
        help="simulated arrival jitter of the replayed feed (default: 0 "
        "= in-order replay)",
    )
    parser.add_argument(
        "--feed-seed", type=int, default=0, help="seed of the arrival jitter"
    )


def stream_config_from_args(args) -> StreamConfig:
    """Build a :class:`StreamConfig` from parsed windowing flags.

    Invalid values (non-positive ``--window``/``--slide``, ``--slide``
    exceeding ``--window``, negative ``--max-lag``) exit with status 2
    and an ``error:`` line, matching the ``--workers``/``--shards``
    validation convention of the compute flags.
    """
    import sys

    try:
        if getattr(args, "feed_jitter", 0.0) < 0:
            raise ValueError(f"feed-jitter must be non-negative, got {args.feed_jitter}")
        return StreamConfig(
            window_min=args.window,
            slide_min=args.slide,
            max_lag_min=args.max_lag,
            carry_over=args.carry_over,
            late_policy=args.late_policy,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


@dataclass
class ClosedWindow:
    """One closed window's assembled per-user fingerprints.

    ``rows_by_uid`` maps each subscriber to their event rows in arrival
    order; :meth:`fingerprints` reassembles them in a canonical order
    independent of arrival interleaving, so any two arrival orders
    that land the same events in the same windows anonymize
    identically.  The default canonical order is lexicographic uid;
    callers that know the source dataset pass its insertion order via
    ``uid_order`` instead, which makes a whole-recording window's
    population identical to the batch input — the anchor invariant of
    DESIGN.md D7 holds for *any* dataset ordering, not only
    uid-sorted ones.
    """

    index: int
    start: float
    end: float
    rows_by_uid: Dict[str, List] = field(default_factory=dict)
    n_events: int = 0
    n_late_events: int = 0

    def add(self, event: StreamEvent, late: bool = False) -> None:
        """Record one event in this window."""
        self.rows_by_uid.setdefault(event.uid, []).append(event.row)
        self.n_events += 1
        if late:
            self.n_late_events += 1

    def fingerprints(self, uid_order: Optional[Dict[str, int]] = None) -> List[Fingerprint]:
        """Per-user fingerprints of the window, canonically ordered.

        ``uid_order`` maps uids to their source-dataset positions;
        unknown uids sort after known ones, lexicographically.
        """
        if uid_order is None:
            uids = sorted(self.rows_by_uid)
        else:
            n = len(uid_order)
            uids = sorted(self.rows_by_uid, key=lambda u: (uid_order.get(u, n), u))
        return [feed_fingerprint(uid, self.rows_by_uid[uid]) for uid in uids]


class WindowManager:
    """Assign events to windows and close them as the watermark advances.

    ``push(event)`` returns the (possibly empty) list of windows the
    event's arrival closed, oldest first; ``flush()`` closes whatever
    remains.  Windows that received no events are never materialized
    or emitted.
    """

    def __init__(self, config: StreamConfig):
        self.config = config
        self.origin: Optional[float] = None
        self._max_t = -float("inf")
        self._open: Dict[int, ClosedWindow] = {}
        self._next_to_close = 0
        self.n_redirected = 0
        self.n_dropped = 0

    # ------------------------------------------------------------------
    # Window arithmetic
    # ------------------------------------------------------------------
    def _bounds(self, index: int) -> tuple:
        slide = self.config.slide
        start = self.origin + index * slide
        return start, start + self.config.window_min

    def _nominal_indices(self, t: float) -> range:
        """Indices of every window whose span contains ``t`` (clamped at 0)."""
        slide = self.config.slide
        hi = floor((t - self.origin) / slide)
        lo = floor((t - self.origin - self.config.window_min) / slide) + 1
        return range(max(lo, 0), max(hi, 0) + 1)

    def _window(self, index: int) -> ClosedWindow:
        win = self._open.get(index)
        if win is None:
            start, end = self._bounds(index)
            win = ClosedWindow(index=index, start=start, end=end)
            self._open[index] = win
        return win

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def push(self, event: StreamEvent) -> List[ClosedWindow]:
        """Route one event; returns windows closed by the watermark advance.

        An event is *late* only when every one of its nominal windows
        has already closed; it is then redirected or dropped (and
        counted) once, per the late policy.  With sliding windows an
        event may miss a closed replica while still landing in an open
        one — that is ordinary overlap attrition, not lateness, and is
        not counted.
        """
        if self.origin is None:
            self.origin = event.t
        self._max_t = max(self._max_t, event.t)

        open_nominal = [i for i in self._nominal_indices(event.t) if i >= self._next_to_close]
        if open_nominal:
            for i in open_nominal:
                self._window(i).add(event)
        elif self.config.late_policy == "drop":
            self.n_dropped += 1
        else:
            self.n_redirected += 1
            self._window(self._next_to_close).add(event, late=True)

        return self._advance_watermark()

    def _advance_watermark(self) -> List[ClosedWindow]:
        """Close, oldest first, every window the watermark has passed."""
        watermark = self._max_t - self.config.max_lag_min
        slide = self.config.slide
        # Direct jump: the first index whose end exceeds the watermark.
        first_open = floor((watermark - self.config.window_min - self.origin) / slide) + 1
        first_open = max(first_open, self._next_to_close)
        closed = [
            self._open.pop(i) for i in range(self._next_to_close, first_open) if i in self._open
        ]
        self._next_to_close = first_open
        return closed

    def flush(self) -> List[ClosedWindow]:
        """Close every remaining window, oldest first."""
        closed = [self._open[i] for i in sorted(self._open)]
        self._next_to_close = max([self._next_to_close] + [w.index + 1 for w in closed])
        self._open.clear()
        return closed

    @property
    def n_open(self) -> int:
        """Materialized windows still accepting events."""
        return len(self._open)

    @property
    def next_index(self) -> int:
        """The smallest window index that has not closed yet."""
        return self._next_to_close

    @property
    def max_time(self) -> float:
        """Largest recorded event time seen (``-inf`` before any event)."""
        return self._max_t
