"""Incremental windowed GLOVE: anonymize a stream window by window.

Each window closed by the :class:`~repro.stream.windows.WindowManager`
is k-anonymized with the *existing* pruned greedy loop of
:mod:`repro.core.glove` on a fresh
:class:`~repro.core.engine.StretchEngine` — the streaming tier adds no
second anonymization algorithm, only orchestration:

* **Carry-over** (default): a window's greedy loop emits its finished
  groups (count >= k) and hands its at-most-one under-populated
  leftover to the *next* window's population, so subscribers arriving
  too late or too sparsely to reach k-anonymity inside one window get
  a second chance — the temporal analogue of the sharded tier's
  cross-shard boundary repair (DESIGN.md D5/D7).  A window whose whole
  population is below ``k`` is *deferred*: nothing is emitted and
  everything carries forward.  When a carried group's member emits
  fresh events in a later window, that native fingerprint is absorbed
  into the carried group through the standard Eq. 12-13 merge (member
  set unchanged), so no subscriber is ever claimed twice within one
  window's publication.

  At end of stream the remaining carry pool is repaired exactly like
  shard boundaries: a pool that can reach ``k`` on its own is
  anonymized as a residual window; a pool below ``k`` is folded into
  the nearest groups of the last emitted window (held back,
  pre-suppression, for exactly this purpose — one window of lookahead,
  so memory stays O(window)).

* **Carry-over disabled**: every window is anonymized independently
  with full batch semantics (:func:`repro.core.glove.glove`, including
  leftover folding and backend/driver dispatch).  This is the
  anchor-invariant configuration: one window covering the whole
  recording is byte-identical to batch GLOVE.

Suppression is applied per emitted window through the same
:func:`repro.core.glove.finalize_result` path as the batch tier, and
accounted per window (:class:`~repro.stream.stats.WindowStats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set

from repro.core.config import ComputeConfig, GloveConfig
from repro.core.dataset import FingerprintDataset
from repro.core.engine import StretchEngine, get_default_compute
from repro.core.fingerprint import Fingerprint
from repro.core.glove import (
    GloveResult,
    GloveStats,
    _greedy_merge,
    finalize_result,
    glove,
    validate_population,
)
from repro.core.merge import merge_fingerprints
from repro.core.reshape import reshape_fingerprint
from repro.core.shard import _boundary_repair
from repro.obs import get_metrics
from repro.stream.feed import ReplayFeed, StreamEvent, replay_dataset
from repro.stream.stats import StreamStats, WindowStats
from repro.stream.windows import ClosedWindow, StreamConfig, WindowManager


@dataclass
class WindowResult:
    """One window's publication (or deferral record).

    ``result`` is the window's :class:`~repro.core.glove.GloveResult`
    — ``None`` for deferred windows, whose population was carried
    forward unpublished.
    """

    index: int
    start_min: float
    end_min: float
    stats: WindowStats
    result: Optional[GloveResult] = None

    @property
    def emitted(self) -> bool:
        """Whether this window published any groups."""
        return self.result is not None

    @property
    def dataset(self) -> FingerprintDataset:
        """The window's published groups (empty for deferred windows)."""
        if self.result is None:
            return FingerprintDataset(name=f"w{self.index}-deferred")
        return self.result.dataset


@dataclass
class StreamResult:
    """All windows of one streaming run plus aggregate statistics."""

    windows: List[WindowResult] = field(default_factory=list)
    config: GloveConfig = field(default_factory=GloveConfig)
    stream: StreamConfig = field(default_factory=lambda: StreamConfig(window_min=1.0))
    stats: StreamStats = field(default_factory=StreamStats)

    @property
    def emitted(self) -> List[WindowResult]:
        """The windows that published groups, in window order."""
        return [w for w in self.windows if w.emitted]

    def combined_dataset(self, name: str = "stream") -> FingerprintDataset:
        """All published windows concatenated into one dataset.

        Group uids are unique within a window but may repeat across
        windows (a subscriber active in several windows, or identical
        merge labels); repeats are disambiguated with an ``@w<index>``
        suffix.  With a single emitted window the output is exactly
        that window's dataset — the CSV serialization of the anchor
        invariant relies on this.
        """
        out = FingerprintDataset(name=name)
        for window in self.emitted:
            for fp in window.dataset:
                uid = fp.uid
                if uid in out:
                    uid = f"{fp.uid}@w{window.index}"
                    n = 0
                    while uid in out:
                        n += 1
                        uid = f"{fp.uid}@w{window.index}.{n}"
                    fp = Fingerprint(uid, fp.data, count=fp.count, members=fp.members)
                out.add(fp)
        return out


class _PendingWindow:
    """An emitted window held back, pre-suppression, for residual repair."""

    def __init__(self, index, start, end, finished, glove_stats, wstats, name):
        self.index = index
        self.start = start
        self.end = end
        self.finished: List[Fingerprint] = finished
        self.glove_stats: GloveStats = glove_stats
        self.wstats: WindowStats = wstats
        self.name = name


def _absorb(group: Fingerprint, native: Fingerprint, config: GloveConfig) -> Fingerprint:
    """Fold a carried member's fresh fingerprint into their carried group.

    Uses the standard specialized-generalization merge so the group's
    published trace covers the member's new samples, then restores the
    group's identity: the member is already counted, so ``count`` and
    ``members`` must not grow (DESIGN.md D7).
    """
    merged = merge_fingerprints(group, native, config.stretch, uid=group.uid)
    if config.reshape:
        merged = reshape_fingerprint(merged)
    return Fingerprint(group.uid, merged.data, count=group.count, members=group.members)


def _assemble(
    closed: ClosedWindow,
    carry: List[Fingerprint],
    config: GloveConfig,
    wstats: WindowStats,
    uid_order: Optional[dict] = None,
) -> List[Fingerprint]:
    """A window's population: carried groups first, then native users.

    Native fingerprints are assembled in the canonical order of
    :meth:`~repro.stream.windows.ClosedWindow.fingerprints` —
    arrival-independent — and any native uid already claimed by a
    carried group is absorbed into that group instead of forming a
    duplicate claim.
    """
    population: List[Fingerprint] = list(carry)
    claimed = {}
    for pos, fp in enumerate(population):
        for member in fp.members:
            claimed[member] = pos
    wstats.n_carried_in = len(carry)
    wstats.n_carried_in_members = sum(fp.count for fp in carry)
    for fp in closed.fingerprints(uid_order):
        pos = claimed.get(fp.uid)
        if pos is not None:
            population[pos] = _absorb(population[pos], fp, config)
            wstats.n_absorbed += 1
        else:
            population.append(fp)
            wstats.n_native_fingerprints += 1
    return population


def _batch_result(
    dataset: FingerprintDataset,
    config: GloveConfig,
    compute: ComputeConfig,
    wstats: WindowStats,
):
    """Run batch :func:`glove` for one window and record its stats."""
    result = glove(dataset, config, compute)
    wstats.n_groups = len(result.dataset)
    wstats.n_merges = result.stats.n_merges
    wstats.suppression = result.stats.suppression
    wstats.n_boundary_crossings = result.stats.n_boundary_crossings
    wstats.n_probe_dispatches = result.stats.n_probe_dispatches
    wstats.n_batched_probes = result.stats.n_batched_probes
    wstats.n_bound_pruned = result.stats.n_bound_pruned
    return result


def _fold_residue(
    pending: "_PendingWindow",
    residue: List[Fingerprint],
    config: GloveConfig,
    compute: ComputeConfig,
) -> None:
    """Fold a below-k end-of-stream residue into the held-back window.

    A residue fingerprint belonging to subscribers the window *already
    published* (users active both in the window and in a trailing
    deferred window) is absorbed into the group that claims them —
    merging samples, not membership, so no subscriber is claimed twice
    within the publication.  Only genuinely unpublished subscribers go
    through the cross-boundary repair that grows a nearest group's
    count (the sharded tier's mechanism, DESIGN.md D5/D7).
    """
    claimed = {}
    for pos, group in enumerate(pending.finished):
        for member in group.members:
            claimed[member] = pos
    to_repair: List[Fingerprint] = []
    for fp in residue:
        owners = {claimed.get(member) for member in fp.members}
        if owners == {None}:
            to_repair.append(fp)
            continue
        if len(owners) != 1 or None in owners:
            # Leftover lineages are disjoint from finished groups, so a
            # residue fingerprint is either fully unpublished or fully
            # owned by one group; anything else is an internal error.
            raise RuntimeError(
                f"residue fingerprint {fp.uid!r} straddles published groups"
            )
        pos = owners.pop()
        pending.finished[pos] = _absorb(pending.finished[pos], fp, config)
    if to_repair:
        _boundary_repair(pending.finished, to_repair, config, compute, pending.glove_stats)


def _window_stats(closed: ClosedWindow) -> WindowStats:
    return WindowStats(
        index=closed.index,
        start_min=closed.start,
        end_min=closed.end,
        n_events=closed.n_events,
        n_late_events=closed.n_late_events,
    )


def _finalize(pending: _PendingWindow, config: GloveConfig) -> WindowResult:
    """Package a held-back window: suppression, stats, result."""
    t0 = time.perf_counter()
    out = FingerprintDataset(name=pending.name)
    for fp in pending.finished:
        out.add(fp)
    pending.glove_stats.n_output_fingerprints = len(out)
    result = finalize_result(out, pending.glove_stats, config)
    pending.wstats.n_groups = len(result.dataset)
    pending.wstats.n_merges = pending.glove_stats.n_merges
    pending.wstats.suppression = result.stats.suppression
    pending.wstats.n_boundary_crossings = pending.glove_stats.n_boundary_crossings
    pending.wstats.n_probe_dispatches = pending.glove_stats.n_probe_dispatches
    pending.wstats.n_batched_probes = pending.glove_stats.n_batched_probes
    pending.wstats.n_bound_pruned = pending.glove_stats.n_bound_pruned
    pending.wstats.wall_s += time.perf_counter() - t0
    return WindowResult(
        index=pending.index,
        start_min=pending.start,
        end_min=pending.end,
        stats=pending.wstats,
        result=result,
    )


def iter_stream_glove(
    feed: Iterable[StreamEvent],
    config: GloveConfig = GloveConfig(),
    stream: StreamConfig = StreamConfig(window_min=24 * 60.0),
    compute: Optional[ComputeConfig] = None,
    stats: Optional[StreamStats] = None,
    feed_name: str = "stream",
    uid_order: Optional[dict] = None,
) -> Iterator[WindowResult]:
    """Anonymize an event feed window by window, yielding as windows close.

    The bounded-memory core of the streaming tier: holds the open
    windows' events, the carry pool, and (with carry-over) one emitted
    window of lookahead.  Windows are yielded in index order.  With
    carry-over disabled a window whose population cannot reach ``k``
    raises ``ValueError`` (enable carry-over to defer it instead).
    ``uid_order`` (uid -> source-dataset position) selects the
    canonical within-window population order; see
    :meth:`~repro.stream.windows.ClosedWindow.fingerprints`.
    """
    compute = compute if compute is not None else get_default_compute()
    stats = stats if stats is not None else StreamStats()
    manager = WindowManager(stream)
    carry: List[Fingerprint] = []
    pending: Optional[_PendingWindow] = None
    trailing: List[WindowResult] = []
    users: Set[str] = set()
    k = config.k
    last_end = None

    def process(closed: ClosedWindow):
        """Anonymize one closed window; returns results ready to yield."""
        nonlocal carry, pending, trailing, last_end
        t0 = time.perf_counter()
        wstats = _window_stats(closed)
        last_end = closed.end if last_end is None else max(last_end, closed.end)
        name = f"{feed_name}-w{closed.index}-glove-k{k}"

        if not stream.carry_over:
            window_ds = FingerprintDataset(
                closed.fingerprints(uid_order), name=f"{feed_name}-w{closed.index}"
            )
            wstats.n_native_fingerprints = len(window_ds)
            if window_ds.n_users < k:
                raise ValueError(
                    f"window {closed.index} holds {window_ds.n_users} subscribers, "
                    f"below k={k}; enable carry-over to defer under-populated windows"
                )
            result = _batch_result(window_ds, config, compute, wstats)
            wstats.wall_s = time.perf_counter() - t0
            stats.record_window(wstats)
            return [
                WindowResult(
                    index=closed.index,
                    start_min=closed.start,
                    end_min=closed.end,
                    stats=wstats,
                    result=result,
                )
            ]

        population = _assemble(closed, carry, config, wstats, uid_order)
        carry = []
        total = sum(fp.count for fp in population)
        if total < k:
            carry = population
            wstats.deferred = True
            wstats.carried_out_members = total
            wstats.wall_s = time.perf_counter() - t0
            stats.record_window(wstats)
            deferred = WindowResult(
                index=closed.index, start_min=closed.start, end_min=closed.end, stats=wstats
            )
            if pending is None:
                return [deferred]
            trailing.append(deferred)
            return []

        glove_stats = GloveStats(n_input_fingerprints=len(population))
        with StretchEngine(population, stretch=config.stretch, compute=compute) as engine:
            finished, leftover, _ = _greedy_merge(engine, population, config, glove_stats)
            finished_fps = [engine.store.fps[s] for s in finished]
            leftover_fp = engine.store.fps[leftover] if leftover is not None else None
            (
                glove_stats.n_boundary_crossings,
                glove_stats.n_probe_dispatches,
                glove_stats.n_batched_probes,
                glove_stats.n_bound_pruned,
            ) = engine.backend.dispatch_counters()
        if leftover_fp is not None:
            carry = [leftover_fp]
            wstats.carried_out_members = leftover_fp.count
        wstats.wall_s = time.perf_counter() - t0

        ready: List[WindowResult] = []
        if pending is not None:
            result = _finalize(pending, config)
            stats.record_window(result.stats)
            ready.append(result)
        ready.extend(trailing)
        trailing = []
        pending = _PendingWindow(
            closed.index, closed.start, closed.end, finished_fps, glove_stats, wstats, name
        )
        return ready

    t_start = time.perf_counter()
    for event in feed:
        stats.n_events += 1
        users.add(event.uid)
        for closed in manager.push(event):
            yield from process(closed)
    for closed in manager.flush():
        yield from process(closed)

    # End of stream: repair the residual carry pool (DESIGN.md D7).
    if carry:
        total = sum(fp.count for fp in carry)
        if total >= k:
            t0 = time.perf_counter()
            index = manager.next_index
            start = last_end if last_end is not None else 0.0
            end = max(start, manager.max_time)
            wstats = WindowStats(index=index, start_min=start, end_min=end)
            wstats.residual = True
            wstats.n_carried_in = len(carry)
            wstats.n_carried_in_members = total
            residual_ds = FingerprintDataset(carry, name=f"{feed_name}-residual")
            result = _batch_result(residual_ds, config, compute, wstats)
            wstats.wall_s = time.perf_counter() - t0
            if pending is not None:
                done = _finalize(pending, config)
                stats.record_window(done.stats)
                yield done
                pending = None
            yield from trailing
            trailing = []
            stats.record_window(wstats)
            yield WindowResult(
                index=index, start_min=start, end_min=end, stats=wstats, result=result
            )
        elif pending is None:
            # No window was ever emitted, so there is nothing to fold
            # the below-k residue into.  Input validation guarantees
            # the *full* population reaches k, so this only happens
            # when the run itself was lossy (late events discarded
            # under ``late_policy="drop"``); the residue is suppressed
            # and accounted rather than crashing a by-design-lossy run.
            stats.n_unpublished_members = total
        else:
            # Below-k residue: fold into the held-back window's groups,
            # the temporal analogue of cross-shard boundary repair.
            t0 = time.perf_counter()
            _fold_residue(pending, carry, config, compute)
            pending.wstats.carried_out_members = 0
            pending.wstats.n_carried_in += len(carry)
            pending.wstats.n_carried_in_members += total
            pending.wstats.wall_s += time.perf_counter() - t0
        carry = []

    if pending is not None:
        done = _finalize(pending, config)
        stats.record_window(done.stats)
        yield done
    yield from trailing

    stats.n_users = len(users)
    stats.n_late_redirected = manager.n_redirected
    stats.n_late_dropped = manager.n_dropped
    stats.wall_s = time.perf_counter() - t_start
    stats.record_metrics(get_metrics())


def stream_glove(
    dataset: FingerprintDataset,
    config: GloveConfig = GloveConfig(),
    stream: StreamConfig = StreamConfig(window_min=24 * 60.0),
    compute: Optional[ComputeConfig] = None,
    feed: Optional[ReplayFeed] = None,
) -> StreamResult:
    """k-anonymize a dataset as a windowed stream; returns every window.

    Replays ``dataset`` as a timestamped event feed (or consumes the
    given pre-built ``feed``) and runs :func:`iter_stream_glove` to
    completion.  Every *emitted* window hides each of its subscribers
    in a crowd of at least ``config.k``; a single window covering the
    whole recording with carry-over disabled reproduces batch
    :func:`repro.core.glove.glove` byte for byte (DESIGN.md D7).
    """
    validate_population(list(dataset), config.k)
    if feed is None:
        feed = replay_dataset(dataset)
    stats = StreamStats()
    uid_order = {uid: pos for pos, uid in enumerate(dataset.uids)}
    windows = list(
        iter_stream_glove(
            feed,
            config,
            stream,
            compute,
            stats=stats,
            feed_name=dataset.name,
            uid_order=uid_order,
        )
    )
    windows.sort(key=lambda w: w.index)
    return StreamResult(windows=windows, config=config, stream=stream, stats=stats)
