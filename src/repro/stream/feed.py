"""Event-feed adapter: replay a fingerprint dataset as a CDR stream.

A live deployment would consume call detail records from a message
bus; the reproduction's stand-in replays any in-memory
:class:`~repro.core.dataset.FingerprintDataset` as a totally ordered
sequence of :class:`StreamEvent` — one event per original-granularity
sample, carrying the subscriber's pseudo-identifier and the full
``(6,)`` sample row, so windows can reassemble fingerprints that are
bit-for-bit equal to the batch input (the anchor invariant of
DESIGN.md D7 depends on this).

Arrival order is the sample start time; an optional bounded jitter
(``max_jitter_min``, seeded) delays each event's *arrival* by up to
that many minutes without touching its recorded timestamp, simulating
the out-of-order delivery a real feed exhibits.  The window manager's
watermark (:mod:`repro.stream.windows`) absorbs any disorder up to its
``max_lag_min``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import NCOLS, T


@dataclass(frozen=True)
class StreamEvent:
    """One replayed CDR event.

    Attributes
    ----------
    uid:
        Pseudo-identifier of the subscriber the sample belongs to.
    t:
        Recorded sample start time, minutes from the dataset epoch
        (``row[T]``, duplicated for cheap access).
    row:
        The full ``(6,)`` sample row (``x, dx, y, dy, t, dt``).
    """

    uid: str
    t: float
    row: np.ndarray


class ReplayFeed:
    """A materialized, arrival-ordered replay of a dataset.

    Stores the event table as flat arrays (uids list + ``(n, 6)`` row
    block in arrival order) so a feed is cheap to pickle — it is the
    value of the ``feed`` pipeline stage (:meth:`Pipeline.feed`) — and
    iterates as :class:`StreamEvent` objects.
    """

    def __init__(self, uids: List[str], rows: np.ndarray, name: str = "feed"):
        if rows.ndim != 2 or rows.shape[1] != NCOLS:
            raise ValueError(f"feed rows must have shape (n, {NCOLS}), got {rows.shape}")
        if len(uids) != rows.shape[0]:
            raise ValueError(f"{len(uids)} uids for {rows.shape[0]} rows")
        self.uids = list(uids)
        self.rows = np.ascontiguousarray(rows, dtype=np.float64)
        self.name = str(name)

    def __len__(self) -> int:
        return self.rows.shape[0]

    def __iter__(self) -> Iterator[StreamEvent]:
        for uid, row in zip(self.uids, self.rows):
            yield StreamEvent(uid=uid, t=float(row[T]), row=row)

    @property
    def n_users(self) -> int:
        """Distinct subscribers appearing in the feed."""
        return len(set(self.uids))

    def time_extent(self) -> tuple:
        """``(t_min, t_max)`` of the recorded sample start times."""
        if len(self) == 0:
            return (0.0, 0.0)
        t = self.rows[:, T]
        return (float(t.min()), float(t.max()))


def replay_dataset(
    dataset: FingerprintDataset,
    max_jitter_min: float = 0.0,
    seed: int = 0,
    name: str = None,
) -> ReplayFeed:
    """Flatten a dataset into an arrival-ordered :class:`ReplayFeed`.

    Events are ordered by recorded sample time plus a per-event arrival
    jitter drawn uniformly from ``[0, max_jitter_min)`` (deterministic
    in ``seed``); ties preserve dataset order, so with zero jitter the
    replay is the unique stable time-ordering of the input samples.

    Only ungrouped populations can be replayed: a fingerprint with
    ``count > 1`` is already a published group, not a raw CDR source,
    and raises ``ValueError``.
    """
    if max_jitter_min < 0:
        raise ValueError(f"max_jitter_min must be non-negative, got {max_jitter_min}")
    grouped = [fp.uid for fp in dataset if fp.count != 1]
    if grouped:
        raise ValueError(
            f"cannot replay grouped fingerprints (count > 1): {grouped[:3]!r}; "
            "feeds carry raw per-subscriber events"
        )
    uids: List[str] = []
    blocks: List[np.ndarray] = []
    for fp in dataset:
        uids.extend([fp.uid] * fp.m)
        blocks.append(fp.data)
    rows = (
        np.concatenate(blocks, axis=0) if blocks else np.empty((0, NCOLS), dtype=np.float64)
    )
    arrival = rows[:, T].copy()
    if max_jitter_min > 0 and rows.shape[0]:
        rng = np.random.default_rng(seed)
        arrival = arrival + rng.uniform(0.0, max_jitter_min, size=rows.shape[0])
    order = np.argsort(arrival, kind="stable")
    return ReplayFeed(
        [uids[int(i)] for i in order],
        rows[order],
        name=name or f"{dataset.name}-feed",
    )


def feed_fingerprint(uid: str, rows: List[np.ndarray]) -> Fingerprint:
    """Reassemble one subscriber's fingerprint from their event rows.

    Rows are stacked in arrival order; the :class:`Fingerprint`
    constructor re-sorts them stably by sample time, so a feed replayed
    without reordering reproduces the batch fingerprint byte for byte.
    """
    return Fingerprint(uid, np.vstack(rows))
