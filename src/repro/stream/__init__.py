"""Streaming anonymization: windowed incremental GLOVE over CDR feeds.

Everything in the rest of the repository is batch — a complete dataset
in, an anonymized dataset out.  This package opens the streaming
workload class the ROADMAP's production north-star requires: call
detail records arrive as an ordered event feed, per-user fingerprints
are assembled inside sliding/tumbling time windows, and each window is
k-anonymized with the existing pruned GLOVE engine as it closes, with
bounded O(window) memory.

* :mod:`repro.stream.feed` — replay any in-memory dataset as a
  timestamped event stream (optionally with bounded arrival jitter to
  exercise out-of-order delivery);
* :mod:`repro.stream.windows` — the window manager: tumbling/sliding
  windows, watermark advancement, late-event policy;
* :mod:`repro.stream.driver` — the incremental driver: per-window
  greedy GLOVE via :mod:`repro.core.glove`/:mod:`repro.core.engine`,
  carry-over of under-populated groups into the next window, residual
  repair at end of stream (mirroring the sharded tier's cross-shard
  boundary repair, DESIGN.md D5/D7);
* :mod:`repro.stream.stats` — per-window suppression/latency
  accounting and stream-level throughput aggregates.

The anchor invariant (DESIGN.md D7): a single window covering the
whole recording with carry-over disabled is byte-identical to batch
:func:`repro.core.glove.glove`.
"""

from repro.stream.driver import StreamResult, WindowResult, stream_glove
from repro.stream.feed import ReplayFeed, StreamEvent, replay_dataset
from repro.stream.stats import StreamStats, WindowStats
from repro.stream.windows import ClosedWindow, StreamConfig, WindowManager

__all__ = [
    "ClosedWindow",
    "ReplayFeed",
    "StreamConfig",
    "StreamEvent",
    "StreamResult",
    "StreamStats",
    "WindowManager",
    "WindowResult",
    "WindowStats",
    "replay_dataset",
    "stream_glove",
]
