"""Per-window and stream-level accounting of the streaming tier.

The batch tier reports one :class:`~repro.core.glove.GloveStats` per
run; the streaming tier must make the privacy guarantee *reportable
per window* (every window is a separate publication, DESIGN.md D7) and
additionally expose the serving metrics a feed consumer cares about:
events per second and the per-window processing latency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.suppression import SuppressionStats
from repro.obs import get_metrics


@dataclass
class WindowStats:
    """Bookkeeping of one emitted (or deferred) window.

    Attributes
    ----------
    index, start_min, end_min:
        Window identity and nominal bounds (minutes from epoch).
    n_events:
        Events routed into the window (including redirected late ones).
    n_late_events:
        Events that joined this window through the ``redirect`` late
        policy after their nominal window had closed.
    n_native_fingerprints:
        Subscribers whose events formed a fresh fingerprint in this
        window (after absorption into carried groups).
    n_carried_in:
        Under-populated groups carried into this window's population
        from earlier windows.
    n_carried_in_members:
        Subscribers hidden in those carried groups.
    n_absorbed:
        Native fingerprints absorbed into a carried group because the
        group already claimed their uid (DESIGN.md D7).
    deferred:
        The window's whole population was below ``k`` and was carried
        forward instead of being anonymized (nothing emitted).
    residual:
        The window was synthesized at end of stream from the remaining
        carry pool rather than closed by the watermark.
    n_groups:
        Groups emitted for this window.
    n_merges:
        Pairwise merges performed while anonymizing the window.
    carried_out_members:
        Subscribers left under-populated by this window and carried
        into the next one (0 when carry-over is off).
    suppression:
        Sample-suppression statistics of the emitted window.
    wall_s:
        Processing latency of the window (assembly + GLOVE + output).
    n_boundary_crossings, n_probe_dispatches, n_batched_probes:
        Stretch-backend dispatch counters harvested from the window's
        engine (zero for deferred windows, which run no merges).
    """

    index: int
    start_min: float
    end_min: float
    n_events: int = 0
    n_late_events: int = 0
    n_native_fingerprints: int = 0
    n_carried_in: int = 0
    n_carried_in_members: int = 0
    n_absorbed: int = 0
    deferred: bool = False
    residual: bool = False
    n_groups: int = 0
    n_merges: int = 0
    carried_out_members: int = 0
    suppression: Optional[SuppressionStats] = None
    wall_s: float = 0.0
    n_boundary_crossings: int = 0
    n_probe_dispatches: int = 0
    n_batched_probes: int = 0
    n_bound_pruned: int = 0


@dataclass
class StreamStats:
    """Aggregate statistics of one streaming run.

    ``events_per_sec`` measures end-to-end throughput (feed iteration,
    windowing, anonymization); the latency quantiles describe the
    per-window processing cost distribution over *emitted* windows.
    ``n_unpublished_members`` counts subscribers whose end-of-stream
    residue stayed below ``k`` with no emitted window to fold them
    into — possible only when the run itself was lossy (late events
    discarded under the ``drop`` policy); their data is suppressed.
    """

    n_events: int = 0
    n_users: int = 0
    n_windows: int = 0
    n_emitted_windows: int = 0
    n_deferred_windows: int = 0
    n_late_redirected: int = 0
    n_late_dropped: int = 0
    n_unpublished_members: int = 0
    n_groups: int = 0
    n_merges: int = 0
    max_carried_members: int = 0
    wall_s: float = 0.0
    window_wall_s: List[float] = field(default_factory=list)
    n_boundary_crossings: int = 0
    n_probe_dispatches: int = 0
    n_batched_probes: int = 0
    n_bound_pruned: int = 0
    suppression_total_samples: int = 0
    suppression_discarded_samples: int = 0
    suppression_discarded_fingerprints: int = 0

    @property
    def events_per_sec(self) -> float:
        """End-to-end event throughput of the run."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_events / self.wall_s

    @property
    def suppression_rate(self) -> float:
        """Fraction of published samples discarded by output suppression."""
        if self.suppression_total_samples <= 0:
            return 0.0
        return self.suppression_discarded_samples / self.suppression_total_samples

    def latency_quantile(self, q: float) -> float:
        """Per-window processing latency quantile, in seconds.

        Robust at the edges: with no emitted windows every quantile is
        0.0, with a single emitted window every quantile is that
        window's latency, and ``q`` is clamped into ``[0, 1]`` rather
        than propagating to a raising ``np.quantile`` call.
        """
        if not self.window_wall_s:
            return 0.0
        q = min(max(float(q), 0.0), 1.0)
        if len(self.window_wall_s) == 1:
            return float(self.window_wall_s[0])
        return float(np.quantile(np.asarray(self.window_wall_s), q))

    @property
    def latency_p50_s(self) -> float:
        """Median per-window processing latency."""
        return self.latency_quantile(0.5)

    @property
    def latency_p95_s(self) -> float:
        """95th-percentile per-window processing latency."""
        return self.latency_quantile(0.95)

    def record_window(self, window: WindowStats) -> None:
        """Fold one window's bookkeeping into the aggregates."""
        self.n_windows += 1
        if window.deferred:
            self.n_deferred_windows += 1
        else:
            self.n_emitted_windows += 1
            self.window_wall_s.append(window.wall_s)
            # Live-run view only; the canonical p50/p95 gauges are
            # re-derived from window_wall_s at harvest time, so cached
            # runs (which never pass here) still report latency.
            get_metrics().histogram("stream.window_wall_s").observe(window.wall_s)
        self.n_groups += window.n_groups
        self.n_merges += window.n_merges
        self.max_carried_members = max(self.max_carried_members, window.carried_out_members)
        self.n_boundary_crossings += window.n_boundary_crossings
        self.n_probe_dispatches += window.n_probe_dispatches
        self.n_batched_probes += window.n_batched_probes
        self.n_bound_pruned += window.n_bound_pruned
        if window.suppression is not None:
            self.suppression_total_samples += window.suppression.total_samples
            self.suppression_discarded_samples += window.suppression.discarded_samples
            self.suppression_discarded_fingerprints += (
                window.suppression.discarded_fingerprints
            )

    def record_metrics(self, registry) -> None:
        """Publish the aggregates into a metrics registry (D12).

        Uses absolute writes (``set_to``/``set``) throughout, so the
        harvest is idempotent — the CLI calls this on the final stats
        object whether the run executed live or was served from the
        artifact cache, and a repeated call never double-counts.
        """
        counters = {
            "stream.events": self.n_events,
            "stream.users": self.n_users,
            "stream.windows": self.n_windows,
            "stream.windows_emitted": self.n_emitted_windows,
            "stream.windows_deferred": self.n_deferred_windows,
            "stream.late_redirected": self.n_late_redirected,
            "stream.late_dropped": self.n_late_dropped,
            "stream.unpublished_members": self.n_unpublished_members,
            "stream.groups": self.n_groups,
            "stream.merges": self.n_merges,
            "stream.suppressed_samples": self.suppression_discarded_samples,
            "stream.suppressed_fingerprints": self.suppression_discarded_fingerprints,
            "engine.boundary_crossings": self.n_boundary_crossings,
            "engine.probe_dispatches": self.n_probe_dispatches,
            "engine.batched_probes": self.n_batched_probes,
            "engine.bound_pruned": self.n_bound_pruned,
        }
        for name, value in counters.items():
            registry.counter(name).set_to(value)
        gauges = {
            "stream.events_per_sec": self.events_per_sec,
            "stream.window_latency_p50_s": self.latency_p50_s,
            "stream.window_latency_p95_s": self.latency_p95_s,
            "stream.suppression_rate": self.suppression_rate,
            "stream.carry_over_depth": float(self.max_carried_members),
            "stream.wall_s": self.wall_s,
        }
        for name, value in gauges.items():
            registry.gauge(name).set(value)
