"""Record-linkage attacks against (anonymized) fingerprint datasets.

The adversary holds spatiotemporal side information about a target and
tries to pin the target's record down inside the published dataset.
The attack returns the *candidate set*: published subscribers
consistent with every constraint.  A candidate set of size one breaks
the target's privacy; k-anonymity guarantees the set never shrinks
below ``k`` when the target is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.knowledge import (
    constraint_matches_fingerprint,
    random_sample_knowledge,
    top_locations_knowledge,
)
from repro.core.dataset import FingerprintDataset


@dataclass(frozen=True)
class AttackOutcome:
    """Result of running a linkage attack over every user of a dataset.

    Attributes
    ----------
    candidate_counts:
        For each attacked user, the number of *subscribers* (group
        counts included) consistent with the adversary knowledge.
    """

    candidate_counts: np.ndarray

    @property
    def uniqueness(self) -> float:
        """Fraction of users pinned down to a single subscriber."""
        return float((self.candidate_counts == 1).mean())

    def fraction_identified_within(self, k: int) -> float:
        """Fraction of users narrowed to a *non-empty* set below ``k``.

        An empty candidate set (possible when suppression removed the
        known samples from the publication) identifies nobody and does
        not count: the adversary learns the target is absent-looking,
        not who the target is.
        """
        counts = self.candidate_counts
        return float(((counts >= 1) & (counts < k)).mean())

    @property
    def min_candidates(self) -> int:
        """Worst-case candidate-set size across attacked users."""
        return int(self.candidate_counts.min())

    def worst_nonempty_candidates(self) -> int:
        """Smallest non-empty candidate set (0 if all sets are empty)."""
        nonempty = self.candidate_counts[self.candidate_counts >= 1]
        if nonempty.size == 0:
            return 0
        return int(nonempty.min())


def linkage_attack(
    published: FingerprintDataset, constraints
) -> int:
    """Candidate subscribers consistent with one target's constraints.

    Returns the total number of subscribers (sum of group counts) whose
    published fingerprints match *all* constraints.
    """
    total = 0
    for fp in published:
        if all(constraint_matches_fingerprint(c, fp) for c in constraints):
            total += fp.count
    return total


def uniqueness_given_top_locations(
    original: FingerprintDataset,
    published: Optional[FingerprintDataset] = None,
    n_locations: int = 3,
) -> AttackOutcome:
    """Zang & Bolot's attack: adversary knows each user's top-N locations.

    Knowledge is always extracted from the *original* data (that is
    what an adversary observes in the world); the candidate search runs
    against ``published`` (defaults to the original itself, which
    reproduces the high-uniqueness premise).
    """
    if published is None:
        published = original
    counts = [
        linkage_attack(published, top_locations_knowledge(fp, n_locations))
        for fp in original
    ]
    return AttackOutcome(candidate_counts=np.asarray(counts, dtype=np.int64))


def uniqueness_given_random_points(
    original: FingerprintDataset,
    published: Optional[FingerprintDataset] = None,
    n_points: int = 4,
    seed: int = 0,
) -> AttackOutcome:
    """de Montjoye et al.'s attack: adversary knows N random samples."""
    if published is None:
        published = original
    rng = np.random.default_rng(seed)
    counts = [
        linkage_attack(published, random_sample_knowledge(fp, n_points, rng))
        for fp in original
    ]
    return AttackOutcome(candidate_counts=np.asarray(counts, dtype=np.int64))
