"""Adversary knowledge models for record-linkage attacks.

An adversary's side information about a target is a set of
spatiotemporal constraints: "the target was inside this area during
this interval".  Two generators mirror the literature the paper builds
on:

* :func:`top_locations_knowledge` -- the target's ``n`` most frequented
  locations (Zang & Bolot's attack [5]); purely spatial.
* :func:`random_sample_knowledge` -- ``n`` random spatiotemporal
  samples of the target's fingerprint (de Montjoye et al.'s attack
  [6]).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y


@dataclass(frozen=True)
class SpatialConstraint:
    """"The target visits the rectangle ``[x, x+dx] x [y, y+dy]``"."""

    x: float
    dx: float
    y: float
    dy: float


@dataclass(frozen=True)
class SpatioTemporalConstraint:
    """"The target was in the rectangle during ``[t, t+dt]``"."""

    x: float
    dx: float
    y: float
    dy: float
    t: float
    dt: float


def top_locations_knowledge(
    fp: Fingerprint, n: int = 3
) -> List[SpatialConstraint]:
    """The ``n`` most frequently sampled locations of a fingerprint.

    Locations are identified by their exact spatial rectangle; ties are
    broken by earliest appearance, matching what an observer counting
    sightings would produce.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    keys = [tuple(row) for row in fp.data[:, [X, DX, Y, DY]]]
    counts = Counter(keys)
    first_seen = {}
    for i, key in enumerate(keys):
        first_seen.setdefault(key, i)
    ranked = sorted(counts, key=lambda key: (-counts[key], first_seen[key]))
    return [SpatialConstraint(*key) for key in ranked[:n]]


def random_sample_knowledge(
    fp: Fingerprint, n: int = 4, rng: Optional[np.random.Generator] = None
) -> List[SpatioTemporalConstraint]:
    """``n`` random spatiotemporal samples of a fingerprint.

    When the fingerprint has fewer than ``n`` samples, all of them are
    returned.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if rng is None:
        rng = np.random.default_rng(0)
    take = min(n, fp.m)
    idx = rng.choice(fp.m, size=take, replace=False)
    return [
        SpatioTemporalConstraint(
            x=row[X], dx=row[DX], y=row[Y], dy=row[DY], t=row[T], dt=row[DT]
        )
        for row in fp.data[np.sort(idx)]
    ]


def _rect_overlaps(
    x1: float, dx1: float, x2: float, dx2: float, atol: float = 1e-9
) -> bool:
    return x1 <= x2 + dx2 + atol and x2 <= x1 + dx1 + atol


def constraint_matches_fingerprint(constraint, fp: Fingerprint) -> bool:
    """Whether some sample of ``fp`` is consistent with the constraint.

    A published (possibly generalized) sample is consistent when its
    spatial rectangle overlaps the constraint's rectangle and — for
    spatiotemporal constraints — its time interval overlaps the
    constraint's interval.  Overlap (not containment) is the sound
    test: the adversary cannot exclude a candidate whose published
    region intersects the known one.
    """
    data = fp.data
    spatial = (
        (data[:, X] <= constraint.x + constraint.dx + 1e-9)
        & (constraint.x <= data[:, X] + data[:, DX] + 1e-9)
        & (data[:, Y] <= constraint.y + constraint.dy + 1e-9)
        & (constraint.y <= data[:, Y] + data[:, DY] + 1e-9)
    )
    if isinstance(constraint, SpatialConstraint):
        return bool(spatial.any())
    temporal = (
        (data[:, T] <= constraint.t + constraint.dt + 1e-9)
        & (constraint.t <= data[:, T] + data[:, DT] + 1e-9)
    )
    return bool((spatial & temporal).any())
