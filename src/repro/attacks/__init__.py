"""Record-linkage attacks used to *validate* anonymization.

The paper motivates GLOVE with two published attacks: re-identification
from the top-N most-visited locations (Zang & Bolot, MobiCom 2011) and
from a handful of random spatiotemporal points (de Montjoye et al.,
2013).  This subpackage implements both as measurement tools: run them
against the original dataset to reproduce the "high uniqueness"
premise, and against GLOVE output to verify that no adversary knowing
any subset of a user's samples can narrow him down to fewer than ``k``
candidates.
"""

from repro.attacks.cross_database import (
    CheckinDatabase,
    CrossDatabaseOutcome,
    cross_database_attack,
    simulate_checkin_database,
)
from repro.attacks.knowledge import random_sample_knowledge, top_locations_knowledge
from repro.attacks.record_linkage import (
    AttackOutcome,
    linkage_attack,
    uniqueness_given_random_points,
    uniqueness_given_top_locations,
)

__all__ = [
    "AttackOutcome",
    "linkage_attack",
    "uniqueness_given_top_locations",
    "uniqueness_given_random_points",
    "top_locations_knowledge",
    "random_sample_knowledge",
    "CheckinDatabase",
    "CrossDatabaseOutcome",
    "simulate_checkin_database",
    "cross_database_attack",
]
