"""Cross-database linkage attack (paper Section 1, reference [7]).

The paper motivates GLOVE with Cecaj et al.'s attack: georeferenced
check-ins from social platforms (Flickr/Twitter) were correlated with
an "anonymized" CDR dataset, pinpointing hundreds of subscribers.  This
module simulates that scenario end to end:

1. :func:`simulate_checkin_database` derives a public side-channel
   database from the true movement data: a random subset of each
   user's samples, spatially jittered (GPS vs cell-tower offset) and
   temporally jittered (posting delay), for a random subset of users;
2. :func:`cross_database_attack` correlates the check-ins against a
   published (pseudonymized or GLOVE-anonymized) CDR dataset and
   reports, per side-channel identity, the matching candidate records.

Against a merely pseudonymized dataset the attack achieves high
confidence re-identification; against GLOVE output every candidate set
holds at least ``k`` subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y


@dataclass(frozen=True)
class CheckinDatabase:
    """A public side-channel database of georeferenced check-ins.

    Attributes
    ----------
    identities:
        Public identity labels (e.g. social-media handles); one per
        covered subscriber.
    checkins:
        Map identity -> ``(n, 3)`` array of ``x, y, t`` check-ins.
    ground_truth:
        Map identity -> true subscriber uid (held out; used only for
        evaluating attack success, never by the attack itself).
    """

    identities: List[str]
    checkins: Dict[str, np.ndarray]
    ground_truth: Dict[str, str]


def simulate_checkin_database(
    dataset: FingerprintDataset,
    coverage: float = 0.3,
    checkins_per_user: int = 5,
    spatial_jitter_m: float = 300.0,
    temporal_jitter_min: float = 20.0,
    rng: Optional[np.random.Generator] = None,
) -> CheckinDatabase:
    """Derive a check-in side channel from true movement micro-data.

    Parameters
    ----------
    dataset:
        The *original* (pre-anonymization) movement data — check-ins
        reflect where users truly were.
    coverage:
        Fraction of subscribers present on the social platform.
    checkins_per_user:
        Check-ins sampled per covered subscriber (capped at the
        fingerprint length).
    spatial_jitter_m / temporal_jitter_min:
        Gaussian noise applied to check-in coordinates and times,
        modelling GPS-vs-antenna offsets and posting delays.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    if checkins_per_user < 1:
        raise ValueError("checkins_per_user must be at least 1")
    if rng is None:
        rng = np.random.default_rng(0)

    fps = list(dataset)
    n_covered = max(1, int(round(coverage * len(fps))))
    covered = rng.choice(len(fps), size=n_covered, replace=False)

    identities: List[str] = []
    checkins: Dict[str, np.ndarray] = {}
    truth: Dict[str, str] = {}
    for rank, idx in enumerate(sorted(covered)):
        fp = fps[int(idx)]
        identity = f"handle{rank:05d}"
        take = min(checkins_per_user, fp.m)
        rows = fp.data[rng.choice(fp.m, size=take, replace=False)]
        cx = rows[:, X] + rows[:, DX] / 2.0 + rng.normal(0, spatial_jitter_m, take)
        cy = rows[:, Y] + rows[:, DY] / 2.0 + rng.normal(0, spatial_jitter_m, take)
        ct = rows[:, T] + rows[:, DT] / 2.0 + rng.normal(0, temporal_jitter_min, take)
        identities.append(identity)
        checkins[identity] = np.column_stack([cx, cy, ct])
        truth[identity] = fp.uid
    return CheckinDatabase(identities=identities, checkins=checkins, ground_truth=truth)


@dataclass(frozen=True)
class CrossDatabaseOutcome:
    """Result of a cross-database correlation attack.

    Attributes
    ----------
    candidate_subscribers:
        Per identity, the number of subscribers (group counts included)
        whose published record is consistent with every check-in.
    correct_and_unique:
        Per identity, whether the attack narrowed the set to exactly
        one record *and* that record contains the true subscriber.
    """

    candidate_subscribers: np.ndarray
    correct_and_unique: np.ndarray

    @property
    def reidentification_rate(self) -> float:
        """Fraction of side-channel identities correctly re-identified."""
        if self.correct_and_unique.size == 0:
            return 0.0
        return float(self.correct_and_unique.mean())

    @property
    def min_nonempty_candidates(self) -> int:
        """Smallest non-empty candidate set (0 when all are empty)."""
        nonempty = self.candidate_subscribers[self.candidate_subscribers >= 1]
        if nonempty.size == 0:
            return 0
        return int(nonempty.min())


def _checkin_matches(
    fp: Fingerprint,
    checkin: np.ndarray,
    spatial_tolerance_m: float,
    temporal_tolerance_min: float,
) -> bool:
    """Whether some published sample is consistent with one check-in.

    Consistency: the check-in point falls within the sample's rectangle
    and interval, both inflated by the tolerances (which absorb the
    side channel's jitter).
    """
    cx, cy, ct = checkin
    data = fp.data
    ok = (
        (data[:, X] - spatial_tolerance_m <= cx)
        & (cx <= data[:, X] + data[:, DX] + spatial_tolerance_m)
        & (data[:, Y] - spatial_tolerance_m <= cy)
        & (cy <= data[:, Y] + data[:, DY] + spatial_tolerance_m)
        & (data[:, T] - temporal_tolerance_min <= ct)
        & (ct <= data[:, T] + data[:, DT] + temporal_tolerance_min)
    )
    return bool(ok.any())


def cross_database_attack(
    side_channel: CheckinDatabase,
    published: FingerprintDataset,
    spatial_tolerance_m: float = 1_000.0,
    temporal_tolerance_min: float = 60.0,
) -> CrossDatabaseOutcome:
    """Correlate a check-in database against a published CDR dataset.

    For each side-channel identity, the candidate set contains every
    published record consistent with *all* of the identity's check-ins
    under the given tolerances.
    """
    counts = np.zeros(len(side_channel.identities), dtype=np.int64)
    correct = np.zeros(len(side_channel.identities), dtype=bool)
    for i, identity in enumerate(side_channel.identities):
        checkins = side_channel.checkins[identity]
        matches = [
            fp
            for fp in published
            if all(
                _checkin_matches(fp, c, spatial_tolerance_m, temporal_tolerance_min)
                for c in checkins
            )
        ]
        counts[i] = sum(fp.count for fp in matches)
        # Re-identification requires narrowing down to ONE subscriber,
        # not just one record: a single GLOVE group still hides >= k.
        if len(matches) == 1 and matches[0].count == 1:
            truth = side_channel.ground_truth[identity]
            correct[i] = truth in matches[0].members
    return CrossDatabaseOutcome(candidate_subscribers=counts, correct_and_unique=correct)
