"""Linear spatiotemporal (LST) trajectory distance used by W4M-LC.

W4M models a moving object as a polyline in (x, y, t): between
consecutive samples the object moves linearly at constant speed.  The
LST distance of two trajectories is the average Euclidean distance
between their linearly interpolated positions over their common time
window.  Trajectories with disjoint time windows are incomparable and
receive a large penalty so that clustering never groups them.

This is a from-scratch reimplementation of the distance described in
Abul, Bonchi & Nanni, "Anonymization of moving objects databases by
clustering and perturbation" (Information Systems 35(8), 2010), the
comparator of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y

#: Penalty rate (metres per minute of temporal gap) for trajectories
#: whose time windows do not overlap.
DISJOINT_PENALTY_M_PER_MIN = 1_000.0

#: Timestamps per pair used to discretize the common window.
DEFAULT_SYNC_POINTS = 48


def _interp_positions(
    times: np.ndarray, t: np.ndarray, x: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``np.interp`` of both coordinates, hardened against slope overflow.

    ``np.interp``'s interior slope ``(f[i+1] - f[i]) / (t[i+1] - t[i])``
    overflows to ``+-inf`` when a segment's time step is subnormal,
    leaking ``inf``/``NaN`` positions into the distance.  Such query
    times sit (to double precision) *on* the degenerate segment, so the
    repair snaps them to the nearest sample in time.
    """
    px = np.interp(times, t, x)
    py = np.interp(times, t, y)
    bad = np.flatnonzero(~(np.isfinite(px) & np.isfinite(py)))
    if bad.size:
        tb = times[bad]
        hi = np.clip(np.searchsorted(t, tb), 1, t.shape[0] - 1)
        lo = hi - 1
        nearest = np.where(tb - t[lo] <= t[hi] - tb, lo, hi)
        px[bad] = x[nearest]
        py[bad] = y[nearest]
    return px, py


@dataclass(frozen=True)
class PointTrajectory:
    """A trajectory as time-ordered points (midpoints of CDR samples).

    Attributes
    ----------
    uid:
        Subscriber identifier.
    t:
        ``(m,)`` strictly increasing timestamps, minutes.
    x, y:
        ``(m,)`` planar positions, metres.
    """

    uid: str
    t: np.ndarray
    x: np.ndarray
    y: np.ndarray

    @property
    def m(self) -> int:
        """Number of trajectory points."""
        return self.t.shape[0]

    @property
    def t_start(self) -> float:
        """First timestamp."""
        return float(self.t[0])

    @property
    def t_end(self) -> float:
        """Last timestamp."""
        return float(self.t[-1])

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Linearly interpolated ``(len(times), 2)`` positions.

        Times outside the trajectory's span clamp to the first/last
        position (the object "waits" at its known location, W4M's
        uncertainty semantics).
        """
        px, py = _interp_positions(times, self.t, self.x, self.y)
        return np.column_stack([px, py])

    @classmethod
    def from_fingerprint(cls, fp: Fingerprint) -> "PointTrajectory":
        """Trajectory of a fingerprint's sample midpoints.

        Samples sharing a midpoint minute are averaged so timestamps
        stay strictly increasing.
        """
        t = fp.data[:, T] + fp.data[:, DT] / 2.0
        x = fp.data[:, X] + fp.data[:, DX] / 2.0
        y = fp.data[:, Y] + fp.data[:, DY] / 2.0
        order = np.argsort(t, kind="stable")
        t, x, y = t[order], x[order], y[order]
        uniq, inverse = np.unique(t, return_inverse=True)
        if uniq.shape[0] != t.shape[0]:
            xs = np.zeros(uniq.shape[0])
            ys = np.zeros(uniq.shape[0])
            counts = np.bincount(inverse)
            np.add.at(xs, inverse, x)
            np.add.at(ys, inverse, y)
            x, y, t = xs / counts, ys / counts, uniq
        return cls(uid=fp.uid, t=t, x=x, y=y)


def lst_distance(
    a: PointTrajectory,
    b: PointTrajectory,
    sync_points: int = DEFAULT_SYNC_POINTS,
) -> float:
    """LST distance between two trajectories, in metres.

    Average Euclidean distance over a uniform discretization of the
    common time window; disjoint windows incur the centroid distance
    plus a per-minute gap penalty.
    """
    lo = max(a.t_start, b.t_start)
    hi = min(a.t_end, b.t_end)
    if hi <= lo:
        gap = lo - hi
        ca = np.array([a.x.mean(), a.y.mean()])
        cb = np.array([b.x.mean(), b.y.mean()])
        return float(np.hypot(*(ca - cb)) + gap * DISJOINT_PENALTY_M_PER_MIN)
    times = np.linspace(lo, hi, sync_points)
    pa = a.positions_at(times)
    pb = b.positions_at(times)
    return float(np.hypot(pa[:, 0] - pb[:, 0], pa[:, 1] - pb[:, 1]).mean())


#: Pair rows interpolated per batch in the vectorized matrix build;
#: bounds peak memory at ``pair_block * sync_points`` floats per side.
_PAIR_BLOCK = 16_384


def lst_distance_matrix(
    trajectories,
    sync_points: int = DEFAULT_SYNC_POINTS,
    pair_block: int = _PAIR_BLOCK,
) -> np.ndarray:
    """Symmetric LST distance matrix with ``+inf`` diagonal.

    Equal to calling :func:`lst_distance` per pair (the W4M-LC hot loop
    that dominates Table-2 runtime) but batched: disjoint-window pairs
    resolve in one broadcast over precomputed centroids, and
    overlapping pairs stack their per-pair sync timelines so each
    trajectory is interpolated *once per block* over every query time
    it participates in, instead of once per pair.  The arithmetic runs
    the identical ``linspace``/``interp``/``hypot``/``mean`` kernels on
    identical operands, so the matrix is exactly the scalar reference
    (asserted by ``tests/baselines/test_w4m_distance.py``).
    """
    trajs = list(trajectories)
    n = len(trajs)
    mat = np.full((n, n), np.inf, dtype=np.float64)
    if n < 2:
        return mat

    starts = np.array([tr.t_start for tr in trajs])
    ends = np.array([tr.t_end for tr in trajs])
    cx = np.array([tr.x.mean() for tr in trajs])
    cy = np.array([tr.y.mean() for tr in trajs])

    iu, ju = np.triu_indices(n, 1)
    lo = np.maximum(starts[iu], starts[ju])
    hi = np.minimum(ends[iu], ends[ju])
    out = np.empty(iu.size, dtype=np.float64)

    disjoint = hi <= lo
    if disjoint.any():
        gap = lo[disjoint] - hi[disjoint]
        out[disjoint] = (
            np.hypot(cx[iu[disjoint]] - cx[ju[disjoint]], cy[iu[disjoint]] - cy[ju[disjoint]])
            + gap * DISJOINT_PENALTY_M_PER_MIN
        )

    overlap = np.flatnonzero(~disjoint)
    for base in range(0, overlap.size, pair_block):
        block = overlap[base : base + pair_block]
        times = np.linspace(lo[block], hi[block], sync_points, axis=1)
        ax = np.empty_like(times)
        ay = np.empty_like(times)
        bx = np.empty_like(times)
        by = np.empty_like(times)
        for ids, px, py in ((iu[block], ax, ay), (ju[block], bx, by)):
            for t in np.unique(ids):
                rows = np.flatnonzero(ids == t)
                queries = times[rows].ravel()
                tr = trajs[int(t)]
                qx, qy = _interp_positions(queries, tr.t, tr.x, tr.y)
                px[rows] = qx.reshape(rows.size, sync_points)
                py[rows] = qy.reshape(rows.size, sync_points)
        dist = np.hypot(ax - bx, ay - by)
        # Per-row 1-D means: an axis reduction may carry its pairwise-
        # summation blocking across row boundaries and drift ~1e-12
        # from the scalar path; the row loop keeps bitwise equality.
        out[block] = np.fromiter(
            (row.mean() for row in dist), dtype=np.float64, count=dist.shape[0]
        )

    mat[iu, ju] = out
    mat[ju, iu] = out
    return mat
