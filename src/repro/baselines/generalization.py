"""Legacy uniform spatiotemporal generalization (paper Fig. 4).

The classic defence against uniqueness: reduce the granularity of
*every* sample identically, snapping positions to a coarse spatial grid
and times to coarse intervals.  The paper sweeps six levels, from the
original granularity (0.1 km, 1 min) to an uninformative one (20 km,
480 min), and shows the approach fails — which motivates GLOVE's
per-sample specialized generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y


@dataclass(frozen=True)
class GeneralizationLevel:
    """One uniform generalization level.

    Attributes
    ----------
    spatial_m:
        Spatial bin side in metres.
    temporal_min:
        Temporal bin length in minutes.
    """

    spatial_m: float
    temporal_min: float

    def __post_init__(self) -> None:
        if self.spatial_m <= 0 or self.temporal_min <= 0:
            raise ValueError("generalization bins must be positive")

    @property
    def label(self) -> str:
        """The paper's "km-min" tag, e.g. ``"2.5-60"``."""
        km = self.spatial_m / 1000.0
        return f"{km:g}-{self.temporal_min:g}"

    def __str__(self) -> str:
        return self.label


#: The six levels of the paper's Fig. 4, labeled in km-min.
PAPER_LEVELS: Tuple[GeneralizationLevel, ...] = (
    GeneralizationLevel(100.0, 1.0),
    GeneralizationLevel(1_000.0, 30.0),
    GeneralizationLevel(2_500.0, 60.0),
    GeneralizationLevel(5_000.0, 120.0),
    GeneralizationLevel(10_000.0, 240.0),
    GeneralizationLevel(20_000.0, 480.0),
)


def generalize_sample_array(data: np.ndarray, level: GeneralizationLevel) -> np.ndarray:
    """Snap every sample to the level's space/time bins.

    Each sample's lower corner moves to its bin origin and its extents
    become the bin sizes; samples falling in the same (x, y, t) bin
    collapse into one.  The output stays truthful: every original
    rectangle/interval is contained in its bin because original extents
    never exceed bin sizes in the paper's sweep (coarsening only).
    """
    out = data.copy()
    out[:, X] = np.floor(out[:, X] / level.spatial_m) * level.spatial_m
    out[:, Y] = np.floor(out[:, Y] / level.spatial_m) * level.spatial_m
    out[:, T] = np.floor(out[:, T] / level.temporal_min) * level.temporal_min
    out[:, DX] = level.spatial_m
    out[:, DY] = level.spatial_m
    out[:, DT] = level.temporal_min
    return np.unique(out, axis=0)


def generalize_dataset(
    dataset: FingerprintDataset, level: GeneralizationLevel
) -> FingerprintDataset:
    """Uniformly generalized copy of a dataset."""
    out = FingerprintDataset(name=f"{dataset.name}-gen-{level.label}")
    for fp in dataset:
        out.add(fp.with_samples(generalize_sample_array(fp.data, level)))
    return out
