"""Greedy k-member clustering with trashing, as in W4M-LC.

W4M groups trajectories into clusters of at least ``k`` members before
pushing each cluster into a spatiotemporal cylinder.  The "LC" variant
(linear spatiotemporal distance with chunking) processes the database
in chunks for scalability, and may *trash* up to a configured fraction
of hard-to-cluster trajectories.

The greedy scheme reimplemented here:

1. within a chunk, compute each trajectory's cost as the sum of its
   ``k-1`` nearest LST distances;
2. trash the configured fraction of most isolated trajectories (highest
   cost) — these are the "discarded fingerprints" of Table 2;
3. repeatedly take the cheapest unassigned trajectory as a pivot and
   form a cluster with its ``k-1`` nearest unassigned neighbours;
4. fewer than ``k`` leftovers join their nearest clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class ClusteringOutcome:
    """Result of greedy k-member clustering over one chunk.

    Attributes
    ----------
    clusters:
        List of index arrays (into the chunk) of size >= k each.
    trashed:
        Indices of trajectories removed from the publication.
    """

    clusters: List[np.ndarray]
    trashed: np.ndarray


def greedy_k_clusters(
    distance: np.ndarray,
    k: int,
    trash_fraction: float = 0.10,
) -> ClusteringOutcome:
    """Greedy k-member clustering of a distance matrix.

    Parameters
    ----------
    distance:
        Symmetric ``(n, n)`` distance matrix with ``+inf`` diagonal.
    k:
        Minimum cluster size.
    trash_fraction:
        Fraction of the chunk allowed to be trashed as outliers.
    """
    n = distance.shape[0]
    if distance.shape != (n, n):
        raise ValueError("distance matrix must be square")
    if k < 2:
        raise ValueError("k must be at least 2")
    if not 0.0 <= trash_fraction < 1.0:
        raise ValueError("trash_fraction must be in [0, 1)")
    if n < k:
        return ClusteringOutcome(clusters=[], trashed=np.arange(n))

    # Isolation cost: sum of the k-1 smallest distances per row.
    kth = min(k - 1, n - 1)
    part = np.partition(distance, kth - 1, axis=1)[:, :kth]
    cost = part.sum(axis=1)

    n_trash = int(np.floor(trash_fraction * n))
    trashed: List[int] = []
    if n_trash > 0:
        trashed = list(np.argsort(cost)[::-1][:n_trash])
    alive = np.ones(n, dtype=bool)
    alive[trashed] = False
    if alive.sum() < k:
        return ClusteringOutcome(clusters=[], trashed=np.arange(n))

    clusters: List[np.ndarray] = []
    while alive.sum() >= k:
        alive_idx = np.flatnonzero(alive)
        pivot = alive_idx[int(cost[alive_idx].argmin())]
        row = distance[pivot].copy()
        row[~alive] = np.inf
        row[pivot] = np.inf
        nearest = np.argsort(row, kind="stable")[: k - 1]
        members = np.concatenate([[pivot], nearest])
        clusters.append(np.sort(members))
        alive[members] = False

    # Leftovers (< k of them) join the cluster of their nearest member.
    for left in np.flatnonzero(alive):
        best_c, best_d = 0, np.inf
        for ci, members in enumerate(clusters):
            d = distance[left, members].min()
            if d < best_d:
                best_c, best_d = ci, d
        clusters[best_c] = np.sort(np.append(clusters[best_c], left))
        alive[left] = False

    return ClusteringOutcome(clusters=clusters, trashed=np.asarray(trashed, dtype=np.int64))


def chunk_indices(n: int, chunk_size: int) -> List[np.ndarray]:
    """Split ``range(n)`` into contiguous chunks of at most ``chunk_size``.

    The final chunk is merged with the previous one when it would be
    smaller than ``chunk_size // 2``, so every chunk stays clusterable.
    """
    if chunk_size < 2:
        raise ValueError("chunk_size must be at least 2")
    if n <= chunk_size:
        return [np.arange(n)]
    bounds = list(range(0, n, chunk_size))
    chunks = [np.arange(b, min(b + chunk_size, n)) for b in bounds]
    if len(chunks) >= 2 and chunks[-1].shape[0] < chunk_size // 2:
        chunks[-2] = np.concatenate([chunks[-2], chunks[-1]])
        chunks.pop()
    return chunks
