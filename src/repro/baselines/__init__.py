"""Baseline anonymization techniques the paper compares against.

* :mod:`repro.baselines.generalization` -- legacy uniform
  spatiotemporal generalization (the Fig. 4 sweep): every sample of
  every user is coarsened to the same space/time bin sizes.
* :mod:`repro.baselines.w4m` -- a reimplementation of W4M-LC ("Wait
  for Me" with linear spatiotemporal distance and chunking; Abul,
  Bonchi, Nanni 2010), the state-of-the-art comparator of Table 2.
"""

from repro.baselines.generalization import (
    PAPER_LEVELS,
    GeneralizationLevel,
    generalize_dataset,
    generalize_sample_array,
)
from repro.baselines.nwa import NWAConfig, NWAResult, nwa
from repro.baselines.w4m import W4MConfig, W4MResult, w4m_lc

__all__ = [
    "GeneralizationLevel",
    "PAPER_LEVELS",
    "generalize_dataset",
    "generalize_sample_array",
    "W4MConfig",
    "W4MResult",
    "w4m_lc",
    "NWAConfig",
    "NWAResult",
    "nwa",
]
