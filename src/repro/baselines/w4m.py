"""W4M-LC: Wait-for-Me anonymization with LST distance and chunking.

Reimplementation of the Table 2 comparator (Abul, Bonchi & Nanni,
Information Systems 2010).  W4M enforces ``(k, delta)``-anonymity: it
clusters trajectories into groups of at least ``k`` and edits each
group's members until they all fit within a spatiotemporal cylinder of
diameter ``delta``.  Unlike GLOVE it may *create* synthetic samples
(linear-interpolation resampling onto a common timeline) and *delete*
samples (trashing and timeline replacement) — operations that violate
the paper's PPDP truthfulness principle P2, which is precisely the
qualitative point Table 2 makes.

Pipeline per cluster:

1. pick the medoid trajectory (minimum summed LST distance);
2. time translation ("wait for me"): each member is shifted along the
   time axis by the offset that best aligns its path with the medoid's;
3. resample every member onto the medoid's timeline via linear
   interpolation ("waiting" semantics outside the member's own span) —
   timeline instants absent from the member's original trace are
   *created* samples, original instants absent from the timeline are
   *deleted*;
4. spatial editing: at every timeline instant, members farther than
   ``delta / 2`` from the cluster centroid are pulled onto the cylinder
   boundary.

Error accounting matches provenance: the published sample derived from
an original sample at time ``t`` is the timeline instant nearest to
``t + shift``; its position error is the spatial displacement applied
by interpolation and editing, and its time error is the absolute
difference between the claimed and the actual instant (which includes
the whole time translation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.w4m_cluster import ClusteringOutcome, chunk_indices, greedy_k_clusters
from repro.baselines.w4m_distance import (
    DEFAULT_SYNC_POINTS,
    PointTrajectory,
    lst_distance,
    lst_distance_matrix,
)
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DEFAULT_DT_MIN, DEFAULT_DX_M, DEFAULT_DY_M, NCOLS


@dataclass(frozen=True)
class W4MConfig:
    """W4M-LC parameters (paper Section 7.2 uses delta=2 km, 10% trash).

    Attributes
    ----------
    k:
        Minimum cluster size.
    delta_m:
        Cylinder diameter in metres.
    trash_fraction:
        Maximum fraction of trajectories trashed per chunk.
    chunk_size:
        Trajectories per chunk (the "LC" scalability device).
    sync_points:
        Discretization of the common window in the LST distance.
    timestamp_tolerance_min:
        Two timestamps closer than this count as the same instant when
        tallying created/deleted samples.
    """

    k: int = 2
    delta_m: float = 2_000.0
    trash_fraction: float = 0.10
    chunk_size: int = 1_000
    sync_points: int = DEFAULT_SYNC_POINTS
    timestamp_tolerance_min: float = 0.5
    max_time_shift_min: float = 720.0
    time_shift_step_min: float = 30.0
    creation_window_min: float = 30.0

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if self.delta_m <= 0:
            raise ValueError("delta_m must be positive")
        if not 0.0 <= self.trash_fraction < 1.0:
            raise ValueError("trash_fraction must be in [0, 1)")
        if self.chunk_size < 2:
            raise ValueError("chunk_size must be at least 2")


@dataclass
class W4MStats:
    """Bookkeeping of one W4M-LC run (the Table 2 counters).

    Attributes
    ----------
    discarded_fingerprints:
        Trajectories trashed by the clustering stage.
    created_samples:
        Synthetic samples fabricated by timeline resampling.
    deleted_samples:
        Original samples absent from the published timelines.
    total_original_samples:
        Samples in the input dataset.
    n_clusters:
        Clusters formed.
    """

    discarded_fingerprints: int = 0
    created_samples: int = 0
    deleted_samples: int = 0
    total_original_samples: int = 0
    n_clusters: int = 0
    position_errors_m: List[float] = field(default_factory=list)
    time_errors_min: List[float] = field(default_factory=list)
    #: Cluster membership as uid tuples — the (k, delta) anonymity
    #: groups, auditable with the shared k-anonymity harness.
    group_members: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def mean_position_error_m(self) -> float:
        """Mean displacement between original and published samples."""
        if not self.position_errors_m:
            return 0.0
        return float(np.mean(self.position_errors_m))

    @property
    def mean_time_error_min(self) -> float:
        """Mean claimed-vs-actual time difference of published samples."""
        if not self.time_errors_min:
            return 0.0
        return float(np.mean(self.time_errors_min))

    @property
    def created_fraction(self) -> float:
        """Created samples over original samples."""
        if self.total_original_samples == 0:
            return 0.0
        return self.created_samples / self.total_original_samples

    @property
    def deleted_fraction(self) -> float:
        """Deleted samples over original samples."""
        if self.total_original_samples == 0:
            return 0.0
        return self.deleted_samples / self.total_original_samples


@dataclass(frozen=True)
class W4MResult:
    """Anonymized dataset plus run statistics."""

    dataset: FingerprintDataset
    stats: W4MStats
    config: W4MConfig


def _trajectory_to_samples(t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    rows = np.empty((t.shape[0], NCOLS), dtype=np.float64)
    rows[:, 0] = x - DEFAULT_DX_M / 2.0
    rows[:, 1] = DEFAULT_DX_M
    rows[:, 2] = y - DEFAULT_DY_M / 2.0
    rows[:, 3] = DEFAULT_DY_M
    rows[:, 4] = t - DEFAULT_DT_MIN / 2.0
    rows[:, 5] = DEFAULT_DT_MIN
    return rows


def _anonymize_cluster(
    trajs: List[PointTrajectory],
    members: np.ndarray,
    distance: np.ndarray,
    config: W4MConfig,
    stats: W4MStats,
    out: FingerprintDataset,
) -> None:
    cluster = [trajs[int(i)] for i in members]
    sub = distance[np.ix_(members, members)]
    finite = np.where(np.isfinite(sub), sub, 0.0)
    medoid_pos = int(finite.sum(axis=1).argmin())
    medoid = cluster[medoid_pos]
    timeline = medoid.t
    medoid_path = np.column_stack([medoid.x, medoid.y])

    # Time translation: shift each member along the time axis to best
    # align its path with the medoid's (the "wait for me" operation).
    shifts = np.zeros(len(cluster))
    candidates = np.arange(
        -config.max_time_shift_min,
        config.max_time_shift_min + config.time_shift_step_min / 2,
        config.time_shift_step_min,
    )
    for g, tr in enumerate(cluster):
        if g == medoid_pos:
            continue
        best_shift, best_cost = 0.0, np.inf
        for shift in candidates:
            pos = tr.positions_at(timeline - shift)
            cost = float(
                np.hypot(pos[:, 0] - medoid_path[:, 0], pos[:, 1] - medoid_path[:, 1]).mean()
            )
            if cost < best_cost - 1e-9:
                best_shift, best_cost = float(shift), cost
        shifts[g] = best_shift

    # Resample everyone onto the medoid timeline (after translation),
    # then pull into the delta-cylinder around the per-instant centroid.
    positions = np.stack(
        [tr.positions_at(timeline - shifts[g]) for g, tr in enumerate(cluster)]
    )  # (g, m, 2)
    centroid = positions.mean(axis=0)  # (m, 2)
    offsets = positions - centroid[None, :, :]
    dist = np.hypot(offsets[..., 0], offsets[..., 1])
    radius = config.delta_m / 2.0
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(dist > radius, radius / np.where(dist > 0, dist, 1.0), 1.0)
    edited = centroid[None, :, :] + offsets * scale[..., None]

    window = config.creation_window_min
    for g, tr in enumerate(cluster):
        shifted_t = tr.t + shifts[g]
        # Created: timeline instants claiming activity when the
        # (shifted) member had none anywhere near.
        gaps = np.abs(timeline[:, None] - shifted_t[None, :]).min(axis=1)
        stats.created_samples += int((gaps > window).sum())
        # Deleted: original samples falling outside the published
        # timeline's span — resampling cannot represent them at all.
        inside = (shifted_t >= timeline[0] - window) & (shifted_t <= timeline[-1] + window)
        stats.deleted_samples += int((~inside).sum())
        # Provenance-matched errors of the represented samples.
        if inside.any():
            j = np.abs(shifted_t[inside, None] - timeline[None, :]).argmin(axis=1)
            stats.position_errors_m.extend(
                np.hypot(
                    edited[g, j, 0] - tr.x[inside], edited[g, j, 1] - tr.y[inside]
                ).tolist()
            )
            stats.time_errors_min.extend(np.abs(timeline[j] - tr.t[inside]).tolist())
        rows = _trajectory_to_samples(timeline, edited[g, :, 0], edited[g, :, 1])
        out.add(Fingerprint(tr.uid, rows, count=1, members=(tr.uid,)))
    stats.n_clusters += 1
    stats.group_members.append(tuple(tr.uid for tr in cluster))


def w4m_lc(dataset: FingerprintDataset, config: W4MConfig = W4MConfig()) -> W4MResult:
    """Anonymize a fingerprint dataset with W4M-LC.

    The output contains one fingerprint per surviving subscriber (W4M
    publishes per-object edited trajectories, not merged group records;
    its guarantee is ``(k, delta)``-anonymity, not exact k-anonymity).
    """
    trajs = [PointTrajectory.from_fingerprint(fp) for fp in dataset]
    stats = W4MStats(total_original_samples=dataset.n_samples)
    out = FingerprintDataset(name=f"{dataset.name}-w4m-k{config.k}")

    for chunk in chunk_indices(len(trajs), config.chunk_size):
        chunk_trajs = [trajs[int(i)] for i in chunk]
        distance = lst_distance_matrix(chunk_trajs, config.sync_points)
        outcome = greedy_k_clusters(distance, config.k, config.trash_fraction)
        for local_trash in outcome.trashed:
            stats.discarded_fingerprints += 1
            stats.deleted_samples += chunk_trajs[int(local_trash)].m
        for members in outcome.clusters:
            _anonymize_cluster(chunk_trajs, members, distance, config, stats, out)
    return W4MResult(dataset=out, stats=stats, config=config)
