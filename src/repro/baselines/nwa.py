"""NWA — "Never Walk Alone" (Abul, Bonchi, Nanni, ICDE 2008).

W4M's predecessor and the paper's related-work exemplar of techniques
"intended for datasets where the positions of all users are sampled
with identical periodicity": NWA enforces ``(k, delta)``-anonymity on
*synchronized* trajectories, so the anonymization concerns only the
spatial dimension.  CDR data violates the synchronization premise, and
this module exists to demonstrate that quantitatively: to run NWA at
all, every fingerprint must first be resampled onto one global uniform
timeline — fabricating synthetic positions for almost every published
instant and discarding the genuine event times entirely.

Pipeline:

1. build the global timeline (uniform period over the dataset span);
2. resample every trajectory onto it (linear interpolation with
   clamping — the synchronization step NWA presumes already done);
3. greedy k-member clustering under summed Euclidean distance on the
   synchronized matrix, with trashing;
4. per-instant delta-cylinder spatial editing, as in W4M.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.w4m_cluster import greedy_k_clusters
from repro.baselines.w4m_distance import PointTrajectory
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DEFAULT_DT_MIN, DEFAULT_DX_M, DEFAULT_DY_M, NCOLS


@dataclass(frozen=True)
class NWAConfig:
    """NWA parameters.

    Attributes
    ----------
    k:
        Minimum cluster size.
    delta_m:
        Cylinder diameter in metres.
    period_min:
        Sampling period of the global synchronized timeline.
    trash_fraction:
        Fraction of trajectories trashed as outliers.
    """

    k: int = 2
    delta_m: float = 2_000.0
    period_min: float = 60.0
    trash_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if self.delta_m <= 0:
            raise ValueError("delta_m must be positive")
        if self.period_min <= 0:
            raise ValueError("period_min must be positive")
        if not 0.0 <= self.trash_fraction < 1.0:
            raise ValueError("trash_fraction must be in [0, 1)")


@dataclass
class NWAStats:
    """Bookkeeping of one NWA run.

    Attributes
    ----------
    discarded_fingerprints:
        Trajectories trashed by clustering.
    created_samples:
        Synchronized instants with no original event nearby — on CDR
        data, the overwhelming majority of the output.
    deleted_samples:
        Original samples without a published counterpart within half a
        period.
    total_original_samples:
        Input size.
    position_errors_m / time_errors_min:
        Provenance-matched errors of represented samples.
    """

    discarded_fingerprints: int = 0
    created_samples: int = 0
    deleted_samples: int = 0
    total_original_samples: int = 0
    position_errors_m: List[float] = field(default_factory=list)
    time_errors_min: List[float] = field(default_factory=list)
    #: Cluster membership as uid tuples — the (k, delta) anonymity
    #: groups, auditable with the shared k-anonymity harness.
    group_members: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def created_fraction(self) -> float:
        """Created samples over original samples."""
        if self.total_original_samples == 0:
            return 0.0
        return self.created_samples / self.total_original_samples

    @property
    def deleted_fraction(self) -> float:
        """Deleted samples over original samples."""
        if self.total_original_samples == 0:
            return 0.0
        return self.deleted_samples / self.total_original_samples

    @property
    def mean_position_error_m(self) -> float:
        """Mean displacement of represented samples."""
        if not self.position_errors_m:
            return 0.0
        return float(np.mean(self.position_errors_m))

    @property
    def mean_time_error_min(self) -> float:
        """Mean claimed-vs-actual time difference."""
        if not self.time_errors_min:
            return 0.0
        return float(np.mean(self.time_errors_min))


@dataclass(frozen=True)
class NWAResult:
    """Anonymized dataset plus run statistics."""

    dataset: FingerprintDataset
    stats: NWAStats
    config: NWAConfig


def _rows_from_track(timeline: np.ndarray, track: np.ndarray) -> np.ndarray:
    rows = np.empty((timeline.shape[0], NCOLS))
    rows[:, 0] = track[:, 0] - DEFAULT_DX_M / 2.0
    rows[:, 1] = DEFAULT_DX_M
    rows[:, 2] = track[:, 1] - DEFAULT_DY_M / 2.0
    rows[:, 3] = DEFAULT_DY_M
    rows[:, 4] = timeline - DEFAULT_DT_MIN / 2.0
    rows[:, 5] = DEFAULT_DT_MIN
    return rows


def nwa(dataset: FingerprintDataset, config: NWAConfig = NWAConfig()) -> NWAResult:
    """Anonymize a fingerprint dataset with NWA.

    The synchronization step is performed internally (NWA presumes
    GPS-like input); its cost shows up as the ``created_samples``
    counter, which on CDR data dwarfs the dataset itself.
    """
    trajs = [PointTrajectory.from_fingerprint(fp) for fp in dataset]
    stats = NWAStats(total_original_samples=dataset.n_samples)
    out = FingerprintDataset(name=f"{dataset.name}-nwa-k{config.k}")

    t_min, t_max = dataset.time_extent()
    timeline = np.arange(t_min, t_max + config.period_min, config.period_min)

    tracks = np.stack([tr.positions_at(timeline) for tr in trajs])  # (n, m, 2)

    n = len(trajs)
    distance = np.full((n, n), np.inf)
    for i in range(n):
        diff = tracks[i + 1 :] - tracks[i][None, :, :]
        if diff.size:
            d = np.hypot(diff[..., 0], diff[..., 1]).mean(axis=1)
            distance[i, i + 1 :] = d
            distance[i + 1 :, i] = d

    outcome = greedy_k_clusters(distance, config.k, config.trash_fraction)
    for trash in outcome.trashed:
        stats.discarded_fingerprints += 1
        stats.deleted_samples += trajs[int(trash)].m

    radius = config.delta_m / 2.0
    half_period = config.period_min / 2.0
    for members in outcome.clusters:
        stats.group_members.append(tuple(trajs[int(i)].uid for i in members))
        cluster_tracks = tracks[members]
        centroid = cluster_tracks.mean(axis=0)
        offsets = cluster_tracks - centroid[None, :, :]
        dist = np.hypot(offsets[..., 0], offsets[..., 1])
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(dist > radius, radius / np.where(dist > 0, dist, 1.0), 1.0)
        edited = centroid[None, :, :] + offsets * scale[..., None]

        for g, idx in enumerate(members):
            tr = trajs[int(idx)]
            gaps = np.abs(timeline[:, None] - tr.t[None, :]).min(axis=1)
            stats.created_samples += int((gaps > half_period).sum())
            provenance = np.abs(tr.t[:, None] - timeline[None, :])
            j = provenance.argmin(axis=1)
            orig_gaps = provenance[np.arange(tr.m), j]
            represented = orig_gaps <= half_period
            stats.deleted_samples += int((~represented).sum())
            if represented.any():
                jj = j[represented]
                stats.position_errors_m.extend(
                    np.hypot(
                        edited[g, jj, 0] - tr.x[represented],
                        edited[g, jj, 1] - tr.y[represented],
                    ).tolist()
                )
                stats.time_errors_min.extend(
                    np.abs(timeline[jj] - tr.t[represented]).tolist()
                )
            out.add(
                Fingerprint(
                    tr.uid, _rows_from_track(timeline, edited[g]), count=1,
                    members=(tr.uid,),
                )
            )
    return NWAResult(dataset=out, stats=stats, config=config)
