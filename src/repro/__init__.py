"""repro -- reproduction of "Hiding Mobile Traffic Fingerprints with GLOVE".

Gramaglia & Fiore, ACM CoNEXT 2015 (DOI 10.1145/2716281.2836111).

The package is organized as:

* :mod:`repro.core` -- the paper's contribution: spatiotemporal samples,
  mobile fingerprints, the stretch-effort / k-gap anonymizability
  metric, and the GLOVE k-anonymization algorithm.
* :mod:`repro.geo` -- geodesy substrate (Lambert azimuthal equal-area
  projection, 100 m grid).
* :mod:`repro.cdr` -- synthetic nationwide CDR datasets standing in for
  the restricted Orange D4D data.
* :mod:`repro.analysis` -- anonymizability and accuracy analyses
  (CDFs, Tail Weight Index, error metrics, radius of gyration).
* :mod:`repro.baselines` -- uniform spatiotemporal generalization and
  the W4M-LC comparator.
* :mod:`repro.attacks` -- record-linkage attacks used to validate
  k-anonymity of the output.
* :mod:`repro.stream` -- streaming tier: windowed incremental GLOVE
  over replayed CDR event feeds with carry-over (DESIGN.md D7).
* :mod:`repro.experiments` -- one module per paper figure/table.

Quickstart::

    from repro import GloveConfig, glove
    from repro.cdr import synthesize

    dataset = synthesize("synth-civ", n_users=200, days=3, seed=7)
    result = glove(dataset, GloveConfig(k=2))
    assert result.dataset.is_k_anonymous(2)
"""

from repro.core import (
    Fingerprint,
    FingerprintDataset,
    GloveConfig,
    GloveResult,
    Sample,
    StretchConfig,
    SuppressionConfig,
    fingerprint_stretch,
    glove,
    kgap,
    sample_stretch,
    sharded_glove,
)
from repro.stream import StreamConfig, StreamResult, stream_glove

__version__ = "1.0.0"

__all__ = [
    "Sample",
    "Fingerprint",
    "FingerprintDataset",
    "StretchConfig",
    "SuppressionConfig",
    "GloveConfig",
    "GloveResult",
    "glove",
    "sharded_glove",
    "StreamConfig",
    "StreamResult",
    "stream_glove",
    "kgap",
    "sample_stretch",
    "fingerprint_stretch",
    "__version__",
]
