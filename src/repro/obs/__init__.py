"""Zero-dependency observability layer (metrics registry + exporters).

See DESIGN.md D12.  Core modules import :func:`get_metrics` from here;
the registry defaults to a disabled no-op, so instrumentation is free
until a CLI ``--metrics*`` flag (or a test) installs a live registry
via :func:`set_metrics`.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    DEFAULT_LATENCY_BOUNDARIES_S,
    get_metrics,
    set_metrics,
    validate_snapshot,
)
from .render import dump_json, render_table
from .otlp import OTEL_INSTALL_HINT, export_otlp, snapshot_to_otlp

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "DEFAULT_LATENCY_BOUNDARIES_S",
    "get_metrics",
    "set_metrics",
    "validate_snapshot",
    "dump_json",
    "render_table",
    "OTEL_INSTALL_HINT",
    "export_otlp",
    "snapshot_to_otlp",
]
