"""OTLP bridge for metrics snapshots, gated behind the ``[otel]`` extra.

Two layers, split so the conversion stays testable without the
dependency installed:

* :func:`snapshot_to_otlp` — pure stdlib translation of a
  ``repro.metrics.v1`` snapshot into an OTLP/JSON
  ``ExportMetricsServiceRequest``-shaped dict (resourceMetrics →
  scopeMetrics → metrics with sum/gauge/histogram data points).
* :func:`export_otlp` — POSTs that payload to a collector endpoint via
  the ``opentelemetry`` SDK's exporter.  Importing the SDK happens here
  and only here; without it the call degrades to a ``RuntimeError``
  naming the ``pip install "glove-repro[otel]"`` fix, mirroring how the
  redis artifact backend gates its optional client.
"""

from __future__ import annotations

import time
from typing import Dict, List

from .registry import validate_snapshot

__all__ = ["snapshot_to_otlp", "export_otlp", "OTEL_INSTALL_HINT"]

OTEL_INSTALL_HINT = (
    "OTLP export requires the opentelemetry SDK, which is not installed. "
    "Install the optional extra with: pip install 'glove-repro[otel]'"
)

_SCOPE = {"name": "repro.obs", "version": "1"}


def snapshot_to_otlp(snapshot: Dict[str, object], time_unix_nano: int = 0) -> Dict[str, object]:
    """Convert a v1 snapshot to an OTLP/JSON metrics payload (pure stdlib)."""
    validate_snapshot(snapshot)
    ts = int(time_unix_nano) or time.time_ns()
    metrics: List[Dict[str, object]] = []
    for name, value in snapshot["counters"].items():  # type: ignore[union-attr]
        metrics.append(
            {
                "name": name,
                "sum": {
                    "aggregationTemporality": 2,  # CUMULATIVE
                    "isMonotonic": True,
                    "dataPoints": [{"timeUnixNano": ts, "asInt": int(value)}],
                },
            }
        )
    for name, value in snapshot["gauges"].items():  # type: ignore[union-attr]
        metrics.append(
            {
                "name": name,
                "gauge": {
                    "dataPoints": [{"timeUnixNano": ts, "asDouble": float(value)}],
                },
            }
        )
    for name, hist in snapshot["histograms"].items():  # type: ignore[union-attr]
        metrics.append(
            {
                "name": name,
                "histogram": {
                    "aggregationTemporality": 2,
                    "dataPoints": [
                        {
                            "timeUnixNano": ts,
                            "count": int(hist["count"]),
                            "sum": float(hist["sum"]),
                            "min": float(hist["min"]),
                            "max": float(hist["max"]),
                            "explicitBounds": [float(b) for b in hist["boundaries"]],
                            "bucketCounts": [int(c) for c in hist["bucket_counts"]],
                        }
                    ],
                },
            }
        )
    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": "glove-repro"},
                        }
                    ]
                },
                "scopeMetrics": [{"scope": dict(_SCOPE), "metrics": metrics}],
            }
        ]
    }


def export_otlp(snapshot: Dict[str, object], endpoint: str) -> None:
    """Push ``snapshot`` to an OTLP/HTTP collector at ``endpoint``.

    Raises ``RuntimeError`` with install guidance when the
    ``opentelemetry`` SDK is missing (the ``[otel]`` extra).
    """
    payload = snapshot_to_otlp(snapshot)
    try:
        import opentelemetry  # noqa: F401
        from opentelemetry.exporter.otlp.proto.http import Compression  # noqa: F401
    except ImportError as exc:
        raise RuntimeError(OTEL_INSTALL_HINT) from exc
    import json
    import urllib.request

    req = urllib.request.Request(
        endpoint.rstrip("/") + "/v1/metrics",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:  # pragma: no cover - needs collector
        resp.read()
