"""Human- and machine-readable views of a metrics snapshot.

``render_table`` backs ``glove <cmd> --metrics`` (a plain-text table on
stderr-free stdout); ``dump_json`` backs ``--metrics-json PATH``.  Both
consume the stable ``repro.metrics.v1`` snapshot dict, never a live
registry, so they also work on snapshots reloaded from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from .registry import validate_snapshot

__all__ = ["render_table", "dump_json"]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return f"{value:.6f}".rstrip("0").rstrip(".")


def render_table(snapshot: Dict[str, object]) -> str:
    """A metrics table for terminals, grouped by instrument kind."""
    validate_snapshot(snapshot)
    lines = [f"metrics ({snapshot['schema']})"]
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["histograms"]
    rows = []
    for name, value in counters.items():  # type: ignore[union-attr]
        rows.append((name, "counter", f"{value:,}"))
    for name, value in gauges.items():  # type: ignore[union-attr]
        rows.append((name, "gauge", _fmt(float(value))))
    for name, hist in histograms.items():  # type: ignore[union-attr]
        rows.append(
            (
                name,
                "histogram",
                "count={count:,} sum={sum} p50={p50} p95={p95}".format(
                    count=hist["count"],
                    sum=_fmt(hist["sum"]),
                    p50=_fmt(hist["p50"]),
                    p95=_fmt(hist["p95"]),
                ),
            )
        )
    if not rows:
        lines.append("  (no instruments recorded)")
        return "\n".join(lines)
    width = max(len(name) for name, _, _ in rows)
    kind_w = max(len(kind) for _, kind, _ in rows)
    for name, kind, value in rows:
        lines.append(f"  {name:<{width}}  {kind:<{kind_w}}  {value}")
    return "\n".join(lines)


def dump_json(snapshot: Dict[str, object], path: "str | Path") -> Path:
    """Validate and write ``snapshot`` to ``path`` as pretty JSON."""
    validate_snapshot(snapshot)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return out
