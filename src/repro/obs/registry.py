"""Zero-dependency in-process metrics registry (DESIGN.md D12).

The streaming tier turned the reproduction into a long-running service
whose health is invisible between CLI summary lines; this module is the
observability substrate the ROADMAP's anonymization-as-a-service item
needs: named counters, gauges and fixed-boundary histograms with
``span()`` timing contexts, collected into one stable, JSON-able
snapshot.  Everything is standard library — the OTLP bridge lives in
:mod:`repro.obs.otlp` behind the ``[otel]`` packaging extra.

Design constraints (the D12 contract):

* **Always-on-cheap.**  The process-wide registry defaults to a
  *disabled* instance: every instrument accessor returns a shared
  no-op singleton without taking a lock or touching a dict, so
  instrumented hot paths cost one attribute check when nobody asked
  for metrics.  The BENCH_glove.json ``metrics_overhead`` row pins the
  enabled-path overhead below 5 % on the stream and glove-500
  workloads.
* **Thread-safe.**  Instrument creation and every update are guarded;
  concurrent ``span()``/``inc()`` from worker threads never lose
  updates (covered by ``tests/obs/test_registry.py``).
* **Stable snapshot schema.**  ``snapshot()`` always produces the
  ``repro.metrics.v1`` shape below; consumers (the CLI table, the JSON
  dump, the OTLP bridge, the CI ``metrics-smoke`` validator) share
  :func:`validate_snapshot`::

      {"schema": "repro.metrics.v1", "enabled": bool,
       "counters":   {name: int},
       "gauges":     {name: float},
       "histograms": {name: {"count", "sum", "min", "max",
                             "boundaries", "bucket_counts",
                             "p50", "p95"}}}
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "DEFAULT_LATENCY_BOUNDARIES_S",
    "get_metrics",
    "set_metrics",
    "validate_snapshot",
]

#: Version tag of the snapshot dict; bump on any shape change so JSON
#: consumers (CI validators, dashboards) fail loudly instead of
#: misreading silently.
SNAPSHOT_SCHEMA = "repro.metrics.v1"

#: Default histogram boundaries for wall-time observations, in seconds.
#: Roughly log-spaced from 1 ms to 30 s — per-window GLOVE latencies on
#: the stream scenarios land mid-range, whole-stage wall times at the
#: top; values beyond the last edge go to an implicit +inf bucket.
DEFAULT_LATENCY_BOUNDARIES_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically growing named count, thread-safe."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        with self._lock:
            self._value += n

    def set_to(self, value: int) -> None:
        """Overwrite with an absolute value.

        For harvesting counters kept elsewhere (engine dispatch totals,
        backend hit/miss tallies): harvest code may run once per window
        *and* once at exit, and an absolute write keeps repeats
        idempotent where ``inc`` would double-count.
        """
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named point-in-time value, thread-safe."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is the new maximum."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary bucket histogram with sum/count/min/max.

    ``boundaries`` are the inclusive upper edges of the finite buckets;
    one implicit overflow bucket catches everything beyond the last
    edge, so ``len(bucket_counts) == len(boundaries) + 1``.  Quantiles
    are estimated by linear interpolation inside the bucket where the
    rank falls, clamped to the observed min/max — exact at the extremes
    and within one bucket width elsewhere, which is the standard
    fixed-boundary trade (no per-sample storage, O(1) memory).
    """

    __slots__ = ("name", "boundaries", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BOUNDARIES_S):
        edges = tuple(float(b) for b in boundaries)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram boundaries must be non-empty and increasing")
        self.name = name
        self.boundaries = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def _bucket(self, value: float) -> int:
        lo, hi = 0, len(self.boundaries)
        while lo < hi:  # first edge >= value (bisect, inclusive upper edges)
            mid = (lo + hi) // 2
            if self.boundaries[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._counts[self._bucket(value)] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the observations; 0.0 when empty."""
        q = min(max(float(q), 0.0), 1.0)
        with self._lock:
            if self._count == 0:
                return 0.0
            if self._count == 1:
                return self._min
            rank = q * self._count
            seen = 0
            for i, c in enumerate(self._counts):
                if c == 0:
                    continue
                if seen + c >= rank:
                    lo = self.boundaries[i - 1] if i > 0 else self._min
                    hi = self.boundaries[i] if i < len(self.boundaries) else self._max
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo or c == 0:
                        return float(hi)
                    frac = (rank - seen) / c
                    return float(lo + (hi - lo) * min(max(frac, 0.0), 1.0))
                seen += c
            return float(self._max)

    def _snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "boundaries": list(self.boundaries),
            "bucket_counts": counts,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class _NullInstrument:
    """Shared no-op twin of every instrument, handed out when disabled.

    Also a no-op context manager so ``with registry.span(...)`` costs
    two trivial method calls on a disabled registry.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set_to(self, value: int) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL = _NullInstrument()


class _Span:
    """Times a ``with`` block into a histogram (seconds)."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._hist.observe(time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and histograms.

    A *disabled* registry (``enabled=False``, the process-wide default)
    is a guaranteed no-op: accessors return shared null instruments,
    ``snapshot()`` reports empty instrument maps, and no state is ever
    allocated — the always-on-cheap half of the D12 contract.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) ---------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BOUNDARIES_S
    ) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, boundaries)
            return inst

    def span(self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BOUNDARIES_S):
        """A context manager timing its block into histogram ``name``."""
        if not self.enabled:
            return _NULL
        return _Span(self.histogram(name, boundaries))

    # -- snapshot -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The stable ``repro.metrics.v1`` view of every instrument."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "schema": SNAPSHOT_SCHEMA,
            "enabled": self.enabled,
            "counters": {c.name: c.value for c in sorted(counters, key=lambda i: i.name)},
            "gauges": {g.name: g.value for g in sorted(gauges, key=lambda i: i.name)},
            "histograms": {
                h.name: h._snapshot() for h in sorted(histograms, key=lambda i: i.name)
            },
        }


#: The disabled default: instrumented code paths pay one attribute
#: check and a null-instrument call until someone installs a live
#: registry (``glove ... --metrics`` does).
_NULL_REGISTRY = MetricsRegistry(enabled=False)
_metrics: MetricsRegistry = _NULL_REGISTRY


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (a disabled no-op unless installed)."""
    return _metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install a process-wide registry; returns the previous one.

    ``None`` restores the disabled default.
    """
    global _metrics
    old = _metrics
    _metrics = registry if registry is not None else _NULL_REGISTRY
    return old


# ----------------------------------------------------------------------
# Snapshot validation (shared by tests, the CLI and CI metrics-smoke)
# ----------------------------------------------------------------------
_HIST_KEYS = frozenset(
    {"count", "sum", "min", "max", "boundaries", "bucket_counts", "p50", "p95"}
)


def validate_snapshot(snapshot: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``snapshot`` matches the v1 schema."""
    if not isinstance(snapshot, dict):
        raise ValueError("snapshot must be a dict")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"unknown snapshot schema {snapshot.get('schema')!r}; "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    if not isinstance(snapshot.get("enabled"), bool):
        raise ValueError("snapshot['enabled'] must be a bool")
    for kind in ("counters", "gauges", "histograms"):
        section = snapshot.get(kind)
        if not isinstance(section, dict):
            raise ValueError(f"snapshot[{kind!r}] must be a dict")
    for name, value in snapshot["counters"].items():  # type: ignore[union-attr]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"counter {name!r} must be a non-negative int")
    for name, value in snapshot["gauges"].items():  # type: ignore[union-attr]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"gauge {name!r} must be a number")
    for name, hist in snapshot["histograms"].items():  # type: ignore[union-attr]
        if not isinstance(hist, dict) or set(hist) != _HIST_KEYS:
            raise ValueError(
                f"histogram {name!r} must have exactly the keys "
                f"{sorted(_HIST_KEYS)}"
            )
        edges = hist["boundaries"]
        counts = hist["bucket_counts"]
        if not isinstance(edges, list) or not isinstance(counts, list):
            raise ValueError(f"histogram {name!r} boundaries/buckets must be lists")
        if len(counts) != len(edges) + 1:
            raise ValueError(
                f"histogram {name!r} needs len(boundaries)+1 bucket counts"
            )
        if sum(counts) != hist["count"]:
            raise ValueError(f"histogram {name!r} bucket counts do not sum to count")
