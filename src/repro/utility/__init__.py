"""Downstream-utility evaluation of anonymized movement data.

The paper's Section 2.4 claims that k-anonymized data "better fits
studies on, e.g., the routine behaviors of individual subscribers
(e.g., home and work locations, next location predictions), or
aggregate statistics on user populations (e.g., ... commuting flows,
population distributions)", while outlier-centric analyses may be
distorted.  This subpackage makes the claim measurable: each module
implements one canonical mobile-data analysis that runs identically on
original and GLOVE-anonymized datasets, plus a similarity score.

* :mod:`repro.utility.anchors` — home/work location detection;
* :mod:`repro.utility.od_matrix` — zone-level commuting (origin/
  destination) flows;
* :mod:`repro.utility.density` — population density maps;
* :mod:`repro.utility.predictability` — location-visit entropy;
* :mod:`repro.utility.comparison` — the original-vs-anonymized harness.
"""

from repro.utility.anchors import AnchorEstimate, detect_anchors
from repro.utility.comparison import UtilityComparison, compare_utility
from repro.utility.density import density_map, density_similarity
from repro.utility.od_matrix import od_matrix, od_similarity
from repro.utility.predictability import location_entropy, entropy_profile

__all__ = [
    "detect_anchors",
    "AnchorEstimate",
    "od_matrix",
    "od_similarity",
    "density_map",
    "density_similarity",
    "location_entropy",
    "entropy_profile",
    "compare_utility",
    "UtilityComparison",
]
