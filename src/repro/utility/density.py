"""Population density maps from movement micro-data.

Another aggregate the paper expects anonymized data to preserve
(Section 2.4: "population distributions").  Samples are histogrammed on
a coarse zone grid; a generalized sample spreads its unit mass
uniformly over the zones its rectangle intersects, which is exactly how
a downstream analyst would treat interval-valued data.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.sample import DX, DY, X, Y

#: Default density zone side, metres.
DEFAULT_ZONE_M = 10_000.0

DensityMap = Dict[Tuple[int, int], float]


def density_map(
    dataset: FingerprintDataset, zone_m: float = DEFAULT_ZONE_M
) -> DensityMap:
    """Zone -> activity mass, weighted by group counts.

    Each sample contributes ``count`` units of mass, split uniformly
    over the zones overlapped by its rectangle.
    """
    if zone_m <= 0:
        raise ValueError("zone_m must be positive")
    density: DensityMap = {}
    for fp in dataset:
        for row in fp.data:
            zx0 = int(np.floor(row[X] / zone_m))
            zx1 = int(np.floor((row[X] + row[DX]) / zone_m))
            zy0 = int(np.floor(row[Y] / zone_m))
            zy1 = int(np.floor((row[Y] + row[DY]) / zone_m))
            zones = [
                (zx, zy)
                for zx in range(zx0, zx1 + 1)
                for zy in range(zy0, zy1 + 1)
            ]
            mass = fp.count / len(zones)
            for zone in zones:
                density[zone] = density.get(zone, 0.0) + mass
    return density


def density_similarity(a: DensityMap, b: DensityMap) -> float:
    """Cosine similarity between two density maps (1.0 = identical)."""
    keys = sorted(set(a) | set(b))
    if not keys:
        return 1.0
    va = np.array([a.get(k, 0.0) for k in keys])
    vb = np.array([b.get(k, 0.0) for k in keys])
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0.0 and nb == 0.0:
        return 1.0
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(va @ vb / (na * nb))


def top_zones(density: DensityMap, n: int = 10) -> list:
    """The ``n`` densest zones, as ``(zone, mass)`` pairs, heaviest first."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return sorted(density.items(), key=lambda item: -item[1])[:n]
