"""Zone-level commuting (origin-destination) flows.

One of the aggregate statistics the paper expects k-anonymized data to
preserve.  The country is partitioned into square zones; each
subscriber contributes one unit of flow from his home zone to his work
zone (anchors detected as in :mod:`repro.utility.anchors`), and the
resulting sparse matrices are compared by cosine similarity.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.utility.anchors import detect_anchors

#: Default zone side, metres (a city-district scale).
DEFAULT_ZONE_M = 10_000.0

ODMatrix = Dict[Tuple[Tuple[int, int], Tuple[int, int]], float]


def _zone(pos: Tuple[float, float], zone_m: float) -> Tuple[int, int]:
    return (int(np.floor(pos[0] / zone_m)), int(np.floor(pos[1] / zone_m)))


def od_matrix(
    dataset: FingerprintDataset, zone_m: float = DEFAULT_ZONE_M
) -> ODMatrix:
    """Commuting flows ``(home_zone, work_zone) -> subscriber count``.

    Group records contribute their full ``count`` (all members share the
    published anchors), so totals match between original and anonymized
    datasets up to detection failures.
    """
    if zone_m <= 0:
        raise ValueError("zone_m must be positive")
    flows: ODMatrix = defaultdict(float)
    for fp in dataset:
        anchors = detect_anchors(fp)
        if anchors.home is None or anchors.work is None:
            continue
        key = (_zone(anchors.home, zone_m), _zone(anchors.work, zone_m))
        flows[key] += fp.count
    return dict(flows)


def od_similarity(a: ODMatrix, b: ODMatrix) -> float:
    """Cosine similarity between two OD matrices (1.0 = identical).

    Flows are compared over the union of OD pairs; two empty matrices
    are defined as perfectly similar.
    """
    keys = sorted(set(a) | set(b))
    if not keys:
        return 1.0
    va = np.array([a.get(k, 0.0) for k in keys])
    vb = np.array([b.get(k, 0.0) for k in keys])
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0.0 and nb == 0.0:
        return 1.0
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(va @ vb / (na * nb))


def total_flow(matrix: ODMatrix) -> float:
    """Total commuter count in an OD matrix."""
    return float(sum(matrix.values()))


def intrazonal_fraction(matrix: ODMatrix) -> float:
    """Share of commuters whose home and work zones coincide.

    A robust one-number summary of commuting locality, useful when the
    exact zone identities differ between datasets.
    """
    total = total_flow(matrix)
    if total == 0.0:
        return 0.0
    intra = sum(v for (h, w), v in matrix.items() if h == w)
    return intra / total
