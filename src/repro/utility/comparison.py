"""The original-vs-anonymized utility harness.

Runs every analysis of the subpackage on both datasets and condenses
the outcome into one comparable report, quantifying the paper's
Section 2.4 claim that routine-behaviour and aggregate analyses remain
meaningful on GLOVE output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.utility.anchors import anchor_displacements
from repro.utility.density import density_map, density_similarity
from repro.utility.od_matrix import intrazonal_fraction, od_matrix, od_similarity
from repro.utility.predictability import entropy_profile


@dataclass(frozen=True)
class UtilityComparison:
    """Condensed utility scores of an anonymized release.

    All similarity scores lie in ``[0, 1]`` with 1 meaning the analysis
    result on the anonymized data matches the original exactly.

    Attributes
    ----------
    home_median_displacement_m / work_median_displacement_m:
        Median anchor displacement (NaN when undetectable).
    od_cosine:
        Cosine similarity of zone-level commuting matrices.
    od_intrazonal_original / od_intrazonal_anonymized:
        Commuting-locality summaries of each dataset.
    density_cosine:
        Cosine similarity of population density maps.
    entropy_correlation:
        Pearson correlation of per-user Shannon visit entropies
        (matched by group: every member inherits his group's entropy).
    """

    home_median_displacement_m: float
    work_median_displacement_m: float
    od_cosine: float
    od_intrazonal_original: float
    od_intrazonal_anonymized: float
    density_cosine: float
    entropy_correlation: float


def _entropy_correlation(
    original: FingerprintDataset,
    anonymized: FingerprintDataset,
    bin_m: float = 10_000.0,
) -> float:
    group_shannon: Dict[str, float] = {}
    anonym_profile = entropy_profile(anonymized, bin_m=bin_m)
    for fp, shannon in zip(anonymized, anonym_profile["shannon"]):
        for member in fp.members:
            group_shannon[member] = float(shannon)

    pairs = []
    orig_profile = entropy_profile(original, bin_m=bin_m)
    for fp, shannon in zip(original, orig_profile["shannon"]):
        if fp.uid in group_shannon:
            pairs.append((float(shannon), group_shannon[fp.uid]))
    if len(pairs) < 3:
        return float("nan")
    a, b = np.asarray(pairs).T
    if a.std() == 0.0 or b.std() == 0.0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])


def compare_utility(
    original: FingerprintDataset,
    anonymized: FingerprintDataset,
    zone_m: float = 10_000.0,
) -> UtilityComparison:
    """Run all utility analyses on both datasets and score the release."""
    displacements = anchor_displacements(original, anonymized)
    home = displacements["home"]
    work = displacements["work"]

    od_orig = od_matrix(original, zone_m)
    od_anon = od_matrix(anonymized, zone_m)

    return UtilityComparison(
        home_median_displacement_m=float(np.median(home)) if home.size else float("nan"),
        work_median_displacement_m=float(np.median(work)) if work.size else float("nan"),
        od_cosine=od_similarity(od_orig, od_anon),
        od_intrazonal_original=intrazonal_fraction(od_orig),
        od_intrazonal_anonymized=intrazonal_fraction(od_anon),
        density_cosine=density_similarity(
            density_map(original, zone_m), density_map(anonymized, zone_m)
        ),
        entropy_correlation=_entropy_correlation(original, anonymized),
    )
