"""Location-visit entropy: the predictability side of routine behaviour.

Song et al. (Science, 2010) characterize human mobility predictability
through visit entropies.  Two of their measures run directly on
movement micro-data and survive generalization:

* **random entropy** ``log2(N)`` — the number of distinct locations
  visited;
* **uncorrelated (Shannon) entropy** over the visit frequency
  distribution.

Comparing per-user entropies before and after anonymization quantifies
how much of the routine-behaviour signal the release preserves (paper
Section 2.4 names "next location predictions" as a supported use).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DX, DY, X, Y


@dataclass(frozen=True)
class EntropyEstimate:
    """Visit entropies of one fingerprint (bits).

    Attributes
    ----------
    n_locations:
        Distinct locations visited (rectangle centers at 100 m binning).
    random_entropy:
        ``log2(n_locations)``.
    shannon_entropy:
        Entropy of the empirical visit distribution.
    """

    n_locations: int
    random_entropy: float
    shannon_entropy: float


def location_entropy(fp: Fingerprint, bin_m: float = 100.0) -> EntropyEstimate:
    """Visit entropies of one fingerprint.

    ``bin_m`` sets the location-identification granularity: 100 m (the
    default) distinguishes antenna cells on original data; comparisons
    against generalized data should use a coarser bin (e.g. 10 km) so a
    rectangle's center and the true cell it covers identify the same
    location.
    """
    if fp.m == 0:
        return EntropyEstimate(n_locations=0, random_entropy=0.0, shannon_entropy=0.0)
    if bin_m <= 0:
        raise ValueError("bin_m must be positive")
    cx = np.floor((fp.data[:, X] + fp.data[:, DX] / 2.0) / bin_m) * bin_m
    cy = np.floor((fp.data[:, Y] + fp.data[:, DY] / 2.0) / bin_m) * bin_m
    counts = Counter(zip(cx.tolist(), cy.tolist()))
    n = len(counts)
    total = sum(counts.values())
    probs = np.array([c / total for c in counts.values()])
    shannon = float(-(probs * np.log2(probs)).sum())
    return EntropyEstimate(
        n_locations=n,
        random_entropy=float(np.log2(n)) if n else 0.0,
        shannon_entropy=shannon,
    )


def entropy_profile(
    dataset: FingerprintDataset, bin_m: float = 100.0
) -> Dict[str, np.ndarray]:
    """Per-fingerprint entropy arrays for a whole dataset.

    Returns ``{"random": ..., "shannon": ..., "n_locations": ...}``,
    each aligned with the dataset's fingerprint order.
    """
    random_h, shannon_h, n_locs = [], [], []
    for fp in dataset:
        est = location_entropy(fp, bin_m=bin_m)
        random_h.append(est.random_entropy)
        shannon_h.append(est.shannon_entropy)
        n_locs.append(est.n_locations)
    return {
        "random": np.asarray(random_h),
        "shannon": np.asarray(shannon_h),
        "n_locations": np.asarray(n_locs, dtype=np.int64),
    }
