"""Home and work location detection from movement micro-data.

The standard CDR analysis: a subscriber's home is where his night
samples concentrate, his workplace where weekday office-hour samples
do.  Runs identically on original (100 m cells) and generalized data
(rectangle centers), so the displacement between the two estimates
measures how much utility anonymization preserved for this analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, T, X, Y

MINUTES_PER_DAY = 24 * 60

#: Night window (hours) used for home detection.
NIGHT_HOURS = (0, 7)
#: Weekday office window (hours) used for work detection.
WORK_HOURS = (9, 18)


@dataclass(frozen=True)
class AnchorEstimate:
    """Estimated home/work positions of one subscriber.

    Attributes
    ----------
    uid:
        Subscriber (or analysis target) identifier.
    home, work:
        Planar ``(x, y)`` estimates in metres; ``None`` when no sample
        fell in the respective time window.
    """

    uid: str
    home: Optional[Tuple[float, float]]
    work: Optional[Tuple[float, float]]


def _window_mask(data: np.ndarray, hours: Tuple[int, int]) -> np.ndarray:
    mid = data[:, T] + data[:, DT] / 2.0
    hour = (mid % MINUTES_PER_DAY) / 60.0
    return (hour >= hours[0]) & (hour < hours[1])


def _modal_center(data: np.ndarray, mask: np.ndarray) -> Optional[Tuple[float, float]]:
    """Representative position of the window's dominant location.

    On original-granularity data, samples repeat at the anchor cell and
    the coordinate-wise median lands on it exactly; on generalized data
    (rectangles of varying size) the median of the centers is robust to
    the occasional far-flung blob that a modal 100 m bin would pick
    arbitrarily.
    """
    if not mask.any():
        return None
    cx = data[mask, X] + data[mask, DX] / 2.0
    cy = data[mask, Y] + data[mask, DY] / 2.0
    return (float(np.median(cx)), float(np.median(cy)))


def detect_anchors(fp: Fingerprint) -> AnchorEstimate:
    """Estimate home and work positions of one fingerprint."""
    if fp.m == 0:
        return AnchorEstimate(uid=fp.uid, home=None, work=None)
    home = _modal_center(fp.data, _window_mask(fp.data, NIGHT_HOURS))
    work = _modal_center(fp.data, _window_mask(fp.data, WORK_HOURS))
    return AnchorEstimate(uid=fp.uid, home=home, work=work)


def anchor_displacements(
    original: FingerprintDataset, anonymized: FingerprintDataset
) -> Dict[str, np.ndarray]:
    """Home/work displacement between original and anonymized estimates.

    For every subscriber, anchors are detected on his original
    fingerprint and on the published record of his group; the output
    maps ``"home"``/``"work"`` to arrays of displacement distances in
    metres (subscribers whose anchor is undetectable on either side are
    skipped).
    """
    group_of: Dict[str, Fingerprint] = {}
    for fp in anonymized:
        for member in fp.members:
            group_of[member] = fp

    group_anchor_cache: Dict[str, AnchorEstimate] = {}
    out: Dict[str, list] = {"home": [], "work": []}
    for fp in original:
        group = group_of.get(fp.uid)
        if group is None:
            continue
        truth = detect_anchors(fp)
        if group.uid not in group_anchor_cache:
            group_anchor_cache[group.uid] = detect_anchors(group)
        estimate = group_anchor_cache[group.uid]
        for key, true_pos, est_pos in (
            ("home", truth.home, estimate.home),
            ("work", truth.work, estimate.work),
        ):
            if true_pos is None or est_pos is None:
                continue
            out[key].append(
                float(np.hypot(true_pos[0] - est_pos[0], true_pos[1] - est_pos[1]))
            )
    return {key: np.asarray(vals) for key, vals in out.items()}
