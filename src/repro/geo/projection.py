"""Lambert azimuthal equal-area projection.

The paper (Section 3) projects antenna positions, given as latitude and
longitude pairs, onto a plane using the Lambert azimuthal equal-area
projection before discretizing them on a 100 m grid.  This module
implements the forward and inverse spherical forms of the projection
(Snyder, *Map Projections: A Working Manual*, USGS 1987, eq. 24-2..24-4
and 20-14..20-18).

The projection is area-preserving, which matters for CDR analysis: cell
densities computed on the projected plane are proportional to densities
on the sphere, so population-weighted antenna placement is undistorted.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

#: Mean Earth radius in metres (IUGG mean radius R1).
EARTH_RADIUS_M = 6_371_008.8


class LambertAzimuthalEqualArea:
    """Spherical Lambert azimuthal equal-area projection.

    Parameters
    ----------
    lat0, lon0:
        Latitude and longitude of the projection origin, in degrees.
        The origin maps to planar coordinates ``(0, 0)``.
    radius:
        Sphere radius in metres.  Defaults to the mean Earth radius.

    Examples
    --------
    >>> proj = LambertAzimuthalEqualArea(lat0=7.5, lon0=-5.5)
    >>> x, y = proj.forward(7.5, -5.5)
    >>> abs(x) < 1e-9 and abs(y) < 1e-9
    True
    """

    def __init__(self, lat0: float, lon0: float, radius: float = EARTH_RADIUS_M):
        if not -90.0 <= lat0 <= 90.0:
            raise ValueError(f"lat0 must be in [-90, 90], got {lat0}")
        if not -180.0 <= lon0 <= 180.0:
            raise ValueError(f"lon0 must be in [-180, 180], got {lon0}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.lat0 = float(lat0)
        self.lon0 = float(lon0)
        self.radius = float(radius)
        self._phi0 = math.radians(lat0)
        self._lam0 = math.radians(lon0)
        self._sin_phi0 = math.sin(self._phi0)
        self._cos_phi0 = math.cos(self._phi0)

    def forward(self, lat, lon) -> Tuple[np.ndarray, np.ndarray]:
        """Project latitude/longitude (degrees) to planar x/y (metres).

        Accepts scalars or NumPy arrays; returns a pair ``(x, y)`` with
        the same shape as the inputs.  The antipode of the origin is the
        single singular point of the projection and raises ``ValueError``.
        """
        phi = np.radians(np.asarray(lat, dtype=np.float64))
        lam = np.radians(np.asarray(lon, dtype=np.float64))
        dlam = lam - self._lam0
        cos_c = self._sin_phi0 * np.sin(phi) + self._cos_phi0 * np.cos(phi) * np.cos(dlam)
        # k' = sqrt(2 / (1 + cos c)); singular when cos c -> -1 (antipode).
        denom = 1.0 + cos_c
        if np.any(denom <= 1e-12):
            raise ValueError("cannot project the antipode of the projection origin")
        kprime = np.sqrt(2.0 / denom)
        x = self.radius * kprime * np.cos(phi) * np.sin(dlam)
        y = self.radius * kprime * (
            self._cos_phi0 * np.sin(phi) - self._sin_phi0 * np.cos(phi) * np.cos(dlam)
        )
        if np.isscalar(lat) or (np.ndim(lat) == 0 and np.ndim(lon) == 0):
            return float(x), float(y)
        return x, y

    def inverse(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """Map planar x/y (metres) back to latitude/longitude (degrees)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rho = np.hypot(x, y)
        scalar = rho.ndim == 0
        rho = np.atleast_1d(rho)
        xa = np.atleast_1d(x)
        ya = np.atleast_1d(y)
        # c = 2 arcsin(rho / 2R); rho = 0 maps back to the origin.
        ratio = np.clip(rho / (2.0 * self.radius), -1.0, 1.0)
        c = 2.0 * np.arcsin(ratio)
        sin_c = np.sin(c)
        cos_c = np.cos(c)
        with np.errstate(invalid="ignore", divide="ignore"):
            phi = np.where(
                rho > 0,
                np.arcsin(
                    np.clip(
                        cos_c * self._sin_phi0
                        + np.where(rho > 0, ya * sin_c * self._cos_phi0 / np.where(rho > 0, rho, 1.0), 0.0),
                        -1.0,
                        1.0,
                    )
                ),
                self._phi0,
            )
            lam = np.where(
                rho > 0,
                self._lam0
                + np.arctan2(
                    xa * sin_c,
                    rho * self._cos_phi0 * cos_c - ya * self._sin_phi0 * sin_c,
                ),
                self._lam0,
            )
        lat = np.degrees(phi)
        lon = np.degrees(lam)
        if scalar:
            return float(lat[0]), float(lon[0])
        return lat.reshape(x.shape), lon.reshape(x.shape)

    def __repr__(self) -> str:
        return (
            f"LambertAzimuthalEqualArea(lat0={self.lat0}, lon0={self.lon0}, "
            f"radius={self.radius})"
        )
