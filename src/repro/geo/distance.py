"""Distance helpers on the sphere and on the projected plane."""

from __future__ import annotations

import numpy as np

from repro.geo.projection import EARTH_RADIUS_M


def haversine_m(lat1, lon1, lat2, lon2, radius: float = EARTH_RADIUS_M):
    """Great-circle distance in metres between two lat/lon points.

    Accepts scalars or broadcastable NumPy arrays (degrees).
    """
    phi1 = np.radians(np.asarray(lat1, dtype=np.float64))
    phi2 = np.radians(np.asarray(lat2, dtype=np.float64))
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lon2, dtype=np.float64)) - np.radians(
        np.asarray(lon1, dtype=np.float64)
    )
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    d = 2.0 * radius * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if d.ndim == 0:
        return float(d)
    return d


def euclidean_m(x1, y1, x2, y2):
    """Planar Euclidean distance in metres between projected points."""
    d = np.hypot(
        np.asarray(x2, dtype=np.float64) - np.asarray(x1, dtype=np.float64),
        np.asarray(y2, dtype=np.float64) - np.asarray(y1, dtype=np.float64),
    )
    if d.ndim == 0:
        return float(d)
    return d
