"""Geodesy substrate.

The paper maps antenna latitude/longitude pairs to a two-dimensional
metric coordinate system with the Lambert azimuthal equal-area projection
and then discretizes positions on a 100 m regular grid (paper Section 3).
This subpackage implements that pipeline from scratch:

* :mod:`repro.geo.projection` -- Lambert azimuthal equal-area projection
  on the spherical Earth model.
* :mod:`repro.geo.grid` -- regular-grid discretization of projected
  coordinates.
* :mod:`repro.geo.distance` -- great-circle and planar distances.
* :mod:`repro.geo.region` -- rectangular geographic regions used to
  describe synthetic countries and city subsets.
"""

from repro.geo.distance import euclidean_m, haversine_m
from repro.geo.grid import Grid
from repro.geo.projection import LambertAzimuthalEqualArea
from repro.geo.region import Region

__all__ = [
    "LambertAzimuthalEqualArea",
    "Grid",
    "Region",
    "haversine_m",
    "euclidean_m",
]
