"""Regular-grid discretization of projected coordinates.

The paper discretizes projected antenna positions on a 100 m regular
grid, "the maximum spatial granularity we consider" (Section 3).  At
100 m each grid cell contains at most one antenna, so discretization is
lossless for the original data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: The paper's finest spatial granularity, in metres.
DEFAULT_CELL_SIZE_M = 100.0


class Grid:
    """A regular square grid over the projected plane.

    Parameters
    ----------
    cell_size:
        Side length of a grid cell in metres (default 100 m, the paper's
        maximum spatial granularity).
    origin:
        Planar coordinates of the grid origin.  Cell ``(0, 0)`` covers
        ``[origin_x, origin_x + cell_size) x [origin_y, origin_y + cell_size)``.
    """

    def __init__(self, cell_size: float = DEFAULT_CELL_SIZE_M, origin: Tuple[float, float] = (0.0, 0.0)):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self.origin = (float(origin[0]), float(origin[1]))

    def snap(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """Snap planar coordinates to the lower-left corner of their cell.

        Returns coordinates in metres, aligned to the grid; this is the
        canonical representation of a spatial sample's ``(x, y)`` corner
        with extent ``(cell_size, cell_size)``.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        gx = np.floor((x - self.origin[0]) / self.cell_size) * self.cell_size + self.origin[0]
        gy = np.floor((y - self.origin[1]) / self.cell_size) * self.cell_size + self.origin[1]
        if gx.ndim == 0:
            return float(gx), float(gy)
        return gx, gy

    def cell_index(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """Integer cell indices ``(ix, iy)`` of planar coordinates."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        ix = np.floor((x - self.origin[0]) / self.cell_size).astype(np.int64)
        iy = np.floor((y - self.origin[1]) / self.cell_size).astype(np.int64)
        if ix.ndim == 0:
            return int(ix), int(iy)
        return ix, iy

    def cell_center(self, ix, iy) -> Tuple[np.ndarray, np.ndarray]:
        """Planar coordinates of the center of cell ``(ix, iy)``."""
        ix = np.asarray(ix, dtype=np.float64)
        iy = np.asarray(iy, dtype=np.float64)
        cx = self.origin[0] + (ix + 0.5) * self.cell_size
        cy = self.origin[1] + (iy + 0.5) * self.cell_size
        if cx.ndim == 0:
            return float(cx), float(cy)
        return cx, cy

    def coarsen(self, factor: int) -> "Grid":
        """Return a grid whose cells are ``factor`` times larger.

        Used by the uniform-generalization baseline: e.g. coarsening the
        100 m grid by a factor of 10 yields the 1 km generalization level
        of the paper's Fig. 4.
        """
        if factor < 1 or int(factor) != factor:
            raise ValueError(f"factor must be a positive integer, got {factor}")
        return Grid(cell_size=self.cell_size * int(factor), origin=self.origin)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self.cell_size == other.cell_size and self.origin == other.origin

    def __hash__(self) -> int:
        return hash((self.cell_size, self.origin))

    def __repr__(self) -> str:
        return f"Grid(cell_size={self.cell_size}, origin={self.origin})"
