"""Rectangular geographic regions on the projected plane.

Regions describe the extents of synthetic countries and of city subsets
(the paper restricts the nationwide datasets to ``abidjan`` and
``dakar`` in Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]`` in metres.

    Attributes
    ----------
    name:
        Human-readable region label (e.g. ``"synth-civ"``, ``"abidjan"``).
    x_min, x_max, y_min, y_max:
        Planar bounds in metres.
    """

    name: str
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min:
            raise ValueError(f"x_max must exceed x_min in region {self.name!r}")
        if self.y_max <= self.y_min:
            raise ValueError(f"y_max must exceed y_min in region {self.name!r}")

    @property
    def width(self) -> float:
        """East-west extent in metres."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """North-south extent in metres."""
        return self.y_max - self.y_min

    @property
    def area_km2(self) -> float:
        """Region area in square kilometres."""
        return self.width * self.height / 1e6

    @property
    def center(self) -> tuple:
        """Planar center ``(x, y)`` of the region."""
        return ((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, x, y):
        """Boolean mask (or bool) of points inside the region (inclusive)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        inside = (
            (x >= self.x_min)
            & (x <= self.x_max)
            & (y >= self.y_min)
            & (y <= self.y_max)
        )
        if inside.ndim == 0:
            return bool(inside)
        return inside

    def clip(self, x, y):
        """Clamp points to the region bounds."""
        x = np.clip(np.asarray(x, dtype=np.float64), self.x_min, self.x_max)
        y = np.clip(np.asarray(y, dtype=np.float64), self.y_min, self.y_max)
        if x.ndim == 0:
            return float(x), float(y)
        return x, y

    def subregion(self, name: str, cx: float, cy: float, half_side: float) -> "Region":
        """Square subregion of side ``2 * half_side`` centered at ``(cx, cy)``.

        The subregion is clamped to this region's bounds; used to carve
        city-scale datasets (abidjan, dakar) out of nationwide ones.
        """
        return Region(
            name=name,
            x_min=max(self.x_min, cx - half_side),
            x_max=min(self.x_max, cx + half_side),
            y_min=max(self.y_min, cy - half_side),
            y_max=min(self.y_max, cy + half_side),
        )
