"""Pluggable stretch-compute engine: the substrate of the GLOVE hot loop.

The paper offloads GLOVE's O(|M|^2 n-bar^2) Eq. 10 evaluations to a
CUDA GPU (Section 6.3).  This module makes the compute substrate a
first-class, swappable subsystem instead of logic inlined into the
algorithm:

* :class:`SlotStore` owns the padded fingerprint tensors and the slot
  lifecycle (append/retire) shared by every backend;
* :class:`StretchBackend` implementations execute the bulk Eq. 10
  kernels — ``numpy`` (chunked broadcasting), ``process`` (multi-core
  pool, absorbed from the former ``repro.core.parallel`` API),
  ``compiled`` (numba-JIT scalar kernels, optional ``[compiled]``
  extra) and ``auto`` (workload-size dispatch, preferring the compiled
  tier inline when importable); new tiers (sharded, GPU) register
  through :func:`register_backend`;
* :class:`StretchEngine` ties a store to a backend and adds the cheap
  bounding-box lower bounds on fingerprint stretch that let callers
  prune exact evaluations which provably cannot beat a current best.

All backends run the identical kernel per (probe, target) pair, so
results are byte-identical regardless of backend, chunking or worker
count; see DESIGN.md for the invariants.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.config import ComputeConfig, StretchConfig, env_int
from repro.core.fingerprint import Fingerprint
from repro.core.pairwise import (
    PaddedFingerprints,
    ProbeBatch,
    many_vs_all,
    many_vs_some,
    one_vs_all,
)
from repro.core.sample import DT, DX, DY, NCOLS, T, X, Y

# ----------------------------------------------------------------------
# Process-wide default compute configuration
# ----------------------------------------------------------------------
_default_compute = ComputeConfig()


def get_default_compute() -> ComputeConfig:
    """The process-wide :class:`ComputeConfig` used when none is given."""
    return _default_compute


def set_default_compute(compute: ComputeConfig) -> ComputeConfig:
    """Install a new process-wide default compute config; returns the old one.

    Entry points (``glove-repro``, the ``glove`` CLI, the benchmark
    suite) call this once at start-up so that every internal
    :func:`repro.core.glove.glove` / k-gap matrix build picks up the
    selected backend without threading a parameter through the thirteen
    experiment modules.
    """
    global _default_compute
    old = _default_compute
    _default_compute = compute
    return old


def _effective_workers(compute: ComputeConfig) -> int:
    if compute.workers is not None:
        return compute.workers
    return min(os.cpu_count() or 1, 8)


def _effective_kernel_threads(compute: ComputeConfig) -> int:
    """Resolved intra-batch thread count of the compiled tier.

    The explicit config field wins; otherwise the
    ``REPRO_KERNEL_THREADS`` environment knob applies (default 1).
    ``auto`` (flag or env) resolves to the machine's CPU count, so a
    1-CPU container never splits batches — the large_n sweep measured
    18.454 s → 23.908 s going 1→8 threads there (BENCH_glove.json).
    The env knob degrades to 1 on other malformed values — only the
    config field / CLI flag validates strictly (DESIGN.md D6).
    """
    if compute.kernel_threads == "auto":
        return max(1, os.cpu_count() or 1)
    if compute.kernel_threads is not None:
        return int(compute.kernel_threads)
    if os.environ.get("REPRO_KERNEL_THREADS", "").strip().lower() == "auto":
        return max(1, os.cpu_count() or 1)
    return max(1, env_int("REPRO_KERNEL_THREADS", 1))


def grow_array(arr: np.ndarray, capacity: int, fill=0) -> np.ndarray:
    """Return ``arr`` grown to ``capacity`` rows, new rows set to ``fill``.

    Shared by the slot store, the engine's pruning summaries and the
    GLOVE nearest-neighbour cache so capacity growth follows one policy.
    """
    if arr.shape[0] >= capacity:
        return arr
    out = np.full((capacity,) + arr.shape[1:], fill, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


# ----------------------------------------------------------------------
# Slot store: padded tensors + slot lifecycle
# ----------------------------------------------------------------------
class SlotStore:
    """Growable padded tensor of fingerprints with slot lifecycle.

    Duck-types the :class:`repro.core.pairwise.PaddedFingerprints`
    interface (``data``, ``mask``, ``lengths``, ``counts``) so the bulk
    kernels can address live slots directly while slots are appended
    (merge products) and retired (merged-away parents).

    Merged fingerprints never have more samples than their shorter
    parent, so the per-slot sample capacity ``m_max`` is fixed by the
    initial population; the slot capacity grows geometrically on demand.
    """

    def __init__(self, fingerprints: Sequence[Fingerprint]):
        fps = list(fingerprints)
        if not fps:
            raise ValueError("cannot build a slot store from zero fingerprints")
        if any(fp.m == 0 for fp in fps):
            raise ValueError("cannot store fingerprints with zero samples")
        n = len(fps)
        # n inputs + at most n-1 merge products + one leftover fold.
        capacity = 2 * n
        m_max = max(fp.m for fp in fps)
        self.data = np.zeros((capacity, m_max, NCOLS), dtype=np.float64)
        self.mask = np.zeros((capacity, m_max), dtype=bool)
        self.lengths = np.zeros(capacity, dtype=np.int64)
        self.counts = np.zeros(capacity, dtype=np.int64)
        self.alive = np.zeros(capacity, dtype=bool)
        self.fps: List[Optional[Fingerprint]] = [None] * capacity
        self.size = 0
        for fp in fps:
            self.append(fp)

    @property
    def capacity(self) -> int:
        """Currently allocated slot capacity."""
        return self.data.shape[0]

    @property
    def m_max(self) -> int:
        """Per-slot sample capacity."""
        return self.data.shape[1]

    def _grow(self) -> None:
        new_cap = max(self.capacity + 1, self.capacity * 3 // 2)
        for name in ("data", "mask", "lengths", "counts", "alive"):
            setattr(self, name, grow_array(getattr(self, name), new_cap))
        self.fps.extend([None] * (new_cap - len(self.fps)))

    def append(self, fp: Fingerprint) -> int:
        """Store a fingerprint in the next free slot; returns the slot id."""
        if fp.m > self.m_max:
            raise ValueError(
                f"fingerprint {fp.uid!r} has {fp.m} samples, exceeding the "
                f"per-slot capacity {self.m_max}"
            )
        if self.size == self.capacity:
            self._grow()
        slot = self.size
        self.data[slot, : fp.m] = fp.data
        self.mask[slot, : fp.m] = True
        self.lengths[slot] = fp.m
        self.counts[slot] = fp.count
        self.alive[slot] = True
        self.fps[slot] = fp
        self.size += 1
        return slot

    def retire(self, slot: int) -> None:
        """Mark a slot dead (its fingerprint was merged away)."""
        if not self.alive[slot]:
            raise ValueError(f"slot {slot} is not alive")
        self.alive[slot] = False

    def probe(self, slot: int) -> np.ndarray:
        """The trimmed ``(m, 6)`` sample array of a slot."""
        return self.data[slot, : self.lengths[slot]]

    def view(self) -> "PaddedFingerprints":
        """A packed view of the first ``size`` slots (shared memory)."""
        packed = PaddedFingerprints.__new__(PaddedFingerprints)
        packed.data = self.data[: self.size]
        packed.mask = self.mask[: self.size]
        packed.lengths = self.lengths[: self.size]
        packed.counts = self.counts[: self.size]
        packed.uids = [fp.uid if fp is not None else "" for fp in self.fps[: self.size]]
        return packed

    def __len__(self) -> int:
        return self.size


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class StretchBackend(abc.ABC):
    """Executes bulk Eq. 10 evaluations against a packed store.

    Implementations must be *value-transparent*: every (probe, target)
    pair goes through the same floating-point kernel, so any two
    backends return byte-identical arrays for the same inputs.
    """

    name: str = "?"

    #: True when the backend's exact kernel is cheap enough that the
    #: engine's level-1 bucket bounds cost more to compute than the
    #: exact evaluations they would prune.  Callers walking candidates
    #: may drop that refinement level — pruning tightness never changes
    #: outputs, only which evaluations run (DESIGN.md D7/D9).
    fast_exact: bool = False

    #: True when the backend offers the fused in-kernel bound-and-prune
    #: entries (:meth:`bounded_many_vs_all` / :meth:`bounded_many_vs_some`,
    #: DESIGN.md D13).  The engine's walkers switch to them when pruning
    #: is enabled; tiers without the entries keep the Python-side walk.
    supports_bounded: bool = False

    def __init__(self, compute: ComputeConfig, stretch: StretchConfig):
        self.compute = compute
        self.stretch = stretch
        #: Python→kernel transitions: one per kernel invocation (a
        #: batched native call moving P probes still counts one).
        self.n_boundary_crossings = 0
        #: Probe rows dispatched, across all entry points.
        self.n_probe_dispatches = 0
        #: Probe rows that went through a *batched* multi-probe kernel
        #: entry (native ``many_vs_all``/``many_vs_some``); zero on
        #: tiers that fall back to per-probe loops.
        self.n_batched_probes = 0
        #: (probe, target) pairs whose exact evaluation the fused
        #: bounded entries skipped in-kernel; zero on tiers without
        #: them.
        self.n_bound_pruned = 0

    def dispatch_counters(self) -> Tuple[int, int, int, int]:
        """``(crossings, probe_dispatches, batched_probes, bound_pruned)``.

        Composite backends override this to aggregate their children so
        a silent per-probe fallback is visible in run stats instead of
        only in wall time.
        """
        return (
            self.n_boundary_crossings,
            self.n_probe_dispatches,
            self.n_batched_probes,
            self.n_bound_pruned,
        )

    @abc.abstractmethod
    def one_vs_all(
        self,
        probe_data: np.ndarray,
        probe_count: int,
        packed,
        targets: np.ndarray,
    ) -> np.ndarray:
        """Eq. 10 efforts from one probe to the given target slots."""

    @abc.abstractmethod
    def pairwise_matrix(self, packed) -> np.ndarray:
        """Full symmetric ``Delta`` matrix with ``+inf`` diagonal."""

    def many_vs_all(
        self,
        probes: Sequence[np.ndarray],
        probe_counts: Sequence[int],
        packed,
        targets: np.ndarray,
    ) -> np.ndarray:
        """Eq. 10 efforts from several probes to one shared target set.

        Returns a ``(P, len(targets))`` matrix whose row ``p`` equals
        :meth:`one_vs_all` of probe ``p`` (bitwise).  The default stacks
        per-probe rows through the subclass's own :meth:`one_vs_all`,
        so every backend stays value-transparent; tiers with a cheaper
        multi-probe path (shared target gathers) override it.
        """
        targets = np.asarray(targets, dtype=np.int64)
        if not len(probes):
            return np.empty((0, targets.size), dtype=np.float64)
        return np.stack(
            [
                self.one_vs_all(p, int(c), packed, targets)
                for p, c in zip(probes, probe_counts)
            ]
        )

    def many_vs_some(
        self,
        probes: Sequence[np.ndarray],
        probe_counts: Sequence[int],
        packed,
        targets_list: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """Ragged multi-probe dispatch: probe ``p`` vs its own subset.

        Entry ``p`` of the result is bitwise equal to :meth:`one_vs_all`
        of probe ``p`` against ``targets_list[p]``.  The batched merge
        frontier in :mod:`repro.core.glove` uses this to coalesce all
        refresh scans of one iteration into a single dispatch.
        """
        out = []
        for p, c, t in zip(probes, probe_counts, targets_list):
            t = np.asarray(t, dtype=np.int64)
            if t.size == 0:
                out.append(np.empty(0, dtype=np.float64))
            else:
                out.append(self.one_vs_all(p, int(c), packed, t))
        return out

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class NumpyBackend(StretchBackend):
    """Single-process chunked-broadcasting backend (the default tier)."""

    name = "numpy"

    def one_vs_all(self, probe_data, probe_count, packed, targets):
        self.n_boundary_crossings += 1
        self.n_probe_dispatches += 1
        return one_vs_all(
            probe_data,
            probe_count,
            packed,
            self.stretch,
            indices=targets,
            chunk=self.compute.chunk,
        )

    def many_vs_all(self, probes, probe_counts, packed, targets):
        targets = np.asarray(targets, dtype=np.int64)
        if not len(probes):
            return np.empty((0, targets.size), dtype=np.float64)
        # The broadcast kernel shares target gathers across probes but
        # still enters the chunked kernel once per probe row.
        self.n_boundary_crossings += len(probes)
        self.n_probe_dispatches += len(probes)
        return many_vs_all(
            probes, probe_counts, packed, self.stretch,
            indices=targets, chunk=self.compute.chunk,
        )

    def many_vs_some(self, probes, probe_counts, packed, targets_list):
        self.n_boundary_crossings += len(probes)
        self.n_probe_dispatches += len(probes)
        return many_vs_some(
            probes, probe_counts, packed, targets_list,
            self.stretch, chunk=self.compute.chunk,
        )

    def pairwise_matrix(self, packed):
        n = len(packed)
        mat = np.full((n, n), np.inf, dtype=np.float64)
        for i in range(n - 1):
            targets = np.arange(i + 1, n)
            vals = self.one_vs_all(
                packed.data[i, : packed.lengths[i]], int(packed.counts[i]), packed, targets
            )
            mat[i, i + 1 :] = vals
            mat[i + 1 :, i] = vals
        return mat


# Worker-side state for matrix builds, installed once per process by the
# pool initializer (the packed tensors are shipped a single time).
_WORKER_PACKED: Optional[PaddedFingerprints] = None
_WORKER_STRETCH: Optional[StretchConfig] = None
_WORKER_CHUNK: int = 0


def _matrix_init(data, mask, lengths, counts, stretch, chunk) -> None:
    global _WORKER_PACKED, _WORKER_STRETCH, _WORKER_CHUNK
    packed = PaddedFingerprints.__new__(PaddedFingerprints)
    packed.data = data
    packed.mask = mask
    packed.lengths = lengths
    packed.counts = counts
    packed.uids = [""] * data.shape[0]
    _WORKER_PACKED = packed
    _WORKER_STRETCH = stretch
    _WORKER_CHUNK = chunk


def _matrix_row_block(rows: np.ndarray) -> List[np.ndarray]:
    packed = _WORKER_PACKED
    n = len(packed)
    out = []
    for i in rows:
        i = int(i)
        targets = np.arange(i + 1, n)
        if targets.size == 0:
            out.append(np.empty(0))
            continue
        probe = packed.data[i, : packed.lengths[i]]
        out.append(
            one_vs_all(
                probe,
                int(packed.counts[i]),
                packed,
                _WORKER_STRETCH,
                indices=targets,
                chunk=_WORKER_CHUNK,
            )
        )
    return out


def _ova_shard(args) -> np.ndarray:
    """Stateless one-vs-all shard: all tensors travel with the task."""
    probe_data, probe_count, data, mask, lengths, counts, stretch, chunk = args
    packed = PaddedFingerprints.__new__(PaddedFingerprints)
    packed.data = data
    packed.mask = mask
    packed.lengths = lengths
    packed.counts = counts
    packed.uids = [""] * data.shape[0]
    return one_vs_all(
        probe_data, probe_count, packed, stretch,
        indices=np.arange(data.shape[0]), chunk=chunk,
    )


class ProcessBackend(StretchBackend):
    """Multi-core tier: Eq. 10 evaluations sharded over a process pool.

    Full matrix builds ship the packed tensors to each worker once (pool
    initializer) and shard probe rows in blocks; large one-vs-all calls
    shard their target set with stateless tasks.  Small calls run inline
    on the NumPy kernel — below
    :attr:`~repro.core.config.ComputeConfig.parallel_targets_threshold`
    the per-call pool overhead exceeds the kernel time.
    """

    name = "process"

    #: Probe rows per matrix-build task.
    MATRIX_BLOCK = 16

    def __init__(self, compute: ComputeConfig, stretch: StretchConfig):
        super().__init__(compute, stretch)
        self.workers = _effective_workers(compute)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _shard_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def one_vs_all(self, probe_data, probe_count, packed, targets):
        targets = np.asarray(targets, dtype=np.int64)
        self.n_probe_dispatches += 1
        if self.workers <= 1 or targets.size < self.compute.parallel_targets_threshold:
            self.n_boundary_crossings += 1
            return one_vs_all(
                probe_data, probe_count, packed, self.stretch,
                indices=targets, chunk=self.compute.chunk,
            )
        shards = np.array_split(targets, self.workers)
        shards = [s for s in shards if s.size]
        self.n_boundary_crossings += len(shards)
        tasks = [
            (
                probe_data,
                probe_count,
                packed.data[s],
                packed.mask[s],
                packed.lengths[s],
                packed.counts[s],
                self.stretch,
                self.compute.chunk,
            )
            for s in shards
        ]
        results = list(self._shard_pool().map(_ova_shard, tasks))
        return np.concatenate(results)

    def pairwise_matrix(self, packed):
        n = len(packed)
        if n < 4 or self.workers <= 1:
            return NumpyBackend(self.compute, self.stretch).pairwise_matrix(packed)
        mat = np.full((n, n), np.inf, dtype=np.float64)
        blocks = [
            np.arange(s, min(s + self.MATRIX_BLOCK, n - 1))
            for s in range(0, n - 1, self.MATRIX_BLOCK)
        ]
        # A dedicated pool per build: the initializer broadcast ties the
        # workers to this packed snapshot.
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_matrix_init,
            initargs=(
                packed.data,
                packed.mask,
                packed.lengths,
                packed.counts,
                self.stretch,
                self.compute.chunk,
            ),
        ) as pool:
            for rows, results in zip(blocks, pool.map(_matrix_row_block, blocks)):
                for i, vals in zip(rows, results):
                    i = int(i)
                    if vals.size:
                        mat[i, i + 1 :] = vals
                        mat[i + 1 :, i] = vals
        return mat

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class CompiledBackend(StretchBackend):
    """Compiled kernel tier over the same padded tensor layout.

    Wraps the accelerated :mod:`repro.core.kernels` binding — numba
    JIT with the ``[compiled]`` packaging extra, otherwise a shared
    library built with the system C compiler (the ``cc`` tier, see
    :mod:`repro.core._ckernel`).  Byte-identical to the NumPy
    reference by construction — the scalar kernel replicates the
    broadcast kernel's operation order including NumPy's pairwise
    summation (DESIGN.md D9) — so selecting it changes wall time only,
    never a single output bit.
    """

    name = "compiled"
    fast_exact = True
    supports_bounded = True

    def __init__(self, compute: ComputeConfig, stretch: StretchConfig):
        super().__init__(compute, stretch)
        if not kernels.COMPILED_AVAILABLE:
            raise RuntimeError(
                "backend 'compiled' has no accelerated binding: numba is not "
                "importable (install the [compiled] extra: pip install "
                "'glove-repro[compiled]') and no system C compiler is "
                "available; select the 'numpy' / 'auto' backend instead"
            )
        self.kernel_threads = _effective_kernel_threads(compute)
        self._threads: Optional[ThreadPoolExecutor] = None

    def _args(self):
        cfg = self.stretch
        return cfg.w_sigma, cfg.w_tau, cfg.phi_max_sigma_m, cfg.phi_max_tau_min

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(max_workers=self.kernel_threads)
        return self._threads

    def _probe_slices(self, n_probes: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, end)`` sub-batches for the thread splitter.

        Probes are mutually independent in the batched kernels (each
        (probe, target) pair re-zeroes its scratch; see DESIGN.md D11),
        so splitting a batch into contiguous slices — whatever the
        count — reproduces the unsplit call bit for bit.  The split
        only decides which GIL-released native call computes each row.
        """
        nt = min(self.kernel_threads, n_probes)
        if nt <= 1:
            return [(0, n_probes)]
        step = -(-n_probes // nt)
        return [(s, min(s + step, n_probes)) for s in range(0, n_probes, step)]

    def one_vs_all(self, probe_data, probe_count, packed, targets):
        targets = np.asarray(targets, dtype=np.int64)
        self.n_boundary_crossings += 1
        self.n_probe_dispatches += 1
        return kernels.one_vs_all_arrays(
            np.ascontiguousarray(probe_data), float(probe_count),
            packed.data, packed.lengths, packed.counts, targets, *self._args(),
        )

    def many_vs_all(self, probes, probe_counts, packed, targets):
        targets = np.asarray(targets, dtype=np.int64)
        P = len(probes)
        if P == 0:
            return np.empty((0, targets.size), dtype=np.float64)
        batch = ProbeBatch(probes, probe_counts)
        slices = self._probe_slices(P)
        self.n_boundary_crossings += len(slices)
        self.n_probe_dispatches += P
        self.n_batched_probes += P
        args = self._args()

        def run(s: int, e: int) -> np.ndarray:
            return kernels.many_vs_all_arrays(
                batch.data[s:e], batch.lengths[s:e], batch.counts[s:e],
                packed.data, packed.lengths, packed.counts, targets, *args,
            )

        if len(slices) == 1:
            return run(0, P)
        out = np.empty((P, targets.size), dtype=np.float64)
        futures = [(s, self._thread_pool().submit(run, s, e)) for s, e in slices]
        for s, fut in futures:
            rows = fut.result()
            out[s : s + rows.shape[0]] = rows
        return out

    def many_vs_some(self, probes, probe_counts, packed, targets_list):
        P = len(probes)
        if P == 0:
            return []
        t_arrays = [np.asarray(t, dtype=np.int64) for t in targets_list]
        offsets = np.zeros(P + 1, dtype=np.int64)
        np.cumsum([t.size for t in t_arrays], out=offsets[1:])
        total = int(offsets[-1])
        flat_out = np.empty(total, dtype=np.float64)
        if total:
            flat_targets = np.concatenate(t_arrays)
            batch = ProbeBatch(probes, probe_counts)
            # Slices with no targets dispatch nothing (the frontier may
            # batch probes whose candidate lists all emptied).
            slices = [
                (s, e) for s, e in self._probe_slices(P) if offsets[e] > offsets[s]
            ]
            self.n_boundary_crossings += len(slices)
            args = self._args()

            def run(s: int, e: int) -> np.ndarray:
                # Rebase the CSR offsets so each sub-batch addresses its
                # own flat slice starting at zero.
                return kernels.many_vs_some_arrays(
                    batch.data[s:e], batch.lengths[s:e], batch.counts[s:e],
                    packed.data, packed.lengths, packed.counts,
                    flat_targets[offsets[s] : offsets[e]],
                    np.ascontiguousarray(offsets[s : e + 1] - offsets[s]),
                    *args,
                )

            if len(slices) == 1:
                s, e = slices[0]
                flat_out[offsets[s] : offsets[e]] = run(s, e)
            else:
                futures = [
                    (s, e, self._thread_pool().submit(run, s, e)) for s, e in slices
                ]
                for s, e, fut in futures:
                    flat_out[offsets[s] : offsets[e]] = fut.result()
        self.n_probe_dispatches += P
        self.n_batched_probes += P
        return [flat_out[offsets[p] : offsets[p + 1]] for p in range(P)]

    def pairwise_matrix(self, packed):
        self.n_boundary_crossings += 1
        self.n_probe_dispatches += len(packed)
        return kernels.pairwise_matrix_arrays(
            packed.data, packed.lengths, packed.counts, *self._args()
        )

    def bounded_many_vs_all(self, probe_slots, store, bounds, targets, thresholds):
        """Fused bound-and-prune argmin sweep (DESIGN.md D13).

        Per probe slot, returns the running-best ``(min, argmin)`` over
        ``targets`` (self-pairs skipped in-kernel) plus the count of
        pairs whose exact evaluation the inline level-0/level-1 bounds
        pruned.  Probes are independent, so the thread splitter applies
        unchanged.
        """
        probe_slots = np.ascontiguousarray(probe_slots, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        P = probe_slots.shape[0]
        if P == 0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        hull, bucket_hull, bucket_occ = bounds
        thresholds = np.ascontiguousarray(thresholds, dtype=np.float64)
        slices = self._probe_slices(P)
        self.n_boundary_crossings += len(slices)
        self.n_probe_dispatches += P
        self.n_batched_probes += P
        args = self._args()

        def run(s: int, e: int):
            return kernels.bounded_many_vs_all_arrays(
                probe_slots[s:e], store.data, store.lengths, store.counts,
                hull, bucket_hull, bucket_occ, targets, thresholds[s:e], *args,
            )

        if len(slices) == 1:
            best, best_idx, pruned = run(0, P)
        else:
            best = np.empty(P, dtype=np.float64)
            best_idx = np.empty(P, dtype=np.int64)
            pruned = np.zeros(P, dtype=np.int64)
            futures = [(s, self._thread_pool().submit(run, s, e)) for s, e in slices]
            for s, fut in futures:
                b, bi, pr = fut.result()
                best[s : s + b.shape[0]] = b
                best_idx[s : s + b.shape[0]] = bi
                pruned[s : s + b.shape[0]] = pr
        self.n_bound_pruned += int(pruned.sum())
        return best, best_idx, pruned

    def bounded_many_vs_some(
        self, probe_slots, store, bounds, targets_list, thresholds,
        reverse_list, best_vals,
    ):
        """Fused bound-and-prune row sweep with reverse-aware skipping.

        Returns per-probe rows with ``+inf`` sentinels at pruned
        positions plus per-probe pruned counts.  ``reverse`` pairs are
        only skipped when the bound also clears the target's cached
        best (``best_vals``), keeping reverse propagation
        value-transparent (DESIGN.md D13).
        """
        probe_slots = np.ascontiguousarray(probe_slots, dtype=np.int64)
        P = probe_slots.shape[0]
        pruned = np.zeros(P, dtype=np.int64)
        if P == 0:
            return [], pruned
        t_arrays = [np.asarray(t, dtype=np.int64) for t in targets_list]
        offsets = np.zeros(P + 1, dtype=np.int64)
        np.cumsum([t.size for t in t_arrays], out=offsets[1:])
        total = int(offsets[-1])
        flat_out = np.empty(total, dtype=np.float64)
        if total:
            hull, bucket_hull, bucket_occ = bounds
            flat_targets = np.concatenate(t_arrays)
            flat_reverse = np.concatenate(
                [np.asarray(r, dtype=bool) for r in reverse_list]
            )
            thresholds = np.ascontiguousarray(thresholds, dtype=np.float64)
            best_vals = np.ascontiguousarray(best_vals, dtype=np.float64)
            slices = [
                (s, e) for s, e in self._probe_slices(P) if offsets[e] > offsets[s]
            ]
            self.n_boundary_crossings += len(slices)
            args = self._args()

            def run(s: int, e: int):
                return kernels.bounded_many_vs_some_arrays(
                    probe_slots[s:e], store.data, store.lengths, store.counts,
                    hull, bucket_hull, bucket_occ,
                    flat_targets[offsets[s] : offsets[e]],
                    np.ascontiguousarray(offsets[s : e + 1] - offsets[s]),
                    thresholds[s:e],
                    flat_reverse[offsets[s] : offsets[e]],
                    best_vals, *args,
                )

            if len(slices) == 1:
                s, e = slices[0]
                flat_out[offsets[s] : offsets[e]], pruned[s:e] = run(s, e)
            else:
                futures = [
                    (s, e, self._thread_pool().submit(run, s, e)) for s, e in slices
                ]
                for s, e, fut in futures:
                    flat_out[offsets[s] : offsets[e]], pruned[s:e] = fut.result()
        self.n_probe_dispatches += P
        self.n_batched_probes += P
        self.n_bound_pruned += int(pruned.sum())
        return [flat_out[offsets[p] : offsets[p + 1]] for p in range(P)], pruned

    def close(self) -> None:
        if self._threads is not None:
            self._threads.shutdown()
            self._threads = None


class AutoBackend(StretchBackend):
    """Workload-size dispatch between the registered compute tiers.

    Small workloads stay on the inline kernels — the compiled tier when
    the ``[compiled]`` extra is importable, the NumPy reference
    otherwise (both byte-identical, so the preference is invisible in
    results).  Full matrix builds over at least
    ``parallel_matrix_threshold`` fingerprints and one-vs-all calls
    over at least ``parallel_targets_threshold`` targets go to the
    process pool (when more than one worker is available).
    """

    name = "auto"

    def __init__(self, compute: ComputeConfig, stretch: StretchConfig):
        super().__init__(compute, stretch)
        self.workers = _effective_workers(compute)
        self._numpy = NumpyBackend(compute, stretch)
        # Inline tier: the compiled kernels when an accelerated binding
        # exists (numba extra or system-cc build), the NumPy reference
        # otherwise.  Byte-identity across tiers (enforced by the
        # parity suite) keeps the switch value-transparent.
        if kernels.COMPILED_AVAILABLE:
            self._inline: StretchBackend = CompiledBackend(compute, stretch)
            self.fast_exact = True
            self.supports_bounded = True
        else:
            self._inline = self._numpy
        self._process: Optional[ProcessBackend] = None

    def _pooled(self) -> ProcessBackend:
        if self._process is None:
            self._process = ProcessBackend(self.compute, self.stretch)
        return self._process

    def _prefer_pool(self, n_pairs_threshold: bool) -> bool:
        """Route to the process pool only when the inline tier is the
        NumPy reference.  At the measured per-pair costs (~0.97 µs
        inline compiled vs ~26 µs pooled, kernel bench row) the
        fork-and-pickle pool never beats the compiled inline tier, so
        workload size alone must not send work there.
        """
        return (
            self._inline is self._numpy
            and self.workers > 1
            and n_pairs_threshold
        )

    def one_vs_all(self, probe_data, probe_count, packed, targets):
        targets = np.asarray(targets, dtype=np.int64)
        if self._prefer_pool(
            targets.size >= self.compute.parallel_targets_threshold
        ):
            return self._pooled().one_vs_all(probe_data, probe_count, packed, targets)
        return self._inline.one_vs_all(probe_data, probe_count, packed, targets)

    def many_vs_all(self, probes, probe_counts, packed, targets):
        return self._inline.many_vs_all(probes, probe_counts, packed, targets)

    def many_vs_some(self, probes, probe_counts, packed, targets_list):
        return self._inline.many_vs_some(probes, probe_counts, packed, targets_list)

    def bounded_many_vs_all(self, probe_slots, store, bounds, targets, thresholds):
        return self._inline.bounded_many_vs_all(
            probe_slots, store, bounds, targets, thresholds
        )

    def bounded_many_vs_some(
        self, probe_slots, store, bounds, targets_list, thresholds,
        reverse_list, best_vals,
    ):
        return self._inline.bounded_many_vs_some(
            probe_slots, store, bounds, targets_list, thresholds,
            reverse_list, best_vals,
        )

    def pairwise_matrix(self, packed):
        if self._prefer_pool(len(packed) >= self.compute.parallel_matrix_threshold):
            return self._pooled().pairwise_matrix(packed)
        return self._inline.pairwise_matrix(packed)

    def dispatch_counters(self) -> Tuple[int, int, int, int]:
        """Aggregate over the delegate tiers.

        Multi-probe calls route to the inline tier unconditionally;
        before these counters that was a *silent* per-probe fallback
        whenever no compiled binding existed — now a batched frontier
        that degraded to P crossings per pass is visible in
        :class:`repro.core.glove.GloveStats` and the kernel benchmark
        row rather than only in wall time.
        """
        children = [self._numpy]
        if self._inline is not self._numpy:
            children.append(self._inline)
        if self._process is not None:
            children.append(self._process)
        crossings = self.n_boundary_crossings
        probes = self.n_probe_dispatches
        batched = self.n_batched_probes
        bound_pruned = self.n_bound_pruned
        for child in children:
            crossings += child.n_boundary_crossings
            probes += child.n_probe_dispatches
            batched += child.n_batched_probes
            bound_pruned += child.n_bound_pruned
        return (crossings, probes, batched, bound_pruned)

    def close(self) -> None:
        if self._inline is not self._numpy:
            self._inline.close()
        if self._process is not None:
            self._process.close()
            self._process = None


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
BackendFactory = Callable[[ComputeConfig, StretchConfig], StretchBackend]

_BACKENDS: Dict[str, BackendFactory] = {
    "numpy": NumpyBackend,
    "process": ProcessBackend,
    "compiled": CompiledBackend,
    "auto": AutoBackend,
}


def available_backends() -> List[str]:
    """Names of the registered compute backends."""
    return sorted(_BACKENDS)


def register_backend(name: str, factory: BackendFactory, overwrite: bool = False) -> None:
    """Register a compute backend under ``name``.

    ``factory(compute, stretch)`` must return a :class:`StretchBackend`.
    This is the extension point for future tiers (sharded, GPU): a
    registered backend is selectable by name through
    :class:`~repro.core.config.ComputeConfig` everywhere — CLI,
    experiment runner, benchmarks.
    """
    if not overwrite and name in _BACKENDS:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


# Algorithm-level drivers: a backend may take over whole glove() runs
# (the sharded tier partitions the population before any kernel runs,
# which cannot be expressed at the one_vs_all/pairwise_matrix level).
_GLOVE_DRIVERS: Dict[str, Callable] = {}


def register_glove_driver(name: str, driver: Callable, overwrite: bool = False) -> None:
    """Route ``glove()`` runs of backend ``name`` to an algorithm driver.

    ``driver(dataset, config, compute)`` must return a
    :class:`repro.core.glove.GloveResult`.  Kernel-level calls (k-gap
    matrix builds, one-vs-all rows) still go through the backend
    registered under the same name via :func:`register_backend`.
    """
    if not overwrite and name in _GLOVE_DRIVERS:
        raise ValueError(f"glove driver {name!r} is already registered")
    _GLOVE_DRIVERS[name] = driver


def get_glove_driver(name: str) -> Optional[Callable]:
    """The glove driver registered for a backend name, if any."""
    return _GLOVE_DRIVERS.get(name)


def create_backend(
    compute: ComputeConfig, stretch: StretchConfig = StretchConfig()
) -> StretchBackend:
    """Instantiate the backend selected by ``compute.backend``."""
    try:
        factory = _BACKENDS[compute.backend]
    except KeyError:
        raise ValueError(
            f"unknown compute backend {compute.backend!r}; "
            f"registered: {', '.join(available_backends())}"
        ) from None
    return factory(compute, stretch)


def compute_pairwise_matrix(
    fingerprints: Sequence[Fingerprint],
    config: StretchConfig = StretchConfig(),
    compute: Optional[ComputeConfig] = None,
) -> np.ndarray:
    """Full pairwise ``Delta`` matrix through the selected backend.

    The backend-aware counterpart of
    :func:`repro.core.pairwise.pairwise_matrix`; values are
    byte-identical across backends.
    """
    compute = compute if compute is not None else get_default_compute()
    packed = PaddedFingerprints(list(fingerprints))
    with create_backend(compute, config) as backend:
        return backend.pairwise_matrix(packed)


# ----------------------------------------------------------------------
# The engine: store + backend + lower bounds
# ----------------------------------------------------------------------
def _interval_gap(a_lo, a_hi, b_lo, b_hi):
    """Separation between intervals ``[a_lo, a_hi]`` and ``[b_lo, b_hi]``."""
    return np.maximum(0.0, np.maximum(a_lo - b_hi, b_lo - a_hi))


class StretchEngine:
    """Stretch-compute subsystem driving one GLOVE (or k-gap) workload.

    Owns a :class:`SlotStore`, a backend instance, and — when pruning is
    enabled — per-slot bounding-box summaries supporting two levels of
    lower bounds on the fingerprint stretch effort (Eq. 10):

    * **level 0** (:meth:`hull_lower_bounds`): the spatiotemporal gap
      between two slots' global bounding boxes, O(1) per pair;
    * **level 1** (:meth:`bucket_lower_bounds`): the probe's samples
      against the target's per-time-bucket spatial hulls (and vice
      versa, following Eq. 10's longer-side rule), O(m·B) per pair with
      ``B`` a small constant.

    Both bounds never exceed the exact effort (see DESIGN.md for the
    proof sketch), so a caller tracking a current-best value may skip
    the exact kernel for any candidate whose bound is already worse.
    """

    def __init__(
        self,
        fingerprints: Sequence[Fingerprint],
        stretch: StretchConfig = StretchConfig(),
        compute: Optional[ComputeConfig] = None,
    ):
        self.compute = compute if compute is not None else get_default_compute()
        self.stretch = stretch
        self.store = SlotStore(fingerprints)
        self.backend = create_backend(self.compute, stretch)
        self.pruning = self.compute.pruning
        # With a compiled exact kernel the level-1 bucket refinement
        # costs more than the (at most one batch of) evaluations it
        # prunes, so walkers consult this flag and stop at level 0.
        # Bound tightness never changes outputs, only eval counts.
        self.lb1_pruning = self.pruning and not self.backend.fast_exact
        # Fused in-kernel bound-and-prune sweep (DESIGN.md D13): when
        # the backend exposes the bounded entries, walkers hand the
        # whole bound→sort→walk loop to one native call per pass and
        # skip the Python-side bound sweep entirely.
        self.fused_pruning = self.pruning and getattr(
            self.backend, "supports_bounded", False
        )
        if self.pruning:
            self._init_bounds()

    # -- slot lifecycle -------------------------------------------------
    def append(self, fp: Fingerprint) -> int:
        """Add a fingerprint (e.g. a merge product); returns its slot."""
        slot = self.store.append(fp)
        if self.pruning:
            self._ensure_bound_capacity()
            self._summarize(slot)
        return slot

    def retire(self, slot: int) -> None:
        """Retire a slot whose fingerprint was merged away."""
        self.store.retire(slot)

    # -- exact evaluation ----------------------------------------------
    def row(self, slot: int, targets: np.ndarray) -> np.ndarray:
        """Exact Eq. 10 efforts from a live slot to the target slots."""
        targets = np.asarray(targets, dtype=np.int64)
        return self.backend.one_vs_all(
            self.store.probe(slot), int(self.store.counts[slot]), self.store, targets
        )

    def rows(self, slots: Sequence[int], targets: np.ndarray) -> np.ndarray:
        """Exact efforts from several live slots to one shared target set.

        Returns a ``(len(slots), len(targets))`` matrix; row ``p`` is
        bitwise equal to :meth:`row` of ``slots[p]``.
        """
        targets = np.asarray(targets, dtype=np.int64)
        store = self.store
        return self.backend.many_vs_all(
            [store.probe(int(s)) for s in slots],
            [int(store.counts[s]) for s in slots],
            store, targets,
        )

    def rows_some(
        self, slots: Sequence[int], targets_list: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Exact efforts from several live slots, each to its own targets.

        The ragged multi-probe dispatch behind the batched merge
        frontier: entry ``p`` is bitwise equal to :meth:`row` of
        ``slots[p]`` against ``targets_list[p]``.
        """
        store = self.store
        return self.backend.many_vs_some(
            [store.probe(int(s)) for s in slots],
            [int(store.counts[s]) for s in slots],
            store, targets_list,
        )

    def pairwise_matrix(self) -> np.ndarray:
        """Full matrix over the currently stored slots."""
        return self.backend.pairwise_matrix(self.store.view())

    # -- fused bound-and-prune dispatch (DESIGN.md D13) -----------------
    def _bounds_pack(self):
        return (self._hull, self._bucket_hull, self._bucket_occ)

    def _thresholds(self, n: int, thresholds) -> np.ndarray:
        if thresholds is None:
            return np.full(n, np.inf, dtype=np.float64)
        return np.ascontiguousarray(thresholds, dtype=np.float64)

    def bounded_argmin(
        self, slots: Sequence[int], targets: np.ndarray, thresholds=None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused ``(min, argmin, pruned)`` per probe slot over ``targets``.

        Requires :attr:`fused_pruning`.  Self-pairs are skipped
        in-kernel; a probe whose exact minimum is not strictly below
        its threshold reports ``(threshold, -1)``.  Without thresholds
        (``+inf``) the result is bitwise the lowest-index argmin of the
        exact :meth:`row` — the in-kernel running best only prunes
        pairs that cannot win (DESIGN.md D13).
        """
        slots_arr = np.ascontiguousarray(slots, dtype=np.int64)
        return self.backend.bounded_many_vs_all(
            slots_arr, self.store, self._bounds_pack(),
            targets, self._thresholds(slots_arr.size, thresholds),
        )

    def bounded_rows_some(
        self,
        slots: Sequence[int],
        targets_list: Sequence[np.ndarray],
        reverse_list: Sequence[np.ndarray],
        best_vals: np.ndarray,
        thresholds=None,
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Fused ragged rows with ``+inf`` sentinels at pruned positions.

        Requires :attr:`fused_pruning`.  Entry ``p`` equals :meth:`row`
        of ``slots[p]`` at every evaluated position; a pair is pruned
        only when its bound exceeds the probe's running best *and* —
        for ``reverse``-flagged targets — is at least the target's
        cached best in ``best_vals``, so reverse propagation sees every
        pair that could update it.
        """
        slots_arr = np.ascontiguousarray(slots, dtype=np.int64)
        return self.backend.bounded_many_vs_some(
            slots_arr, self.store, self._bounds_pack(), targets_list,
            self._thresholds(slots_arr.size, thresholds), reverse_list, best_vals,
        )

    # -- pruning summaries ---------------------------------------------
    def _init_bounds(self) -> None:
        store = self.store
        n = store.size
        t_lo = min(float(store.data[s, : store.lengths[s], T].min()) for s in range(n))
        t_hi = max(
            float(
                (store.data[s, : store.lengths[s], T] + store.data[s, : store.lengths[s], DT]).max()
            )
            for s in range(n)
        )
        span = max(t_hi - t_lo, 1e-9)
        n_buckets = int(np.ceil(span / self.compute.lb_bucket_minutes))
        n_buckets = int(np.clip(n_buckets, 1, self.compute.lb_max_buckets))
        self._bucket_edges = np.linspace(t_lo, t_hi, n_buckets + 1)
        cap = store.capacity
        # Component-major (struct-of-arrays) layout: row c holds one
        # hull component for every slot, so the level-0 bound sweep
        # gathers six contiguous vectors instead of strided columns.
        self._hull = np.zeros((6, cap), dtype=np.float64)
        self._bucket_hull = np.zeros((cap, n_buckets, 6), dtype=np.float64)
        self._bucket_occ = np.zeros((cap, n_buckets), dtype=bool)
        for slot in range(n):
            self._summarize(slot)

    def _ensure_bound_capacity(self) -> None:
        cap = self.store.capacity
        # The SoA hull grows along columns (slots are axis 1); the
        # shared grow_array helper only grows rows.
        if self._hull.shape[1] < cap:
            hull = np.zeros((6, cap), dtype=np.float64)
            hull[:, : self._hull.shape[1]] = self._hull
            self._hull = hull
        for name in ("_bucket_hull", "_bucket_occ"):
            setattr(self, name, grow_array(getattr(self, name), cap))

    def _summarize(self, slot: int) -> None:
        """Compute the hull and per-bucket hulls of a slot."""
        d = self.store.probe(slot)
        x_lo, x_hi = d[:, X], d[:, X] + d[:, DX]
        y_lo, y_hi = d[:, Y], d[:, Y] + d[:, DY]
        t_lo, t_hi = d[:, T], d[:, T] + d[:, DT]
        self._hull[:, slot] = (
            x_lo.min(), x_hi.max(), y_lo.min(), y_hi.max(), t_lo.min(), t_hi.max()
        )
        edges = self._bucket_edges
        # A sample belongs to every bucket its time interval touches
        # (closed bounds, so boundary samples are never orphaned).
        overlap = (t_lo[:, None] <= edges[1:][None, :]) & (t_hi[:, None] >= edges[:-1][None, :])
        occ = overlap.any(axis=0)
        inf = np.inf

        def bucket_min(v):
            return np.where(overlap, v[:, None], inf).min(axis=0)

        bh = self._bucket_hull[slot]
        bh[:, 0] = bucket_min(x_lo)
        bh[:, 1] = -bucket_min(-x_hi)
        bh[:, 2] = bucket_min(y_lo)
        bh[:, 3] = -bucket_min(-y_hi)
        # Clamp occupied time ranges to the bucket: tighter, still valid.
        bh[:, 4] = np.maximum(bucket_min(t_lo), edges[:-1])
        bh[:, 5] = np.minimum(-bucket_min(-t_hi), edges[1:])
        self._bucket_occ[slot] = occ

    # -- lower bounds ---------------------------------------------------
    def hull_lower_bounds(self, slot: int, targets: np.ndarray) -> np.ndarray:
        """Level-0 bound: gap between global bounding boxes, O(1)/pair."""
        h = self._hull[:, slot]
        H = self._hull[:, targets]
        gx = _interval_gap(h[0], h[1], H[0], H[1])
        gy = _interval_gap(h[2], h[3], H[2], H[3])
        gt = _interval_gap(h[4], h[5], H[4], H[5])
        cfg = self.stretch
        return cfg.w_sigma * np.minimum((gx + gy) / cfg.phi_max_sigma_m, 1.0) + (
            cfg.w_tau * np.minimum(gt / cfg.phi_max_tau_min, 1.0)
        )

    def hull_lower_bounds_many(
        self, slots: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Level-0 bounds for several probe slots at once: ``(P, T)``.

        Row ``p`` is bitwise equal to :meth:`hull_lower_bounds` of
        ``slots[p]`` (pure elementwise arithmetic), computed in one
        broadcast instead of ``P`` dispatches.
        """
        h = self._hull[:, np.asarray(slots, dtype=np.int64)][:, :, None]  # (6, P, 1)
        H = self._hull[:, targets][:, None, :]  # (6, 1, T)
        gx = _interval_gap(h[0], h[1], H[0], H[1])
        gy = _interval_gap(h[2], h[3], H[2], H[3])
        gt = _interval_gap(h[4], h[5], H[4], H[5])
        cfg = self.stretch
        return cfg.w_sigma * np.minimum((gx + gy) / cfg.phi_max_sigma_m, 1.0) + (
            cfg.w_tau * np.minimum(gt / cfg.phi_max_tau_min, 1.0)
        )

    def bucket_lower_bounds(self, slot: int, targets: np.ndarray) -> np.ndarray:
        """Level-1 bound: samples vs per-time-bucket hulls, O(m·B)/pair.

        Follows Eq. 10's direction rule: the mean runs over the longer
        fingerprint's samples (both directions averaged on equal
        lengths), so each direction is bounded with the corresponding
        side's samples against the other side's bucket hulls.
        """
        targets = np.asarray(targets, dtype=np.int64)
        ma = int(self.store.lengths[slot])
        len_t = self.store.lengths[targets]
        a_side = ma >= len_t  # probe is the longer (or equal) side
        b_side = len_t >= ma  # target is the longer (or equal) side
        la = np.zeros(targets.size)
        lb = np.zeros(targets.size)
        if a_side.any():
            la[a_side] = self._lb_probe_samples(slot, targets[a_side])
        if b_side.any():
            lb[b_side] = self._lb_target_samples(slot, targets[b_side])
        out = np.where(
            ma > len_t, la, np.where(len_t > ma, lb, (la + lb) / 2.0)
        )
        return out

    def _sample_bucket_lb(self, s_lo, s_hi, hulls, occ):
        """Per-(sample, bucket) bound; ``inf`` on unoccupied buckets.

        ``s_lo``/``s_hi`` are ``(..., 3)`` interval bounds (x, y, t) and
        ``hulls`` is ``(..., B, 6)``; broadcasting aligns the rest.
        """
        gx = _interval_gap(s_lo[..., 0], s_hi[..., 0], hulls[..., 0], hulls[..., 1])
        gy = _interval_gap(s_lo[..., 1], s_hi[..., 1], hulls[..., 2], hulls[..., 3])
        gt = _interval_gap(s_lo[..., 2], s_hi[..., 2], hulls[..., 4], hulls[..., 5])
        cfg = self.stretch
        lb = cfg.w_sigma * np.minimum((gx + gy) / cfg.phi_max_sigma_m, 1.0) + (
            cfg.w_tau * np.minimum(gt / cfg.phi_max_tau_min, 1.0)
        )
        return np.where(occ, lb, np.inf)

    def _lb_probe_samples(self, slot: int, targets: np.ndarray) -> np.ndarray:
        """Mean over probe samples of the min bound to target buckets."""
        d = self.store.probe(slot)
        s_lo = np.stack([d[:, X], d[:, Y], d[:, T]], axis=-1)
        s_hi = np.stack([d[:, X] + d[:, DX], d[:, Y] + d[:, DY], d[:, T] + d[:, DT]], axis=-1)
        ma = d.shape[0]
        n_buckets = self._bucket_hull.shape[1]
        out = np.empty(targets.size)
        block = max(1, (1 << 21) // max(ma * n_buckets, 1))
        for start in range(0, targets.size, block):
            sel = targets[start : start + block]
            hulls = self._bucket_hull[sel][:, None, :, :]  # (C, 1, B, 6)
            occ = self._bucket_occ[sel][:, None, :]  # (C, 1, B)
            lb = self._sample_bucket_lb(
                s_lo[None, :, None, :], s_hi[None, :, None, :], hulls, occ
            )  # (C, ma, B)
            out[start : start + sel.size] = lb.min(axis=2).mean(axis=1)
        return out

    def _lb_target_samples(self, slot: int, targets: np.ndarray) -> np.ndarray:
        """Masked mean over target samples of the min bound to probe buckets.

        Targets are grouped by length so the broadcast work is sliced to
        each block's own maximum sample count; the final mean still sums
        a zero-padded width-``m_max`` array, so every bound value is
        bitwise independent of the block composition (same argument as
        :func:`repro.core.pairwise._chunk_efforts`).
        """
        occ = self._bucket_occ[slot]
        hulls = self._bucket_hull[slot][occ]  # (Bo, 6)
        n_b = hulls.shape[0]
        m_max = self.store.m_max
        out = np.empty(targets.size)
        order = (
            np.argsort(self.store.lengths[targets], kind="stable")
            if targets.size > 1
            else np.arange(targets.size)
        )
        block = max(1, (1 << 21) // max(m_max * n_b, 1))
        for start in range(0, targets.size, block):
            pos = order[start : start + block]
            sel = targets[pos]
            width = int(self.store.lengths[sel].max())
            d = self.store.data[sel, :width]  # (C, W, 6)
            mask = self.store.mask[sel, :width]
            s_lo = np.stack([d[:, :, X], d[:, :, Y], d[:, :, T]], axis=-1)
            s_hi = np.stack(
                [d[:, :, X] + d[:, :, DX], d[:, :, Y] + d[:, :, DY], d[:, :, T] + d[:, :, DT]],
                axis=-1,
            )
            lb = self._sample_bucket_lb(
                s_lo[:, :, None, :], s_hi[:, :, None, :], hulls[None, None, :, :], True
            )  # (C, W, Bo)
            per_sample = np.zeros((sel.size, m_max), dtype=np.float64)
            per_sample[:, :width] = np.where(mask, lb.min(axis=2), 0.0)
            out[pos] = per_sample.sum(axis=1) / self.store.lengths[sel]
        return out

    # -- resource management -------------------------------------------
    def close(self) -> None:
        """Release the backend's pooled resources."""
        self.backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
