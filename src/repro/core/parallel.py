"""Multi-process evaluation of the pairwise stretch matrix.

The paper offloads the O(|M|^2) Eq. 10 evaluations to a GPU: "all of
[GLOVE's] key calculations are highly parallelizable" (Section 6.3).
The NumPy kernels in :mod:`repro.core.pairwise` are the single-process
equivalent; this module adds the multi-core tier: the probe rows of the
pairwise matrix are sharded across a process pool, with the packed
fingerprint tensor shipped to each worker once at pool start-up.

Use it when building large initial matrices (hundreds of users or
more); for the incremental one-vs-all calls inside the GLOVE loop the
per-call pool overhead exceeds the kernel time, so the sequential path
remains the default there.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import StretchConfig
from repro.core.fingerprint import Fingerprint
from repro.core.pairwise import PaddedFingerprints, one_vs_all

# Worker-side state, installed once per process by _init_worker.
_WORKER_PACKED: Optional[PaddedFingerprints] = None
_WORKER_CONFIG: Optional[StretchConfig] = None


def _init_worker(data, mask, lengths, counts, uids, config) -> None:
    global _WORKER_PACKED, _WORKER_CONFIG
    packed = PaddedFingerprints.__new__(PaddedFingerprints)
    packed.data = data
    packed.mask = mask
    packed.lengths = lengths
    packed.counts = counts
    packed.uids = uids
    _WORKER_PACKED = packed
    _WORKER_CONFIG = config


def _row_block(rows: np.ndarray) -> List[np.ndarray]:
    packed = _WORKER_PACKED
    config = _WORKER_CONFIG
    out = []
    n = len(packed)
    for i in rows:
        i = int(i)
        targets = np.arange(i + 1, n)
        if targets.size == 0:
            out.append(np.empty(0))
            continue
        probe = packed.data[i, : packed.lengths[i]]
        out.append(
            one_vs_all(probe, int(packed.counts[i]), packed, config, indices=targets)
        )
    return out


def parallel_pairwise_matrix(
    fingerprints: Sequence[Fingerprint],
    config: StretchConfig = StretchConfig(),
    n_workers: Optional[int] = None,
    block: int = 16,
) -> np.ndarray:
    """Pairwise ``Delta`` matrix computed on a process pool.

    Equivalent to :func:`repro.core.pairwise.pairwise_matrix` (same
    values, ``+inf`` diagonal); rows are sharded over ``n_workers``
    processes in blocks of ``block`` probes.  Falls back to the
    sequential kernel for trivially small inputs or ``n_workers=1``.
    """
    fps = list(fingerprints)
    n = len(fps)
    if n_workers is None:
        n_workers = min(os.cpu_count() or 1, 8)
    if n < 4 or n_workers <= 1:
        from repro.core.pairwise import pairwise_matrix

        return pairwise_matrix(fps, config)

    packed = PaddedFingerprints(fps)
    mat = np.full((n, n), np.inf, dtype=np.float64)
    blocks = [np.arange(s, min(s + block, n - 1)) for s in range(0, n - 1, block)]

    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(
            packed.data,
            packed.mask,
            packed.lengths,
            packed.counts,
            packed.uids,
            config,
        ),
    ) as pool:
        for rows, results in zip(blocks, pool.map(_row_block, blocks)):
            for i, vals in zip(rows, results):
                i = int(i)
                if vals.size:
                    mat[i, i + 1 :] = vals
                    mat[i + 1 :, i] = vals
    return mat
