"""Legacy multi-process API, now a shim over the compute engine.

The process pool that used to live here was absorbed into
:class:`repro.core.engine.ProcessBackend` — the paper's "all of
[GLOVE's] key calculations are highly parallelizable" (Section 6.3)
observation is now served by the backend registry instead of a parallel
bolt-on API.  :func:`parallel_pairwise_matrix` is kept for callers of
the original interface and simply delegates to the ``process`` backend.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import ComputeConfig, StretchConfig
from repro.core.fingerprint import Fingerprint


def parallel_pairwise_matrix(
    fingerprints: Sequence[Fingerprint],
    config: StretchConfig = StretchConfig(),
    n_workers: Optional[int] = None,
    block: int = 16,
) -> np.ndarray:
    """Pairwise ``Delta`` matrix computed on a process pool.

    Byte-identical to :func:`repro.core.pairwise.pairwise_matrix` (same
    values, ``+inf`` diagonal); probe rows are sharded over
    ``n_workers`` processes in blocks of ``block`` probes.  Falls back
    to the sequential kernel for trivially small inputs or
    ``n_workers=1``.

    .. deprecated::
        Prefer :func:`repro.core.engine.compute_pairwise_matrix` with
        ``ComputeConfig(backend="process")``, which also covers the
        ``auto`` workload-size dispatch.
    """
    from repro.core.engine import ProcessBackend
    from repro.core.pairwise import PaddedFingerprints

    fps = list(fingerprints)
    if n_workers is not None and n_workers < 1:
        n_workers = 1  # the historical `n_workers <= 1` sequential fallback
    backend = ProcessBackend(ComputeConfig(backend="process", workers=n_workers), config)
    backend.MATRIX_BLOCK = block
    try:
        return backend.pairwise_matrix(PaddedFingerprints(fps))
    finally:
        backend.close()
