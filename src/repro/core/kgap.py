"""The k-gap anonymizability measure (paper Eq. 11 and Section 5).

The *k-gap* of subscriber ``a`` is the average fingerprint stretch
effort between ``a`` and the ``k-1`` users whose fingerprints are the
cheapest to merge with ``a``'s.  A k-gap of 0 means ``a`` is already
k-anonymous; a k-gap of 1 means k-anonymizing ``a`` would render all his
samples uninformative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ComputeConfig, StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.pairwise import PaddedFingerprints, k_nearest, one_vs_all, pairwise_matrix
from repro.core.stretch import matched_stretch_components


@dataclass(frozen=True)
class KGapResult:
    """k-gap evaluation of a dataset.

    Attributes
    ----------
    k:
        Anonymity level the gaps refer to.
    uids:
        Fingerprint identifiers, aligned with ``gaps`` rows.
    gaps:
        ``(n,)`` array of k-gap values in ``[0, 1]``.
    neighbor_indices:
        ``(n, k-1)`` indices (into ``uids``) of each user's nearest
        ``k-1`` fingerprints (the set ``N_a^{k-1}`` of Eq. 11).
    neighbor_efforts:
        ``(n, k-1)`` fingerprint stretch efforts to those neighbours.
    """

    k: int
    uids: List[str]
    gaps: np.ndarray
    neighbor_indices: np.ndarray
    neighbor_efforts: np.ndarray

    @property
    def n(self) -> int:
        """Number of fingerprints evaluated."""
        return self.gaps.shape[0]

    def fraction_anonymous(self, atol: float = 1e-12) -> float:
        """Fraction of users whose k-gap is (numerically) zero.

        These users are already k-anonymous: merging them with their
        ``k-1`` nearest fingerprints costs nothing, which only happens
        when the fingerprints are identical.
        """
        return float(np.mean(self.gaps <= atol))

    def quantile(self, q: float) -> float:
        """Quantile of the k-gap distribution (e.g. ``q=0.5`` -> median)."""
        return float(np.quantile(self.gaps, q))


def kgap(
    dataset: FingerprintDataset,
    k: int = 2,
    config: StretchConfig = StretchConfig(),
    matrix: Optional[np.ndarray] = None,
    compute: Optional[ComputeConfig] = None,
) -> KGapResult:
    """Compute the k-gap of every fingerprint in a dataset (Eq. 11).

    Parameters
    ----------
    dataset:
        Fingerprints to evaluate; all must be non-empty.
    k:
        Target anonymity level (>= 2).
    config:
        Stretch-effort parameters.
    matrix:
        Optional precomputed pairwise ``Delta`` matrix (e.g. from
        :func:`repro.core.pairwise.pairwise_matrix`), reused across
        different ``k`` values as in the paper's Fig. 3b.
    compute:
        Compute-substrate selection for the matrix build (ignored when
        ``matrix`` is given); defaults to the process-wide
        :func:`repro.core.engine.get_default_compute`.  The ``auto``
        backend dispatches large builds to the process pool; the
        ``sharded`` backend's kernels delegate to the same dispatch
        (matrix builds have no population to partition), so ``--backend
        sharded`` is safe end-to-end through ``glove measure``.
    """
    if k < 2:
        raise ValueError(f"k must be at least 2, got {k}")
    fps = list(dataset)
    if len(fps) < k:
        raise ValueError(f"dataset has {len(fps)} fingerprints, cannot assess k={k}")
    if matrix is None:
        from repro.core.engine import compute_pairwise_matrix

        matrix = compute_pairwise_matrix(fps, config, compute)
    idx, efforts = k_nearest(matrix, k - 1)
    gaps = efforts.mean(axis=1)
    return KGapResult(
        k=k,
        uids=[fp.uid for fp in fps],
        gaps=gaps,
        neighbor_indices=idx,
        neighbor_efforts=efforts,
    )


def kgap_sweep(
    dataset: FingerprintDataset,
    ks: Sequence[int],
    config: StretchConfig = StretchConfig(),
    matrix: Optional[np.ndarray] = None,
    compute: Optional[ComputeConfig] = None,
) -> Dict[int, KGapResult]:
    """k-gap of every fingerprint at several anonymity levels at once.

    Equivalent to calling :func:`kgap` once per level (the Fig. 3b /
    Fig. 8 k-sweeps) but sharing the quadratic work across the sweep:
    the pairwise ``Delta`` matrix is built once, and the neighbour
    search runs once at ``max(ks)`` — because :func:`k_nearest` returns
    each row sorted by increasing effort, the smaller levels'
    ``k-1``-nearest sets are prefixes of the largest one's.  Every
    level's ``gaps`` therefore match an independent :func:`kgap` call
    exactly; on exact effort ties the neighbour *identities* may be
    picked differently than the standalone call would, but the efforts
    — and hence the gaps — are identical.
    """
    levels = sorted(set(int(k) for k in ks))
    if not levels:
        raise ValueError("ks must be non-empty")
    if levels[0] < 2:
        raise ValueError(f"k must be at least 2, got {levels[0]}")
    fps = list(dataset)
    k_max = levels[-1]
    if len(fps) < k_max:
        raise ValueError(f"dataset has {len(fps)} fingerprints, cannot assess k={k_max}")
    if matrix is None:
        from repro.core.engine import compute_pairwise_matrix

        matrix = compute_pairwise_matrix(fps, config, compute)
    uids = [fp.uid for fp in fps]
    idx, efforts = k_nearest(matrix, k_max - 1)
    out: Dict[int, KGapResult] = {}
    for k in levels:
        eff_k = efforts[:, : k - 1].copy()
        out[k] = KGapResult(
            k=k,
            uids=uids,
            gaps=eff_k.mean(axis=1),
            neighbor_indices=idx[:, : k - 1].copy(),
            neighbor_efforts=eff_k,
        )
    return out


@dataclass(frozen=True)
class StretchDecomposition:
    """Per-user spatial/temporal stretch sets of Section 5.3.

    For user ``a``, the matched per-sample stretch efforts toward all
    neighbours in ``N_a^{k-1}``, decomposed into total (``delta``),
    spatial (``w_sigma * phi_sigma``, the set ``S_a``) and temporal
    (``w_tau * phi_tau``, the set ``T_a``) contributions.
    """

    uid: str
    delta: np.ndarray
    spatial: np.ndarray
    temporal: np.ndarray

    @property
    def temporal_to_spatial_ratio(self) -> float:
        """Share of the temporal component in the total stretch effort.

        Computed as ``sum(T_a) / (sum(S_a) + sum(T_a))``, i.e. the
        fraction of the anonymization cost attributable to time; 0.5
        means equal split, 1.0 means the cost is fully temporal (this is
        the quantity plotted in the paper's Fig. 5b).
        """
        total = float(self.spatial.sum() + self.temporal.sum())
        if total == 0.0:
            return 0.5
        return float(self.temporal.sum()) / total


class StretchComponentCache:
    """Memo of matched per-sample stretch components (Section 5.3).

    A k-sweep evaluates :func:`stretch_decomposition` at several
    anonymity levels; since a smaller level's neighbour set is a prefix
    of a larger one's (both sorted by effort, see :func:`kgap_sweep`),
    the per-pair matched component triplets are shared work.  The cache
    memoizes :func:`~repro.core.stretch.matched_stretch_components` per
    *ordered* fingerprint-index pair (the decomposition is directional:
    it walks the longer fingerprint's samples, and equal-length pairs
    break the tie by argument order), so each pair's Eq. 1 component
    matrix is built at most once per sweep.  Bound to one dataset and
    one stretch configuration; indices follow the dataset's iteration
    order, matching ``KGapResult.neighbor_indices``.
    """

    def __init__(self, fps: Sequence[Fingerprint], config: StretchConfig = StretchConfig()):
        self._fps = list(fps)
        self._config = config
        self._memo: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        #: Number of cache lookups answered from the memo.
        self.hits = 0

    @property
    def n_pairs(self) -> int:
        """Number of distinct ordered pairs computed so far."""
        return len(self._memo)

    def components(self, i: int, j: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Matched ``(delta, spatial, temporal)`` triplet of pair ``(i, j)``."""
        key = (i, j)
        hit = self._memo.get(key)
        if hit is None:
            a, b = self._fps[i], self._fps[j]
            hit = matched_stretch_components(a.data, b.data, a.count, b.count, self._config)
            self._memo[key] = hit
        else:
            self.hits += 1
        return hit


def stretch_decomposition(
    dataset: FingerprintDataset,
    result: KGapResult,
    config: StretchConfig = StretchConfig(),
    cache: Optional[StretchComponentCache] = None,
) -> List[StretchDecomposition]:
    """Decompose each user's anonymization cost into space and time parts.

    Re-walks the nearest-neighbour sets of a :func:`kgap` result and
    collects the matched sample stretch components of Eq. 1, feeding the
    TWI analysis (Fig. 5a) and the component-ratio analysis (Fig. 5b).
    Pass a :class:`StretchComponentCache` (bound to the same dataset and
    config) to share the per-pair component work across repeated
    decompositions — several k levels, or the two Fig. 5 analyses.
    """
    fps = list(dataset)
    if cache is None:
        cache = StretchComponentCache(fps, config)
    out: List[StretchDecomposition] = []
    for i, fp in enumerate(fps):
        deltas, spatials, temporals = [], [], []
        for j in result.neighbor_indices[i]:
            d, s, t = cache.components(i, int(j))
            deltas.append(d)
            spatials.append(s)
            temporals.append(t)
        out.append(
            StretchDecomposition(
                uid=fp.uid,
                delta=np.concatenate(deltas),
                spatial=np.concatenate(spatials),
                temporal=np.concatenate(temporals),
            )
        )
    return out
