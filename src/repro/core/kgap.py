"""The k-gap anonymizability measure (paper Eq. 11 and Section 5).

The *k-gap* of subscriber ``a`` is the average fingerprint stretch
effort between ``a`` and the ``k-1`` users whose fingerprints are the
cheapest to merge with ``a``'s.  A k-gap of 0 means ``a`` is already
k-anonymous; a k-gap of 1 means k-anonymizing ``a`` would render all his
samples uninformative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import ComputeConfig, StretchConfig
from repro.core.dataset import FingerprintDataset
from repro.core.fingerprint import Fingerprint
from repro.core.pairwise import PaddedFingerprints, k_nearest, one_vs_all, pairwise_matrix
from repro.core.stretch import matched_stretch_components


@dataclass(frozen=True)
class KGapResult:
    """k-gap evaluation of a dataset.

    Attributes
    ----------
    k:
        Anonymity level the gaps refer to.
    uids:
        Fingerprint identifiers, aligned with ``gaps`` rows.
    gaps:
        ``(n,)`` array of k-gap values in ``[0, 1]``.
    neighbor_indices:
        ``(n, k-1)`` indices (into ``uids``) of each user's nearest
        ``k-1`` fingerprints (the set ``N_a^{k-1}`` of Eq. 11).
    neighbor_efforts:
        ``(n, k-1)`` fingerprint stretch efforts to those neighbours.
    """

    k: int
    uids: List[str]
    gaps: np.ndarray
    neighbor_indices: np.ndarray
    neighbor_efforts: np.ndarray

    @property
    def n(self) -> int:
        """Number of fingerprints evaluated."""
        return self.gaps.shape[0]

    def fraction_anonymous(self, atol: float = 1e-12) -> float:
        """Fraction of users whose k-gap is (numerically) zero.

        These users are already k-anonymous: merging them with their
        ``k-1`` nearest fingerprints costs nothing, which only happens
        when the fingerprints are identical.
        """
        return float(np.mean(self.gaps <= atol))

    def quantile(self, q: float) -> float:
        """Quantile of the k-gap distribution (e.g. ``q=0.5`` -> median)."""
        return float(np.quantile(self.gaps, q))


def kgap(
    dataset: FingerprintDataset,
    k: int = 2,
    config: StretchConfig = StretchConfig(),
    matrix: Optional[np.ndarray] = None,
    compute: Optional[ComputeConfig] = None,
) -> KGapResult:
    """Compute the k-gap of every fingerprint in a dataset (Eq. 11).

    Parameters
    ----------
    dataset:
        Fingerprints to evaluate; all must be non-empty.
    k:
        Target anonymity level (>= 2).
    config:
        Stretch-effort parameters.
    matrix:
        Optional precomputed pairwise ``Delta`` matrix (e.g. from
        :func:`repro.core.pairwise.pairwise_matrix`), reused across
        different ``k`` values as in the paper's Fig. 3b.
    compute:
        Compute-substrate selection for the matrix build (ignored when
        ``matrix`` is given); defaults to the process-wide
        :func:`repro.core.engine.get_default_compute`.  The ``auto``
        backend dispatches large builds to the process pool; the
        ``sharded`` backend's kernels delegate to the same dispatch
        (matrix builds have no population to partition), so ``--backend
        sharded`` is safe end-to-end through ``glove measure``.
    """
    if k < 2:
        raise ValueError(f"k must be at least 2, got {k}")
    fps = list(dataset)
    if len(fps) < k:
        raise ValueError(f"dataset has {len(fps)} fingerprints, cannot assess k={k}")
    if matrix is None:
        from repro.core.engine import compute_pairwise_matrix

        matrix = compute_pairwise_matrix(fps, config, compute)
    idx, efforts = k_nearest(matrix, k - 1)
    gaps = efforts.mean(axis=1)
    return KGapResult(
        k=k,
        uids=[fp.uid for fp in fps],
        gaps=gaps,
        neighbor_indices=idx,
        neighbor_efforts=efforts,
    )


@dataclass(frozen=True)
class StretchDecomposition:
    """Per-user spatial/temporal stretch sets of Section 5.3.

    For user ``a``, the matched per-sample stretch efforts toward all
    neighbours in ``N_a^{k-1}``, decomposed into total (``delta``),
    spatial (``w_sigma * phi_sigma``, the set ``S_a``) and temporal
    (``w_tau * phi_tau``, the set ``T_a``) contributions.
    """

    uid: str
    delta: np.ndarray
    spatial: np.ndarray
    temporal: np.ndarray

    @property
    def temporal_to_spatial_ratio(self) -> float:
        """Share of the temporal component in the total stretch effort.

        Computed as ``sum(T_a) / (sum(S_a) + sum(T_a))``, i.e. the
        fraction of the anonymization cost attributable to time; 0.5
        means equal split, 1.0 means the cost is fully temporal (this is
        the quantity plotted in the paper's Fig. 5b).
        """
        total = float(self.spatial.sum() + self.temporal.sum())
        if total == 0.0:
            return 0.5
        return float(self.temporal.sum()) / total


def stretch_decomposition(
    dataset: FingerprintDataset,
    result: KGapResult,
    config: StretchConfig = StretchConfig(),
) -> List[StretchDecomposition]:
    """Decompose each user's anonymization cost into space and time parts.

    Re-walks the nearest-neighbour sets of a :func:`kgap` result and
    collects the matched sample stretch components of Eq. 1, feeding the
    TWI analysis (Fig. 5a) and the component-ratio analysis (Fig. 5b).
    """
    fps = list(dataset)
    out: List[StretchDecomposition] = []
    for i, fp in enumerate(fps):
        deltas, spatials, temporals = [], [], []
        for j in result.neighbor_indices[i]:
            d, s, t = matched_stretch_components(
                fp.data, fps[int(j)].data, fp.count, fps[int(j)].count, config
            )
            deltas.append(d)
            spatials.append(s)
            temporals.append(t)
        out.append(
            StretchDecomposition(
                uid=fp.uid,
                delta=np.concatenate(deltas),
                spatial=np.concatenate(spatials),
                temporal=np.concatenate(temporals),
            )
        )
    return out
