"""Fingerprint merging through specialized generalization (Section 6.2).

Merging two fingerprints produces a single generalized fingerprint that
covers both, using the two-stage matching of the paper's Fig. 6a:

1. every sample of the *longer* fingerprint is matched to the sample of
   the shorter one at minimum sample stretch effort (Eq. 1), and all
   samples pointing to the same target are generalized together with it
   (Eq. 12-13);
2. samples of the shorter fingerprint that attracted no match in stage
   one are matched to (and merged into) the stage-one results.

Generalization of a set of samples is the coordinate-wise union of
their bounding rectangles and time intervals: Eq. 12 takes the minimum
lower edge, Eq. 13 stretches the extent to the maximum upper edge.  The
union is associative, so iterating Eq. 12-13 over a group equals one
bulk min/max reduction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.config import StretchConfig
from repro.core.fingerprint import Fingerprint
from repro.core.sample import DT, DX, DY, NCOLS, T, X, Y
from repro.core.stretch import stretch_matrix

#: (low, extent) column index pairs for the three generalized axes.
_AXES: Tuple[Tuple[int, int], ...] = ((X, DX), (Y, DY), (T, DT))


def generalize_rows(rows: np.ndarray) -> np.ndarray:
    """Generalize a group of samples into one covering sample (Eq. 12-13).

    ``rows`` is an ``(g, 6)`` array; the result is the ``(6,)`` sample
    whose rectangle and interval cover every row.
    """
    if rows.ndim != 2 or rows.shape[1] != NCOLS or rows.shape[0] == 0:
        raise ValueError(f"expected a non-empty (g, {NCOLS}) group, got shape {rows.shape}")
    out = np.empty(NCOLS, dtype=np.float64)
    for low, ext in _AXES:
        lo = rows[:, low].min()
        hi = (rows[:, low] + rows[:, ext]).max()
        out[low] = lo
        out[ext] = hi - lo
    return out


def merge_sample_arrays(
    long: np.ndarray,
    short: np.ndarray,
    n_long: int,
    n_short: int,
    config: StretchConfig = StretchConfig(),
) -> np.ndarray:
    """Two-stage merge of two sample arrays; ``long`` must be the longer one.

    Returns the merged ``(m', 6)`` array with ``m' = `` number of
    distinct ``short`` samples matched in stage one (``m' <= m_short``).
    """
    if long.shape[0] < short.shape[0]:
        raise ValueError("first argument must be the longer fingerprint")

    # Stage 1: match each long sample to its cheapest short sample.
    delta = stretch_matrix(long, short, n_long, n_short, config)
    match = delta.argmin(axis=1)  # (m_long,)

    matched_js = np.unique(match)
    merged = np.empty((matched_js.shape[0], NCOLS), dtype=np.float64)
    for out_i, j in enumerate(matched_js):
        group = np.vstack([long[match == j], short[int(j)][None, :]])
        merged[out_i] = generalize_rows(group)

    # Stage 2: fold unmatched short samples into the stage-one results.
    unmatched = np.setdiff1d(np.arange(short.shape[0]), matched_js)
    if unmatched.shape[0]:
        leftovers = short[unmatched]
        delta2 = stretch_matrix(leftovers, merged, n_short, n_long + n_short, config)
        targets = delta2.argmin(axis=1)
        for row, tgt in zip(leftovers, targets):
            merged[int(tgt)] = generalize_rows(np.vstack([merged[int(tgt)][None, :], row[None, :]]))

    order = np.argsort(merged[:, T], kind="stable")
    return merged[order]


def merge_fingerprints(
    a: Fingerprint,
    b: Fingerprint,
    config: StretchConfig = StretchConfig(),
    uid: str = None,
) -> Fingerprint:
    """Merge two fingerprints into one hiding ``a.count + b.count`` users.

    The merged fingerprint's sample array covers every sample of both
    inputs (truthfulness is preserved: no fabricated samples, only
    coarsened ones).  Reshaping (temporal-overlap resolution) is a
    separate pass, see :mod:`repro.core.reshape`.
    """
    if a.m == 0 or b.m == 0:
        raise ValueError("cannot merge empty fingerprints")
    if a.m >= b.m:
        long_fp, short_fp = a, b
    else:
        long_fp, short_fp = b, a
    data = merge_sample_arrays(
        long_fp.data, short_fp.data, long_fp.count, short_fp.count, config
    )
    return Fingerprint(
        uid if uid is not None else f"{a.uid}+{b.uid}",
        data,
        count=a.count + b.count,
        members=tuple(a.members) + tuple(b.members),
    )


def covers(merged: np.ndarray, original: np.ndarray, atol: float = 1e-9) -> bool:
    """Whether every original sample is covered by some merged sample.

    This is the record-level truthfulness invariant (PPDP principle P2):
    each published sample must contain the true location/time of every
    subscriber it generalizes.  Used by tests and property checks.
    """
    for row in original:
        lo_ok = (
            (merged[:, X] <= row[X] + atol)
            & (merged[:, Y] <= row[Y] + atol)
            & (merged[:, T] <= row[T] + atol)
        )
        hi_ok = (
            (merged[:, X] + merged[:, DX] >= row[X] + row[DX] - atol)
            & (merged[:, Y] + merged[:, DY] >= row[Y] + row[DY] - atol)
            & (merged[:, T] + merged[:, DT] >= row[T] + row[DT] - atol)
        )
        if not bool((lo_ok & hi_ok).any()):
            return False
    return True
