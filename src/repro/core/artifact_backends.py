"""Pluggable persistence backends of the artifact store (DESIGN.md D10).

:class:`~repro.core.artifacts.ArtifactStore` keeps the in-process memo
and the pickling; everything durable behind it — payload bytes, LRU
eviction, cross-process single-flight claims — is an
:class:`ArtifactBackend`.  Three implementations ship:

* ``disk`` (default) — one ``<key>.pkl`` file per artifact under the
  store root, the same layout as before the backend split; advisory
  file locks (``fcntl.flock`` where available, exclusive-create
  lockfiles otherwise) implement single flight.
* ``sqlite`` — every artifact in one WAL-mode database file, safe for
  concurrent multi-process access on one host without per-artifact
  files; single flight is a claim row.  Uses only the standard
  library.
* ``redis`` — a thin client for a shared server (the multi-node form
  of the same idea), behind the ``[redis]`` packaging extra; single
  flight is a ``SET NX EX`` lock and eviction is delegated to the
  server's own ``maxmemory`` policy.

Single-flight contract (all backends): :meth:`ArtifactBackend.
single_flight` is a context manager admitting callers one at a time
per (stage, key) — across threads and processes — so ``fetch()`` can
re-check the store after admission and compute only when the artifact
is still missing.  The lock is advisory and *bounded*: no caller waits
longer than ``stale_lock_timeout`` seconds; on timeout (a crashed or
wedged owner) it proceeds without the lock, trading duplicate work for
liveness.  Backend errors degrade the same way — a cache layer may
never fail a computation (DESIGN.md D6).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs import get_metrics

try:  # POSIX advisory locks; the kernel releases them on process death
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Store layout version: bump to orphan every existing artifact when
#: the serialization format *or the keying scheme* changes.  v2: keys
#: fold package-relative source paths (not basenames) into digests.
STORE_VERSION = "v2"

#: How long a single-flight waiter blocks on another worker's claim
#: before assuming the owner crashed and computing anyway.  Bounds the
#: damage of a dead owner to one timeout, never a wedged pipeline.
DEFAULT_STALE_LOCK_S = 300.0

#: Age after which an orphaned ``*.tmp`` file (a writer killed between
#: ``mkstemp`` and ``os.replace``) is swept during eviction.
DEFAULT_TMP_MAX_AGE_S = 3600.0

_POLL_S = 0.02


def runtime_tag() -> str:
    """Interpreter + numpy segment of every artifact namespace.

    Numpy upgrades may change bit-level results (RNG streams, reduction
    order), and cached bytes must always match what ``--no-cache``
    would produce on the current stack.
    """
    import numpy

    return (
        f"cpython-{sys.version_info.major}.{sys.version_info.minor}"
        f"-numpy-{numpy.__version__}"
    )


@dataclass(frozen=True)
class BackendStats:
    """Uniform snapshot of one backend's persistent layer (D12).

    Every backend reports exactly this key set — the measured size of
    the durable layer plus this process's operation counters — so
    callers (the CLI, the metrics registry, tests) never branch on the
    backend kind.  The counters are process-local and monotonic:
    ``hits``/``misses`` split every ``get``, ``puts`` counts stores,
    ``evictions`` counts artifacts dropped by the size bound, and
    ``flights``/``flight_waits`` count single-flight admissions and how
    many of them had to wait behind another worker's claim.
    """

    artifacts: int
    total_bytes: int
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    flights: int = 0
    flight_waits: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The snapshot as a plain dict (stable, JSON-able)."""
        return asdict(self)


class ArtifactBackend:
    """Protocol of a persistent artifact layer.

    Implementations deal in raw payload bytes — serialization, the
    memo layer and the oversize gate stay in ``ArtifactStore``.
    Eviction policy is deliberately per-backend: what "least recently
    used" and "total size" mean depends on the medium (file mtimes vs
    an ``atime`` column vs a server-side ``maxmemory`` policy).

    The public ``get``/``put``/``evict``/``stats`` methods are template
    methods: they maintain the uniform :class:`BackendStats` operation
    counters (and mirror them into the metrics registry) around the
    per-medium ``_get``/``_put``/``_evict``/``_measure`` hooks, so all
    three backends report the same hit/miss/eviction key set by
    construction.  Subclass ``__init__`` must call ``super().__init__()``.
    """

    name: str = "?"

    def __init__(self):
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._flights = 0
        self._flight_waits = 0

    # -- template methods (uniform counting) ---------------------------
    def get(self, stage: str, key: str) -> Optional[bytes]:
        """The stored payload, or ``None`` on a miss.  Refreshes LRU."""
        payload = self._get(stage, key)
        field = "misses" if payload is None else "hits"
        with self._counter_lock:
            if payload is None:
                self._misses += 1
            else:
                self._hits += 1
        get_metrics().counter(f"artifact_backend.{self.name}.{field}").inc()
        return payload

    def put(self, stage: str, key: str, payload: bytes) -> None:
        """Store a payload, evicting if the size bound is crossed."""
        self._put(stage, key, payload)
        with self._counter_lock:
            self._puts += 1
        get_metrics().counter(f"artifact_backend.{self.name}.puts").inc()

    def evict(self) -> int:
        """Enforce the size bound now; returns artifacts dropped."""
        dropped = self._evict()
        if dropped:
            with self._counter_lock:
                self._evictions += dropped
            get_metrics().counter(f"artifact_backend.{self.name}.evictions").inc(dropped)
        return dropped

    def stats(self) -> BackendStats:
        """The uniform size + operation-counter snapshot."""
        artifacts, total_bytes = self._measure()
        with self._counter_lock:
            return BackendStats(
                artifacts=artifacts,
                total_bytes=total_bytes,
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                flights=self._flights,
                flight_waits=self._flight_waits,
            )

    def _count_flight(self, waited: bool) -> None:
        """Record one single-flight admission (``waited``: behind a claim)."""
        with self._counter_lock:
            self._flights += 1
            if waited:
                self._flight_waits += 1
        metrics = get_metrics()
        metrics.counter(f"artifact_backend.{self.name}.flights").inc()
        if waited:
            metrics.counter(f"artifact_backend.{self.name}.flight_waits").inc()

    # -- per-medium hooks ----------------------------------------------
    def _get(self, stage: str, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def _put(self, stage: str, key: str, payload: bytes) -> None:
        raise NotImplementedError

    def _evict(self) -> int:
        raise NotImplementedError

    def _measure(self) -> Tuple[int, int]:
        """Measured ``(artifact count, total payload bytes)``."""
        raise NotImplementedError

    @contextmanager
    def single_flight(self, stage: str, key: str) -> Iterator[None]:
        """Admit callers one at a time per (stage, key); see module doc."""
        self._count_flight(waited=False)
        yield


class DiskArtifactBackend(ArtifactBackend):
    """The original one-file-per-artifact LRU store.

    Layout: ``root/v2/cpython-X.Y-numpy-Z/<stage>/<key>.pkl``, written
    atomically via ``mkstemp`` + ``os.replace``.  Least-recently-*used*
    files are evicted first (reads refresh the mtime clock).  Size
    accounting is a running estimate — one directory scan on the first
    write, then incremental updates — so puts stay O(1); eviction
    re-measures before acting.

    Single flight prefers ``fcntl.flock`` on a per-key ``.lock`` file:
    the kernel drops the lock when the owner dies, so a crashed worker
    never blocks waiters beyond its death.  Without ``fcntl`` an
    exclusive-create lockfile is used instead, broken by waiters once
    its mtime exceeds the stale timeout.  Lock files are never swept
    while the store lives (unlinking a contended lock file could admit
    two owners); they are empty and one per computed key.
    """

    name = "disk"

    def __init__(
        self,
        root: os.PathLike,
        max_bytes: int,
        stale_lock_timeout: float = DEFAULT_STALE_LOCK_S,
        tmp_max_age_s: float = DEFAULT_TMP_MAX_AGE_S,
    ):
        super().__init__()
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.stale_lock_timeout = float(stale_lock_timeout)
        self.tmp_max_age_s = float(tmp_max_age_s)
        self._approx_bytes: Optional[int] = None

    # -- layout --------------------------------------------------------
    def _stage_dir(self, stage: str) -> Path:
        return self.root / STORE_VERSION / runtime_tag() / stage

    def path(self, stage: str, key: str) -> Path:
        """On-disk location of one artifact."""
        return self._stage_dir(stage) / f"{key}.pkl"

    def _artifact_files(self) -> List[Path]:
        if not self.root.exists():
            return []
        return [p for p in self.root.rglob("*.pkl") if p.is_file()]

    # -- access --------------------------------------------------------
    def _get(self, stage: str, key: str) -> Optional[bytes]:
        path = self.path(stage, key)
        try:
            with open(path, "rb") as f:
                payload = f.read()
        except OSError:
            return None
        try:
            os.utime(path)  # refresh the LRU clock
        except OSError:
            pass
        return payload

    def _put(self, stage: str, key: str, payload: bytes) -> None:
        import tempfile

        path = self.path(stage, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # A re-put overwrites via os.replace: subtract the replaced
            # artifact's size or the estimate drifts upward forever and
            # triggers premature eviction in long-running processes.
            try:
                old_size = path.stat().st_size
            except OSError:
                old_size = 0
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(payload)
                os.replace(tmp, path)  # atomic under concurrent writers
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            if self._approx_bytes is None:
                self._approx_bytes = self._measure()[1]
            else:
                self._approx_bytes += len(payload) - old_size
            if self._approx_bytes > self.max_bytes:
                self.evict()
        except OSError:
            return  # a read-only or full disk degrades to memo-only

    def _evict(self) -> int:
        """Drop LRU artifacts past ``max_bytes``; sweep orphaned tmps."""
        now = time.time()
        if self.root.exists():
            # Writers killed between mkstemp and os.replace leave *.tmp
            # orphans that no *.pkl glob ever sees; sweep old ones.
            for p in self.root.rglob("*.tmp"):
                try:
                    if now - p.stat().st_mtime > self.tmp_max_age_s:
                        p.unlink()
                except OSError:
                    continue
        sized = []
        total = 0
        dropped = 0
        for p in self._artifact_files():
            try:
                st = p.stat()
            except OSError:
                continue
            sized.append((st.st_mtime, st.st_size, str(p)))
            total += st.st_size
        if total > self.max_bytes:
            for _, size, p in sorted(sized):
                try:
                    os.unlink(p)
                except OSError:
                    continue
                dropped += 1
                total -= size
                if total <= self.max_bytes:
                    break
        self._approx_bytes = total
        return dropped

    def _measure(self) -> Tuple[int, int]:
        files = self._artifact_files()
        total = 0
        for p in files:
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return len(files), total

    # -- single flight -------------------------------------------------
    @contextmanager
    def single_flight(self, stage: str, key: str) -> Iterator[None]:
        lock_path = self._stage_dir(stage) / f"{key}.lock"
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            self._count_flight(waited=False)
            yield  # unwritable store: no lock, just compute
            return
        if fcntl is not None:
            yield from self._flock_flight(lock_path)
        else:  # pragma: no cover - exercised only on non-POSIX hosts
            yield from self._lockfile_flight(lock_path)

    def _flock_flight(self, lock_path: Path) -> Iterator[None]:
        try:
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            self._count_flight(waited=False)
            yield
            return
        acquired = False
        waited = False
        try:
            deadline = time.monotonic() + self.stale_lock_timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError:
                    # Held elsewhere.  The kernel releases a dead
                    # owner's flock, so polling sees crashes promptly;
                    # the deadline only caps a *wedged* (alive, stuck)
                    # owner, after which we duplicate work instead of
                    # hanging the pipeline.
                    if time.monotonic() >= deadline:
                        break
                    waited = True
                    time.sleep(_POLL_S)
            self._count_flight(waited)
            yield
        finally:
            if acquired:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:
                    pass
            os.close(fd)

    def _lockfile_flight(self, lock_path: Path) -> Iterator[None]:
        # Portable fallback: exclusive-create, stale by mtime.  A
        # crashed owner's file is broken by the first waiter to see it
        # exceed the stale timeout.
        acquired = False
        waited = False
        deadline = time.monotonic() + self.stale_lock_timeout
        while True:
            try:
                fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                acquired = True
                break
            except FileExistsError:
                waited = True
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    continue  # released between attempts; retry now
                if age > self.stale_lock_timeout:
                    try:
                        lock_path.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    break
                time.sleep(_POLL_S)
            except OSError:
                break  # unwritable store: proceed without the lock
        self._count_flight(waited)
        try:
            yield
        finally:
            if acquired:
                try:
                    lock_path.unlink()
                except OSError:
                    pass


class SQLiteArtifactBackend(ArtifactBackend):
    """All artifacts in one WAL-mode SQLite file.

    Safe for concurrent readers/writers across processes on one host:
    WAL gives readers a consistent snapshot while one writer commits,
    and ``busy_timeout`` serializes writer collisions.  Artifacts are
    keyed by ``(runtime, stage, key)`` so one file serves every
    interpreter/numpy stack, and LRU state is an ``atime`` column
    updated on read.  ``stats().total_bytes`` is the *logical* payload
    total (``SUM(size)``) — the bound eviction enforces; the database
    file itself only shrinks on VACUUM, which is deliberately never
    issued on the hot path.

    Single flight is a claim row in the ``flights`` table: the first
    ``INSERT OR IGNORE`` to land owns the computation, waiters poll,
    and claims older than the stale timeout are deleted by waiters so
    a crashed owner never wedges anyone.
    """

    name = "sqlite"

    def __init__(
        self,
        root: os.PathLike,
        max_bytes: int,
        stale_lock_timeout: float = DEFAULT_STALE_LOCK_S,
        busy_timeout_s: float = 10.0,
    ):
        super().__init__()
        self.root = Path(root)
        self.db_path = self.root / f"artifacts-{STORE_VERSION}.sqlite"
        self.max_bytes = int(max_bytes)
        self.stale_lock_timeout = float(stale_lock_timeout)
        self.busy_timeout_s = float(busy_timeout_s)
        self._runtime = runtime_tag()
        self.root.mkdir(parents=True, exist_ok=True)
        with self._tx() as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                " runtime TEXT NOT NULL, stage TEXT NOT NULL, key TEXT NOT NULL,"
                " payload BLOB NOT NULL, size INTEGER NOT NULL, atime REAL NOT NULL,"
                " PRIMARY KEY (runtime, stage, key))"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS flights ("
                " runtime TEXT NOT NULL, stage TEXT NOT NULL, key TEXT NOT NULL,"
                " owner TEXT NOT NULL, claimed_at REAL NOT NULL,"
                " PRIMARY KEY (runtime, stage, key))"
            )

    @contextmanager
    def _tx(self):
        import sqlite3

        conn = sqlite3.connect(self.db_path, timeout=self.busy_timeout_s)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            with conn:  # one transaction, committed on success
                yield conn
        finally:
            conn.close()

    def _ident(self, stage: str, key: str):
        return (self._runtime, stage, key)

    # -- access --------------------------------------------------------
    def _get(self, stage: str, key: str) -> Optional[bytes]:
        import sqlite3

        try:
            with self._tx() as conn:
                row = conn.execute(
                    "SELECT payload FROM artifacts"
                    " WHERE runtime=? AND stage=? AND key=?",
                    self._ident(stage, key),
                ).fetchone()
                if row is None:
                    return None
                conn.execute(
                    "UPDATE artifacts SET atime=?"
                    " WHERE runtime=? AND stage=? AND key=?",
                    (time.time(), *self._ident(stage, key)),
                )
                return row[0]
        except sqlite3.Error:
            return None

    def _put(self, stage: str, key: str, payload: bytes) -> None:
        import sqlite3

        try:
            with self._tx() as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO artifacts"
                    " (runtime, stage, key, payload, size, atime)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (*self._ident(stage, key), payload, len(payload), time.time()),
                )
                total = conn.execute(
                    "SELECT COALESCE(SUM(size), 0) FROM artifacts"
                ).fetchone()[0]
            if total > self.max_bytes:
                self.evict()
        except sqlite3.Error:
            return

    def _evict(self) -> int:
        import sqlite3

        dropped = 0
        try:
            with self._tx() as conn:
                total = conn.execute(
                    "SELECT COALESCE(SUM(size), 0) FROM artifacts"
                ).fetchone()[0]
                if total > self.max_bytes:
                    victims = conn.execute(
                        "SELECT rowid, size FROM artifacts ORDER BY atime"
                    ).fetchall()
                    for rowid, size in victims:
                        conn.execute("DELETE FROM artifacts WHERE rowid=?", (rowid,))
                        dropped += 1
                        total -= size
                        if total <= self.max_bytes:
                            break
                conn.execute(
                    "DELETE FROM flights WHERE claimed_at < ?",
                    (time.time() - self.stale_lock_timeout,),
                )
        except sqlite3.Error:
            return dropped
        return dropped

    def _measure(self) -> Tuple[int, int]:
        import sqlite3

        try:
            with self._tx() as conn:
                count, total = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM artifacts"
                ).fetchone()
            return count, total
        except sqlite3.Error:
            return 0, 0

    # -- single flight -------------------------------------------------
    @contextmanager
    def single_flight(self, stage: str, key: str) -> Iterator[None]:
        import sqlite3

        owner = f"{os.getpid()}-{threading.get_ident()}"
        acquired = False
        waited = False
        deadline = time.monotonic() + self.stale_lock_timeout
        try:
            while True:
                try:
                    with self._tx() as conn:
                        conn.execute(
                            "DELETE FROM flights WHERE runtime=? AND stage=?"
                            " AND key=? AND claimed_at < ?",
                            (*self._ident(stage, key),
                             time.time() - self.stale_lock_timeout),
                        )
                        cur = conn.execute(
                            "INSERT OR IGNORE INTO flights"
                            " (runtime, stage, key, owner, claimed_at)"
                            " VALUES (?, ?, ?, ?, ?)",
                            (*self._ident(stage, key), owner, time.time()),
                        )
                        if cur.rowcount == 1:
                            acquired = True
                except sqlite3.Error:
                    break  # degrade: compute without the claim
                if acquired or time.monotonic() >= deadline:
                    break
                waited = True
                time.sleep(_POLL_S)
            self._count_flight(waited)
            yield
        finally:
            if acquired:
                try:
                    with self._tx() as conn:
                        conn.execute(
                            "DELETE FROM flights WHERE runtime=? AND stage=?"
                            " AND key=? AND owner=?",
                            (*self._ident(stage, key), owner),
                        )
                except sqlite3.Error:
                    pass


class RedisArtifactBackend(ArtifactBackend):
    """Thin shared-server backend behind the ``[redis]`` extra.

    Maps artifacts to ``repro:<version>:<runtime>:<stage>:<key>``
    string values and single flight to a ``SET NX EX`` lock whose TTL
    *is* the stale timeout — a crashed owner's lock expires on its own.
    Eviction is delegated to the server (configure ``maxmemory`` +
    ``allkeys-lru``), so :meth:`evict` is a no-op and ``max_bytes`` is
    advisory.  Every command failure degrades to a miss/no-op, so an
    unreachable server behaves like ``REPRO_CACHE=0``.
    """

    name = "redis"

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: int = 0,
        stale_lock_timeout: float = DEFAULT_STALE_LOCK_S,
        url: Optional[str] = None,
    ):
        super().__init__()
        try:
            import redis
        except ImportError as exc:
            raise RuntimeError(
                "the 'redis' artifact backend needs the redis client: "
                "pip install 'glove-repro[redis]' (and point "
                "REPRO_REDIS_URL at a reachable server)"
            ) from exc
        self.url = url or os.environ.get("REPRO_REDIS_URL", "redis://localhost:6379/0")
        self.stale_lock_timeout = float(stale_lock_timeout)
        self._redis = redis.Redis.from_url(self.url)
        self._prefix = f"repro:{STORE_VERSION}:{runtime_tag()}"

    def _key(self, stage: str, key: str) -> str:
        return f"{self._prefix}:{stage}:{key}"

    def _get(self, stage: str, key: str) -> Optional[bytes]:
        try:
            return self._redis.get(self._key(stage, key))
        except Exception:
            return None

    def _put(self, stage: str, key: str, payload: bytes) -> None:
        try:
            self._redis.set(self._key(stage, key), payload)
        except Exception:
            return

    def _evict(self) -> int:
        return 0  # the server's maxmemory policy owns eviction

    def _measure(self) -> Tuple[int, int]:
        try:
            count = total = 0
            for k in self._redis.scan_iter(match=f"{self._prefix}:*"):
                count += 1
                total += int(self._redis.strlen(k))
            return count, total
        except Exception:
            return 0, 0

    @contextmanager
    def single_flight(self, stage: str, key: str) -> Iterator[None]:
        lock_key = f"{self._prefix}:flight:{stage}:{key}"
        token = f"{os.getpid()}-{threading.get_ident()}".encode("ascii")
        ttl = max(1, int(self.stale_lock_timeout))
        acquired = False
        waited = False
        deadline = time.monotonic() + self.stale_lock_timeout
        try:
            while True:
                try:
                    acquired = bool(self._redis.set(lock_key, token, nx=True, ex=ttl))
                except Exception:
                    break  # unreachable server: compute without the lock
                if acquired or time.monotonic() >= deadline:
                    break
                waited = True
                time.sleep(_POLL_S)
            self._count_flight(waited)
            yield
        finally:
            if acquired:
                try:
                    if self._redis.get(lock_key) == token:
                        self._redis.delete(lock_key)
                except Exception:
                    pass


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Callable[..., ArtifactBackend]] = {
    "disk": DiskArtifactBackend,
    "sqlite": SQLiteArtifactBackend,
    "redis": RedisArtifactBackend,
}


def available_artifact_backends() -> List[str]:
    """Registered backend names, CLI-choice ordered."""
    return sorted(_BACKENDS)


def create_artifact_backend(
    name: str,
    root: os.PathLike,
    max_bytes: int,
    stale_lock_timeout: float = DEFAULT_STALE_LOCK_S,
) -> ArtifactBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown artifact backend {name!r}; "
            f"available: {', '.join(available_artifact_backends())}"
        ) from None
    return factory(root=root, max_bytes=max_bytes, stale_lock_timeout=stale_lock_timeout)
