"""Spatiotemporal samples.

A sample records that a subscriber was somewhere inside a geographical
rectangle during a time interval (paper Section 4.1):

* spatial part  ``sigma = (x, dx, y, dy)`` -- the rectangle
  ``[x, x+dx] x [y, y+dy]`` in metres on the projected plane;
* temporal part ``tau = (t, dt)`` -- the interval ``[t, t+dt]`` in
  minutes from the dataset epoch.

In the original (non-generalized) datasets every sample has
``dx = dy = 100 m`` and ``dt = 1 min``.

For vectorized processing, a fingerprint stores its samples as a float64
array of shape ``(m, 6)`` whose columns are indexed by the ``X .. DT``
constants below.  The :class:`Sample` dataclass is the scalar,
user-facing view of one row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Column indices of the (m, 6) sample array.
X, DX, Y, DY, T, DT = 0, 1, 2, 3, 4, 5

#: Number of columns in a sample array.
NCOLS = 6

#: The paper's finest granularities.
DEFAULT_DX_M = 100.0
DEFAULT_DY_M = 100.0
DEFAULT_DT_MIN = 1.0


@dataclass(frozen=True)
class Sample:
    """One spatiotemporal sample (scalar view).

    Attributes
    ----------
    x, y:
        Lower-left corner of the bounding rectangle, metres.
    dx, dy:
        Rectangle extents, metres (>= 0).
    t:
        Start of the time interval, minutes from the dataset epoch.
    dt:
        Interval length, minutes (>= 0).
    """

    x: float
    y: float
    t: float
    dx: float = DEFAULT_DX_M
    dy: float = DEFAULT_DY_M
    dt: float = DEFAULT_DT_MIN

    def __post_init__(self) -> None:
        if self.dx < 0 or self.dy < 0:
            raise ValueError("spatial extents dx, dy must be non-negative")
        if self.dt < 0:
            raise ValueError("temporal extent dt must be non-negative")

    @property
    def x_max(self) -> float:
        """Right edge of the rectangle."""
        return self.x + self.dx

    @property
    def y_max(self) -> float:
        """Top edge of the rectangle."""
        return self.y + self.dy

    @property
    def t_end(self) -> float:
        """End of the time interval."""
        return self.t + self.dt

    @property
    def center(self) -> tuple:
        """Spatial center ``(x, y)`` of the rectangle."""
        return (self.x + self.dx / 2.0, self.y + self.dy / 2.0)

    @property
    def t_mid(self) -> float:
        """Midpoint of the time interval."""
        return self.t + self.dt / 2.0

    def to_row(self) -> np.ndarray:
        """Render the sample as one row of a sample array."""
        return np.array([self.x, self.dx, self.y, self.dy, self.t, self.dt], dtype=np.float64)

    @classmethod
    def from_row(cls, row: np.ndarray) -> "Sample":
        """Build a sample from one row of a sample array."""
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (NCOLS,):
            raise ValueError(f"expected a row of {NCOLS} values, got shape {row.shape}")
        return cls(x=row[X], dx=row[DX], y=row[Y], dy=row[DY], t=row[T], dt=row[DT])

    def covers(self, other: "Sample") -> bool:
        """Whether this sample's rectangle and interval contain ``other``'s."""
        return (
            self.x <= other.x
            and self.x_max >= other.x_max
            and self.y <= other.y
            and self.y_max >= other.y_max
            and self.t <= other.t
            and self.t_end >= other.t_end
        )


def samples_array(samples) -> np.ndarray:
    """Stack an iterable of :class:`Sample` (or rows) into an ``(m, 6)`` array.

    An empty iterable yields a ``(0, 6)`` array.
    """
    rows = []
    for s in samples:
        if isinstance(s, Sample):
            rows.append(s.to_row())
        else:
            row = np.asarray(s, dtype=np.float64)
            if row.shape != (NCOLS,):
                raise ValueError(f"expected rows of {NCOLS} values, got shape {row.shape}")
            rows.append(row)
    if not rows:
        return np.empty((0, NCOLS), dtype=np.float64)
    return np.vstack(rows)


def validate_sample_array(arr: np.ndarray) -> np.ndarray:
    """Check that ``arr`` is a well-formed ``(m, 6)`` sample array.

    Returns the array as contiguous float64.  Raises ``ValueError`` on
    wrong shape, NaNs, or negative extents.
    """
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != NCOLS:
        raise ValueError(f"sample array must have shape (m, {NCOLS}), got {arr.shape}")
    if arr.size and not np.isfinite(arr).all():
        raise ValueError("sample array contains non-finite values")
    if arr.size and (arr[:, [DX, DY, DT]] < 0).any():
        raise ValueError("sample extents dx, dy, dt must be non-negative")
    return arr
