"""The anonymizer protocol and registry — one comparison surface.

The paper's central quantitative claim (Table 2, and the related-work
contrast of Section 2) is *comparative*: GLOVE against W4M-LC (Abul,
Bonchi & Nanni, Information Systems 2010) and its synchronized-
trajectory predecessor NWA (ICDE 2008), with uniform spatiotemporal
generalization (Fig. 4) as the legacy defence.  This module makes the
comparison a first-class, pluggable axis instead of a side path: every
anonymization technique registers here as an :class:`Anonymizer` and
returns a normalized :class:`AnonymizationResult`, so the pipeline's
``anonymize`` stage, the CLIs, the attack experiments and the benchmark
suite can run any technique through one code path.

The normalized result carries the shared provenance/stats schema that
Table 2 previously assembled ad hoc per method:

* ``discarded_fingerprints`` — subscribers absent from the publication
  (W4M/NWA trashing; zero for GLOVE by design);
* ``created_samples`` / ``created_fraction`` — fabricated samples
  (timeline resampling; zero for GLOVE, truthfulness principle P2);
* ``deleted_samples`` / ``deleted_fraction`` — original samples without
  a published counterpart (trashing/clipping for W4M/NWA, suppression
  for GLOVE) with each method's native denominator;
* ``mean_position_error_m`` / ``mean_time_error_min`` — provenance-
  matched errors over represented samples.

Each result also exposes ``groups``: the anonymity groups of the
publication as uid tuples, so the k-anonymity invariant harness
(``tests/properties/test_k_anonymity.py``) audits every registered
method through the same checker.

Registration mirrors the compute-backend registry of
:mod:`repro.core.engine` and the scenario registry of
:mod:`repro.core.scenarios`; the built-in entries (``glove``,
``w4m-lc``, ``nwa``, ``generalization``) lazy-import their
implementations so ``repro.core`` never hard-depends on
``repro.baselines``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import ComputeConfig, GloveConfig, SuppressionConfig
from repro.core.dataset import FingerprintDataset


@dataclass(frozen=True)
class AnonymizationStats:
    """The normalized Table-2 schema, uniform across methods.

    Fractions are stored (not derived) because each method keeps its
    native denominator: W4M/NWA count against the original dataset's
    samples, GLOVE's suppression counts against its pre-suppression
    output — exactly the paper's accounting.
    """

    discarded_fingerprints: int = 0
    created_samples: int = 0
    created_fraction: float = 0.0
    deleted_samples: int = 0
    deleted_fraction: float = 0.0
    total_original_samples: int = 0
    n_groups: int = 0
    mean_position_error_m: float = 0.0
    mean_time_error_min: float = 0.0


@dataclass
class AnonymizationResult:
    """Normalized outcome of any registered anonymizer.

    Attributes
    ----------
    method:
        Registry name of the technique that produced the result.
    dataset:
        The published (anonymized) dataset.
    config:
        The method's own configuration dataclass.
    groups:
        Anonymity groups of the publication as tuples of original uids
        (GLOVE merge groups, W4M/NWA clusters; singletons for uniform
        generalization, which offers no grouping guarantee).
    raw:
        The method-native result object (:class:`~repro.core.glove.
        GloveResult`, ``W4MResult``, ``NWAResult``, or the bare dataset
        for generalization) for callers needing method-specific detail.
    """

    method: str
    dataset: FingerprintDataset
    config: Any
    groups: Tuple[Tuple[str, ...], ...]
    raw: Any = None
    # Normalizing GLOVE stats needs a cover-mode error match against the
    # original dataset (O(n m^2)); results built in-process defer it
    # until `.stats` is first read.  Results destined for the artifact
    # store are normalized eagerly (closures do not pickle).
    _stats: Optional[AnonymizationStats] = field(default=None, repr=False)
    _stats_factory: Optional[Callable[[], AnonymizationStats]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def stats(self) -> AnonymizationStats:
        """The normalized provenance/error statistics."""
        if self._stats is None:
            self._stats = self._stats_factory()
            self._stats_factory = None
        return self._stats


@dataclass(frozen=True)
class Anonymizer:
    """One registered anonymization technique.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--method`` value).
    display:
        Table label, e.g. ``"W4M-LC"``.
    config_type:
        Dotted name of the method's configuration dataclass (kept as a
        string so registration never imports the implementation).
    run:
        ``(dataset, config, compute) -> AnonymizationResult``.  Only
        GLOVE consumes the compute substrate; baselines ignore it.
    make_config:
        ``(k=2, **options) -> config`` factory used by the CLI, the
        scenario method axis and the experiments.
    sources:
        Module scope whose source digest enters this method's artifact
        keys (DESIGN.md D8).
    guarantees_k_anonymity:
        Whether every published record hides at least ``k`` subscribers
        (GLOVE's design guarantee; W4M/NWA provide ``(k, delta)``-
        anonymity over per-subscriber records instead, generalization
        provides nothing).
    description:
        One line for ``--help`` and the README method matrix.
    """

    name: str
    display: str
    config_type: str
    run: Callable[[FingerprintDataset, Any, Optional[ComputeConfig]], AnonymizationResult]
    make_config: Callable[..., Any]
    sources: Tuple[str, ...]
    guarantees_k_anonymity: bool
    description: str = ""


_ANONYMIZERS: Dict[str, Anonymizer] = {}


def register_anonymizer(anonymizer: Anonymizer, overwrite: bool = False) -> Anonymizer:
    """Register an anonymizer under its name; returns it for chaining."""
    if not overwrite and anonymizer.name in _ANONYMIZERS:
        raise ValueError(f"anonymizer {anonymizer.name!r} is already registered")
    _ANONYMIZERS[anonymizer.name] = anonymizer
    return anonymizer


def get_anonymizer(name: str) -> Anonymizer:
    """Look an anonymizer up by name."""
    try:
        return _ANONYMIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown anonymizer {name!r}; registered: {', '.join(available_anonymizers())}"
        ) from None


def available_anonymizers() -> List[str]:
    """Registered method names, sorted."""
    return sorted(_ANONYMIZERS)


def anonymize_dataset(
    dataset: FingerprintDataset,
    method: str = "glove",
    config: Any = None,
    compute: Optional[ComputeConfig] = None,
) -> AnonymizationResult:
    """Run any registered anonymizer directly (uncached).

    The pipeline's ``anonymize`` stage is the cached counterpart; this
    helper serves one-off runs (benchmark rows, tests, notebooks).
    """
    anonymizer = get_anonymizer(method)
    if config is None:
        config = anonymizer.make_config()
    return anonymizer.run(dataset, config, compute)


# ----------------------------------------------------------------------
# GLOVE adapter
# ----------------------------------------------------------------------
def strip_suppression(config: GloveConfig) -> GloveConfig:
    """The suppression-free projection of a GloveConfig.

    This is the form GLOVE artifacts are keyed by (DESIGN.md D8): the
    greedy loop is blind to suppression, which re-applies post-fetch
    via :func:`apply_glove_suppression`.  Shared by the cached
    (:meth:`repro.core.pipeline.Pipeline.anonymize`) and uncached
    (:func:`_run_glove`) paths so the key rule can never diverge.
    """
    if not config.suppression.enabled:
        return config
    return replace(config, suppression=SuppressionConfig())


def apply_glove_suppression(raw, config: GloveConfig):
    """The suppressed release of an *unsuppressed* GLOVE run.

    Suppression is a pure post-filter over the merged output (the same
    ``suppress_dataset`` call :func:`repro.core.glove.finalize_result`
    makes), so applying it after the fact is byte-identical to running
    ``glove()`` with the suppression config inline — which lets the
    pipeline key GLOVE artifacts on the suppression-free config and
    share one greedy-loop run across every suppression setting
    (DESIGN.md D8).
    """
    from repro.core.glove import GloveResult
    from repro.core.suppression import suppress_dataset

    if not config.suppression.enabled:
        return GloveResult(dataset=raw.dataset, stats=raw.stats, config=config)
    out, supp = suppress_dataset(raw.dataset, config.suppression)
    return GloveResult(
        dataset=out, stats=replace(raw.stats, suppression=supp), config=config
    )


def normalize_glove(
    original: FingerprintDataset, raw, config: Optional[GloveConfig] = None
) -> AnonymizationResult:
    """Wrap an unsuppressed :class:`GloveResult` into the shared schema.

    ``config`` may carry suppression thresholds absent from ``raw``'s
    run; the release applies them with ``keep_at_least_one`` (zero
    discarded fingerprints, the paper's property) while the error
    statistics follow the paper's accounting and are measured over the
    strict survivors only — the normalization Table 2 used to inline.
    """
    config = config if config is not None else raw.config
    full = apply_glove_suppression(raw, config)
    release = full.dataset

    def stats() -> AnonymizationStats:
        from repro.analysis.accuracy import utility_report
        from repro.core.suppression import suppress_dataset

        rep = utility_report(original, release, "GLOVE", mode="cover")
        if config.suppression.enabled:
            strict = replace(config.suppression, keep_at_least_one=False)
            survivors, strict_stats = suppress_dataset(raw.dataset, strict)
            err = utility_report(original, survivors, "GLOVE", mode="cover")
            deleted = strict_stats.discarded_samples
            deleted_fraction = strict_stats.discarded_fraction
        else:
            err = rep
            deleted, deleted_fraction = 0, 0.0
        return AnonymizationStats(
            discarded_fingerprints=rep.discarded_fingerprints,
            created_samples=0,
            created_fraction=0.0,
            deleted_samples=deleted,
            deleted_fraction=deleted_fraction,
            total_original_samples=original.n_samples,
            n_groups=len(release),
            mean_position_error_m=err.mean_position_error_m,
            mean_time_error_min=err.mean_time_error_min,
        )

    return AnonymizationResult(
        method="glove",
        dataset=release,
        config=config,
        groups=tuple(tuple(fp.members) for fp in release),
        raw=full,
        _stats_factory=stats,
    )


def _run_glove(dataset, config, compute) -> AnonymizationResult:
    from repro.core.glove import glove

    return normalize_glove(
        dataset, glove(dataset, strip_suppression(config), compute), config
    )


# ----------------------------------------------------------------------
# Baseline adapters
# ----------------------------------------------------------------------
def _native_baseline_stats(result, original: FingerprintDataset) -> AnonymizationStats:
    """Map a W4M/NWA native stats object onto the shared schema."""
    s = result.stats
    return AnonymizationStats(
        discarded_fingerprints=s.discarded_fingerprints,
        created_samples=s.created_samples,
        created_fraction=s.created_fraction,
        deleted_samples=s.deleted_samples,
        deleted_fraction=s.deleted_fraction,
        total_original_samples=s.total_original_samples,
        n_groups=len(s.group_members),
        mean_position_error_m=s.mean_position_error_m,
        mean_time_error_min=s.mean_time_error_min,
    )


def _run_w4m(dataset, config, compute) -> AnonymizationResult:
    from repro.baselines.w4m import w4m_lc

    result = w4m_lc(dataset, config)
    return AnonymizationResult(
        method="w4m-lc",
        dataset=result.dataset,
        config=config,
        groups=tuple(result.stats.group_members),
        raw=result,
        _stats=_native_baseline_stats(result, dataset),
    )


def _run_nwa(dataset, config, compute) -> AnonymizationResult:
    from repro.baselines.nwa import nwa

    result = nwa(dataset, config)
    return AnonymizationResult(
        method="nwa",
        dataset=result.dataset,
        config=config,
        groups=tuple(result.stats.group_members),
        raw=result,
        _stats=_native_baseline_stats(result, dataset),
    )


def _run_generalization(dataset, config, compute) -> AnonymizationResult:
    from repro.analysis.accuracy import utility_report
    from repro.baselines.generalization import generalize_dataset

    published = generalize_dataset(dataset, config)
    rep = utility_report(dataset, published, "generalization", mode="cover")
    return AnonymizationResult(
        method="generalization",
        dataset=published,
        config=config,
        # Uniform coarsening publishes one record per subscriber: no
        # grouping, hence singleton "groups" that correctly fail any
        # k >= 2 audit (the Fig. 4 point).
        groups=tuple((fp.uid,) for fp in published),
        raw=published,
        _stats=AnonymizationStats(
            discarded_fingerprints=rep.discarded_fingerprints,
            created_samples=0,
            created_fraction=0.0,
            deleted_samples=rep.deleted_samples,
            deleted_fraction=rep.deleted_fraction,
            total_original_samples=rep.total_original_samples,
            n_groups=len(published),
            mean_position_error_m=rep.mean_position_error_m,
            mean_time_error_min=rep.mean_time_error_min,
        ),
    )


def _glove_config(k: int = 2, **options) -> GloveConfig:
    return GloveConfig(k=k, **options)


def _w4m_config(k: int = 2, **options):
    from repro.baselines.w4m import W4MConfig

    return W4MConfig(k=k, **options)


def _nwa_config(k: int = 2, **options):
    from repro.baselines.nwa import NWAConfig

    return NWAConfig(k=k, **options)


def _generalization_config(k: int = 2, spatial_m: float = 2_500.0, temporal_min: float = 60.0):
    # k is accepted for interface uniformity; uniform generalization has
    # no anonymity parameter (the Fig. 4 sweep varies only granularity).
    from repro.baselines.generalization import GeneralizationLevel

    return GeneralizationLevel(spatial_m=spatial_m, temporal_min=temporal_min)


#: Source scope of the baseline methods' artifact keys: the data model
#: and merge machinery (repro.core), the implementations themselves,
#: and the error-matching used by the normalized schema.
BASELINE_SOURCES = ("repro.core", "repro.baselines", "repro.analysis.accuracy")

register_anonymizer(Anonymizer(
    name="glove",
    display="GLOVE",
    config_type="repro.core.config.GloveConfig",
    run=_run_glove,
    make_config=_glove_config,
    sources=("repro.core",),
    guarantees_k_anonymity=True,
    description="the paper's stretch-effort-minimal k-anonymization (Alg. 1)",
))
register_anonymizer(Anonymizer(
    name="w4m-lc",
    display="W4M-LC",
    config_type="repro.baselines.w4m.W4MConfig",
    run=_run_w4m,
    make_config=_w4m_config,
    sources=BASELINE_SOURCES,
    guarantees_k_anonymity=False,
    description="Wait-for-Me (k, delta)-anonymity with LST distance and chunking",
))
register_anonymizer(Anonymizer(
    name="nwa",
    display="NWA",
    config_type="repro.baselines.nwa.NWAConfig",
    run=_run_nwa,
    make_config=_nwa_config,
    sources=BASELINE_SOURCES,
    guarantees_k_anonymity=False,
    description="Never-Walk-Alone (k, delta)-anonymity over synchronized trajectories",
))
register_anonymizer(Anonymizer(
    name="generalization",
    display="GEN",
    config_type="repro.baselines.generalization.GeneralizationLevel",
    run=_run_generalization,
    make_config=_generalization_config,
    sources=BASELINE_SOURCES,
    guarantees_k_anonymity=False,
    description="legacy uniform spatiotemporal coarsening (paper Fig. 4)",
))
